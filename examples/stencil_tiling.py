#!/usr/bin/env python3
"""Domain example: tiling a matrix transpose (the classic locality case).

The paper motivates loop transformation directives as a way to "separate
the semantics of algorithms and performance-optimization" and to
"experiment with different optimizations to find the best-performing one
on a particular hardware".  This example runs that experiment: a matrix
transpose reads row-major and writes column-major — whatever the loop
order, one side strides badly.  Tiling with ``#pragma omp tile`` (same
algorithm source, one changed directive) bounds both strides to the tile.

A reuse-distance proxy (sum of |address delta| between consecutive
touches of the *written* matrix) is measured on the simulated machine.

    python examples/stencil_tiling.py
"""

from repro import run_source

TRANSPOSE = r"""
int main(void) {
  double a[%(n)d * %(n)d];
  double b[%(n)d * %(n)d];
  for (int k = 0; k < %(n)d * %(n)d; k += 1)
    a[k] = (double)(k %% 13);

  long reuse = 0;
  int last = 0;
  double checksum = 0.0;

  %(pragma)s
  for (int i = 0; i < %(n)d; i += 1)
    for (int j = 0; j < %(n)d; j += 1) {
      int dst = j * %(n)d + i;       /* column-major write */
      b[dst] = a[i * %(n)d + j];
      checksum += b[dst] * (double)(i + 1);
      int delta = dst - last;
      if (delta < 0) delta = -delta;
      reuse += delta;
      last = dst;
    }

  printf("checksum=%%g reuse=%%d\n", checksum, (int)reuse);
  return 0;
}
"""

PARALLEL_TRANSPOSE = r"""
int main(void) {
  double a[%(n)d * %(n)d];
  double b[%(n)d * %(n)d];
  for (int k = 0; k < %(n)d * %(n)d; k += 1)
    a[k] = (double)(k %% 13);

  double checksum = 0.0;

  #pragma omp parallel for reduction(+: checksum)
  #pragma omp tile sizes(4, 4)
  for (int i = 0; i < %(n)d; i += 1)
    for (int j = 0; j < %(n)d; j += 1) {
      int dst = j * %(n)d + i;
      b[dst] = a[i * %(n)d + j];
      checksum += b[dst] * (double)(i + 1);
    }

  printf("checksum=%%g\n", checksum);
  return 0;
}
"""

N = 20


def run(pragma: str):
    src = TRANSPOSE % {"n": N, "pragma": pragma}
    outcome = run_source(src, num_threads=1)
    checksum, reuse = outcome.stdout.split()
    return checksum.split("=")[1], int(reuse.split("=")[1]), outcome


def main() -> None:
    print(f"matrix transpose, {N}x{N}; one changed pragma per row")
    print()
    print(
        f"{'tile sizes':>12} | {'checksum':>9} | {'reuse proxy':>11} |"
        f" {'instructions':>12}"
    )
    print("-" * 56)

    baseline_checksum = None
    results = {}
    for label, pragma in [
        ("(untiled)", ""),
        ("2 x 2", "#pragma omp tile sizes(2, 2)"),
        ("4 x 4", "#pragma omp tile sizes(4, 4)"),
        ("8 x 8", "#pragma omp tile sizes(8, 8)"),
        ("20 x 20", "#pragma omp tile sizes(20, 20)"),
    ]:
        checksum, reuse, outcome = run(pragma)
        results[label] = reuse
        if baseline_checksum is None:
            baseline_checksum = checksum
        marker = "" if checksum == baseline_checksum else "  <-- WRONG"
        print(
            f"{label:>12} | {checksum:>9} | {reuse:>11} |"
            f" {outcome.instruction_count:>12}{marker}"
        )

    print()
    print("Every tiling computes the same checksum (semantics preserved);")
    print("small tiles cut the written matrix's reuse distance by "
          f"{results['(untiled)'] / results['4 x 4']:.1f}x here,")
    print("while the degenerate full-matrix tile reproduces the untiled")
    print("order exactly — the sweet-spot search the directives make a")
    print("one-line experiment.")

    print()
    print("Parallel tiled transpose (worksharing over the generated")
    print("floor loop, 4 simulated threads):")
    outcome = run_source(PARALLEL_TRANSPOSE % {"n": N}, num_threads=4)
    print(" ", outcome.stdout.strip(),
          f"(expected checksum={baseline_checksum})")
    assert outcome.stdout.split("=")[1].strip() == baseline_checksum


if __name__ == "__main__":
    main()
