#!/usr/bin/env python3
"""Domain example: choosing a worksharing schedule for imbalanced work.

An OpenMP worksharing loop with triangular per-iteration cost (iteration
i costs ~i units) is run under every schedule the runtime supports.  For
each schedule the example reports which thread ran which iterations and
the worst per-thread load — the classic static-vs-dynamic trade-off, on
top of the simulated runtime's deterministic thread team.

    python examples/schedule_explorer.py
"""

from repro import run_source

PROGRAM = r"""
int main(void) {
  /* iteration i performs i units of work; record owner and per-thread
     load */
  int owner[%(n)d];
  int load[8];
  for (int t = 0; t < 8; t += 1) load[t] = 0;

  #pragma omp parallel for schedule(%(schedule)s) num_threads(%(threads)d)
  for (int i = 0; i < %(n)d; i += 1) {
    int me = omp_get_thread_num();
    owner[i] = me;
    int cost = 0;
    for (int w = 0; w < i; w += 1)   /* the imbalanced work */
      cost += 1;
    #pragma omp critical
    { load[me] += cost; }
  }

  for (int i = 0; i < %(n)d; i += 1) printf("%%d", owner[i]);
  printf("|");
  for (int t = 0; t < %(threads)d; t += 1) printf("%%d ", load[t]);
  printf("\n");
  return 0;
}
"""

N = 32
THREADS = 4


def explore(schedule: str):
    src = PROGRAM % {"n": N, "schedule": schedule, "threads": THREADS}
    outcome = run_source(src, num_threads=THREADS)
    owners, _, loads = outcome.stdout.strip().partition("|")
    load_list = [int(x) for x in loads.split()]
    return owners, load_list


def main() -> None:
    total = sum(range(N))
    ideal = total / THREADS
    print(
        f"{N} iterations, cost(i) = i, {THREADS} threads; "
        f"total work {total}, ideal per-thread {ideal:.0f}"
    )
    print()
    print(f"{'schedule':>12} | iteration -> thread map{'':12} | "
          f"per-thread load (max)")
    print("-" * 78)
    for schedule in (
        "static",
        "static, 2",
        "dynamic",
        "dynamic, 4",
        "guided",
    ):
        owners, loads = explore(schedule)
        worst = max(loads)
        imbalance = worst / ideal
        print(
            f"{schedule:>12} | {owners} | {loads} "
            f"(max {worst}, {imbalance:.2f}x ideal)"
        )
    print()
    print("static hands thread 3 the expensive tail; dynamic/guided let")
    print("early finishers steal chunks, pushing the worst-thread load")
    print("toward the ideal — the shape that makes schedule choice (and")
    print("the metadirective-style per-target selection the paper")
    print("motivates) worth experimenting with.")


if __name__ == "__main__":
    main()
