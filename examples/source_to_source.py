#!/usr/bin/env python3
"""Source-to-source tool: print what the loop transformations *did*.

The paper notes the completed AST "can be used by tools such as
source-to-source code generators, clang-tidy, clang-query, IDEs" — this
example is such a tool.  It compiles a file with OpenMP loop
transformation directives, then pretty-prints the Sema-built *shadow
transformed AST* back as C source: the code the directive stands for,
which a programmer would otherwise have written by hand (the paper's
maintainability argument, made visible).

    python examples/source_to_source.py
"""

from repro import compile_source
from repro.astlib import omp
from repro.astlib.printer import ASTPrinter
from repro.astlib.visitor import RecursiveASTVisitor

INPUT = r"""
void body(int i, int j);

void unrolled_kernel(int N) {
  #pragma omp unroll partial(4)
  for (int i = 0; i < N; i += 1)
    body(i, 0);
}

void tiled_kernel(void) {
  #pragma omp tile sizes(2, 4)
  for (int i = 0; i < 8; i += 1)
    for (int j = 0; j < 12; j += 1)
      body(i, j);
}
"""


class TransformCollector(RecursiveASTVisitor):
    def __init__(self) -> None:
        super().__init__()
        self.found: list[omp.OMPLoopTransformationDirective] = []

    def visit_stmt(self, stmt) -> bool:
        if isinstance(stmt, omp.OMPLoopTransformationDirective):
            self.found.append(stmt)
        return True


def main() -> None:
    result = compile_source(INPUT, syntax_only=True)
    printer = ASTPrinter()

    for fn in result.translation_unit.functions():
        if fn.body is None:
            continue
        collector = TransformCollector()
        collector.traverse_stmt(fn.body)
        for directive in collector.found:
            print("=" * 70)
            print(f"function {fn.name}(): as written")
            print("=" * 70)
            print(printer.print_stmt(directive, 0))
            print()
            print(
                f"--- what '#pragma omp {directive.directive_name}' "
                "stands for (the shadow transformed AST) ---"
            )
            if directive.pre_inits is not None:
                print(printer.print_stmt(directive.pre_inits, 0))
            transformed = directive.get_transformed_stmt()
            if transformed is None:
                print("(no generated loop: emitted directly by CodeGen)")
            else:
                print(printer.print_stmt(transformed, 0))
            print()

    print("=" * 70)
    print("Note the strip-mined loops, the '.capture_expr.' bound")
    print("materialization, and the '#pragma clang loop unroll_count'")
    print("hint on the kept inner loop — duplication is deferred to the")
    print("mid-end LoopUnroll pass (paper section 2).")


if __name__ == "__main__":
    main()
