// Demo input for the observability flags (README "Observability"):
//
//   PYTHONPATH=src python -m repro.driver.cli \
//       -ftime-trace -print-stats -Rpass=.* -fprofile-report \
//       -O --run examples/observability_demo.c
//
// The unroll directive below is applied by the shadow-AST path and the
// mid-end LoopUnroll pass; both emit passed remarks naming the factor.

int main() {
  int sum = 0;
#pragma omp unroll partial(4)
  for (int i = 0; i < 32; i++) {
    sum += i;
  }

  int parallel_sum = 0;
#pragma omp parallel for reduction(+ : parallel_sum)
  for (int i = 0; i < 64; i++) {
    parallel_sum += i;
  }

  printf("sum=%d parallel_sum=%d\n", sum, parallel_sum);
  return 0;
}
