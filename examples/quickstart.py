#!/usr/bin/env python3
"""Quickstart: compile and run an OpenMP 5.1 program with loop
transformation directives under BOTH of the paper's representations.

    python examples/quickstart.py

Walks through the paper's workflow:
1. `-ast-dump` of a `parallel for` (paper Listing 3),
2. the composed `unroll full` / `unroll partial(2)` directives and their
   shadow transformed AST (paper Listings 5/6),
3. the `OMPCanonicalLoop` node of the OpenMPIRBuilder path (Listing 7),
4. the emitted IR (including the Fig. 7 loop skeleton), and
5. actual execution on the simulated OpenMP runtime.
"""

from repro import compile_source, run_source

PROGRAM = r"""
void note(int i, int tid);

int main(void) {
  int N = 12;
  int out[12];

  #pragma omp parallel for schedule(static) num_threads(4)
  #pragma omp unroll partial(2)
  for (int i = 0; i < N; i += 1)
    out[i] = omp_get_thread_num();

  for (int i = 0; i < N; i += 1)
    printf("iteration %2d ran on thread %d\n", i, out[i]);
  return 0;
}
"""

LISTING3 = r"""
void body(int i);
void f(void) {
  #pragma omp parallel for schedule(static)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
"""

LISTING5 = r"""
void body(int i);
void f(void) {
  #pragma omp unroll full
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
"""


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("1. clang-style -ast-dump of 'parallel for' (paper Listing 3)")
    result = compile_source(LISTING3, syntax_only=True)
    print(result.ast_dump(function="f"))

    banner("2. composed unroll directives (paper Listing 5)")
    result = compile_source(LISTING5, syntax_only=True)
    print(result.ast_dump(function="f"))

    banner("   ... and the hidden shadow transformed AST (Listing 6)")
    directive = result.function("f").body.statements[0]
    inner = directive.associated_stmt
    from repro.astlib.dump import dump_ast

    print(dump_ast(inner.get_transformed_stmt()))

    banner("3. the OMPCanonicalLoop representation (paper Listing 7)")
    result = compile_source(
        LISTING5.replace("unroll full\n  #pragma omp ", ""),
        syntax_only=True,
        enable_irbuilder=True,
    )
    print(result.ast_dump(function="f"))

    banner("4. emitted IR, OpenMPIRBuilder path (Fig. 7 skeleton inside)")
    result = compile_source(PROGRAM, enable_irbuilder=True)
    text = result.ir_text()
    # Show just the outlined worksharing function.
    start = text.index("define void @main.omp_outlined")
    end = text.index("\n}", start) + 2
    print(text[start:end])

    banner("5. execution on the simulated OpenMP runtime (4 threads)")
    for label, irb in (("shadow AST", False), ("OpenMPIRBuilder", True)):
        outcome = run_source(
            PROGRAM, num_threads=4, enable_irbuilder=irb
        )
        print(f"--- {label} path ---")
        print(outcome.stdout, end="")
    print()
    print("Both representations produce identical schedules — the")
    print("paper's semantic-equivalence claim, checked by execution.")


if __name__ == "__main__":
    main()
