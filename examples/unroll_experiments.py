#!/usr/bin/env python3
"""Unroll-factor experiments across the full stack.

Sweeps ``#pragma omp unroll partial(F)`` over a dot-product kernel and
reports, per factor and per representation (shadow AST vs
OpenMPIRBuilder), the dynamic instruction count after the mid-end
LoopUnroll pass ran — i.e. the actual effect of the metadata the
front-end emitted.  Also demonstrates heuristic mode and full unrolling.

    python examples/unroll_experiments.py
"""

from repro import run_source

KERNEL = r"""
int main(void) {
  double x[256];
  double y[256];
  for (int k = 0; k < 256; k += 1) {
    x[k] = (double)(k %% 9);
    y[k] = (double)(k %% 5);
  }
  double dot = 0.0;
  %(pragma)s
  for (int i = 0; i < 250; i += 1)
    dot += x[i] * y[i];
  printf("%%g\n", dot);
  return 0;
}
"""


def measure(pragma: str, irbuilder: bool, optimize: bool = True):
    src = KERNEL % {"pragma": pragma}
    return run_source(
        src, enable_irbuilder=irbuilder, optimize=optimize
    )


def main() -> None:
    print("dot-product, 250 iterations; dynamic instruction count after")
    print("the mid-end LoopUnroll pass consumed the unroll metadata")
    print()
    header = (
        f"{'directive':>28} | {'shadow AST':>12} | {'IRBuilder':>12} |"
        f" result"
    )
    print(header)
    print("-" * len(header))

    expected = None
    rows = [
        ("(none)", ""),
        ("unroll partial(2)", "#pragma omp unroll partial(2)"),
        ("unroll partial(4)", "#pragma omp unroll partial(4)"),
        ("unroll partial(8)", "#pragma omp unroll partial(8)"),
        ("unroll  (heuristic)", "#pragma omp unroll"),
    ]
    for label, pragma in rows:
        legacy = measure(pragma, irbuilder=False)
        irb = measure(pragma, irbuilder=True)
        value = legacy.stdout.strip()
        if expected is None:
            expected = value
        assert legacy.stdout == irb.stdout, "representations disagree"
        marker = "" if value == expected else " <-- WRONG"
        print(
            f"{label:>28} | {legacy.instruction_count:>12} |"
            f" {irb.instruction_count:>12} | {value}{marker}"
        )

    print()
    print("Full unroll of a constant-trip loop (no loop remains at all):")
    full = r"""
int main(void) {
  int factorial = 1;
  #pragma omp unroll full
  for (int i = 1; i <= 10; i += 1)
    factorial *= i;
  printf("10! = %d\n", factorial);
  return 0;
}
"""
    for opt in (False, True):
        outcome = run_source(full, optimize=opt)
        stage = "after mid-end" if opt else "front-end only"
        print(
            f"  {stage:>15}: {outcome.stdout.strip()}  "
            f"({outcome.instruction_count} instructions)"
        )
    print()
    print("Front-end emits only llvm.loop.unroll metadata; the drop in")
    print("instruction count appears once the mid-end pass duplicates —")
    print("'No duplication takes place until that point' (paper sec. 2).")


if __name__ == "__main__":
    main()
