# Convenience entry points; everything runs on the stock python
# toolchain (PYTHONPATH=src), no build step required.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test conformance fuzz fuzz-smoke fault-sweep check-all

# Tier-1: the unit/integration/property pytest suite.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# lit/FileCheck conformance suite (tests/conformance/**).
conformance:
	$(PYTHON) tools/lit_runner.py tests/conformance

# Metamorphic differential fuzzer, fixed seeds for reproducibility.
# Override: make fuzz FUZZ_COUNT=500 FUZZ_SEED=100
FUZZ_COUNT ?= 200
FUZZ_SEED ?= 1
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.testing.fuzz \
	    --count $(FUZZ_COUNT) --seed $(FUZZ_SEED) \
	    --reproducer-dir fuzz-reproducers

fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.testing.fuzz \
	    --count 50 --seed 1 --reproducer-dir fuzz-reproducers

# Fault-injection sweep: every registered ICE site must be contained.
fault-sweep:
	$(PYTHON) tools/fault_sweep.py

# Everything CI runs, in one shot.
check-all: test conformance fuzz-smoke fault-sweep
