# Convenience entry points; everything runs on the stock python
# toolchain (PYTHONPATH=src), no build step required.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test conformance fuzz fuzz-smoke fuzz-cache fuzz-exec \
	cache-bench exec-bench fault-sweep service-chaos storage-chaos \
	net-chaos service-bench check-all

# Tier-1: the unit/integration/property pytest suite.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# lit/FileCheck conformance suite (tests/conformance/**).
conformance:
	$(PYTHON) tools/lit_runner.py tests/conformance

# Metamorphic differential fuzzer, fixed seeds for reproducibility.
# Override: make fuzz FUZZ_COUNT=500 FUZZ_SEED=100
FUZZ_COUNT ?= 200
FUZZ_SEED ?= 1
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.testing.fuzz \
	    --count $(FUZZ_COUNT) --seed $(FUZZ_SEED) \
	    --reproducer-dir fuzz-reproducers

fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.testing.fuzz \
	    --count 50 --seed 1 --reproducer-dir fuzz-reproducers

# Cache-oracle fuzzing: cached compiles (cold/warm/stage-resumed) must
# be byte-identical to the uncached pipeline on every seed.
fuzz-cache:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.testing.fuzz --cache \
	    --count $(FUZZ_COUNT) --seed $(FUZZ_SEED) \
	    --reproducer-dir fuzz-reproducers

# Engine-differential fuzzing: every seed races -fexec=closures
# against the reference interpreter (the sixth oracle); any divergence
# in stdout, exit code or execution profile is a finding.
fuzz-exec:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.testing.fuzz --exec \
	    --count $(FUZZ_COUNT) --seed $(FUZZ_SEED) \
	    --reproducer-dir fuzz-reproducers

# Cold-vs-warm latency benchmark -> BENCH_cache.json.
cache-bench:
	$(PYTHON) tools/cache_bench.py --min-speedup 10

# Interpreter-vs-closures engine benchmark -> BENCH_exec.json.
exec-bench:
	$(PYTHON) tools/exec_bench.py --min-speedup 5

# Fault-injection sweep: every registered ICE site must be contained.
fault-sweep:
	$(PYTHON) tools/fault_sweep.py

# Compile-service chaos batch: worker kills, hangs and poison inputs;
# the harness asserts zero lost requests and full stats accounting.
# Override: make service-chaos CHAOS_COUNT=200
CHAOS_COUNT ?= 50
service-chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.service.chaos \
	    --count $(CHAOS_COUNT) --kill-every 10 --hang-every 25 \
	    --poison 2 --workers 2 --deadline 5 \
	    --quarantine-dir service-quarantine

# Storage chaos: concurrent compiles against a fault-armed shared disk
# cache with a mid-campaign service restart; asserts zero corrupt
# payloads served, durable quarantine, exact metrics accounting.
# Work dirs live under /tmp so nothing lands at the repo root.
STORAGE_CHAOS_DIR ?= /tmp/miniclang-storage-chaos
storage-chaos:
	rm -rf $(STORAGE_CHAOS_DIR)
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.service.chaos \
	    --storage --count $(CHAOS_COUNT) --poison 2 --workers 2 \
	    --deadline 5 --durable \
	    --cache-dir $(STORAGE_CHAOS_DIR)/cache \
	    --state-dir $(STORAGE_CHAOS_DIR)/state \
	    --quarantine-dir $(STORAGE_CHAOS_DIR)/quarantine

# Network chaos: the sharded TCP front door under hostile clients —
# disconnects mid-request, garbage bytes, truncated/half-written and
# oversized frames, slow loris, shard-worker kills — plus a real
# miniclang-serve subprocess draining cleanly on SIGTERM.  Asserts
# zero lost and zero double-answered requests and exact accounting
# (requests admitted == terminal responses on the merged shard
# ledgers).
net-chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.service.chaos \
	    --net --count $(CHAOS_COUNT) --shards 2 --clients 4 \
	    --workers 2 --deadline 5 --kill-every 10

# Service load-test harness: replays workload mixes (steady, cached,
# faulted, overload) and records what the telemetry stack reports ->
# BENCH_service.json; --transport both also measures the steady and
# cached mixes through the in-process shard router vs over TCP and
# gates the TCP steady p50 at 2x in-process.
# Override: make service-bench BENCH_ARGS=--smoke
BENCH_ARGS ?=
service-bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) tools/service_bench.py \
	    $(BENCH_ARGS)

# Everything CI runs, in one shot.
check-all: test conformance fuzz-smoke fuzz-exec fault-sweep \
	service-chaos storage-chaos net-chaos cache-bench exec-bench \
	service-bench
