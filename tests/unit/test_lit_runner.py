"""Unit tests for tools/lit_runner.py: RUN-line parsing, lit
substitutions, pipeline stage parsing, and end-to-end execution of
tiny synthetic tests."""

from __future__ import annotations

import os
import sys
import tempfile

import pytest

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        "tools",
    ),
)

from lit_runner import (  # noqa: E402
    RunLineError,
    TestCase,
    _parse_stage,
    discover,
    parse_test,
    run_test,
    substitute,
)


def _write(tmpdir: str, name: str, text: str) -> str:
    path = os.path.join(tmpdir, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path


class TestParseTest:
    def test_collects_run_lines(self, tmp_path):
        path = _write(
            str(tmp_path),
            "t.c",
            "// RUN: true\n// RUN: not false\nint x;\n",
        )
        case = parse_test(path, "t.c")
        assert case.run_lines == ["true", "not false"]
        assert not case.xfail and not case.unsupported

    def test_backslash_continuation_joins_lines(self, tmp_path):
        path = _write(
            str(tmp_path),
            "t.c",
            "// RUN: true \\\n// RUN:   --flag value\n",
        )
        case = parse_test(path, "t.c")
        # interior spacing is preserved; shlex collapses it later
        assert len(case.run_lines) == 1
        assert case.run_lines[0].split() == ["true", "--flag", "value"]

    def test_dangling_continuation_is_an_error(self, tmp_path):
        path = _write(str(tmp_path), "t.c", "// RUN: true \\\n")
        with pytest.raises(RunLineError):
            parse_test(path, "t.c")

    def test_xfail_and_unsupported_markers(self, tmp_path):
        path = _write(
            str(tmp_path), "t.c", "// XFAIL: *\n// RUN: false\n"
        )
        assert parse_test(path, "t.c").xfail
        path = _write(
            str(tmp_path), "u.c", "// UNSUPPORTED: *\n// RUN: true\n"
        )
        assert parse_test(path, "u.c").unsupported

    def test_hash_comment_run_lines(self, tmp_path):
        path = _write(str(tmp_path), "t.test", "# RUN: true\n")
        assert parse_test(path, "t.test").run_lines == ["true"]


class TestSubstitute:
    def _case(self) -> TestCase:
        return TestCase(path="/abs/dir/test.c", name="test.c")

    def test_file_and_dir(self):
        out = substitute("tool %s -I %S", self._case(), "/tmp/x")
        assert out == "tool /abs/dir/test.c -I /abs/dir"

    def test_temp_paths(self):
        out = substitute("%t %T", self._case(), "/tmp/x")
        assert out == "/tmp/x/test.tmp /tmp/x"

    def test_percent_python(self):
        assert (
            substitute("%python -c pass", self._case(), "/tmp/x")
            == f"{sys.executable} -c pass"
        )

    def test_literal_percent(self):
        assert substitute("%%s", self._case(), "/tmp/x") == "%s"


class TestParseStage:
    def test_plain(self):
        stage = _parse_stage(["tool", "a", "b"])
        assert stage.argv == ["tool", "a", "b"]
        assert not stage.invert and not stage.merge_stderr

    def test_not_inverts(self):
        assert _parse_stage(["not", "tool"]).invert
        # double negation
        assert not _parse_stage(["not", "not", "tool"]).invert

    def test_stderr_merge_and_redirects(self):
        stage = _parse_stage(["tool", "2>&1", ">", "out.txt"])
        assert stage.merge_stderr
        assert stage.stdout_to == "out.txt"
        stage = _parse_stage(["tool", "2>", "err.txt"])
        assert stage.stderr_to == "err.txt"

    def test_empty_stage_is_an_error(self):
        with pytest.raises(RunLineError):
            _parse_stage([])


class TestRunTest:
    def _run(self, text: str, name: str = "t.c"):
        with tempfile.TemporaryDirectory() as tmpdir:
            path = _write(tmpdir, name, text)
            case = parse_test(path, name)
            return run_test(case, timeout=60.0)

    def test_pass(self):
        assert self._run("// RUN: true\n").code == "PASS"

    def test_fail(self):
        result = self._run("// RUN: false\n")
        assert result.code == "FAIL"
        assert "exited 1" in result.detail

    def test_not_false_passes(self):
        assert self._run("// RUN: not false\n").code == "PASS"

    def test_xfail_of_failing_test(self):
        assert (
            self._run("// XFAIL: *\n// RUN: false\n").code == "XFAIL"
        )

    def test_xpass_of_passing_test(self):
        assert (
            self._run("// XFAIL: *\n// RUN: true\n").code == "XPASS"
        )

    def test_unsupported_skips(self):
        assert (
            self._run("// UNSUPPORTED: *\n// RUN: false\n").code
            == "SKIP"
        )

    def test_no_run_lines_is_an_error(self):
        assert self._run("int x;\n").code == "ERROR"

    def test_unknown_tool_is_an_error(self):
        assert self._run("// RUN: frobnicate %s\n").code == "ERROR"

    def test_pipe_through_filecheck(self):
        result = self._run(
            "// RUN: %python -c 'print(\"hello world\")' | FileCheck %s\n"
            "// CHECK: hello world\n"
        )
        assert result.code == "PASS", result.detail

    def test_filecheck_mismatch_fails(self):
        result = self._run(
            "// RUN: %python -c 'print(\"goodbye\")' | FileCheck %s\n"
            "// CHECK: hello\n"
        )
        assert result.code == "FAIL"
        assert "expected string not found" in result.detail


class TestDiscover:
    def test_walks_directories_sorted(self, tmp_path):
        _write(str(tmp_path), "b.c", "// RUN: true\n")
        _write(str(tmp_path), "a.c", "// RUN: true\n")
        _write(str(tmp_path), "notes.txt", "not a test\n")
        cases = discover([str(tmp_path)])
        assert [c.name for c in cases] == ["a.c", "b.c"]

    def test_single_file(self, tmp_path):
        path = _write(str(tmp_path), "only.c", "// RUN: true\n")
        cases = discover([path])
        assert [c.name for c in cases] == ["only.c"]
