"""Unit tests: the recursive-descent parser (declarations, statements,
expressions, precedence)."""

import pytest

from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.astlib.decls import FunctionDecl, TypedefDecl, VarDecl
from repro.astlib.printer import print_ast
from repro.pipeline import CompilationError, compile_source

from tests.conftest import compile_c


def parse(source: str, **kw):
    return compile_c(source, syntax_only=True, **kw)


def first_function_body(source: str, name: str = "f"):
    result = parse(source)
    return result.function(name).body


def expr_of(source_expr: str) -> e.Expr:
    """Parse `int f() { return <expr>; }` and return the expr."""
    body = first_function_body(
        f"int a, b, c; int f(void) {{ return {source_expr}; }}"
    )
    ret = body.statements[0]
    assert isinstance(ret, s.ReturnStmt)
    return ret.value


class TestDeclarations:
    def test_global_variable(self):
        result = parse("int x = 5;")
        decl = result.translation_unit.lookup("x")
        assert isinstance(decl, VarDecl)
        assert decl.is_global

    def test_multiple_declarators(self):
        result = parse("int a = 1, b = 2;")
        assert result.translation_unit.lookup("a") is not None
        assert result.translation_unit.lookup("b") is not None

    def test_pointer_declarator(self):
        result = parse("int *p;")
        decl = result.translation_unit.lookup("p")
        assert decl.type.spelling() == "int *"

    def test_array_declarator(self):
        result = parse("double grid[3][4];")
        decl = result.translation_unit.lookup("grid")
        assert decl.type.spelling() == "double[4][3]" or "[3]" in decl.type.spelling()

    def test_typedef(self):
        result = parse("typedef unsigned long word; word w;")
        w = result.translation_unit.lookup("w")
        assert w.type.spelling() == "word"

    def test_builtin_typedefs_available(self):
        parse("size_t n; ptrdiff_t d; int32_t i; uint64_t u;")

    def test_function_declaration(self):
        result = parse("int add(int a, int b);")
        fn = result.translation_unit.lookup("add")
        assert isinstance(fn, FunctionDecl)
        assert not fn.is_definition
        assert len(fn.params) == 2

    def test_function_definition(self):
        result = parse("int id(int x) { return x; }")
        fn = result.function("id")
        assert fn.is_definition

    def test_void_param_list(self):
        result = parse("int f(void);")
        fn = result.translation_unit.lookup("f")
        assert len(fn.params) == 0

    def test_variadic_function(self):
        from repro.astlib.types import FunctionType, desugar

        result = parse("int log_it(const char *fmt, ...);")
        fn = result.translation_unit.lookup("log_it")
        fnty = desugar(fn.type).type
        assert isinstance(fnty, FunctionType) and fnty.is_variadic

    def test_struct_definition_and_member(self):
        src = """
        struct pair { int first; int second; };
        int f(struct pair p) { return p.first + p.second; }
        """
        body = first_function_body(src)
        assert body is not None

    def test_enum(self):
        src = "enum color { RED, GREEN = 5, BLUE }; int f(void) { return BLUE; }"
        body = first_function_body(src)
        ret = body.statements[0]
        # Enum constants fold to integer literals at reference time.
        assert isinstance(ret.value.ignore_implicit_casts(), e.IntegerLiteral)
        assert ret.value.ignore_implicit_casts().value == 6

    def test_array_param_decays(self):
        result = parse("int f(int data[10]);")
        fn = result.translation_unit.lookup("f")
        assert fn.params[0].type.spelling() == "int *"

    def test_redefinition_error(self):
        with pytest.raises(CompilationError) as err:
            parse("int f(void) { int x; int x; }")
        assert "redefinition of 'x'" in str(err.value)

    def test_undeclared_identifier_error(self):
        with pytest.raises(CompilationError) as err:
            parse("int f(void) { return mystery; }")
        assert "use of undeclared identifier 'mystery'" in str(err.value)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = expr_of("a + b * c")
        root = expr.ignore_implicit_casts()
        assert isinstance(root, e.BinaryOperator)
        assert root.opcode == e.BinaryOperatorKind.ADD
        rhs = root.rhs.ignore_implicit_casts()
        assert isinstance(rhs, e.BinaryOperator)
        assert rhs.opcode == e.BinaryOperatorKind.MUL

    def test_parens_preserved_in_ast(self):
        expr = expr_of("(a + b) * c")
        root = expr.ignore_implicit_casts()
        assert root.opcode == e.BinaryOperatorKind.MUL
        lhs = root.lhs
        # The ParenExpr survives as a syntactic node (paper §1.2).
        found_paren = False
        node = lhs
        while isinstance(node, (e.ImplicitCastExpr, e.ParenExpr)):
            if isinstance(node, e.ParenExpr):
                found_paren = True
            node = node.sub_expr
        assert found_paren

    def test_assignment_right_associative(self):
        body = first_function_body(
            "int f(void) { int a; int b; a = b = 3; return a; }"
        )
        assign = body.statements[2]
        assert isinstance(assign, e.BinaryOperator)
        assert assign.opcode == e.BinaryOperatorKind.ASSIGN
        inner = assign.rhs.ignore_implicit_casts()
        assert isinstance(inner, e.BinaryOperator)
        assert inner.opcode == e.BinaryOperatorKind.ASSIGN

    def test_conditional_operator(self):
        expr = expr_of("a ? b : c")
        assert isinstance(
            expr.ignore_implicit_casts(), e.ConditionalOperator
        )

    def test_comparison_produces_int(self):
        expr = expr_of("a < b")
        assert expr.type.spelling() == "int"

    def test_logical_operators(self):
        expr = expr_of("a && b || c")
        root = expr.ignore_implicit_casts()
        assert root.opcode == e.BinaryOperatorKind.LOR

    def test_unary_operators(self):
        for text, kind in [
            ("-a", e.UnaryOperatorKind.MINUS),
            ("~a", e.UnaryOperatorKind.NOT),
            ("!a", e.UnaryOperatorKind.LNOT),
        ]:
            expr = expr_of(text)
            node = expr.ignore_implicit_casts()
            assert isinstance(node, e.UnaryOperator)
            assert node.opcode == kind

    def test_sizeof_type_and_expr(self):
        assert expr_of("sizeof(int)").ignore_implicit_casts().trait == "sizeof"
        assert expr_of("sizeof a") is not None

    def test_cast_expression(self):
        expr = expr_of("(long)a")
        node = expr.ignore_implicit_casts()
        assert isinstance(node, e.CStyleCastExpr)
        assert node.type.spelling() == "long"

    def test_call_with_args(self):
        body = first_function_body(
            "int g(int, int); int f(void) { return g(1, 2); }"
        )
        call = body.statements[0].value.ignore_implicit_casts()
        assert isinstance(call, e.CallExpr)
        assert len(call.args) == 2

    def test_postfix_chain(self):
        src = """
        struct S { int arr[4]; };
        int f(struct S *s) { return s->arr[2]; }
        """
        body = first_function_body(src)
        value = body.statements[0].value.ignore_implicit_casts()
        assert isinstance(value, e.ArraySubscriptExpr)

    def test_comma_operator(self):
        expr = expr_of("(a, b)")
        inner = expr.ignore_implicit_casts()
        assert isinstance(inner, e.BinaryOperator)
        assert inner.opcode == e.BinaryOperatorKind.COMMA

    def test_char_literal_value(self):
        expr = expr_of("'A'")
        assert expr.ignore_implicit_casts().value == 65

    def test_hex_literal(self):
        expr = expr_of("0xFF")
        assert expr.ignore_implicit_casts().value == 255

    def test_float_literal_type(self):
        body = first_function_body(
            "double f(void) { return 2.5; }"
        )
        value = body.statements[0].value
        assert value.ignore_implicit_casts().type.spelling() == "double"


class TestStatements:
    def test_if_else(self):
        body = first_function_body(
            "int f(int x) { if (x) return 1; else return 2; }",
        )
        stmt = body.statements[0]
        assert isinstance(stmt, s.IfStmt)
        assert stmt.else_stmt is not None

    def test_while(self):
        body = first_function_body(
            "void f(int x) { while (x) x -= 1; }"
        )
        assert isinstance(body.statements[0], s.WhileStmt)

    def test_do_while(self):
        body = first_function_body(
            "void f(int x) { do x -= 1; while (x); }"
        )
        assert isinstance(body.statements[0], s.DoStmt)

    def test_for_all_parts(self):
        body = first_function_body(
            "void f(void) { for (int i = 0; i < 4; i += 1) ; }"
        )
        loop = body.statements[0]
        assert isinstance(loop, s.ForStmt)
        assert loop.init is not None
        assert loop.cond is not None
        assert loop.inc is not None

    def test_for_empty_parts(self):
        body = first_function_body("void f(void) { for (;;) break; }")
        loop = body.statements[0]
        assert loop.init is None and loop.cond is None and loop.inc is None

    def test_break_outside_loop_error(self):
        with pytest.raises(CompilationError) as err:
            parse("void f(void) { break; }")
        assert "'break'" in str(err.value)

    def test_continue_outside_loop_error(self):
        with pytest.raises(CompilationError):
            parse("void f(void) { continue; }")

    def test_switch(self):
        src = """
        int f(int x) {
          switch (x) {
            case 1: return 10;
            case 2: return 20;
            default: return 0;
          }
        }
        """
        body = first_function_body(src)
        assert isinstance(body.statements[0], s.SwitchStmt)

    def test_range_for_parses_to_cxxforrange(self):
        src = "void f(void) { int data[4]; for (int x : data) ; }"
        body = first_function_body(src)
        loop = body.statements[1]
        assert isinstance(loop, s.CXXForRangeStmt)

    def test_range_for_reference_variable(self):
        src = "void f(void) { int data[4]; for (int &x : data) ; }"
        body = first_function_body(src)
        loop = body.statements[1]
        assert loop.loop_variable.type.spelling() == "int &"

    def test_nested_scopes_shadowing(self):
        src = "int f(void) { int x = 1; { int x = 2; } return x; }"
        parse(src)  # no redefinition error

    def test_return_type_mismatch_converts(self):
        src = "double f(void) { return 1; }"
        body = first_function_body(src)
        value = body.statements[0].value
        assert value.type.spelling() == "double"

    def test_void_return_with_value_errors(self):
        with pytest.raises(CompilationError):
            parse("void f(void) { return 1; }")


class TestPrinterRoundTrip:
    """The pretty-printer output re-parses to an equivalent AST."""

    @pytest.mark.parametrize(
        "src",
        [
            "int f(int x) { return x * 2 + 1; }",
            "int f(int x) { if (x > 0) return 1; else return -1; }",
            "int f(void) { int s = 0; for (int i = 0; i < 9; i += 2) s += i; return s; }",
            "int f(int x) { while (x > 10) x /= 2; return x; }",
        ],
    )
    def test_roundtrip(self, src):
        result = parse(src)
        printed = print_ast(result.function("f"))
        reparsed = parse(printed)
        assert reparsed.function("f").is_definition
