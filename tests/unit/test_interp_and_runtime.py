"""Unit tests: interpreter semantics + the simulated OpenMP runtime."""

import pytest

from repro.interp import Interpreter, Trap
from repro.interp.memory import Memory
from repro.ir import (
    ArrayType,
    FunctionType,
    IRBuilder,
    Module,
    double_t,
    i8,
    i16,
    i32,
    i64,
    ptr,
    void_t,
)
from repro.ir.instructions import BinOp, CastOp, ICmpPred
from repro.runtime.schedule import (
    DispatchState,
    ScheduleKindRT,
    static_partition,
)


class TestMemory:
    def test_int_roundtrip(self):
        mem = Memory()
        addr = mem.allocate(8)
        for ty, value in [(i8, 200), (i16, 40000), (i32, 2**31), (i64, 2**63)]:
            mem.store(ty, addr, value)
            assert mem.load(ty, addr) == ty.wrap(value)

    def test_float_roundtrip(self):
        mem = Memory()
        addr = mem.allocate(8)
        mem.store(double_t, addr, 3.25)
        assert mem.load(double_t, addr) == 3.25

    def test_pointer_roundtrip(self):
        mem = Memory()
        addr = mem.allocate(8)
        mem.store(ptr, addr, 0xDEAD)
        assert mem.load(ptr, addr) == 0xDEAD

    def test_null_access_traps(self):
        mem = Memory()
        with pytest.raises(Exception):
            mem.load(i32, 0)

    def test_alignment(self):
        mem = Memory()
        mem.allocate(1)
        addr = mem.allocate(8, align=8)
        assert addr % 8 == 0

    def test_cstring(self):
        mem = Memory()
        addr = mem.allocate(16)
        mem.write_bytes(addr, b"hi\x00junk")
        assert mem.read_cstring(addr) == "hi"

    def test_grows_on_demand(self):
        mem = Memory(size=64)
        addr = mem.allocate(1024)
        mem.store(i64, addr + 1000, 7)
        assert mem.load(i64, addr + 1000) == 7

    def test_function_addresses(self):
        mem = Memory()
        mod = Module("m")
        fn = mod.add_function("g", FunctionType(void_t, []))
        addr = mem.address_of_function(fn)
        assert mem.function_at(addr) is fn
        assert mem.address_of_function(fn) == addr  # stable


def build_and_run(build, args=None, fn_type=None, fuel=None):
    mod = Module("t")
    fn = mod.add_function("main", fn_type or FunctionType(i32, []))
    entry = fn.append_block("entry")
    b = IRBuilder(mod)
    b.folding_enabled = False  # exercise the interpreter, not the folder
    b.set_insert_point(entry)
    build(mod, fn, b)
    interp = Interpreter(mod)
    return interp.run("main", args or [], fuel=fuel), interp


class TestInterpreterArithmetic:
    def test_signed_division_truncates(self):
        def build(mod, fn, b):
            out = b.binop(
                BinOp.SDIV, b.const_int(i32, -7), b.const_int(i32, 2)
            )
            b.ret(out)

        result, _ = build_and_run(build)
        assert i32.to_signed(result) == -3

    def test_srem_sign_follows_dividend(self):
        def build(mod, fn, b):
            out = b.binop(
                BinOp.SREM, b.const_int(i32, -7), b.const_int(i32, 2)
            )
            b.ret(out)

        result, _ = build_and_run(build)
        assert i32.to_signed(result) == -1

    def test_unsigned_wraparound(self):
        def build(mod, fn, b):
            out = b.binop(
                BinOp.ADD,
                b.const_int(i32, 0xFFFFFFFF),
                b.const_int(i32, 2),
            )
            b.ret(out)

        result, _ = build_and_run(build)
        assert result == 1

    def test_ashr_vs_lshr(self):
        def build_a(mod, fn, b):
            b.ret(
                b.binop(
                    BinOp.ASHR, b.const_int(i32, -8), b.const_int(i32, 1)
                )
            )

        result, _ = build_and_run(build_a)
        assert i32.to_signed(result) == -4

    def test_division_by_zero_traps(self):
        def build(mod, fn, b):
            b.ret(
                b.binop(
                    BinOp.UDIV, b.const_int(i32, 1), b.const_int(i32, 0)
                )
            )

        with pytest.raises(Trap):
            build_and_run(build)

    def test_trunc_sext_zext(self):
        def build(mod, fn, b):
            wide = b.cast(CastOp.SEXT, b.const_int(i8, -1), i64)
            narrowed = b.cast(CastOp.TRUNC, wide, i32)
            b.ret(narrowed)

        result, _ = build_and_run(build)
        assert i32.to_signed(result) == -1


class TestInterpreterControlFlow:
    def test_phi_loop_sum(self):
        def build(mod, fn, b):
            header = fn.append_block("header")
            body = fn.append_block("body")
            done = fn.append_block("done")
            b.br(header)
            b.set_insert_point(header)
            iv = b.phi(i32, "iv")
            acc = b.phi(i32, "acc")
            cmp = b.icmp(ICmpPred.SLT, iv, b.const_int(i32, 10))
            b.cond_br(cmp, body, done)
            b.set_insert_point(body)
            nacc = b.add(acc, iv)
            niv = b.add(iv, b.const_int(i32, 1))
            b.br(header)
            iv.add_incoming(b.const_int(i32, 0), fn.entry_block)
            iv.add_incoming(niv, body)
            acc.add_incoming(b.const_int(i32, 0), fn.entry_block)
            acc.add_incoming(nacc, body)
            b.set_insert_point(done)
            b.ret(acc)

        result, _ = build_and_run(build)
        assert result == 45

    def test_swapping_phis_parallel_copy(self):
        """Two phis that swap each other must read pre-jump values."""

        def build(mod, fn, b):
            header = fn.append_block("header")
            body = fn.append_block("body")
            done = fn.append_block("done")
            b.br(header)
            b.set_insert_point(header)
            a = b.phi(i32, "a")
            c = b.phi(i32, "c")
            count = b.phi(i32, "n")
            cmp = b.icmp(ICmpPred.SLT, count, b.const_int(i32, 3))
            b.cond_br(cmp, body, done)
            b.set_insert_point(body)
            ncount = b.add(count, b.const_int(i32, 1))
            b.br(header)
            a.add_incoming(b.const_int(i32, 1), fn.entry_block)
            a.add_incoming(c, body)  # swap
            c.add_incoming(b.const_int(i32, 2), fn.entry_block)
            c.add_incoming(a, body)  # swap
            count.add_incoming(b.const_int(i32, 0), fn.entry_block)
            count.add_incoming(ncount, body)
            b.set_insert_point(done)
            b.ret(a)

        result, _ = build_and_run(build)
        # after 3 swaps: a,c = 2,1 -> 1,2 -> 2,1 => a == 2
        assert result == 2

    def test_fuel_exhaustion(self):
        def build(mod, fn, b):
            loop = fn.append_block("loop")
            b.br(loop)
            b.set_insert_point(loop)
            b.br(loop)

        from repro.interp import InterpreterError

        with pytest.raises(InterpreterError, match="fuel"):
            build_and_run(build, fuel=1000)

    def test_unreachable_traps(self):
        def build(mod, fn, b):
            b.unreachable()

        with pytest.raises(Trap):
            build_and_run(build)

    def test_switch(self):
        def build(mod, fn, b):
            c1 = fn.append_block("c1")
            c2 = fn.append_block("c2")
            dflt = fn.append_block("dflt")
            sw = b.switch(fn.args[0], dflt)
            sw.add_case(1, c1)
            sw.add_case(2, c2)
            for block, value in ((c1, 10), (c2, 20), (dflt, 0)):
                b.set_insert_point(block)
                b.ret(b.const_int(i32, value))

        result, _ = build_and_run(
            lambda m, f, b: build(m, f, b),
            args=[2],
            fn_type=FunctionType(i32, [i32]),
        )
        assert result == 20


class TestNativeLibc:
    def test_printf(self):
        from repro.pipeline import run_source

        r = run_source(
            'int main(void) { printf("%d|%s|%c|%5.2f\\n", -3, "ok", 65, 1.5); return 0; }',
            openmp=False,
        )
        assert r.stdout == "-3|ok|A| 1.50\n"

    def test_malloc_memset(self):
        from repro.pipeline import run_source

        src = r"""
        int main(void) {
          int *p = malloc(4 * sizeof(int));
          memset(p, 0, 4 * sizeof(int));
          p[2] = 9;
          printf("%d %d\n", p[0], p[2]);
          free(p);
          return 0;
        }
        """
        assert run_source(src, openmp=False).stdout == "0 9\n"

    def test_abort_traps(self):
        from repro.pipeline import run_source

        with pytest.raises(Trap):
            run_source("int main(void) { abort(); return 0; }", openmp=False)


class TestStaticPartition:
    def test_even_split(self):
        slices = [static_partition(0, 15, 4, t) for t in range(4)]
        assert slices == [
            (0, 3, False),
            (4, 7, False),
            (8, 11, False),
            (12, 15, True),
        ]

    def test_uneven_split_extra_to_first(self):
        slices = [static_partition(0, 9, 4, t) for t in range(4)]
        sizes = [ub - lb + 1 for lb, ub, _ in slices]
        assert sizes == [3, 3, 2, 2]
        assert slices[3][2] is True  # last thread has last iteration

    def test_more_threads_than_iterations(self):
        slices = [static_partition(0, 1, 4, t) for t in range(4)]
        nonempty = [s for s in slices if s[0] <= s[1]]
        assert len(nonempty) == 2
        empty = [s for s in slices if s[0] > s[1]]
        assert len(empty) == 2

    def test_zero_trip(self):
        lb, ub, last = static_partition(0, -1, 4, 0)
        assert lb > ub and not last

    def test_covers_space_exactly(self):
        for trip in (1, 7, 16, 33):
            covered = []
            for t in range(4):
                lb, ub, _ = static_partition(0, trip - 1, 4, t)
                covered.extend(range(lb, ub + 1))
            assert sorted(covered) == list(range(trip))


class TestDispatchState:
    def make(self, kind, trip, chunk, threads=4):
        return DispatchState(
            kind=kind,
            lower=0,
            upper=trip - 1,
            stride=1,
            chunk=chunk,
            num_threads=threads,
        )

    def test_dynamic_chunks_cover_space(self):
        state = self.make(ScheduleKindRT.DYNAMIC_CHUNKED, 10, 3)
        seen = []
        while True:
            nxt = state.next_chunk(0)
            if nxt is None:
                break
            lb, ub, _ = nxt
            seen.extend(range(lb, ub + 1))
        assert seen == list(range(10))

    def test_dynamic_last_flag(self):
        state = self.make(ScheduleKindRT.DYNAMIC_CHUNKED, 6, 4)
        first = state.next_chunk(0)
        second = state.next_chunk(1)
        assert first[2] is False
        assert second[2] is True

    def test_static_chunked_round_robin(self):
        state = self.make(ScheduleKindRT.STATIC_CHUNKED, 12, 2, threads=3)
        # thread t gets chunks t, t+3, ...
        assert state.next_chunk(0) == (0, 1, False)
        assert state.next_chunk(1) == (2, 3, False)
        assert state.next_chunk(2) == (4, 5, False)
        assert state.next_chunk(0) == (6, 7, False)
        assert state.next_chunk(2) == (10, 11, True)

    def test_guided_decreasing_chunks(self):
        state = self.make(ScheduleKindRT.GUIDED_CHUNKED, 64, 1, threads=4)
        sizes = []
        while True:
            nxt = state.next_chunk(0)
            if nxt is None:
                break
            lb, ub, _ = nxt
            sizes.append(ub - lb + 1)
        assert sum(sizes) == 64
        assert sizes[0] >= sizes[-1]
        assert sizes[0] == 8  # 64 / (2*4)

    def test_guided_respects_minimum_chunk(self):
        state = self.make(ScheduleKindRT.GUIDED_CHUNKED, 100, 5)
        sizes = []
        while (nxt := state.next_chunk(0)) is not None:
            sizes.append(nxt[1] - nxt[0] + 1)
        assert all(sz >= 5 or sum(sizes) == 100 for sz in sizes)


class TestTeamExecution:
    def test_barrier_synchronizes(self):
        """Threads at a barrier wait for the whole team: phase 1 writes
        must all land before any phase 2 read."""
        from repro.pipeline import run_source

        src = r"""
        int main(void) {
          int stage1[4];
          int ok = 1;
          #pragma omp parallel num_threads(4)
          {
            int me = omp_get_thread_num();
            stage1[me] = me + 1;
            #pragma omp barrier
            int total = 0;
            for (int i = 0; i < 4; i += 1) total += stage1[i];
            if (total != 10) ok = 0;
          }
          printf("ok=%d\n", ok);
          return 0;
        }
        """
        assert run_source(src).stdout == "ok=1\n"

    def test_nested_parallel_serialized(self):
        from repro.pipeline import run_source

        src = r"""
        int main(void) {
          int counts[4];
          #pragma omp parallel num_threads(4)
          {
            int me = omp_get_thread_num();
            int inner = 0;
            #pragma omp parallel
            { inner = omp_get_num_threads(); }
            counts[me] = inner;
          }
          printf("%d %d %d %d\n", counts[0], counts[1], counts[2], counts[3]);
          return 0;
        }
        """
        assert run_source(src).stdout == "1 1 1 1\n"

    def test_critical_serializes_increments(self):
        from repro.pipeline import run_source

        src = r"""
        int main(void) {
          int counter = 0;
          #pragma omp parallel num_threads(4)
          {
            for (int i = 0; i < 50; i += 1) {
              #pragma omp critical
              { counter += 1; }
            }
          }
          printf("%d\n", counter);
          return 0;
        }
        """
        assert run_source(src).stdout == "200\n"

    def test_race_without_critical_detectable(self):
        """Sanity check that the interleaving is real: without critical,
        the same program loses updates."""
        from repro.pipeline import run_source

        src = r"""
        int main(void) {
          int counter = 0;
          #pragma omp parallel num_threads(4)
          {
            for (int i = 0; i < 50; i += 1)
              counter += 1;
          }
          printf("%d\n", counter);
          return 0;
        }
        """
        value = int(run_source(src).stdout)
        assert value < 200  # the deterministic interleave loses updates

    def test_master_only_thread_zero(self):
        from repro.pipeline import run_source

        src = r"""
        int main(void) {
          int hits = 0;
          #pragma omp parallel num_threads(4)
          {
            #pragma omp master
            { hits += 1; }
          }
          printf("%d\n", hits);
          return 0;
        }
        """
        assert run_source(src).stdout == "1\n"

    def test_single_executes_once(self):
        from repro.pipeline import run_source

        src = r"""
        int main(void) {
          int hits = 0;
          #pragma omp parallel num_threads(4)
          {
            #pragma omp single
            { hits += 1; }
          }
          printf("%d\n", hits);
          return 0;
        }
        """
        assert run_source(src).stdout == "1\n"

    def test_omp_api_outside_parallel(self):
        from repro.pipeline import run_source

        src = r"""
        int main(void) {
          printf("%d %d %d\n", omp_get_thread_num(),
                 omp_get_num_threads(), omp_in_parallel());
          return 0;
        }
        """
        assert run_source(src).stdout == "0 1 0\n"
