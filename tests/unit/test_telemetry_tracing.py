"""Unit tests for cross-process request tracing
(:mod:`repro.instrument.telemetry.tracing`) and the JSONL event log
(:mod:`repro.instrument.telemetry.events`)."""

from __future__ import annotations

import io
import json
import os

from repro.instrument.telemetry import (
    EventLog,
    RequestTrace,
    TraceRecorder,
    clock_anchor,
    clock_offset_ns,
    events_to_spans,
    new_span_id,
    new_trace_id,
    read_jsonl,
)
from repro.instrument.timetrace import TraceEvent


def _event(name, start, dur, detail=""):
    return TraceEvent(
        name=name, detail=detail, start_ns=start, duration_ns=dur
    )


class TestIds:
    def test_trace_ids_unique(self):
        assert new_trace_id() != new_trace_id()

    def test_span_ids_carry_pid_and_are_unique(self):
        a, b = new_span_id(), new_span_id()
        assert a != b
        assert a.startswith(f"{os.getpid():x}.")


class TestClockAlignment:
    def test_offset_maps_remote_onto_local_timeline(self):
        local = (1_000_000, 500)
        # remote wall clock agrees; its perf counter origin differs
        remote = (1_000_000, 9_500)
        offset = clock_offset_ns(remote, local)
        # remote perf 9_500 happened at wall 1_000_000 == local perf 500
        assert 9_500 + offset == 500

    def test_real_anchors_round_trip_near_zero(self):
        a = clock_anchor()
        b = clock_anchor()
        # two anchors in the same process: offset is just the sampling
        # skew, far under a millisecond
        assert abs(clock_offset_ns(a, b)) < 1_000_000


class TestEventsToSpans:
    def test_nesting_reconstructed_by_containment(self):
        events = [
            _event("child", 10, 20),
            _event("parent", 0, 100),
            _event("grandchild", 12, 5),
            _event("sibling", 50, 10),
        ]
        spans = events_to_spans(events, "t1", "root")
        by_name = {s.name: s for s in spans}
        assert by_name["parent"].parent_id == "root"
        assert by_name["child"].parent_id == by_name["parent"].span_id
        assert (
            by_name["grandchild"].parent_id == by_name["child"].span_id
        )
        assert by_name["sibling"].parent_id == by_name["parent"].span_id

    def test_top_level_parent_may_be_none(self):
        spans = events_to_spans([_event("a", 0, 1)], "t1", None)
        assert spans[0].parent_id is None

    def test_equal_start_longer_span_wins_parenthood(self):
        events = [_event("inner", 0, 5), _event("outer", 0, 50)]
        spans = events_to_spans(events, "t1", None)
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id


class TestRequestTrace:
    def test_worker_spans_aligned_and_clamped(self):
        trace = RequestTrace("t1", "r1")
        attempt_id = new_span_id()
        # worker timeline: anchor far from the parent's
        worker_anchor = (trace._anchor[0], trace._anchor[1] + 777)
        worker_spans = [
            {
                "trace_id": "t1",
                "span_id": "w.1",
                "parent_id": None,
                "name": "Parse",
                "detail": "",
                "start_ns": 100,
                "end_ns": 10**15,  # far past the attempt window
                "pid": 4242,
                "tid": 0,
            }
        ]
        adopted = trace.merge_worker_spans(
            worker_spans,
            worker_anchor,
            attempt_id,
            clamp_start_ns=1_000,
            clamp_end_ns=2_000,
        )
        assert adopted == 1
        span = trace.spans[-1]
        assert span.parent_id == attempt_id
        assert 1_000 <= span.start_ns <= span.end_ns <= 2_000

    def test_chrome_trace_has_pid_rows_and_span_args(self):
        trace = RequestTrace("t1", "r1")
        trace.add_span("queue-wait", 0, 50)
        trace.merge_worker_spans(
            [
                {
                    "trace_id": "t1",
                    "span_id": "w.1",
                    "parent_id": None,
                    "name": "Parse",
                    "detail": "",
                    "start_ns": 10,
                    "end_ns": 20,
                    "pid": 4242,
                    "tid": 0,
                }
            ],
            trace._anchor,
            trace.root_span_id,
            0,
            100,
        )
        trace.close("ServiceRequest", 0, 100)
        data = trace.chrome_trace()
        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in xs} == {os.getpid(), 4242}
        assert len(metas) == 2  # one process_name row per pid
        assert all("span_id" in e["args"] for e in xs)
        json.loads(trace.to_chrome_json())

    def test_durations_are_microseconds_relative_to_origin(self):
        trace = RequestTrace("t1")
        trace.add_span("a", 5_000, 7_000)
        trace.close("root", 5_000, 9_000)
        xs = {
            e["name"]: e
            for e in trace.chrome_trace()["traceEvents"]
            if e["ph"] == "X"
        }
        assert xs["a"]["ts"] == 0.0
        assert xs["a"]["dur"] == 2.0
        assert xs["root"]["dur"] == 4.0


class TestTraceRecorder:
    def test_writes_one_file_per_request(self, tmp_path):
        recorder = TraceRecorder(directory=str(tmp_path))
        trace = RequestTrace("t1", "r00001")
        trace.close("ServiceRequest", 0, 10)
        path = recorder.record(trace)
        assert path is not None and os.path.exists(path)
        assert os.path.basename(path) == "r00001.trace.json"
        data = json.load(open(path))
        assert data["trace_id"] == "t1"

    def test_memory_only_with_bounded_keep(self):
        recorder = TraceRecorder(keep=2)
        for i in range(5):
            t = RequestTrace(f"t{i}", f"r{i}")
            t.close("ServiceRequest", 0, 1)
            assert recorder.record(t) is None
        assert [t.trace_id for t in recorder.traces] == ["t3", "t4"]
        assert recorder.written == []


class TestEventLog:
    def test_emit_drops_none_and_flushes_lines(self):
        stream = io.StringIO()
        log = EventLog(stream=stream, clock=lambda: 12.5)
        log.emit("submit", request_id="r1", trace_id=None, attempt=0)
        log.emit("response", request_id="r1", status="ok")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2 and log.emitted == 2
        first = json.loads(lines[0])
        assert first == {
            "ts": 12.5,
            "event": "submit",
            "request_id": "r1",
            "attempt": 0,
        }

    def test_path_roundtrip_via_read_jsonl(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path=path) as log:
            log.emit("a", x=1)
            log.emit("b", y=2)
        records = read_jsonl(path)
        assert [r["event"] for r in records] == ["a", "b"]

    def test_requires_exactly_one_sink(self):
        import pytest

        with pytest.raises(ValueError):
            EventLog()
