"""Unit tests: IR types, values, IRBuilder folding, verifier, printer."""

import pytest

from repro.ir import (
    ArrayType,
    ConstantInt,
    Function,
    FunctionType,
    IRBuilder,
    IntType,
    Module,
    StructType,
    VerificationError,
    double_t,
    float_t,
    i1,
    i8,
    i32,
    i64,
    loop_metadata,
    print_module,
    ptr,
    verify_module,
    void_t,
)
from repro.ir.instructions import BinOp, CastOp, ICmpPred
from repro.ir.metadata import get_unroll_count, has_flag, UNROLL_FULL


@pytest.fixture
def env():
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(i32, [i32]))
    block = fn.append_block("entry")
    b = IRBuilder(mod)
    b.set_insert_point(block)
    return mod, fn, b


class TestIRTypes:
    def test_int_types_uniqued(self):
        assert IntType(32) is IntType(32)
        assert IntType(32) is not IntType(64)

    def test_sizes(self):
        assert i32.size_bytes() == 4
        assert i64.size_bytes() == 8
        assert i1.size_bytes() == 1
        assert ptr.size_bytes() == 8
        assert double_t.size_bytes() == 8
        assert ArrayType(i32, 10).size_bytes() == 40

    def test_wrapping(self):
        assert i8.wrap(256) == 0
        assert i8.wrap(-1) == 255
        assert i8.to_signed(255) == -1
        assert i8.to_signed(127) == 127

    def test_struct_layout(self):
        st = StructType([i8, i64, i32])
        assert st.offset_of(0) == 0
        assert st.offset_of(1) == 8
        assert st.offset_of(2) == 16
        assert st.size_bytes() == 24

    def test_str_forms(self):
        assert str(i32) == "i32"
        assert str(ptr) == "ptr"
        assert str(float_t) == "float"
        assert str(ArrayType(i8, 3)) == "[3 x i8]"


class TestConstants:
    def test_constant_wraps(self):
        c = ConstantInt(i8, 300)
        assert c.value == 44

    def test_signed_value(self):
        c = ConstantInt(i32, -5)
        assert c.value == (1 << 32) - 5
        assert c.signed_value == -5

    def test_i1_prints_true_false(self):
        assert ConstantInt(i1, 1).ref() == "true"
        assert ConstantInt(i1, 0).ref() == "false"


class TestBuilderFolding:
    def test_constant_add_folds(self, env):
        _, _, b = env
        out = b.add(b.const_int(i32, 2), b.const_int(i32, 3))
        assert isinstance(out, ConstantInt) and out.value == 5

    def test_add_zero_identity(self, env):
        _, fn, b = env
        out = b.add(fn.args[0], b.const_int(i32, 0))
        assert out is fn.args[0]

    def test_mul_one_identity(self, env):
        _, fn, b = env
        out = b.mul(fn.args[0], b.const_int(i32, 1))
        assert out is fn.args[0]

    def test_mul_zero_folds(self, env):
        _, fn, b = env
        out = b.mul(fn.args[0], b.const_int(i32, 0))
        assert isinstance(out, ConstantInt) and out.value == 0

    def test_sdiv_negative(self, env):
        _, _, b = env
        out = b.binop(
            BinOp.SDIV, b.const_int(i32, -7), b.const_int(i32, 2)
        )
        assert out.signed_value == -3  # C truncation toward zero

    def test_div_by_zero_not_folded(self, env):
        _, _, b = env
        out = b.binop(
            BinOp.UDIV, b.const_int(i32, 8), b.const_int(i32, 0)
        )
        assert not isinstance(out, ConstantInt)

    def test_icmp_folds(self, env):
        _, _, b = env
        out = b.icmp(
            ICmpPred.SLT, b.const_int(i32, -1), b.const_int(i32, 1)
        )
        assert isinstance(out, ConstantInt) and out.value == 1

    def test_icmp_unsigned_vs_signed(self, env):
        _, _, b = env
        # -1 as unsigned is huge.
        out = b.icmp(
            ICmpPred.ULT, b.const_int(i32, -1), b.const_int(i32, 1)
        )
        assert out.value == 0

    def test_cast_folds(self, env):
        _, _, b = env
        out = b.cast(CastOp.SEXT, b.const_int(i8, -1), i64)
        assert isinstance(out, ConstantInt)
        assert out.signed_value == -1
        out2 = b.cast(CastOp.ZEXT, b.const_int(i8, 255), i64)
        assert out2.value == 255

    def test_cond_br_on_constant_becomes_br(self, env):
        mod, fn, b = env
        t = fn.append_block("t")
        f = fn.append_block("f")
        inst = b.cond_br(b.true(), t, f)
        from repro.ir.instructions import BranchInst

        assert isinstance(inst, BranchInst)
        assert inst.target is t

    def test_select_folds(self, env):
        _, fn, b = env
        out = b.select(
            b.false(), b.const_int(i32, 1), b.const_int(i32, 2)
        )
        assert out.value == 2

    def test_no_folding_when_disabled(self, env):
        _, _, b = env
        b.folding_enabled = False
        out = b.add(b.const_int(i32, 2), b.const_int(i32, 3))
        assert not isinstance(out, ConstantInt)

    def test_insertion_callback(self, env):
        """Paper §1.3: the IRBuilder 'offers a callback interface that
        can make modifications on just inserted instructions'."""
        _, fn, b = env
        seen = []
        b.insertion_callback = seen.append
        b.add(fn.args[0], b.const_int(i32, 7))
        assert len(seen) == 1
        assert seen[0].opcode == "binop"


class TestNaming:
    def test_unique_names(self, env):
        _, fn, b = env
        a = b.add(fn.args[0], b.const_int(i32, 1), "x")
        c = b.add(fn.args[0], b.const_int(i32, 2), "x")
        assert a.name == "x"
        assert c.name == "x.1"


class TestVerifier:
    def test_valid_function_passes(self, env):
        mod, fn, b = env
        b.ret(b.const_int(i32, 0))
        verify_module(mod)

    def test_missing_terminator(self, env):
        mod, fn, b = env
        b.add(fn.args[0], b.const_int(i32, 1))
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(mod)

    def test_phi_incoming_mismatch(self, env):
        mod, fn, b = env
        other = fn.append_block("other")
        b.br(other)
        b.set_insert_point(other)
        phi = b.phi(i32)
        phi.add_incoming(b.const_int(i32, 1), other)  # wrong pred
        b.ret(phi)
        with pytest.raises(VerificationError, match="phi"):
            verify_module(mod)

    def test_condbr_requires_i1(self, env):
        mod, fn, b = env
        t = fn.append_block("t")
        f = fn.append_block("f")
        from repro.ir.instructions import CondBranchInst

        b.insert_block.append(CondBranchInst(fn.args[0], t, f))
        bt = IRBuilder(mod)
        bt.set_insert_point(t)
        bt.ret(bt.const_int(i32, 0))
        bt.set_insert_point(f)
        bt.ret(bt.const_int(i32, 0))
        with pytest.raises(VerificationError, match="i1"):
            verify_module(mod)


class TestPrinter:
    def test_prints_core_constructs(self, env):
        mod, fn, b = env
        added = b.add(fn.args[0], b.const_int(i32, 41), "x")
        b.ret(added)
        text = print_module(mod)
        assert "define i32 @f(i32 %arg0)" in text
        assert "%x = add i32 %arg0, 41" in text
        assert "ret i32 %x" in text

    def test_prints_metadata(self, env):
        mod, fn, b = env
        loop_bb = fn.append_block("loop")
        br = b.br(loop_bb)
        br.metadata["llvm.loop"] = loop_metadata(unroll_count=4)
        b.set_insert_point(loop_bb)
        b.ret(b.const_int(i32, 0))
        text = print_module(mod)
        assert "!llvm.loop" in text
        assert '!"llvm.loop.unroll.count", i32 4' in text

    def test_declarations_printed(self):
        mod = Module("m")
        mod.add_function("ext", FunctionType(void_t, [ptr, i32]))
        assert "declare void @ext(ptr, i32)" in print_module(mod)

    def test_global_with_bytes(self):
        mod = Module("m")
        gv = mod.add_global(".str", ArrayType(i8, 3), is_constant=True)
        gv.initializer_bytes = b"ab\x00"
        text = print_module(mod)
        assert '@.str = constant [3 x i8] c"ab\\00"' in text


class TestLoopMetadata:
    def test_roundtrip_count(self):
        md = loop_metadata(unroll_count=8)
        assert get_unroll_count(md) == 8

    def test_flags(self):
        md = loop_metadata(unroll_full=True)
        assert has_flag(md, UNROLL_FULL)
        assert get_unroll_count(md) is None

    def test_distinct_self_reference(self):
        md = loop_metadata(unroll_enable=True)
        assert md.distinct
        assert md.operands[0] is md
