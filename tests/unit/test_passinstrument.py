"""Unit tests for the pass-pipeline introspection framework: the Myers
unified-diff engine, debug counters, PassInstrumentation hooks,
PipelineRunResult ergonomics, and printer determinism."""

import io
import random

import pytest

from repro.instrument import (
    DEBUG_COUNTERS,
    DebugCounter,
    PassInstrumentation,
    STATS,
    get_debug_counter,
    unified_diff,
)
from repro.instrument.udiff import edit_script
from repro.ir.metadata import MDNode
from repro.midend import default_pass_pipeline
from repro.midend.pass_manager import (
    FunctionPass,
    PassManager,
    PassRunInfo,
    PipelineRunResult,
)
from repro.pipeline import compile_source

UNROLL_SRC = """
int main() {
  int sum = 0;
  #pragma omp unroll partial(4)
  for (int i = 0; i < 32; i++) sum += i;
  return sum % 256;
}
"""

PLAIN_SRC = """
int main() {
  int x = 1;
  int y = 2;
  return x + y;
}
"""


@pytest.fixture(autouse=True)
def _clean_debug_counters():
    yield
    DEBUG_COUNTERS.unset_all()


def optimize(source, instrument=None):
    result = compile_source(source)
    default_pass_pipeline(
        remarks=result.diagnostics.remarks, instrument=instrument
    ).run(result.module)
    return result


# ======================================================================
class TestUnifiedDiff:
    def test_equal_inputs_empty_diff(self):
        assert unified_diff(["a", "b"], ["a", "b"]) == ""

    def test_headers_and_markers(self):
        out = unified_diff(
            ["one", "two", "three"],
            ["one", "2", "three"],
            fromfile="L",
            tofile="R",
        )
        lines = out.splitlines()
        assert lines[0] == "--- L"
        assert lines[1] == "+++ R"
        assert lines[2].startswith("@@ -1,3 +1,3 @@")
        assert "-two" in lines
        assert "+2" in lines
        assert " one" in lines

    def test_pure_insert_and_delete(self):
        assert "+new" in unified_diff(["a"], ["a", "new"])
        assert "-old" in unified_diff(["a", "old"], ["a"])

    def test_distant_changes_get_separate_hunks(self):
        a = [str(i) for i in range(40)]
        b = list(a)
        b[2] = "x"
        b[35] = "y"
        out = unified_diff(a, b)
        assert out.count("@@ -") == 2

    def test_edit_script_reconstructs_both_sides(self):
        rng = random.Random(1234)
        alphabet = ["a", "b", "c", "d"]
        for _ in range(50):
            a = [rng.choice(alphabet) for _ in range(rng.randrange(12))]
            b = [rng.choice(alphabet) for _ in range(rng.randrange(12))]
            script = edit_script(a, b)
            old = [a[i] for tag, i, _ in script if tag in (" ", "-")]
            new = [b[j] for tag, _, j in script if tag in (" ", "+")]
            assert old == a
            assert new == b
            # common lines really are common
            for tag, i, j in script:
                if tag == " ":
                    assert a[i] == b[j]


# ======================================================================
class TestDebugCounter:
    def test_unset_always_executes(self):
        c = DebugCounter("t1")
        assert all(c.should_execute() for _ in range(10))

    def test_skip_then_count_window(self):
        c = DebugCounter("t2")
        c.configure(2, 3)
        results = [c.should_execute() for _ in range(8)]
        assert results == [False, False, True, True, True, False, False, False]

    def test_skip_without_count_runs_rest(self):
        c = DebugCounter("t3")
        c.configure(1)
        assert [c.should_execute() for _ in range(4)] == [
            False, True, True, True,
        ]

    def test_registry_spec_parsing(self):
        counter = DEBUG_COUNTERS.apply_spec("my-site=3,5")
        assert counter.skip == 3 and counter.limit == 5
        assert DEBUG_COUNTERS.get("my-site") is counter

    @pytest.mark.parametrize(
        "spec", ["nope", "name=", "=1", "n=1,2,3", "n=x", "n=1,-2"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            DEBUG_COUNTERS.apply_spec(spec)

    def test_get_debug_counter_registers(self):
        c = get_debug_counter("shared-site", "desc")
        assert DEBUG_COUNTERS.get("shared-site") is c


# ======================================================================
class TestPassInstrumentation:
    def test_print_changed_only_reports_changing_passes(self):
        stream = io.StringIO()
        instrument = PassInstrumentation(
            print_changed=True, stream=stream
        )
        optimize(PLAIN_SRC, instrument)
        out = stream.getvalue()
        # mem2reg promotes the allocas -> diff; loop-unroll has nothing
        # to do on the unannotated loop-free source -> silent.
        assert "*** IR Diff After mem2reg on main ***" in out
        assert "loop-unroll" not in out
        assert "\n-" in out and "\n+" in out

    def test_print_before_and_after_selection(self):
        stream = io.StringIO()
        instrument = PassInstrumentation(
            print_before=["mem2reg"], print_after=["dce"], stream=stream
        )
        optimize(PLAIN_SRC, instrument)
        out = stream.getvalue()
        assert "*** IR Dump Before mem2reg on main ***" in out
        assert "*** IR Dump After dce on main ***" in out
        assert "Dump Before dce" not in out
        assert "Dump After mem2reg" not in out

    def test_print_all_dumps_every_execution(self):
        stream = io.StringIO()
        instrument = PassInstrumentation(
            print_after_all=True, stream=stream
        )
        optimize(PLAIN_SRC, instrument)
        out = stream.getvalue()
        for name in ("loop-unroll", "mem2reg", "constant-fold",
                     "simplify-cfg", "dce"):
            assert f"*** IR Dump After {name} on main ***" in out

    def test_bisect_indices_are_monotonic_and_logged(self):
        stream = io.StringIO()
        instrument = PassInstrumentation(
            opt_bisect_limit=-1, stream=stream
        )
        optimize(PLAIN_SRC, instrument)
        assert [e.index for e in instrument.executions] == [1, 2, 3, 4, 5]
        assert all(e.ran for e in instrument.executions)
        logged = stream.getvalue().splitlines()
        assert logged[0] == (
            "BISECT: running pass (1) loop-unroll on function (main)"
        )
        assert len(logged) == 5

    def test_bisect_limit_skips_and_emits_missed_remarks(self):
        stream = io.StringIO()
        instrument = PassInstrumentation(
            opt_bisect_limit=2, stream=stream
        )
        result = optimize(PLAIN_SRC, instrument)
        ran = [e for e in instrument.executions if e.ran]
        skipped = [e for e in instrument.executions if not e.ran]
        assert [e.index for e in ran] == [1, 2]
        assert [e.index for e in skipped] == [3, 4, 5]
        assert "BISECT: NOT running pass (3)" in stream.getvalue()
        missed = [
            r
            for r in result.remarks
            if "-opt-bisect-limit=2" in r.message
        ]
        assert len(missed) == 3

    def test_skipped_executions_counted_in_stats(self):
        before = STATS.snapshot()
        instrument = PassInstrumentation(
            opt_bisect_limit=0, stream=io.StringIO()
        )
        optimize(PLAIN_SRC, instrument)
        delta = STATS.delta_since(before)
        assert delta.get("pass-instrument.executions-skipped") == 5

    def test_snapshot_and_diff_stats(self):
        before = STATS.snapshot()
        instrument = PassInstrumentation(
            print_changed=True, stream=io.StringIO()
        )
        optimize(PLAIN_SRC, instrument)
        delta = STATS.delta_since(before)
        assert delta.get("pass-instrument.ir-snapshots-taken", 0) == 5
        assert delta.get("pass-instrument.diffs-emitted", 0) >= 1

    def test_disabled_instrumentation_reports_not_enabled(self):
        assert not PassInstrumentation().enabled
        assert PassInstrumentation(print_changed=True).enabled
        assert PassInstrumentation(opt_bisect_limit=-1).enabled


# ======================================================================
class TestPipelineRunResult:
    def test_iter_and_len(self):
        result = compile_source(PLAIN_SRC)
        pm = default_pass_pipeline(remarks=result.diagnostics.remarks)
        run = pm.run(result.module)
        assert len(run) == 5
        names = [info.name for info in run]
        assert names == pm.pass_names()
        assert all(isinstance(info, PassRunInfo) for info in run)

    def test_info_keyerror_lists_valid_names(self):
        run = PipelineRunResult(
            passes=[PassRunInfo("mem2reg"), PassRunInfo("dce")]
        )
        with pytest.raises(KeyError) as exc:
            run.info("no-such-pass")
        message = str(exc.value)
        assert "'mem2reg'" in message and "'dce'" in message

    def test_info_keyerror_on_empty_run(self):
        with pytest.raises(KeyError, match="<none>"):
            PipelineRunResult().info("anything")

    def test_functions_skipped_recorded(self):
        result = compile_source(PLAIN_SRC)
        instrument = PassInstrumentation(
            opt_bisect_limit=1, stream=io.StringIO()
        )
        run = default_pass_pipeline(
            remarks=result.diagnostics.remarks, instrument=instrument
        ).run(result.module)
        assert run.info("loop-unroll").functions_skipped == 0
        assert run.info("mem2reg").functions_skipped == 1
        assert run.info("mem2reg").functions_visited == 0


# ======================================================================
class TestPrinterDeterminism:
    def test_ir_text_stable_across_metadata_churn(self):
        """Regression: metadata used process-global ids, so printing the
        same source twice differed when unrelated MDNodes were created in
        between.  Local numbering makes prints byte-equal."""
        first = compile_source(UNROLL_SRC).ir_text()
        for _ in range(11):  # churn the global metadata id counter
            MDNode([MDNode([1]), 2], distinct=True)
        second = compile_source(UNROLL_SRC).ir_text()
        assert first == second
        assert "!llvm.loop !0" in first  # locally numbered from zero

    def test_print_function_snapshots_stable(self):
        from repro.ir.printer import print_function

        result = compile_source(UNROLL_SRC)
        fn = result.module.get_function("main")
        MDNode([3], distinct=True)
        assert print_function(fn) == print_function(fn)
