"""Unit tests: CodeGen details — conversions, operators, aggregates,
short-circuit evaluation, bool semantics — checked by execution."""

import pytest

from tests.conftest import run_c


def out_of(src: str, **kw) -> str:
    kw.setdefault("openmp", False)
    return run_c(src, **kw).stdout.strip()


class TestIntegerSemantics:
    def test_truncation_and_extension(self):
        src = r"""
        int main(void) {
          char c = 300;          /* truncates to 44 */
          unsigned char u = 200;
          int widened_c = c;     /* sign extend */
          int widened_u = u;     /* zero extend */
          printf("%d %d\n", widened_c, widened_u);
          return 0;
        }
        """
        assert out_of(src) == "44 200"

    def test_signed_division_and_modulo(self):
        src = r"""
        int main(void) {
          printf("%d %d %d %d\n", -7 / 2, -7 % 2, 7 / -2, 7 % -2);
          return 0;
        }
        """
        assert out_of(src) == "-3 -1 -3 1"

    def test_unsigned_comparison(self):
        src = r"""
        int main(void) {
          unsigned int big = 3000000000u;
          int winner = big > 5u ? 1 : 0;
          printf("%d\n", winner);
          return 0;
        }
        """
        assert out_of(src) == "1"

    def test_shift_semantics(self):
        src = r"""
        int main(void) {
          int neg = -16;
          unsigned int uns = 0x80000000u;
          printf("%d %u\n", neg >> 2, uns >> 28);
          return 0;
        }
        """
        assert out_of(src) == "-4 8"

    def test_mixed_signed_unsigned_arithmetic(self):
        src = r"""
        int main(void) {
          unsigned int u = 10;
          int s = -3;
          /* s converts to unsigned: huge value */
          printf("%d\n", u + s > 100u ? 1 : 0);
          return 0;
        }
        """
        assert out_of(src) == "0"  # 10 + (-3 as unsigned) wraps to 7

    def test_long_arithmetic_width(self):
        src = r"""
        int main(void) {
          long big = 3000000000;
          long doubled = big * 2;
          printf("%d\n", doubled == 6000000000 ? 1 : 0);
          return 0;
        }
        """
        assert out_of(src) == "1"


class TestFloatSemantics:
    def test_float_vs_double_precision(self):
        src = r"""
        int main(void) {
          float f = 0.1f;
          double d = 0.1;
          printf("%d\n", (double)f == d ? 1 : 0);
          return 0;
        }
        """
        assert out_of(src) == "0"

    def test_int_float_conversions(self):
        src = r"""
        int main(void) {
          double x = 7;         /* int -> double */
          int y = 7.9;          /* truncates */
          int z = -7.9;         /* truncates toward zero */
          printf("%g %d %d\n", x, y, z);
          return 0;
        }
        """
        assert out_of(src) == "7 7 -7"

    def test_compound_assign_mixed_types(self):
        src = r"""
        int main(void) {
          int i = 7;
          i += 2.6;             /* computed in double, stored as int */
          double d = 1.0;
          d *= 3;
          printf("%d %g\n", i, d);
          return 0;
        }
        """
        assert out_of(src) == "9 3"


class TestShortCircuit:
    def test_and_skips_rhs(self):
        src = r"""
        int hits = 0;
        int touch(void) { hits += 1; return 1; }
        int main(void) {
          int r = 0 && touch();
          printf("%d %d\n", r, hits);
          return 0;
        }
        """
        assert out_of(src) == "0 0"

    def test_or_skips_rhs(self):
        src = r"""
        int hits = 0;
        int touch(void) { hits += 1; return 0; }
        int main(void) {
          int r = 1 || touch();
          printf("%d %d\n", r, hits);
          return 0;
        }
        """
        assert out_of(src) == "1 0"

    def test_ternary_evaluates_one_side(self):
        src = r"""
        int hits_a = 0; int hits_b = 0;
        int a(void) { hits_a += 1; return 10; }
        int b(void) { hits_b += 1; return 20; }
        int main(void) {
          int r = 1 ? a() : b();
          printf("%d %d %d\n", r, hits_a, hits_b);
          return 0;
        }
        """
        assert out_of(src) == "10 1 0"

    def test_comma_evaluates_both(self):
        src = r"""
        int hits = 0;
        int touch(void) { hits += 1; return 5; }
        int main(void) {
          int r = (touch(), touch(), 9);
          printf("%d %d\n", r, hits);
          return 0;
        }
        """
        assert out_of(src) == "9 2"


class TestPointersAndAggregates:
    def test_pointer_arithmetic_scaling(self):
        src = r"""
        int main(void) {
          double arr[4] = {1.5, 2.5, 3.5, 4.5};
          double *p = arr;
          p += 2;
          double *q = arr + 3;
          printf("%g %g %d\n", *p, *q, (int)(q - p));
          return 0;
        }
        """
        assert out_of(src) == "3.5 4.5 1"

    def test_pointer_decrement_and_compare(self):
        src = r"""
        int main(void) {
          int arr[5] = {10, 20, 30, 40, 50};
          int *p = arr + 4;
          int total = 0;
          while (p >= arr) {
            total += *p;
            p -= 1;
          }
          printf("%d\n", total);
          return 0;
        }
        """
        assert out_of(src) == "150"

    def test_address_of_and_swap(self):
        src = r"""
        void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
        int main(void) {
          int x = 1; int y = 2;
          swap(&x, &y);
          printf("%d %d\n", x, y);
          return 0;
        }
        """
        assert out_of(src) == "2 1"

    def test_struct_by_value_field_access(self):
        src = r"""
        struct pair { int a; int b; };
        int main(void) {
          struct pair p;
          p.a = 3; p.b = 4;
          struct pair *q = &p;
          q->b = 40;
          printf("%d %d\n", p.a, p.b);
          return 0;
        }
        """
        assert out_of(src) == "3 40"

    def test_nested_struct_layout(self):
        src = r"""
        struct inner { char tag; double value; };
        struct outer { int id; struct inner payload; };
        int main(void) {
          struct outer o;
          o.id = 7;
          o.payload.tag = 'x';
          o.payload.value = 2.5;
          printf("%d %c %g %d\n", o.id, o.payload.tag,
                 o.payload.value, (int)sizeof(struct outer));
          return 0;
        }
        """
        assert out_of(src) == "7 x 2.5 24"

    def test_global_array_initializer(self):
        src = r"""
        int table[5] = {2, 4, 6, 8};
        double weights[3] = {0.5, 1.5, 2.5};
        int main(void) {
          int s = 0;
          for (int i = 0; i < 5; i += 1) s += table[i];
          printf("%d %g\n", s, weights[1]);
          return 0;
        }
        """
        assert out_of(src) == "20 1.5"

    def test_2d_array_indexing(self):
        src = r"""
        int main(void) {
          int m[3][4];
          for (int i = 0; i < 3; i += 1)
            for (int j = 0; j < 4; j += 1)
              m[i][j] = i * 10 + j;
          printf("%d %d %d\n", m[0][0], m[1][3], m[2][2]);
          return 0;
        }
        """
        assert out_of(src) == "0 13 22"


class TestBoolSemantics:
    def test_bool_normalizes_to_01(self):
        src = r"""
        int main(void) {
          bool flag = 42;   /* any nonzero -> 1 */
          bool zero = 0;
          printf("%d %d %d\n", flag, zero, (int)sizeof(bool));
          return 0;
        }
        """
        assert out_of(src) == "1 0 1"

    def test_not_operator_result(self):
        src = r"""
        int main(void) {
          printf("%d %d %d\n", !5, !0, !!7);
          return 0;
        }
        """
        assert out_of(src) == "0 1 1"


class TestEnumsAndTypedefs:
    def test_enum_values_in_arithmetic(self):
        src = r"""
        enum level { LOW = 1, MID = 5, HIGH = 10 };
        int main(void) {
          enum level x = MID;
          printf("%d\n", x * HIGH + LOW);
          return 0;
        }
        """
        assert out_of(src) == "51"

    def test_typedef_chain(self):
        src = r"""
        typedef unsigned int uint;
        typedef uint word;
        int main(void) {
          word w = 4294967295u;
          w += 1;              /* wraps */
          printf("%u\n", w);
          return 0;
        }
        """
        assert out_of(src) == "0"

    def test_size_t_from_sizeof(self):
        src = r"""
        int main(void) {
          size_t n = sizeof(double[10]);
          printf("%d\n", (int)n);
          return 0;
        }
        """
        assert out_of(src) == "80"
