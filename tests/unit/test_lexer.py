"""Unit tests: the raw lexer."""

import pytest

from repro.diagnostics import DiagnosticsEngine
from repro.lex import Token, TokenKind
from repro.lex.lexer import tokenize_string

K = TokenKind


def kinds(text: str) -> list[TokenKind]:
    return [t.kind for t in tokenize_string(text)[:-1]]  # strip EOF


def spellings(text: str) -> list[str]:
    return [t.spelling for t in tokenize_string(text)[:-1]]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        assert kinds("foo int forx for") == [
            K.IDENTIFIER,
            K.KW_INT,
            K.IDENTIFIER,
            K.KW_FOR,
        ]

    def test_keywords_disabled_mode(self):
        toks = tokenize_string("for int", keywords_enabled=False)
        assert toks[0].kind == K.IDENTIFIER
        assert toks[1].kind == K.IDENTIFIER

    def test_numbers(self):
        assert spellings("0 42 0x1F 010 1.5 1e10 3.25f 1ULL") == [
            "0",
            "42",
            "0x1F",
            "010",
            "1.5",
            "1e10",
            "3.25f",
            "1ULL",
        ]
        assert all(
            k == K.NUMERIC_CONSTANT
            for k in kinds("0 42 0x1F 010 1.5 1e10 3.25f 1ULL")
        )

    def test_float_with_exponent_sign(self):
        toks = tokenize_string("1.5e-3")[:-1]
        assert len(toks) == 1
        assert toks[0].spelling == "1.5e-3"

    def test_string_literal(self):
        toks = tokenize_string(r'"hello \"world\""')[:-1]
        assert toks[0].kind == K.STRING_LITERAL
        assert toks[0].spelling == r'"hello \"world\""'

    def test_char_literal(self):
        toks = tokenize_string(r"'a' '\n'")[:-1]
        assert [t.kind for t in toks] == [
            K.CHAR_CONSTANT,
            K.CHAR_CONSTANT,
        ]

    def test_eof_is_last(self):
        toks = tokenize_string("x")
        assert toks[-1].kind == K.EOF


class TestPunctuators:
    def test_maximal_munch(self):
        assert kinds("<<= << <= <") == [
            K.LESSLESSEQUAL,
            K.LESSLESS,
            K.LESSEQUAL,
            K.LESS,
        ]

    def test_arrows_and_increments(self):
        assert kinds("-> -- - ++ +=") == [
            K.ARROW,
            K.MINUSMINUS,
            K.MINUS,
            K.PLUSPLUS,
            K.PLUSEQUAL,
        ]

    def test_ellipsis(self):
        assert kinds("...") == [K.ELLIPSIS]

    def test_all_single_punctuation(self):
        text = "( ) { } [ ] ; , . ? : = # & | ^ ~ ! % / * + - < >"
        assert len(kinds(text)) == len(text.split())


class TestTriviaHandling:
    def test_line_comment(self):
        assert spellings("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert spellings("a /* x */ b") == ["a", "b"]

    def test_multiline_block_comment_sets_line_start(self):
        toks = tokenize_string("a /* x\ny */ b")[:-1]
        assert toks[1].at_line_start

    def test_unterminated_block_comment_errors(self):
        diags = DiagnosticsEngine()
        tokenize_string("a /* never closed", diags=diags)
        assert diags.error_count == 1

    def test_line_splice(self):
        # backslash-newline disappears: one logical line
        toks = tokenize_string("ab\\\ncd")[:-1]
        # a splice between tokens, not within: two identifiers but the
        # second is NOT at line start
        assert [t.spelling for t in toks] == ["ab", "cd"]
        assert not toks[1].at_line_start

    def test_at_line_start_flag(self):
        toks = tokenize_string("a b\nc")[:-1]
        assert toks[0].at_line_start
        assert not toks[1].at_line_start
        assert toks[2].at_line_start

    def test_has_leading_space(self):
        toks = tokenize_string("a b")[:-1]
        assert not toks[0].has_leading_space or toks[0].at_line_start
        assert toks[1].has_leading_space


class TestLocations:
    def test_token_locations_point_into_buffer(self):
        from repro.sourcemgr import MemoryBuffer, SourceManager
        from repro.lex import Lexer

        sm = SourceManager()
        fid = sm.create_main_file(MemoryBuffer("t.c", "ab cd"))
        lexer = Lexer(sm, fid, DiagnosticsEngine(sm))
        toks = lexer.lex_all()
        ploc = sm.get_presumed_loc(toks[1].location)
        assert (ploc.line, ploc.column) == (1, 4)

    def test_unterminated_string_reports_error(self):
        diags = DiagnosticsEngine()
        tokenize_string('"abc', diags=diags)
        assert diags.error_count == 1

    def test_unknown_character(self):
        diags = DiagnosticsEngine()
        toks = tokenize_string("a ` b", diags=diags)
        assert diags.error_count == 1
        assert any(t.kind == K.UNKNOWN for t in toks)


class TestTokenHelpers:
    def test_is_one_of(self):
        tok = Token(K.KW_INT, "int")
        assert tok.is_one_of(K.KW_VOID, K.KW_INT)
        assert not tok.is_one_of(K.KW_VOID, K.KW_CHAR)

    def test_is_identifier_with_text(self):
        tok = Token(K.IDENTIFIER, "omp")
        assert tok.is_identifier("omp")
        assert not tok.is_identifier("simd")
        assert tok.is_identifier()

    def test_end_location(self):
        from repro.sourcemgr import SourceLocation

        tok = Token(K.IDENTIFIER, "abc", SourceLocation(10))
        assert tok.end_location().offset == 13
