"""The shared "worst code wins" exit-code policy and the multi-input
batch aggregation of the ``miniclang`` driver.

The regression of record: a batch containing both an ICE (70) and a
timeout (124) must exit 70 — an internal compiler error is the most
severe diagnosis — which a plain ``max()`` over the numeric codes gets
backwards.
"""

from __future__ import annotations

import pytest

from repro.driver.cli import main
from repro.driver.exitcodes import (
    EXIT_ICE,
    EXIT_OK,
    EXIT_TIMEOUT,
    EXIT_UNAVAILABLE,
    EXIT_USER_ERROR,
    worst_exit_code,
)

OK_SOURCE = "int main() { return 0; }\n"
USER_ERROR_SOURCE = "int main() { return undeclared; }\n"
#: guest spins forever: --fuel exhaustion -> 124
TIMEOUT_SOURCE = (
    "int main() {\n"
    "  int x = 0;\n"
    "  for (int i = 0; i < 1000000000; i += 1) x += i;\n"
    "  return x;\n"
    "}\n"
)


class TestWorstExitCode:
    def test_empty_is_ok(self):
        assert worst_exit_code() == EXIT_OK

    def test_identity(self):
        for code in (
            EXIT_OK,
            EXIT_USER_ERROR,
            EXIT_ICE,
            EXIT_UNAVAILABLE,
            EXIT_TIMEOUT,
        ):
            assert worst_exit_code(code) == code

    def test_severity_ranking(self):
        # 0 < 1 < 75 < 124 < 70
        assert worst_exit_code(EXIT_OK, EXIT_USER_ERROR) == EXIT_USER_ERROR
        assert (
            worst_exit_code(EXIT_USER_ERROR, EXIT_UNAVAILABLE)
            == EXIT_UNAVAILABLE
        )
        assert (
            worst_exit_code(EXIT_UNAVAILABLE, EXIT_TIMEOUT) == EXIT_TIMEOUT
        )
        assert worst_exit_code(EXIT_TIMEOUT, EXIT_ICE) == EXIT_ICE

    def test_ice_beats_timeout_regardless_of_numeric_order(self):
        assert worst_exit_code(EXIT_TIMEOUT, EXIT_ICE) == EXIT_ICE
        assert worst_exit_code(EXIT_ICE, EXIT_TIMEOUT) == EXIT_ICE

    def test_unknown_nonzero_ranks_as_user_error(self):
        # guest main() return values (e.g. 7, 42) are plain failures
        assert worst_exit_code(EXIT_OK, 42) == 42
        assert worst_exit_code(42, EXIT_TIMEOUT) == EXIT_TIMEOUT
        assert worst_exit_code(42, EXIT_ICE) == EXIT_ICE

    def test_severity_tie_keeps_first(self):
        assert worst_exit_code(7, 42) == 7
        assert worst_exit_code(EXIT_USER_ERROR, 42) == EXIT_USER_ERROR

    def test_order_independent_across_severities(self):
        codes = [EXIT_OK, 42, EXIT_UNAVAILABLE, EXIT_TIMEOUT, EXIT_ICE]
        import itertools

        for perm in itertools.permutations(codes):
            assert worst_exit_code(*perm) == EXIT_ICE


@pytest.fixture
def write(tmp_path):
    def _write(name: str, text: str) -> str:
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return str(path)

    return _write


class TestBatchAggregation:
    """miniclang with several inputs: the batch keeps going past
    failures and exits with the worst outcome."""

    def test_all_ok(self, write, capsys):
        a = write("a.c", OK_SOURCE)
        b = write("b.c", OK_SOURCE)
        assert main(["--run", a, b]) == EXIT_OK

    def test_user_error_wins_over_ok(self, write, capsys):
        ok = write("ok.c", OK_SOURCE)
        bad = write("bad.c", USER_ERROR_SOURCE)
        assert main(["--run", bad, ok]) == EXIT_USER_ERROR
        assert main(["--run", ok, bad]) == EXIT_USER_ERROR

    def test_ice_wins_over_ok(self, write, capsys, tmp_path):
        ok = write("ok.c", OK_SOURCE)
        crash = write("crash.c", OK_SOURCE)
        code = main(
            [
                "-finject-fault",
                "parser:2",  # arm on the second input only
                "-crash-reproducer-dir",
                str(tmp_path / "crashes"),
                ok,
                crash,
            ]
        )
        assert code == EXIT_ICE

    def test_timeout_wins_over_user_error(self, write, capsys):
        bad = write("bad.c", USER_ERROR_SOURCE)
        spin = write("spin.c", TIMEOUT_SOURCE)
        code = main(["--run", "--fuel", "20000", bad, spin])
        assert code == EXIT_TIMEOUT

    def test_ice_wins_over_timeout_either_order(
        self, write, capsys, tmp_path
    ):
        """The max() regression: 70 must beat 124 in both orders."""
        spin = write("spin.c", TIMEOUT_SOURCE)
        crash = write("crash.c", OK_SOURCE)
        crashes = str(tmp_path / "crashes")
        code = main(
            [
                "--run",
                "--fuel",
                "20000",
                "-finject-fault",
                "parser:2",
                "-crash-reproducer-dir",
                crashes,
                spin,
                crash,
            ]
        )
        assert code == EXIT_ICE
        code = main(
            [
                "--run",
                "--fuel",
                "20000",
                "-finject-fault",
                "parser:1",
                "-crash-reproducer-dir",
                crashes,
                crash,
                spin,
            ]
        )
        assert code == EXIT_ICE

    def test_batch_continues_past_failures(self, write, capsys):
        """Later inputs still compile after an earlier one fails."""
        bad = write("bad.c", USER_ERROR_SOURCE)
        ok = write("ok.c", OK_SOURCE)
        code = main([bad, ok])
        captured = capsys.readouterr()
        assert code == EXIT_USER_ERROR
        assert "define" in captured.out  # IR of ok.c was still emitted

    def test_unreadable_input_is_user_error(self, write, capsys):
        ok = write("ok.c", OK_SOURCE)
        assert main(["/nonexistent/missing.c", ok]) == EXIT_USER_ERROR
