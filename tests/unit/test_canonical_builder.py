"""Unit tests: the canonical-loop builder (repro.core.canonical) —
the exact content of the distance / user-value lambdas."""

import pytest

from repro.astlib import exprs as e
from repro.astlib import omp
from repro.astlib import stmts as s
from repro.core.canonical import build_canonical_loop
from repro.sema.canonical_loop import analyze_canonical_loop

from tests.conftest import compile_c


def build(loop_src: str, params: str = "int N"):
    src = f"void body(int); void f({params}) {{ {loop_src} }}"
    result = compile_c(src, syntax_only=True)
    body = result.function("f").body
    loop = next(
        st
        for st in body.statements
        if isinstance(st, (s.ForStmt, s.CXXForRangeStmt))
    )
    analysis = analyze_canonical_loop(
        result.ast_context, result.diagnostics, loop
    )
    assert analysis is not None
    wrapper = build_canonical_loop(result.ast_context, analysis)
    return wrapper, analysis, result


class TestDistanceFunction:
    def test_result_param_is_reference_to_logical(self):
        wrapper, analysis, result = build(
            "for (int i = 0; i < N; ++i) body(i);"
        )
        param = wrapper.distance_func.captured_decl.params[0]
        assert param.name == "Result"
        assert param.type.spelling() == "unsigned int &"

    def test_body_is_single_assignment_to_result(self):
        wrapper, *_ = build("for (int i = 0; i < N; ++i) body(i);")
        body = wrapper.distance_func.captured_decl.body
        assert isinstance(body, s.CompoundStmt)
        assert len(body.statements) == 1
        assign = body.statements[0]
        assert isinstance(assign, e.BinaryOperator)
        assert assign.opcode == e.BinaryOperatorKind.ASSIGN
        lhs = assign.lhs
        assert isinstance(lhs, e.DeclRefExpr)
        assert lhs.decl.name == "Result"

    def test_distance_references_free_variables(self):
        """[&] capture: the bound N is a by-reference capture."""
        wrapper, *_ = build("for (int i = 0; i < N; ++i) body(i);")
        captures = {
            v.name for v in wrapper.distance_func.captures
        }
        assert "N" in captures
        # By-reference, not by-value.
        assert "N" not in wrapper.distance_func.by_value

    def test_distance_has_zero_guard_for_relational(self):
        """'evaluating to 0 if __begin is larger than __end'."""
        wrapper, *_ = build("for (int i = 2; i < N; ++i) body(i);")
        body = wrapper.distance_func.captured_decl.body
        conditional = body.statements[0].rhs
        assert isinstance(conditional, e.ConditionalOperator)
        zero = conditional.false_expr.ignore_implicit_casts()
        assert isinstance(zero, e.IntegerLiteral)
        assert zero.value == 0

    def test_no_guard_for_inequality_loops(self):
        """`!=` loops divide exactly per OpenMP rules; no guard needed."""
        wrapper, *_ = build("for (int i = 0; i != N; ++i) body(i);")
        body = wrapper.distance_func.captured_decl.body
        assert not isinstance(
            body.statements[0].rhs, e.ConditionalOperator
        )


class TestUserValueFunction:
    def test_signature(self):
        wrapper, *_ = build("for (int i = 0; i < N; ++i) body(i);")
        params = wrapper.loop_var_func.captured_decl.params
        assert [p.name for p in params] == ["Result", "__i"]
        assert params[0].type.spelling() == "int &"
        assert params[1].type.spelling() == "unsigned int"

    def test_value_formula_literal_loop(self):
        """Result = lb + __i * step."""
        wrapper, *_ = build(
            "for (int i = 5; i < N; i += 3) body(i);"
        )
        assign = wrapper.loop_var_func.captured_decl.body.statements[0]
        rhs = assign.rhs
        assert isinstance(rhs, e.BinaryOperator)
        assert rhs.opcode == e.BinaryOperatorKind.ADD
        lb = rhs.lhs.ignore_implicit_casts()
        assert isinstance(lb, e.IntegerLiteral) and lb.value == 5
        mul = rhs.rhs.ignore_implicit_casts()
        assert isinstance(mul, e.BinaryOperator)
        assert mul.opcode == e.BinaryOperatorKind.MUL

    def test_value_formula_range_for(self):
        """Result = *(__begin_start + __i)."""
        wrapper, *_ = build(
            "int data[4]; for (int &x : data) body(x);", params="void"
        )
        assign = wrapper.loop_var_func.captured_decl.body.statements[0]
        deref = assign.rhs
        assert isinstance(deref, e.UnaryOperator)
        assert deref.opcode == e.UnaryOperatorKind.DEREF

    def test_iter_var_captured_by_value(self):
        wrapper, analysis, _ = build(
            "for (int i = 0; i < N; ++i) body(i);"
        )
        assert analysis.iter_var.name in wrapper.loop_var_func.by_value

    def test_user_ref_points_to_user_variable(self):
        wrapper, *_ = build(
            "int data[4]; for (int &x : data) body(x);", params="void"
        )
        assert wrapper.loop_var_ref.decl.name == "x"

    def test_user_ref_for_literal_loop_is_iter_var(self):
        wrapper, analysis, _ = build(
            "for (int i = 0; i < N; ++i) body(i);"
        )
        assert wrapper.loop_var_ref.decl is analysis.iter_var


class TestWrapperBehaviour:
    def test_children_order(self):
        wrapper, *_ = build("for (int i = 0; i < N; ++i) body(i);")
        kinds = [type(c).__name__ for c in wrapper.children()]
        assert kinds == [
            "ForStmt",
            "CapturedStmt",
            "CapturedStmt",
            "DeclRefExpr",
        ]

    def test_unwrap_is_lossless(self):
        wrapper, analysis, _ = build(
            "for (int i = 0; i < N; ++i) body(i);"
        )
        assert wrapper.unwrap() is analysis.loop_stmt

    def test_wrapper_is_a_stmt_not_a_directive(self):
        wrapper, *_ = build("for (int i = 0; i < N; ++i) body(i);")
        assert isinstance(wrapper, s.Stmt)
        assert not isinstance(wrapper, omp.OMPExecutableDirective)

    def test_meta_node_count(self):
        wrapper, *_ = build("for (int i = 0; i < N; ++i) body(i);")
        assert wrapper.meta_node_count() == 3


class TestStandaloneEmission:
    def test_canonical_loop_emitted_outside_directive(self):
        """An OMPCanonicalLoop reached by plain CodeGen (not via a
        directive) is emitted as a serial canonical loop."""
        from repro.codegen import CodeGenModule, CodeGenOptions
        from repro.interp import Interpreter
        from repro.ir.verifier import verify_module

        src = """
        void body(int);
        void f(int N) {
          for (int i = 0; i < N; ++i) body(i);
        }
        """
        result = compile_c(src, syntax_only=True)
        fn = result.function("f")
        loop = fn.body.statements[0]
        analysis = analyze_canonical_loop(
            result.ast_context, result.diagnostics, loop
        )
        wrapper = build_canonical_loop(result.ast_context, analysis)
        fn.body.statements[0] = wrapper  # splice the wrapper in

        cgm = CodeGenModule(
            result.ast_context,
            result.diagnostics,
            CodeGenOptions(enable_irbuilder=True),
        )
        module = cgm.emit_translation_unit(result.translation_unit)
        verify_module(module)
        interp = Interpreter(module)
        seen = []
        interp.register_native(
            "body", lambda i, c, a: seen.append(a[0])
        )
        interp.run("f", [5])
        assert seen == [0, 1, 2, 3, 4]
