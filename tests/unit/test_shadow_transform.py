"""Unit tests: shadow-AST transform builders (repro.core.shadow)."""

import pytest

from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.astlib.dump import dump_ast
from repro.core.shadow import (
    DEFAULT_CONSUMED_UNROLL_FACTOR,
    ShadowTransformBuilder,
    build_tile_transform,
    build_unroll_transform,
)
from repro.sema.canonical_loop import analyze_canonical_loop, collect_loop_nest

from tests.conftest import compile_c


def analyzed_loop(loop_src: str, params: str = "void"):
    src = f"void body(int); void f({params}) {{ {loop_src} }}"
    result = compile_c(src, syntax_only=True)
    body = result.function("f").body
    loop = next(
        st for st in body.statements if isinstance(st, s.ForStmt)
    )
    analysis = analyze_canonical_loop(
        result.ast_context, result.diagnostics, loop
    )
    assert analysis is not None
    return analysis, result


class TestTripCountExpr:
    def evaluate_trip(self, loop_src: str):
        analysis, result = analyzed_loop(loop_src)
        builder = ShadowTransformBuilder(result.ast_context)
        trip_expr = builder.build_trip_count_expr(analysis)
        from repro.sema.expr_eval import IntExprEvaluator

        return IntExprEvaluator(result.ast_context).evaluate(trip_expr)

    @pytest.mark.parametrize(
        "loop,expected",
        [
            ("for (int i = 0; i < 10; ++i) body(i);", 10),
            ("for (int i = 7; i < 17; i += 3) body(i);", 4),
            ("for (int i = 0; i <= 10; i += 2) body(i);", 6),
            ("for (int i = 10; i > 0; i -= 4) body(i);", 3),
            ("for (int i = 10; i >= 0; i -= 5) body(i);", 3),
            ("for (int i = 5; i < 5; ++i) body(i);", 0),
            ("for (int i = 9; i < 5; ++i) body(i);", 0),
            ("for (int i = 0; i != 9; i += 3) body(i);", 3),
        ],
    )
    def test_constant_trip_counts(self, loop, expected):
        assert self.evaluate_trip(loop) == expected

    def test_trip_count_type_is_logical(self):
        analysis, result = analyzed_loop(
            "for (int i = 0; i < 10; ++i) body(i);"
        )
        builder = ShadowTransformBuilder(result.ast_context)
        trip_expr = builder.build_trip_count_expr(analysis)
        assert trip_expr.type.is_unsigned_integer()


class TestUnrollPartial:
    def transform(self, loop_src: str, factor: int, params="void"):
        analysis, result = analyzed_loop(loop_src, params)
        return (
            build_unroll_transform(
                result.ast_context, analysis, factor, full=False
            ),
            result,
        )

    def test_structure_matches_paper_listing(self):
        """Paper Listing 'transformedast': outer strip loop
        `unrolled.iv.i`, inner retained loop `unroll_inner.iv.i` under
        an AttributedStmt with LoopHintAttr(UnrollCount)."""
        transformed, _ = self.transform(
            "for (int i = 7; i < 17; i += 3) body(i);", 2
        )
        outer = transformed.transformed_stmt
        assert isinstance(outer, s.ForStmt)
        outer_var = outer.init.single_decl
        assert outer_var.name == "unrolled.iv.i"
        annotated = outer.body
        assert isinstance(annotated, s.AttributedStmt)
        hints = annotated.loop_hints()
        assert len(hints) == 1
        assert hints[0].option == s.LoopHintAttr.UNROLL_COUNT
        assert hints[0].value.ignore_implicit_casts().value == 2
        inner = annotated.sub_stmt
        assert isinstance(inner, s.ForStmt)
        assert inner.init.single_decl.name == "unroll_inner.iv.i"

    def test_inner_condition_is_conjunction(self):
        """inner < outer + factor && inner < tripcount."""
        transformed, _ = self.transform(
            "for (int i = 0; i < 100; ++i) body(i);", 4
        )
        inner = transformed.transformed_stmt.body.sub_stmt
        cond = inner.cond.ignore_implicit_casts()
        assert isinstance(cond, e.BinaryOperator)
        assert cond.opcode == e.BinaryOperatorKind.LAND

    def test_no_body_duplication(self):
        """Paper §2.1: 'Instead of cloning the body statement according
        to the unroll factor, the inner loop is kept'."""
        transformed, _ = self.transform(
            "for (int i = 0; i < 100; ++i) body(i);", 8
        )
        dump = dump_ast(transformed.transformed_stmt)
        assert dump.count("CallExpr") == 1  # body appears exactly once

    def test_pre_inits_materialize_capture_expr(self):
        transformed, _ = self.transform(
            "for (int i = 0; i < 100; ++i) body(i);", 2
        )
        assert transformed.pre_inits is not None
        dump = dump_ast(transformed.pre_inits)
        assert ".capture_expr." in dump

    def test_constant_trip_folds_to_const_capture(self):
        transformed, _ = self.transform(
            "for (int i = 0; i < 100; ++i) body(i);", 2
        )
        decl = transformed.pre_inits.single_decl
        assert decl.type.is_const
        assert decl.init.ignore_implicit_casts().value == 100

    def test_runtime_trip_is_not_const(self):
        analysis, result = analyzed_loop(
            "for (int i = 0; i < N; ++i) body(i);", params="int N"
        )
        transformed = build_unroll_transform(
            result.ast_context, analysis, 2, full=False
        )
        decl = transformed.pre_inits.single_decl
        assert not decl.type.is_const

    def test_generated_loop_count(self):
        transformed, _ = self.transform(
            "for (int i = 0; i < 8; ++i) body(i);", 2
        )
        assert transformed.num_generated_loops == 1

    def test_body_iter_var_remapped(self):
        """The body's reference to `i` must point to the freshly
        declared user variable, not the original loop's decl."""
        analysis, result = analyzed_loop(
            "for (int i = 0; i < 8; ++i) body(i);"
        )
        transformed = build_unroll_transform(
            result.ast_context, analysis, 2, full=False
        )
        original = analysis.iter_var
        refs = [
            node
            for node in transformed.transformed_stmt.walk()
            if isinstance(node, e.DeclRefExpr)
            and node.decl.name == "i"
        ]
        assert refs
        assert all(r.decl is not original for r in refs)


class TestUnrollFull:
    def test_no_generated_loop(self):
        """Paper §1.1: 'If fully unrolled, there is no generated loop
        that can be associated with another directive.'"""
        analysis, result = analyzed_loop(
            "for (int i = 0; i < 4; ++i) body(i);"
        )
        transformed = build_unroll_transform(
            result.ast_context, analysis, None, full=True
        )
        assert transformed.transformed_stmt is None
        assert transformed.num_generated_loops == 0


class TestDefaultFactor:
    def test_paper_default_is_two(self):
        """Paper §2.2: 'The current implementation uses the unroll factor
        of two in this case.'"""
        assert DEFAULT_CONSUMED_UNROLL_FACTOR == 2


class TestTile:
    def nest(self, loop_src: str, sizes, params="void"):
        src = f"void body(int); void f({params}) {{ {loop_src} }}"
        result = compile_c(src, syntax_only=True)
        loop = result.function("f").body.statements[0]
        analyses = collect_loop_nest(
            result.ast_context,
            result.diagnostics,
            loop,
            len(sizes),
            "tile",
        )
        assert analyses is not None
        return (
            build_tile_transform(result.ast_context, analyses, sizes),
            result,
        )

    def count_for_loops(self, stmt):
        return sum(
            1 for node in stmt.walk() if isinstance(node, s.ForStmt)
        )

    def test_tiling_doubles_loop_count(self):
        """Paper §1.1: 'Tiling ... generates twice as many loops.'"""
        transformed, _ = self.nest(
            "for (int i = 0; i < 8; ++i)"
            " for (int j = 0; j < 8; ++j) body(i + j);",
            [2, 4],
        )
        assert transformed.num_generated_loops == 4
        assert (
            self.count_for_loops(transformed.transformed_stmt) == 4
        )

    def test_1d_tile(self):
        transformed, _ = self.nest(
            "for (int i = 0; i < 10; ++i) body(i);", [4]
        )
        assert transformed.num_generated_loops == 2
        assert (
            self.count_for_loops(transformed.transformed_stmt) == 2
        )

    def test_floor_and_tile_naming(self):
        transformed, _ = self.nest(
            "for (int i = 0; i < 8; ++i)"
            " for (int j = 0; j < 8; ++j) body(i);",
            [2, 2],
        )
        dump = dump_ast(transformed.transformed_stmt)
        assert ".floor.0.iv.i" in dump
        assert ".floor.1.iv.j" in dump
        assert ".tile.0.iv.i" in dump
        assert ".tile.1.iv.j" in dump

    def test_loop_order_floors_then_tiles(self):
        transformed, _ = self.nest(
            "for (int i = 0; i < 8; ++i)"
            " for (int j = 0; j < 8; ++j) body(i);",
            [2, 2],
        )
        outer = transformed.transformed_stmt
        names = []
        node = outer
        while isinstance(node, s.ForStmt):
            names.append(node.init.single_decl.name)
            inner = node.body
            while isinstance(inner, s.CompoundStmt):
                loops = [
                    c
                    for c in inner.statements
                    if isinstance(c, s.ForStmt)
                ]
                inner = loops[0] if loops else None
            node = inner
        assert names == [
            ".floor.0.iv.i",
            ".floor.1.iv.j",
            ".tile.0.iv.i",
            ".tile.1.iv.j",
        ]

    def test_pre_inits_one_per_level(self):
        transformed, _ = self.nest(
            "for (int i = 0; i < 8; ++i)"
            " for (int j = 0; j < 6; ++j) body(i);",
            [2, 2],
        )
        dump = dump_ast(transformed.pre_inits)
        assert dump.count(".capture_expr.") == 2
