"""Unit tests for the metamorphic differential-testing package
(src/repro/testing/): generator determinism and prediction accuracy,
oracle divergence detection, and the ddmin shrinker."""

from __future__ import annotations

import pytest

from repro.testing import (
    DEFAULT_CONFIGS,
    check_source,
    generate_program,
    shrink_source,
)
from repro.testing.fuzz import run_campaign


class TestGenerator:
    def test_deterministic_per_seed(self):
        for seed in (1, 7, 42):
            a = generate_program(seed)
            b = generate_program(seed)
            assert a.source == b.source
            assert a.expected_stdout == b.expected_stdout
            assert a.expected_trips == b.expected_trips
            assert a.features == b.features

    def test_different_seeds_differ(self):
        sources = {generate_program(s).source for s in range(1, 15)}
        assert len(sources) > 1

    def test_program_shape(self):
        prog = generate_program(3)
        assert "int main" in prog.source
        assert prog.expected_trips >= 0
        assert prog.features
        assert prog.expected_stdout.endswith("\n")

    def test_prediction_matches_reference_run(self):
        """The python-side simulation agrees with actually running the
        program: check_source with the predicted stdout passes."""
        for seed in (1, 2):
            prog = generate_program(seed)
            divergence = check_source(
                prog.source,
                expected_stdout=prog.expected_stdout,
                expected_trips=prog.expected_trips,
                seed=seed,
                features=prog.features,
            )
            assert divergence is None, divergence.describe()


class TestOracle:
    def test_agreeing_program_has_no_divergence(self):
        src = (
            "int main(void) {\n"
            "  int sum = 0;\n"
            "  #pragma omp tile sizes(3)\n"
            "  for (int i = 0; i < 10; i += 1)\n"
            "    sum += i;\n"
            '  printf("%d\\n", sum);\n'
            "  return 0;\n"
            "}\n"
        )
        assert check_source(src) is None

    def test_order_sensitive_body_diverges_vs_stripped(self):
        """A 2-d tile legally reorders iterations; printing the order
        makes the transformed run differ from the stripped reference —
        exactly what the oracle must flag."""
        src = (
            "int main(void) {\n"
            "  #pragma omp tile sizes(2, 2)\n"
            "  for (int i = 0; i < 3; i += 1)\n"
            "    for (int j = 0; j < 3; j += 1)\n"
            '      printf("%d%d ", i, j);\n'
            "  return 0;\n"
            "}\n"
        )
        divergence = check_source(src)
        assert divergence is not None
        assert divergence.kind == "stdout"

    def test_expected_stdout_mismatch_is_flagged(self):
        src = (
            "int main(void) {\n"
            '  printf("1\\n");\n'
            "  return 0;\n"
            "}\n"
        )
        divergence = check_source(src, expected_stdout="2\n")
        assert divergence is not None
        assert divergence.kind == "expected-stdout"

    def test_invalid_program_everywhere_is_not_a_divergence(self):
        """Uncompilable-in-all-configs input is invalid, not a bug."""
        assert check_source("int main(void) { return $; }\n") is None

    def test_reference_config_is_stripped(self):
        assert DEFAULT_CONFIGS[-1].strip_omp_transforms


class TestShrinker:
    def test_drops_irrelevant_lines(self):
        src = "keep\nnoise\nnoise\nnoise\nkeep\n"
        out = shrink_source(src, lambda s: s.count("keep") >= 2)
        assert out.count("keep") == 2
        assert "noise" not in out

    def test_shrinks_integer_literals(self):
        out = shrink_source(
            "x = 987654\n", lambda s: "x = " in s
        )
        assert out == "x = 0\n"

    def test_predicate_false_on_entry_raises(self):
        with pytest.raises(ValueError):
            shrink_source("abc\n", lambda s: False)

    def test_respects_evaluation_budget(self):
        calls = []

        def predicate(s: str) -> bool:
            calls.append(s)
            return "keep" in s

        shrink_source(
            "keep\n" + "line\n" * 40, predicate, max_evaluations=25
        )
        # entry check + at most the budget
        assert len(calls) <= 26


class TestCampaign:
    def test_small_fixed_seed_campaign_is_clean(self, tmp_path):
        report = run_campaign(
            count=3,
            seed=1,
            reproducer_dir=str(tmp_path),
            shrink=False,
            progress=None,
        )
        assert report.count == 3
        assert report.ok
        assert report.unshrunk_count == 0
        # clean campaigns write no reproducers
        assert list(tmp_path.iterdir()) == []
