"""Unit tests: OpenMP canonical loop form analysis (Sema)."""

import pytest

from repro.astlib import stmts as s
from repro.pipeline import CompilationError
from repro.sema.canonical_loop import (
    LoopDirection,
    analyze_canonical_loop,
    collect_loop_nest,
    compute_trip_count,
)

from tests.conftest import compile_c


def analyze(loop_source: str, params: str = "int N"):
    """Compile a function containing the loop; analyze its first loop."""
    src = f"void body(int); void f({params}) {{ {loop_source} }}"
    result = compile_c(src, syntax_only=True)
    body = result.function("f").body
    loop = next(
        st
        for st in body.statements
        if isinstance(st, (s.ForStmt, s.CXXForRangeStmt))
    )
    analysis = analyze_canonical_loop(
        result.ast_context, result.diagnostics, loop
    )
    return analysis, result


def analyze_errors(loop_source: str, params: str = "int N"):
    analysis, result = analyze(loop_source, params)
    assert analysis is None
    return result.diagnostics.render_all()


class TestCanonicalForms:
    def test_simple_up_loop(self):
        analysis, result = analyze(
            "for (int i = 0; i < N; i += 1) body(i);"
        )
        assert analysis is not None
        assert analysis.iter_var.name == "i"
        assert analysis.direction == LoopDirection.UP
        assert analysis.step_value == 1
        assert not analysis.inclusive

    def test_le_condition(self):
        analysis, _ = analyze("for (int i = 0; i <= N; i += 1) body(i);")
        assert analysis.inclusive

    def test_down_loop(self):
        analysis, _ = analyze(
            "for (int i = N; i > 0; i -= 1) body(i);"
        )
        assert analysis.direction == LoopDirection.DOWN
        assert analysis.step_value == -1

    def test_ge_down_loop(self):
        analysis, _ = analyze(
            "for (int i = N; i >= 1; i -= 2) body(i);"
        )
        assert analysis.direction == LoopDirection.DOWN
        assert analysis.inclusive

    def test_flipped_condition(self):
        analysis, _ = analyze("for (int i = 0; N > i; i += 1) body(i);")
        assert analysis is not None
        assert analysis.direction == LoopDirection.UP

    def test_ne_condition(self):
        analysis, _ = analyze("for (int i = 0; i != N; i += 1) body(i);")
        assert analysis.is_inequality

    def test_increment_forms(self):
        for inc in ["i += 2", "i = i + 2", "i = 2 + i"]:
            analysis, _ = analyze(
                f"for (int i = 0; i < N; {inc}) body(i);"
            )
            assert analysis is not None, inc
            assert analysis.step_value == 2, inc

    def test_decrement_forms(self):
        for inc in ["i -= 2", "i = i - 2"]:
            analysis, _ = analyze(
                f"for (int i = N; i > 0; {inc}) body(i);"
            )
            assert analysis is not None, inc
            assert analysis.step_value == -2, inc

    def test_plusplus(self):
        for inc in ["++i", "i++"]:
            analysis, _ = analyze(
                f"for (int i = 0; i < N; {inc}) body(i);"
            )
            assert analysis.step_value == 1

    def test_assignment_init(self):
        analysis, _ = analyze(
            "int i; for (i = 3; i < N; ++i) body(i);"
        )
        assert analysis is not None
        assert not analysis.var_declared_in_init

    def test_range_for_is_canonical(self):
        analysis, _ = analyze(
            "int data[8]; for (int &x : data) body(x);", params="void"
        )
        assert analysis is not None
        assert analysis.iter_var.name == "__begin1"
        assert analysis.is_inequality


class TestNonCanonicalDiagnostics:
    def test_missing_init(self):
        text = analyze_errors("int i = 0; for (; i < N; ++i) body(i);")
        assert "initialization clause" in text

    def test_missing_condition(self):
        text = analyze_errors(
            "for (int i = 0; ; ++i) { body(i); break; }"
        )
        assert "condition" in text

    def test_non_relational_condition(self):
        # A condition not comparing the loop variable.
        text = analyze_errors(
            "for (int i = 0; N; ++i) body(i);"
        )
        assert "relational comparison" in text

    def test_bound_not_invariant(self):
        text = analyze_errors(
            "for (int i = 0; i < i + N; ++i) body(i);"
        )
        assert "loop-invariant" in text

    def test_missing_increment(self):
        text = analyze_errors(
            "for (int i = 0; i < N; ) { body(i); i += 1; }"
        )
        assert "increment" in text

    def test_multiplicative_increment_rejected(self):
        text = analyze_errors(
            "for (int i = 1; i < N; i *= 2) body(i);"
        )
        assert "simple addition or subtraction" in text

    def test_wrong_direction(self):
        text = analyze_errors(
            "for (int i = 0; i < N; i -= 1) body(i);"
        )
        assert "must increase" in text

    def test_not_a_loop(self):
        src = "void body(int); void f(int N) { body(N); }"
        result = compile_c(src, syntax_only=True)
        stmt = result.function("f").body.statements[0]
        analysis = analyze_canonical_loop(
            result.ast_context, result.diagnostics, stmt
        )
        assert analysis is None
        assert "must be a for loop" in result.diagnostics.render_all()

    def test_float_iteration_variable_rejected(self):
        text = analyze_errors(
            "for (double x = 0.0; x < 1.0; x += 0.125) body(0);",
            params="void",
        )
        assert "integer or pointer" in text


class TestTripCount:
    @pytest.mark.parametrize(
        "lb,ub,step,inclusive,ineq,expected",
        [
            (0, 10, 1, False, False, 10),
            (0, 10, 3, False, False, 4),
            (7, 17, 3, False, False, 4),  # the paper's example loop
            (0, 10, 1, True, False, 11),
            (10, 0, -1, False, False, 10),
            (10, 0, -3, False, False, 4),
            (10, 0, -1, True, False, 11),
            (5, 5, 1, False, False, 0),
            (5, 4, 1, False, False, 0),
            (0, 12, 4, False, True, 3),
        ],
    )
    def test_compute_trip_count(
        self, lb, ub, step, inclusive, ineq, expected
    ):
        assert (
            compute_trip_count(lb, ub, step, inclusive, ineq)
            == expected
        )

    def test_constant_trip_from_analysis(self):
        analysis, result = analyze(
            "for (int i = 7; i < 17; i += 3) body(i);", params="void"
        )
        assert analysis.trip_count_if_constant(result.ast_context) == 4

    def test_runtime_trip_is_none(self):
        analysis, result = analyze(
            "for (int i = 0; i < N; ++i) body(i);"
        )
        assert analysis.trip_count_if_constant(result.ast_context) is None


class TestLogicalCounterType:
    """E12 (paper §3.1): the logical iteration counter is an *unsigned*
    integer wide enough for the full iteration space."""

    def test_unsigned_for_int(self):
        analysis, result = analyze(
            "for (int i = 0; i < N; ++i) body(i);"
        )
        assert analysis.logical_type.is_unsigned_integer()
        assert result.ast_context.type_width(analysis.logical_type) == 32

    def test_wide_for_long(self):
        analysis, result = analyze(
            "for (long i = 0; i < N; ++i) body(0);", params="long N"
        )
        assert result.ast_context.type_width(analysis.logical_type) == 64

    def test_small_types_promoted_to_32(self):
        analysis, result = analyze(
            "for (char i = 0; i < N; ++i) body(0);", params="char N"
        )
        assert result.ast_context.type_width(analysis.logical_type) >= 32

    def test_pointer_uses_pointer_width(self):
        analysis, result = analyze(
            "int data[4]; for (int &x : data) body(x);", params="void"
        )
        assert result.ast_context.type_width(analysis.logical_type) == 64
        assert analysis.logical_type.is_unsigned_integer()

    def test_int32_full_range_trip_count_representable(self):
        """The paper's INT32_MIN..INT32_MAX loop (§3.1).

        The paper says "0xfffffffe iterations"; the exact count is
        INT32_MAX - INT32_MIN = 0xffffffff (a paper off-by-one, recorded
        in EXPERIMENTS.md).  Either way the point stands: the count does
        not fit a *signed* 32-bit integer but fits the unsigned logical
        iteration counter.
        """
        analysis, result = analyze(
            "for (int i = -2147483647 - 1; i < 2147483647; ++i)"
            " body(0);",
            params="void",
        )
        trip = analysis.trip_count_if_constant(result.ast_context)
        assert trip == 0xFFFFFFFF
        width = result.ast_context.type_width(analysis.logical_type)
        assert trip < (1 << width)
        # It would NOT fit a signed 32-bit integer:
        assert trip > (1 << 31) - 1


class TestLoopNests:
    def nest(self, source: str, depth: int, params="int N, int M"):
        src = f"void body(int); void f({params}) {{ {source} }}"
        result = compile_c(src, syntax_only=True)
        body = result.function("f").body
        loop = body.statements[0]
        analyses = collect_loop_nest(
            result.ast_context, result.diagnostics, loop, depth, "tile"
        )
        return analyses, result

    def test_perfect_nest(self):
        analyses, _ = self.nest(
            "for (int i = 0; i < N; ++i)"
            "  for (int j = 0; j < M; ++j)"
            "    body(i + j);",
            2,
        )
        assert analyses is not None
        assert [a.iter_var.name for a in analyses] == ["i", "j"]

    def test_braced_nest(self):
        analyses, _ = self.nest(
            "for (int i = 0; i < N; ++i) {"
            "  for (int j = 0; j < M; ++j) body(i);"
            "}",
            2,
        )
        assert analyses is not None

    def test_imperfect_nest_rejected(self):
        analyses, result = self.nest(
            "for (int i = 0; i < N; ++i) {"
            "  body(i);"
            "  for (int j = 0; j < M; ++j) body(j);"
            "}",
            2,
        )
        assert analyses is None
        assert "perfectly nested" in result.diagnostics.render_all()

    def test_insufficient_depth_rejected(self):
        analyses, result = self.nest(
            "for (int i = 0; i < N; ++i) body(i);", 2
        )
        assert analyses is None
        assert "expected 2 nested" in result.diagnostics.render_all()
