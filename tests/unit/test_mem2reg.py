"""Unit tests: the mem2reg (SSA promotion) pass."""

import pytest

from repro.interp import Interpreter
from repro.ir import (
    FunctionType,
    IRBuilder,
    Module,
    i32,
    verify_module,
    void_t,
    ptr,
)
from repro.ir.instructions import (
    AllocaInst,
    BinOp,
    ICmpPred,
    LoadInst,
    PhiInst,
    StoreInst,
)
from repro.midend import DominatorTree, Mem2RegPass
from repro.pipeline import compile_source


def counts(fn):
    allocas = loads = stores = phis = 0
    for inst in fn.instructions():
        if isinstance(inst, AllocaInst):
            allocas += 1
        elif isinstance(inst, LoadInst):
            loads += 1
        elif isinstance(inst, StoreInst):
            stores += 1
        elif isinstance(inst, PhiInst):
            phis += 1
    return allocas, loads, stores, phis


class TestDominanceFrontiers:
    def test_diamond_frontier(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(i32, [i32]))
        b = IRBuilder(mod)
        entry = fn.append_block("entry")
        left = fn.append_block("left")
        right = fn.append_block("right")
        merge = fn.append_block("merge")
        b.set_insert_point(entry)
        cmp = b.icmp(ICmpPred.SGT, fn.args[0], b.const_int(i32, 0))
        b.cond_br(cmp, left, right)
        for blk in (left, right):
            b.set_insert_point(blk)
            b.br(merge)
        b.set_insert_point(merge)
        b.ret(b.const_int(i32, 0))
        df = DominatorTree(fn).dominance_frontiers()
        assert [x.name for x in df[id(left)]] == ["merge"]
        assert [x.name for x in df[id(right)]] == ["merge"]
        assert df[id(entry)] == []

    def test_loop_header_in_own_frontier(self):
        from tests.unit.test_midend import memory_loop_function

        _, fn, _ = memory_loop_function(5)
        df = DominatorTree(fn).dominance_frontiers()
        cond = next(b for b in fn.blocks if b.name == "for.cond")
        inc = next(b for b in fn.blocks if b.name == "for.inc")
        assert cond in df[id(cond)]
        assert cond in df[id(inc)]


class TestPromotion:
    def test_straight_line_promotes_fully(self):
        src = r"""
        int f(int x) {
          int a = x + 1;
          int b = a * 2;
          return b - a;
        }
        """
        result = compile_source(src, openmp=False)
        fn = result.module.get_function("f")
        assert Mem2RegPass().run_on_function(fn)
        verify_module(result.module)
        allocas, loads, stores, _ = counts(fn)
        assert allocas == 0
        assert loads == 0
        assert stores == 0

    def test_diamond_inserts_phi(self):
        src = r"""
        int f(int x) {
          int r;
          if (x > 0) r = 1; else r = 2;
          return r;
        }
        """
        result = compile_source(src, openmp=False)
        fn = result.module.get_function("f")
        Mem2RegPass().run_on_function(fn)
        verify_module(result.module)
        allocas, _, _, phis = counts(fn)
        assert allocas == 0
        assert phis >= 1
        assert Interpreter(result.module).run("f", [5]) == 1
        result2 = compile_source(src, openmp=False)
        Mem2RegPass().run_on_function(result2.module.get_function("f"))
        assert Interpreter(result2.module).run("f", [-5]) == 2

    def test_loop_carried_phi(self):
        src = r"""
        int f(int n) {
          int acc = 0;
          for (int i = 0; i < n; i += 1) acc += i;
          return acc;
        }
        """
        result = compile_source(src, openmp=False)
        fn = result.module.get_function("f")
        Mem2RegPass().run_on_function(fn)
        verify_module(result.module)
        allocas, loads, stores, phis = counts(fn)
        assert allocas == 0 and loads == 0 and stores == 0
        assert phis >= 2  # i and acc around the backedge
        assert Interpreter(result.module).run("f", [10]) == 45

    def test_escaped_alloca_not_promoted(self):
        src = r"""
        void take(int *p);
        int f(void) {
          int kept = 7;
          take(&kept);
          return kept;
        }
        """
        result = compile_source(src, openmp=False)
        fn = result.module.get_function("f")
        Mem2RegPass().run_on_function(fn)
        verify_module(result.module)
        allocas, *_ = counts(fn)
        assert allocas == 1  # address escapes into the call

    def test_array_alloca_not_promoted(self):
        src = r"""
        int f(void) {
          int arr[4];
          arr[0] = 3;
          return arr[0];
        }
        """
        result = compile_source(src, openmp=False)
        fn = result.module.get_function("f")
        Mem2RegPass().run_on_function(fn)
        verify_module(result.module)
        assert Interpreter(result.module).run("f") == 3

    def test_uninitialized_read_is_undef_not_crash(self):
        src = r"""
        int f(int x) {
          int maybe;
          if (x > 0) maybe = 5;
          return x > 0 ? maybe : 0;
        }
        """
        result = compile_source(src, openmp=False)
        fn = result.module.get_function("f")
        Mem2RegPass().run_on_function(fn)
        verify_module(result.module)
        assert Interpreter(result.module).run("f", [3]) == 5
        result2 = compile_source(src, openmp=False)
        Mem2RegPass().run_on_function(result2.module.get_function("f"))
        assert Interpreter(result2.module).run("f", [-1]) == 0

    def test_idempotent(self):
        src = "int f(int x) { int a = x; return a; }"
        result = compile_source(src, openmp=False)
        fn = result.module.get_function("f")
        Mem2RegPass().run_on_function(fn)
        changed_again = Mem2RegPass().run_on_function(fn)
        assert not changed_again


class TestSemanticPreservation:
    @pytest.mark.parametrize(
        "src,args,expected",
        [
            (
                """
                int f(int n) {
                  int best = -1000;
                  for (int i = 0; i < n; i += 1) {
                    int v = (i * 7) % 5 - 2;
                    if (v > best) best = v;
                  }
                  return best;
                }
                """,
                [20],
                max((i * 7) % 5 - 2 for i in range(20)),
            ),
            (
                """
                int f(int n) {
                  int a = 0; int b = 1;
                  while (n > 0) {
                    int t = a + b;
                    a = b; b = t;
                    n -= 1;
                  }
                  return a;
                }
                """,
                [10],
                55,
            ),
        ],
    )
    def test_programs_unchanged(self, src, args, expected):
        baseline = compile_source(src, openmp=False)
        assert Interpreter(baseline.module).run("f", args) == expected

        promoted = compile_source(src, openmp=False)
        fn = promoted.module.get_function("f")
        Mem2RegPass().run_on_function(fn)
        verify_module(promoted.module)
        assert Interpreter(promoted.module).run("f", args) == expected

    def test_openmp_program_after_full_pipeline(self):
        from tests.conftest import run_c

        src = r"""
        int main(void) {
          int total = 0;
          #pragma omp parallel for reduction(+: total)
          for (int i = 0; i < 100; i += 1)
            total += i % 7;
          printf("%d\n", total);
          return 0;
        }
        """
        plain = run_c(src)
        optimized = run_c(src, optimize=True)
        assert plain.stdout == optimized.stdout
        assert (
            optimized.instruction_count < plain.instruction_count
        )

    def test_deep_unroll_chain_no_recursion_error(self):
        """Full unroll of a large constant loop creates a long dominator
        chain; the iterative rename walk must handle it."""
        from tests.conftest import run_c

        src = r"""
        int main(void) {
          int s = 0;
          #pragma omp unroll full
          for (int i = 0; i < 600; i += 1) s += i;
          printf("%d\n", s);
          return 0;
        }
        """
        result = run_c(src, optimize=True)
        assert int(result.stdout) == sum(range(600))
