"""Unit tests: TreeTransform (deep-copy + substitution) and the C
pretty-printer."""

import pytest

from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.astlib.context import ASTContext
from repro.astlib.decls import VarDecl
from repro.astlib.printer import ASTPrinter, print_ast
from repro.astlib.tree_transform import TreeTransform

from tests.conftest import compile_c


@pytest.fixture
def ctx():
    return ASTContext()


def parse_body(src: str, name="f"):
    result = compile_c(src, syntax_only=True)
    return result.function(name).body, result


class TestTreeTransform:
    def test_deep_copy_is_distinct(self):
        body, _ = parse_body(
            "int f(int x) { int y = x + 1; return y * 2; }"
        )
        copy = TreeTransform().transform_stmt(body)
        assert copy is not body
        originals = {id(n) for n in body.walk()}
        for node in copy.walk():
            assert id(node) not in originals

    def test_local_decls_redeclared_and_remapped(self):
        body, _ = parse_body(
            "int f(void) { int y = 1; return y; }"
        )
        tt = TreeTransform()
        copy = tt.transform_stmt(body)
        decl_stmt = copy.statements[0]
        new_decl = decl_stmt.single_decl
        old_decl = body.statements[0].single_decl
        assert new_decl is not old_decl
        ret = copy.statements[1]
        ref = ret.value.ignore_implicit_casts()
        assert isinstance(ref, e.DeclRefExpr)
        assert ref.decl is new_decl

    def test_explicit_decl_substitution(self, ctx):
        old = VarDecl("i", ctx.int_type)
        new = VarDecl("i2", ctx.int_type)
        expr = e.BinaryOperator(
            e.BinaryOperatorKind.ADD,
            e.DeclRefExpr(old, ctx.int_type),
            e.IntegerLiteral(1, ctx.int_type),
            ctx.int_type,
        )
        tt = TreeTransform()
        tt.substitute_decl(old, new)
        copy = tt.transform_expr(expr)
        assert copy.lhs.decl is new

    def test_substitute_decl_with_expression(self, ctx):
        old = VarDecl("i", ctx.int_type)
        replacement = e.IntegerLiteral(42, ctx.int_type)
        ref = e.DeclRefExpr(old, ctx.int_type)
        tt = TreeTransform()
        tt.substitute_decl(old, replacement)
        out = tt.transform_expr(ref)
        assert out is replacement

    def test_param_decls_not_redeclared(self):
        body, result = parse_body("int f(int x) { return x; }")
        fn = result.function("f")
        copy = TreeTransform().transform_stmt(body)
        ref = copy.statements[0].value.ignore_implicit_casts()
        assert ref.decl is fn.params[0]  # same ParmVarDecl object

    def test_control_flow_structures(self):
        body, _ = parse_body(
            """
            int f(int x) {
              while (x > 0) { x -= 1; if (x == 3) break; }
              do x += 1; while (x < 2);
              for (int i = 0; i < 4; ++i) continue;
              return x;
            }
            """
        )
        copy = TreeTransform().transform_stmt(body)
        kinds = {type(n).__name__ for n in copy.walk()}
        assert {"WhileStmt", "DoStmt", "ForStmt", "BreakStmt",
                "ContinueStmt", "IfStmt"} <= kinds

    def test_captured_stmt_copy_keeps_by_value_set(self, ctx):
        from repro.astlib.decls import CapturedDecl

        decl = CapturedDecl(s.NullStmt(), [])
        cap = s.CapturedStmt(decl, [])
        cap.by_value.add("i")
        copy = TreeTransform().transform_stmt(cap)
        assert copy is not cap
        assert copy.by_value == {"i"}


class TestPrinterExpressions:
    def expr_text(self, src_expr: str) -> str:
        body, _ = parse_body(
            f"int a, b, c; int f(void) {{ return {src_expr}; }}"
        )
        return ASTPrinter().print_expr(body.statements[0].value)

    def test_operators(self):
        assert self.expr_text("a + b * c") == "a + (b * c)"

    def test_user_parens_preserved(self):
        assert self.expr_text("(a + b) * c") == "(a + b) * c"

    def test_ternary(self):
        assert self.expr_text("a ? b : c") == "a ? b : c"

    def test_unary_and_cast(self):
        assert self.expr_text("-(long)a") == "-((long)a)"

    def test_call_and_subscript(self):
        body, _ = parse_body(
            "int g(int); int f(void) { int arr[4]; return g(arr[2]); }"
        )
        ret = body.statements[1]
        assert ASTPrinter().print_expr(ret.value) == "g(arr[2])"

    def test_string_escaping(self):
        body, _ = parse_body(
            r'void p(const char*); void f(void) { p("a\"b\n"); }'
        )
        call_text = ASTPrinter().print_expr(body.statements[0])
        assert call_text == r'p("a\"b\n")'

    def test_sizeof(self):
        assert self.expr_text("sizeof(long)") == "sizeof(long)"


class TestPrinterStatements:
    def test_function_printing(self):
        src = "int f(int x) { if (x > 0) return 1; return 0; }"
        _, result = parse_body(src)
        text = print_ast(result.function("f"))
        assert text.startswith("int f(int x)")
        assert "if (x > 0)" in text
        assert "return 1;" in text

    def test_for_loop(self):
        src = "void f(void) { for (int i = 0; i < 4; i += 1) ; }"
        _, result = parse_body(src)
        text = print_ast(result.function("f"))
        assert "for (int i = 0; i < 4; i += 1)" in text

    def test_directive_printing(self):
        src = (
            "void f(void) {\n"
            "#pragma omp parallel for schedule(dynamic, 2)"
            " reduction(+: s)\n"
            "for (int i = 0; i < 4; i += 1) ;\n"
            "}"
        )
        src = "int s; " + src
        _, result = parse_body(src)
        text = print_ast(result.function("f"))
        assert "#pragma omp parallel for" in text
        assert "schedule(dynamic, 2)" in text
        assert "reduction(+: s)" in text

    def test_tile_clause_printing(self):
        src = (
            "void f(void) {\n"
            "#pragma omp tile sizes(2, 4)\n"
            "for (int i = 0; i < 4; i += 1)\n"
            "  for (int j = 0; j < 4; j += 1) ;\n"
            "}"
        )
        _, result = parse_body(src)
        text = print_ast(result.function("f"))
        assert "sizes(2, 4)" in text

    def test_range_for_printing(self):
        src = "void f(void) { int d[4]; for (int &x : d) ; }"
        _, result = parse_body(src)
        text = print_ast(result.function("f"))
        assert "for (int & x : d)" in text or "for (int &x : d)" in text

    def test_array_declaration(self):
        src = "void f(void) { double grid[8]; }"
        _, result = parse_body(src)
        text = print_ast(result.function("f"))
        assert "double grid[8];" in text

    def test_roundtrip_executes_identically(self):
        """Print a computational function and re-compile: same result."""
        src = r"""
        int f(int n) {
          int acc = 1;
          for (int i = 1; i <= n; i += 1) {
            if (i % 2 == 0) acc += i * i;
            else acc -= i;
          }
          return acc;
        }
        int main(void) { printf("%d\n", f(9)); return 0; }
        """
        from tests.conftest import run_c

        _, result = parse_body(src)
        printed = (
            print_ast(result.function("f"))
            + "\n"
            + print_ast(result.function("main"))
        )
        original = run_c(src, openmp=False).stdout
        reprinted = run_c(printed, openmp=False).stdout
        assert original == reprinted
