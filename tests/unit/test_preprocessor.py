"""Unit tests: preprocessor — macros, conditionals, includes, pragmas."""

import pytest

from repro.diagnostics import DiagnosticsEngine, Severity
from repro.lex.tokens import TokenKind
from repro.preprocessor import Preprocessor, PreprocessorOptions
from repro.sourcemgr import FileManager, SourceManager

K = TokenKind


def preprocess(
    source: str,
    defines: dict | None = None,
    files: dict | None = None,
    openmp: bool = True,
):
    sm = SourceManager()
    fm = FileManager()
    for name, text in (files or {}).items():
        fm.register_virtual_file(name, text)
    diags = DiagnosticsEngine(sm)
    pp = Preprocessor(
        sm,
        fm,
        diags,
        PreprocessorOptions(defines=defines or {}, openmp=openmp),
    )
    pp.enter_source(source, "test.c")
    tokens = pp.lex_all()
    return tokens, diags


def spellings(source: str, **kw) -> list[str]:
    tokens, diags = preprocess(source, **kw)
    assert not diags.has_errors(), diags.render_all()
    return [t.spelling for t in tokens if t.kind != K.EOF]


class TestObjectMacros:
    def test_simple_expansion(self):
        assert spellings("#define N 10\nN") == ["10"]

    def test_nested_expansion(self):
        assert spellings("#define A B\n#define B 42\nA") == ["42"]

    def test_self_reference_not_infinite(self):
        assert spellings("#define X X\nX") == ["X"]

    def test_mutual_recursion_guarded(self):
        out = spellings("#define A B\n#define B A\nA")
        assert out == ["A"]

    def test_undef(self):
        assert spellings("#define N 1\n#undef N\nN") == ["N"]

    def test_redefinition_warns(self):
        _, diags = preprocess("#define N 1\n#define N 2\n")
        assert diags.warning_count == 1

    def test_identical_redefinition_no_warning(self):
        _, diags = preprocess("#define N 1\n#define N 1\n")
        assert diags.warning_count == 0

    def test_predefined_openmp_macro(self):
        out = spellings("_OPENMP")
        assert out == ["202011"]

    def test_no_openmp_macro_without_fopenmp(self):
        out = spellings("_OPENMP", openmp=False)
        assert out == ["_OPENMP"]


class TestFunctionMacros:
    def test_basic(self):
        assert spellings("#define SQ(x) ((x)*(x))\nSQ(4)") == list(
            "((4)*(4))"
        )

    def test_multi_arg(self):
        assert spellings(
            "#define ADD(a, b) a + b\nADD(1, 2)"
        ) == ["1", "+", "2"]

    def test_nested_call_args(self):
        out = spellings(
            "#define F(x) x\n#define G(x) F(x)\nG(F(7))"
        )
        assert out == ["7"]

    def test_name_without_parens_not_expanded(self):
        out = spellings("#define F(x) x\nint F;")
        assert out == ["int", "F", ";"]

    def test_stringify(self):
        out = spellings('#define STR(x) #x\nSTR(a + b)')
        assert out == ['"a + b"']

    def test_paste(self):
        out = spellings("#define CAT(a, b) a##b\nCAT(foo, bar)")
        assert out == ["foobar"]

    def test_variadic(self):
        out = spellings(
            "#define CALL(f, ...) f(__VA_ARGS__)\nCALL(g, 1, 2)"
        )
        assert out == ["g", "(", "1", ",", "2", ")"]

    def test_wrong_arity_errors(self):
        _, diags = preprocess("#define F(a, b) a\nF(1)\n")
        assert diags.has_errors()

    def test_args_with_parens(self):
        out = spellings("#define ID(x) x\nID((1, 2))")
        assert out == ["(", "1", ",", "2", ")"]


class TestConditionals:
    def test_if_true(self):
        assert spellings("#if 1\nyes\n#endif") == ["yes"]

    def test_if_false(self):
        assert spellings("#if 0\nno\n#endif") == []

    def test_else(self):
        assert spellings("#if 0\nno\n#else\nyes\n#endif") == ["yes"]

    def test_elif_chain(self):
        src = "#if 0\na\n#elif 1\nb\n#elif 1\nc\n#else\nd\n#endif"
        assert spellings(src) == ["b"]

    def test_nested_conditionals(self):
        src = (
            "#if 1\n#if 0\nskip\n#else\nkeep\n#endif\n#endif"
        )
        assert spellings(src) == ["keep"]

    def test_nested_skipped_entirely(self):
        src = "#if 0\n#if 1\nx\n#endif\n#endif\ny"
        assert spellings(src) == ["y"]

    def test_ifdef(self):
        assert spellings("#define X 1\n#ifdef X\nin\n#endif") == ["in"]

    def test_ifndef(self):
        assert spellings("#ifndef X\nout\n#endif") == ["out"]

    def test_defined_operator(self):
        src = "#define X 1\n#if defined(X) && !defined(Y)\nok\n#endif"
        assert spellings(src) == ["ok"]

    def test_arithmetic_in_condition(self):
        assert spellings("#if 2 * 3 == 6\ny\n#endif") == ["y"]

    def test_macro_in_condition(self):
        assert spellings("#define V 5\n#if V > 4\nbig\n#endif") == [
            "big"
        ]

    def test_unterminated_conditional_errors(self):
        _, diags = preprocess("#if 1\nx\n")
        assert diags.has_errors()

    def test_endif_without_if_errors(self):
        _, diags = preprocess("#endif\n")
        assert diags.has_errors()


class TestIncludes:
    def test_quoted_include(self):
        out = spellings(
            '#include "lib.h"\nmain_token',
            files={"lib.h": "lib_token"},
        )
        assert out == ["lib_token", "main_token"]

    def test_include_defines_visible(self):
        out = spellings(
            '#include "defs.h"\nWIDTH',
            files={"defs.h": "#define WIDTH 640"},
        )
        assert out == ["640"]

    def test_nested_include(self):
        out = spellings(
            '#include "a.h"\nend',
            files={"a.h": '#include "b.h"\na', "b.h": "b"},
        )
        assert out == ["b", "a", "end"]

    def test_missing_include_is_fatal(self):
        from repro.diagnostics import FatalErrorOccurred

        sm = SourceManager()
        fm = FileManager()
        diags = DiagnosticsEngine(sm)
        pp = Preprocessor(sm, fm, diags, PreprocessorOptions())
        pp.enter_source('#include "nope.h"\n', "t.c")
        with pytest.raises(FatalErrorOccurred):
            pp.lex_all()


class TestPragmas:
    def test_omp_pragma_becomes_annotation(self):
        tokens, diags = preprocess(
            "#pragma omp parallel for\nx;"
        )
        kinds = [t.kind for t in tokens]
        assert K.ANNOT_PRAGMA_OPENMP in kinds
        assert K.ANNOT_PRAGMA_OPENMP_END in kinds
        annot = next(
            t for t in tokens if t.kind == K.ANNOT_PRAGMA_OPENMP
        )
        body = annot.annotation_value
        assert [t.spelling for t in body] == ["parallel", "for"]

    def test_omp_pragma_disabled_without_fopenmp(self):
        tokens, diags = preprocess(
            "#pragma omp parallel\nx;", openmp=False
        )
        assert all(
            t.kind != K.ANNOT_PRAGMA_OPENMP for t in tokens
        )
        assert diags.warning_count == 1

    def test_macro_expansion_in_pragma_body_deferred(self):
        # Tokens inside the pragma are captured raw; clause expressions
        # are parsed (and names resolved) later by the parser.
        tokens, _ = preprocess(
            "#define W 8\n#pragma omp unroll partial(W)\n"
        )
        annot = next(
            t for t in tokens if t.kind == K.ANNOT_PRAGMA_OPENMP
        )
        assert [t.spelling for t in annot.annotation_value] == [
            "unroll",
            "partial",
            "(",
            "W",
            ")",
        ]

    def test_clang_loop_pragma(self):
        tokens, _ = preprocess(
            "#pragma clang loop unroll_count(4)\nx;"
        )
        assert any(
            t.kind == K.ANNOT_PRAGMA_LOOPHINT for t in tokens
        )

    def test_unknown_pragma_warns(self):
        _, diags = preprocess("#pragma weird thing\n")
        assert diags.warning_count == 1

    def test_multiline_pragma_via_splice(self):
        tokens, _ = preprocess(
            "#pragma omp parallel \\\n    num_threads(2)\nx;"
        )
        annot = next(
            t for t in tokens if t.kind == K.ANNOT_PRAGMA_OPENMP
        )
        assert [t.spelling for t in annot.annotation_value] == [
            "parallel",
            "num_threads",
            "(",
            "2",
            ")",
        ]


class TestMiscDirectives:
    def test_error_directive(self):
        _, diags = preprocess("#error something broke\n")
        assert diags.has_errors()
        assert "something broke" in diags.render_all()

    def test_warning_directive(self):
        _, diags = preprocess("#warning heads up\n")
        assert diags.warning_count == 1

    def test_line_directive(self):
        tokens, diags = preprocess('#line 100 "gen.c"\nx\n')
        sm = diags.source_manager
        x = next(t for t in tokens if t.spelling == "x")
        ploc = sm.get_presumed_loc(x.location)
        assert ploc.filename == "gen.c"
        assert ploc.line == 100

    def test_unknown_directive_errors(self):
        _, diags = preprocess("#frobnicate\n")
        assert diags.has_errors()

    def test_line_and_file_magic_macros(self):
        out = spellings("__LINE__\n__LINE__")
        assert out == ["1", "2"]
        out2 = spellings("__FILE__")
        assert out2 == ['"test.c"']
