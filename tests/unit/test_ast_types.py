"""Unit tests: the Type system and ASTContext layout (LP64)."""

import pytest

from repro.astlib.context import ASTContext
from repro.astlib.decls import FieldDecl, RecordDecl, TypedefDecl
from repro.astlib.types import BuiltinKind, QualType, desugar


@pytest.fixture
def ctx():
    return ASTContext()


class TestUniquing:
    def test_builtin_uniqued(self, ctx):
        assert ctx.int_type.type is ctx.int_type.type
        assert (
            ctx.get_builtin(BuiltinKind.INT).type
            is ctx.get_builtin(BuiltinKind.INT).type
        )

    def test_pointer_uniqued(self, ctx):
        a = ctx.get_pointer(ctx.int_type)
        b = ctx.get_pointer(ctx.int_type)
        assert a.type is b.type

    def test_pointer_qualified_pointee_distinct(self, ctx):
        a = ctx.get_pointer(ctx.int_type)
        b = ctx.get_pointer(ctx.int_type.with_const())
        assert a.type is not b.type

    def test_array_uniqued(self, ctx):
        a = ctx.get_constant_array(ctx.double_type, 8)
        b = ctx.get_constant_array(ctx.double_type, 8)
        c = ctx.get_constant_array(ctx.double_type, 9)
        assert a.type is b.type
        assert a.type is not c.type

    def test_function_uniqued(self, ctx):
        a = ctx.get_function(ctx.int_type, [ctx.int_type])
        b = ctx.get_function(ctx.int_type, [ctx.int_type])
        assert a.type is b.type


class TestClassification:
    def test_signed_unsigned(self, ctx):
        assert ctx.int_type.is_signed_integer()
        assert ctx.uint_type.is_unsigned_integer()
        assert not ctx.uint_type.is_signed_integer()
        assert ctx.double_type.is_floating()
        assert not ctx.double_type.is_integer()

    def test_scalar(self, ctx):
        assert ctx.int_type.is_scalar()
        assert ctx.get_pointer(ctx.void_type).is_scalar()
        arr = ctx.get_constant_array(ctx.int_type, 4)
        assert not arr.is_scalar()

    def test_bool_is_unsigned_integer(self, ctx):
        assert ctx.bool_type.is_unsigned_integer()


class TestLP64Layout:
    @pytest.mark.parametrize(
        "kind,width",
        [
            (BuiltinKind.CHAR, 8),
            (BuiltinKind.SHORT, 16),
            (BuiltinKind.INT, 32),
            (BuiltinKind.LONG, 64),
            (BuiltinKind.LONGLONG, 64),
            (BuiltinKind.FLOAT, 32),
            (BuiltinKind.DOUBLE, 64),
        ],
    )
    def test_builtin_widths(self, ctx, kind, width):
        assert ctx.type_width(ctx.get_builtin(kind)) == width

    def test_pointer_width(self, ctx):
        assert ctx.type_width(ctx.get_pointer(ctx.int_type)) == 64

    def test_size_t_is_64bit_unsigned(self, ctx):
        assert ctx.type_width(ctx.size_type) == 64
        assert ctx.size_type.is_unsigned_integer()

    def test_ptrdiff_is_signed(self, ctx):
        assert ctx.ptrdiff_type.is_signed_integer()

    def test_array_size(self, ctx):
        arr = ctx.get_constant_array(ctx.int_type, 10)
        assert ctx.type_size_bytes(arr) == 40


class TestStructLayout:
    def test_padding(self, ctx):
        rec = RecordDecl("S")
        rec.add_field(FieldDecl("c", ctx.char_type))
        rec.add_field(FieldDecl("d", ctx.double_type))
        qt = ctx.get_record(rec)
        assert ctx.type_size_bytes(qt) == 16
        assert ctx.field_offset_bytes(rec, "c") == 0
        assert ctx.field_offset_bytes(rec, "d") == 8

    def test_packed_ints(self, ctx):
        rec = RecordDecl("P")
        rec.add_field(FieldDecl("a", ctx.int_type))
        rec.add_field(FieldDecl("b", ctx.int_type))
        assert ctx.type_size_bytes(ctx.get_record(rec)) == 8

    def test_union_layout(self, ctx):
        rec = RecordDecl("U", is_union=True)
        rec.add_field(FieldDecl("i", ctx.int_type))
        rec.add_field(FieldDecl("d", ctx.double_type))
        qt = ctx.get_record(rec)
        assert ctx.type_size_bytes(qt) == 8
        assert ctx.field_offset_bytes(rec, "i") == 0
        assert ctx.field_offset_bytes(rec, "d") == 0

    def test_tail_padding(self, ctx):
        rec = RecordDecl("T")
        rec.add_field(FieldDecl("d", ctx.double_type))
        rec.add_field(FieldDecl("c", ctx.char_type))
        assert ctx.type_size_bytes(ctx.get_record(rec)) == 16


class TestSpelling:
    def test_builtin_spelling(self, ctx):
        assert ctx.int_type.spelling() == "int"
        assert ctx.ulong_type.spelling() == "unsigned long"

    def test_pointer_spelling(self, ctx):
        assert ctx.get_pointer(ctx.int_type).spelling() == "int *"
        nested = ctx.get_pointer(ctx.get_pointer(ctx.int_type))
        assert nested.spelling() == "int **"

    def test_qualified_pointer_spelling_matches_clang(self, ctx):
        """Paper Listing 3: 'const int *const __restrict'."""
        inner = ctx.get_pointer(ctx.int_type.with_const())
        qt = QualType(inner.type, is_const=True, is_restrict=True)
        assert qt.spelling() == "const int *const __restrict"

    def test_reference_spelling(self, ctx):
        assert ctx.get_reference(ctx.double_type).spelling() == "double &"

    def test_array_spelling(self, ctx):
        assert (
            ctx.get_constant_array(ctx.int_type, 4).spelling()
            == "int[4]"
        )

    def test_function_spelling(self, ctx):
        fn = ctx.get_function(
            ctx.void_type, [ctx.int_type], is_variadic=False
        )
        assert fn.spelling() == "void (int)"
        variadic = ctx.get_function(
            ctx.int_type, [ctx.get_pointer(ctx.char_type)], True
        )
        assert "..." in variadic.spelling()


class TestTypedefSugar:
    def test_desugar(self, ctx):
        decl = TypedefDecl("myint", ctx.int_type)
        sugar = ctx.get_typedef(decl)
        assert sugar.spelling() == "myint"
        assert desugar(sugar).type is ctx.int_type.type

    def test_desugar_preserves_qualifiers(self, ctx):
        decl = TypedefDecl("cint", ctx.int_type.with_const())
        sugar = ctx.get_typedef(decl)
        assert desugar(sugar).is_const

    def test_is_same_type_through_typedef(self, ctx):
        decl = TypedefDecl("myint", ctx.int_type)
        sugar = ctx.get_typedef(decl)
        assert ctx.is_same_type(sugar, ctx.int_type)


class TestIntTypeOfWidth:
    @pytest.mark.parametrize("bits", [8, 16, 32, 64])
    @pytest.mark.parametrize("signed", [True, False])
    def test_roundtrip(self, ctx, bits, signed):
        qt = ctx.int_type_of_width(bits, signed)
        assert ctx.type_width(qt) == bits
        assert qt.is_signed_integer() == signed
