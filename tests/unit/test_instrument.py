"""Unit tests for the observability subsystem (repro.instrument):
time-trace, statistics registry, optimization remarks and execution
profiles, plus the structured PassManager run results."""

import json

import pytest

from repro.instrument import (
    STATS,
    RemarkKind,
    TimeTraceProfiler,
    active_time_trace,
    disable_time_trace,
    enable_time_trace,
    get_statistic,
    time_trace_scope,
)
from repro.midend import default_pass_pipeline
from repro.midend.pass_manager import PipelineRunResult
from repro.pipeline import compile_source, run_source
from tests.conftest import compile_c, run_c

UNROLL_SRC = """
int main() {
  int sum = 0;
  #pragma omp unroll partial(4)
  for (int i = 0; i < 16; i++) sum += i;
  return sum;
}
"""

PARALLEL_SRC = r"""
int main() {
  int acc = 0;
  #pragma omp parallel for reduction(+: acc)
  for (int i = 0; i < 64; i++) acc += i;
  printf("%d\n", acc);
  return 0;
}
"""


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled (the profiler is
    a process-global, like LLVM's TimeTraceProfilerInstance)."""
    disable_time_trace()
    yield
    disable_time_trace()


# ======================================================================
# Pillar 1: time-trace
# ======================================================================
class TestTimeTrace:
    def test_disabled_scope_is_shared_noop(self):
        assert active_time_trace() is None
        scope_a = time_trace_scope("A")
        scope_b = time_trace_scope("B", "detail")
        assert scope_a is scope_b  # one shared null object
        with scope_a:
            pass  # no-op, no error

    def test_enable_is_idempotent(self):
        first = enable_time_trace()
        second = enable_time_trace()
        assert first is second
        assert disable_time_trace() is first
        assert active_time_trace() is None

    def test_scope_records_event(self):
        profiler = enable_time_trace()
        with time_trace_scope("Phase", "input.c"):
            pass
        assert len(profiler.events) == 1
        event = profiler.events[0]
        assert event.name == "Phase"
        assert event.detail == "input.c"
        assert event.duration_ns >= 0

    def test_chrome_trace_schema(self):
        """The export must be loadable chrome://tracing JSON: an object
        with a traceEvents array of 'X' events (ts/dur in microseconds)
        plus process/thread metadata."""
        profiler = enable_time_trace()
        with time_trace_scope("Outer"):
            with time_trace_scope("Inner"):
                pass
        disable_time_trace()
        data = json.loads(profiler.to_chrome_json())
        assert isinstance(data["traceEvents"], list)
        assert isinstance(data["beginningOfTime"], int)
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"Outer", "Inner"}
        for event in complete:
            assert set(event) >= {"ph", "pid", "tid", "ts", "dur", "name"}
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        # Sorted by begin time so viewers reconstruct nesting.
        timestamps = [e["ts"] for e in complete]
        assert timestamps == sorted(timestamps)
        assert {e["name"] for e in meta} == {
            "process_name",
            "thread_name",
        }

    def test_granularity_filters_short_events(self):
        profiler = TimeTraceProfiler(granularity_us=10_000_000)
        with profiler.scope("tiny"):
            pass
        assert profiler.events  # recorded...
        complete = [
            e for e in profiler.chrome_trace()["traceEvents"]
            if e["ph"] == "X"
        ]
        assert complete == []  # ...but below the reporting threshold

    def test_compile_and_run_produce_phase_events(self):
        profiler = enable_time_trace()
        run_source(UNROLL_SRC, optimize=True)
        disable_time_trace()
        names = {e.name for e in profiler.events}
        assert {
            "Preprocess",
            "Parse",
            "CodeGen",
            "CodeGen.Function",
            "Verify",
            "Pass.loop-unroll",
            "Execute",
        } <= names
        # Sema directive handling appears with the directive name.
        sema_events = [
            e for e in profiler.events if e.name == "Sema.OMPDirective"
        ]
        assert any(e.detail == "unroll" for e in sema_events)


# ======================================================================
# Pillar 2: statistics
# ======================================================================
class TestStatistics:
    def test_get_statistic_returns_same_counter(self):
        a = get_statistic("test-owner", "some-counter", "desc")
        b = get_statistic("test-owner", "some-counter")
        assert a is b
        assert a.qualified_name == "test-owner.some-counter"

    def test_snapshot_delta(self):
        stat = get_statistic("test-owner", "delta-counter")
        before = STATS.snapshot()
        stat.inc()
        stat.inc(2)
        delta = STATS.delta_since(before)
        assert delta["test-owner.delta-counter"] == 3
        # Unchanged counters do not appear in the delta.
        assert "shadow.nodes-built" not in delta

    def test_compile_accumulates_counters(self):
        """One compile advances the front-end counters, and the delta
        attached to the result covers exactly that compile."""
        first = compile_c(UNROLL_SRC)
        second = compile_c(UNROLL_SRC)
        for result in (first, second):
            assert result.stats["shadow.nodes-built"] > 0
            assert result.stats["shadow.transforms-built"] == 1
            assert result.stats["preprocessor.tokens-lexed"] > 0
            assert result.stats["parser.external-decls-parsed"] == 1
            assert result.stats["codegen.functions-emitted"] == 1
            assert result.stats["codegen.instructions-emitted"] > 0
        # Independent deltas: the second compile is not inflated by the
        # first even though the registry is process-global.
        assert (
            second.stats["shadow.nodes-built"]
            == first.stats["shadow.nodes-built"]
        )

    def test_midend_counters_advance_under_optimize(self):
        before = STATS.snapshot()
        run_source(UNROLL_SRC, optimize=True)
        delta = STATS.delta_since(before)
        assert delta["loop-unroll.loops-unrolled"] == 1
        assert delta["loop-unroll.copies-made"] == 3  # factor 4
        assert delta["mem2reg.allocas-promoted"] > 0
        assert delta["midend.pass-function-changes"] > 0

    def test_render_text_format(self):
        stat = get_statistic(
            "test-owner", "render-counter", "Things counted"
        )
        stat.inc(7)
        text = STATS.render_text(
            {"test-owner.render-counter": 7}
        )
        assert "... Statistics Collected ..." in text
        assert "7 test-owner - Things counted" in text

    def test_render_json_roundtrip(self):
        data = STATS.render_json({"a.b": 1, "c.d": 2})
        assert json.loads(json.dumps(data)) == {"a.b": 1, "c.d": 2}


# ======================================================================
# Pillar 3: optimization remarks
# ======================================================================
class TestRemarks:
    def test_applied_transformation_emits_passed_remark(self):
        result = compile_c(UNROLL_SRC)
        passed = result.remarks.by_kind(RemarkKind.PASSED)
        unroll = [r for r in passed if r.pass_name == "unroll"]
        assert len(unroll) == 1
        remark = unroll[0]
        assert remark.args["factor"] == 4
        assert remark.location is not None
        rendered = remark.render(result.source_manager)
        assert "remark:" in rendered
        assert "[-Rpass=unroll]" in rendered
        assert "factor of 4" in rendered

    def test_midend_unroll_emits_passed_remark_naming_factor(self):
        outcome = run_c(UNROLL_SRC, optimize=True)
        remarks = outcome.compile_result.remarks.by_pass("loop-unroll")
        passed = [
            r for r in remarks if r.kind == RemarkKind.PASSED
        ]
        assert len(passed) == 1
        assert passed[0].args["factor"] == 4
        assert "factor of 4" in passed[0].message

    def test_rejected_transformation_emits_missed_remark(self):
        src = """
        int main() {
          int sum = 0;
          #pragma omp tile sizes(4, 4)
          for (int i = 0; i < 16; i++) sum += i;
          return sum;
        }
        """
        result = compile_source(src, strict=False)
        missed = result.remarks.by_kind(RemarkKind.MISSED)
        assert len(missed) == 1
        assert missed[0].pass_name == "tile"
        assert "tile not applied" in missed[0].message
        assert missed[0].args["depth"] == 2

    def test_full_unroll_unknown_trip_count_analysis_remark(self):
        """The mid-end falls back to partial unrolling when full
        unrolling is requested (``llvm.loop.unroll.full``) but the trip
        count is not a compile-time constant; the fallback is reported
        as an analysis remark."""
        from repro.instrument import RemarkEmitter
        from repro.ir.metadata import loop_metadata
        from repro.midend.loop_unroll import LoopUnrollPass

        src = """
        int work(int n) {
          int sum = 0;
          for (int i = 0; i < n; i++) sum += i;
          return sum;
        }
        """
        result = compile_source(src, openmp=False)
        fn = result.module.get_function("work")
        latch = next(b for b in fn.blocks if b.name == "for.inc")
        latch.terminator.metadata["llvm.loop"] = loop_metadata(
            unroll_full=True
        )
        remarks = RemarkEmitter()
        assert LoopUnrollPass(remarks=remarks).run_on_function(fn)
        analysis = [
            r
            for r in remarks.by_kind(RemarkKind.ANALYSIS)
            if r.pass_name == "loop-unroll"
        ]
        assert analysis, remarks.render_all()
        assert "unable to fully unroll" in analysis[0].message
        # The fallback itself is then reported as passed.
        assert remarks.by_kind(RemarkKind.PASSED)

    def test_filtered_regex_per_kind(self):
        result = compile_c(UNROLL_SRC)
        assert result.remarks.filtered(passed="unro")  # regex search
        assert not result.remarks.filtered(passed="^tile$")
        # A passed-only filter never returns missed/analysis remarks.
        for remark in result.remarks.filtered(passed=".*"):
            assert remark.kind == RemarkKind.PASSED

    def test_remarks_stay_out_of_diagnostics(self):
        result = compile_c(UNROLL_SRC)
        assert len(result.remarks) > 0
        assert len(result.diagnostics.diagnostics) == 0


# ======================================================================
# Pillar 4: execution profiles
# ======================================================================
class TestExecutionProfile:
    def test_profile_agrees_with_legacy_instruction_count(self):
        outcome = run_c(UNROLL_SRC, optimize=True)
        assert outcome.instruction_count > 0
        assert (
            outcome.profile.total_instructions
            == outcome.instruction_count
        )

    def test_parallel_per_thread_profile(self):
        outcome = run_c(PARALLEL_SRC, num_threads=4)
        profile = outcome.profile
        assert profile.fork_count == 1
        threads = profile.thread_profiles()
        # gtid 0 (serial main) + 4 team members
        assert len(threads) == 5
        workers = [tp for tp in threads if tp.gtid != 0]
        assert all(tp.instructions > 0 for tp in workers)
        assert all(tp.barrier_waits >= 1 for tp in workers)
        assert profile.barrier_episodes >= 1
        assert profile.total_barrier_waits == sum(
            tp.barrier_waits for tp in threads
        )
        utilization = profile.utilization()
        assert sum(utilization.values()) == pytest.approx(1.0)

    def test_detailed_block_attribution_and_loop_report(self):
        outcome = run_c(
            UNROLL_SRC, optimize=True, profile_detail=True
        )
        profile = outcome.profile
        # Block-level attribution covers every retired instruction.
        assert (
            sum(profile.block_counts.values())
            == profile.total_instructions
        )
        assert profile.function_counts()["main"] > 0
        loops = profile.loop_report(outcome.compile_result.module)
        assert loops
        main_loops = [lp for lp in loops if lp.function == "main"]
        assert any(lp.instructions > 0 for lp in main_loops)
        # Disjoint attribution: per-loop counts cannot exceed the total.
        assert (
            sum(lp.instructions for lp in loops)
            <= profile.total_instructions
        )

    def test_detail_off_collects_no_blocks(self):
        outcome = run_c(UNROLL_SRC, optimize=True)
        assert outcome.profile.detailed is False
        assert outcome.profile.block_counts == {}

    def test_to_json_schema(self):
        outcome = run_c(
            PARALLEL_SRC, num_threads=2, profile_detail=True
        )
        data = outcome.profile.to_json(outcome.compile_result.module)
        assert json.loads(json.dumps(data))  # serializable
        assert data["total_instructions"] > 0
        assert data["fork_count"] == 1
        assert {"gtid", "instructions", "barrier_waits"} <= set(
            data["threads"][0]
        )
        assert "functions" in data
        assert "loops" in data


# ======================================================================
# Satellite: PassManager structured run results
# ======================================================================
class TestPassManagerRunInfo:
    def test_run_returns_structured_result(self):
        result = compile_c(UNROLL_SRC)
        pm = default_pass_pipeline()
        run = pm.run(result.module)
        assert isinstance(run, PipelineRunResult)
        assert bool(run) is True  # unroll + cleanup changed things
        unroll = run.info("loop-unroll")
        assert unroll.functions_visited == 1
        assert unroll.functions_changed == 1
        assert unroll.duration_s >= 0.0
        assert run.changes_by_pass()["loop-unroll"] == 1
        assert pm.last_run is run
        assert pm.last_run_changes == run.changes_by_pass()

    def test_second_run_reports_no_changes(self):
        result = compile_c(UNROLL_SRC)
        pm = default_pass_pipeline()
        pm.run(result.module)
        again = pm.run(result.module)
        assert bool(again) is False
        assert again.info("loop-unroll").functions_changed == 0
        # Visits still happened; only the change count is zero.
        assert again.info("loop-unroll").functions_visited == 1

    def test_unknown_pass_raises(self):
        run = PipelineRunResult()
        with pytest.raises(KeyError):
            run.info("nonexistent")
