"""Unit tests for the wire protocol: framing, the resyncing decoder,
message constructors, and untrusted request deserialization."""

from __future__ import annotations

import json
import struct

import pytest

from repro.service.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_SIZE,
    MAGIC,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    ProtocolError,
    encode_frame,
    error_message,
    iter_frames,
    ping_message,
    request_from_wire,
    request_message,
    request_to_wire,
    response_message,
)
from repro.service.request import CompileRequest


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestEncodeFrame:
    def test_round_trip(self):
        payload = {"type": "ping", "id": "x", "v": PROTOCOL_VERSION}
        events = list(iter_frames(encode_frame(payload)))
        assert events == [payload]

    def test_header_layout(self):
        frame = encode_frame({"a": 1})
        magic, version, reserved, length = struct.unpack_from(
            ">2sBBI", frame
        )
        assert magic == MAGIC
        assert version == PROTOCOL_VERSION
        assert reserved == 0
        assert length == len(frame) - HEADER_SIZE
        assert json.loads(frame[HEADER_SIZE:]) == {"a": 1}

    def test_refuses_oversized_payload(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * 128}, max_frame_bytes=64)

    def test_many_frames_one_buffer(self):
        payloads = [{"n": i} for i in range(10)]
        data = b"".join(encode_frame(p) for p in payloads)
        assert list(iter_frames(data)) == payloads


class TestFrameDecoder:
    def test_byte_at_a_time(self):
        payload = {"type": "request", "id": "r1", "n": 42}
        data = encode_frame(payload)
        decoder = FrameDecoder()
        events = []
        for i in range(len(data)):
            events.extend(decoder.feed(data[i : i + 1]))
        assert events == [payload]
        assert decoder.frames_decoded == 1
        assert decoder.errors == 0
        assert not decoder.mid_frame

    def test_mid_frame_flag(self):
        data = encode_frame({"k": "v"})
        decoder = FrameDecoder()
        decoder.feed(data[:5])
        assert decoder.mid_frame
        decoder.feed(data[5:])
        assert not decoder.mid_frame

    def test_garbage_then_frame_resyncs(self):
        junk = bytes([0x00, 0xFE, 0x7F]) * 7  # no MAGIC inside
        payload = ping_message("after")
        events = list(iter_frames(junk + encode_frame(payload)))
        assert len(events) == 2
        error, frame = events
        assert isinstance(error, FrameError)
        assert error.code == "bad-magic"
        assert error.skipped == len(junk)
        assert not error.fatal
        assert frame == payload

    def test_garbage_coalesced_into_one_error(self):
        junk = b"\x00" * 100
        decoder = FrameDecoder()
        for i in range(0, len(junk), 7):
            decoder.feed(junk[i : i + 7])
        events = decoder.feed(encode_frame({"ok": True}))
        errors = [e for e in events if isinstance(e, FrameError)]
        assert len(errors) == 1
        assert errors[0].skipped == len(junk)

    def test_magic_straddling_chunk_boundary(self):
        payload = {"x": 1}
        data = b"\x01\x02\x03" + encode_frame(payload)
        # split right between the two magic bytes
        split = 3 + 1
        decoder = FrameDecoder()
        events = decoder.feed(data[:split])
        events += decoder.feed(data[split:])
        assert payload in events

    def test_bad_version_skips_exactly_one_frame(self):
        bad = encode_frame({"old": True}, version=99)
        good = ping_message("still-here")
        events = list(iter_frames(bad + encode_frame(good)))
        assert isinstance(events[0], FrameError)
        assert events[0].code == "bad-version"
        assert not events[0].fatal
        assert events[1] == good

    def test_bad_payload_not_json(self):
        body = b"not json at all"
        frame = struct.pack(
            ">2sBBI", MAGIC, PROTOCOL_VERSION, 0, len(body)
        ) + body
        events = list(iter_frames(frame + encode_frame({"n": 1})))
        assert events[0].code == "bad-payload"
        assert events[1] == {"n": 1}

    def test_bad_payload_not_object(self):
        frame = encode_frame({})  # re-pack a list body manually
        body = b"[1,2,3]"
        frame = struct.pack(
            ">2sBBI", MAGIC, PROTOCOL_VERSION, 0, len(body)
        ) + body
        (event,) = iter_frames(frame)
        assert isinstance(event, FrameError)
        assert event.code == "bad-payload"

    def test_bad_payload_not_utf8(self):
        body = b"\xff\xfe{}"
        frame = struct.pack(
            ">2sBBI", MAGIC, PROTOCOL_VERSION, 0, len(body)
        ) + body
        (event,) = iter_frames(frame)
        assert event.code == "bad-payload"

    def test_oversized_declared_length_is_fatal_error(self):
        header = struct.pack(
            ">2sBBI", MAGIC, PROTOCOL_VERSION, 0, 1 << 30
        )
        decoder = FrameDecoder(max_frame_bytes=1024)
        events = decoder.feed(header)
        errors = [e for e in events if isinstance(e, FrameError)]
        assert errors and errors[0].code == "oversized-frame"
        assert errors[0].fatal

    def test_decoder_recovers_after_oversized(self):
        header = struct.pack(
            ">2sBBI", MAGIC, PROTOCOL_VERSION, 0, 1 << 30
        )
        decoder = FrameDecoder(max_frame_bytes=1024)
        decoder.feed(header)
        events = decoder.feed(encode_frame({"back": 1}))
        assert {"back": 1} in events

    def test_chunking_invariance(self):
        junk = b"\x00\x01\x02"
        data = (
            encode_frame({"a": 1})
            + junk
            + encode_frame({"b": 2}, version=55)
            + encode_frame({"c": 3})
        )
        whole = list(iter_frames(data))
        for chunk in (1, 2, 3, 5, 11):
            decoder = FrameDecoder()
            events = []
            for i in range(0, len(data), chunk):
                events.extend(decoder.feed(data[i : i + chunk]))
            assert events == whole


# ----------------------------------------------------------------------
# Message constructors
# ----------------------------------------------------------------------
class TestMessages:
    def test_request_message_carries_remaining_deadline(self):
        request = CompileRequest(source="int main(){return 0;}")
        msg = request_message("m1", request, deadline_s=1.23456789)
        assert msg["type"] == "request"
        assert msg["id"] == "m1"
        assert msg["deadline_s"] == pytest.approx(1.234568)
        assert "hedge" not in msg

    def test_hedge_flag(self):
        request = CompileRequest(source="int main(){return 0;}")
        msg = request_message("m2", request, hedge=True)
        assert msg["hedge"] is True

    def test_response_and_error_messages(self):
        msg = response_message("m1", {"status": "ok"}, shard=3)
        assert msg["shard"] == 3
        err = error_message("draining", "bye", msg_id="m1", retryable=True)
        assert err["retryable"] is True
        assert err["id"] == "m1"
        bare = error_message("bad-magic")
        assert "id" not in bare and "retryable" not in bare


# ----------------------------------------------------------------------
# CompileRequest <-> wire
# ----------------------------------------------------------------------
class TestRequestWire:
    def test_round_trip_preserves_fields(self):
        request = CompileRequest(
            source="int main(){return 7;}",
            filename="t.c",
            action="run",
            mode="irbuilder",
            optimize=True,
            defines={"N": "4"},
            inject_faults=("service-worker-exit",),
            fault_attempts=2,
            deadline_s=2.5,
        )
        wire = request_to_wire(request)
        json.dumps(wire)  # must be JSON-safe
        rebuilt = request_from_wire(json.loads(json.dumps(wire)))
        assert rebuilt.source == request.source
        assert rebuilt.filename == request.filename
        assert rebuilt.action == "run"
        assert rebuilt.mode == "irbuilder"
        assert rebuilt.optimize is True
        assert rebuilt.defines == {"N": "4"}
        assert rebuilt.inject_faults == ("service-worker-exit",)
        assert rebuilt.fault_attempts == 2
        assert rebuilt.deadline_s == 2.5
        assert rebuilt.fingerprint() == request.fingerprint()

    def test_request_id_does_not_cross_the_wire(self):
        request = CompileRequest(source="int main(){return 0;}")
        request.request_id = "local-007"
        assert "request_id" not in request_to_wire(request)

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            request_from_wire(["not", "a", "dict"])

    def test_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown"):
            request_from_wire({"source": "x", "evil": 1})

    def test_rejects_missing_source(self):
        with pytest.raises(ProtocolError, match="source"):
            request_from_wire({"filename": "a.c"})

    def test_rejects_wrong_types(self):
        with pytest.raises(ProtocolError):
            request_from_wire({"source": 42})
        with pytest.raises(ProtocolError):
            request_from_wire({"source": "x", "fuel": "lots"})

    def test_bool_cannot_pose_as_int(self):
        with pytest.raises(ProtocolError):
            request_from_wire({"source": "x", "fault_attempts": True})

    def test_rejects_bad_action_and_mode(self):
        with pytest.raises(ProtocolError, match="action"):
            request_from_wire({"source": "x", "action": "delete"})
        with pytest.raises(ProtocolError, match="mode"):
            request_from_wire({"source": "x", "mode": "quantum"})

    def test_rejects_non_str_defines_and_faults(self):
        with pytest.raises(ProtocolError, match="defines"):
            request_from_wire({"source": "x", "defines": {"N": 4}})
        with pytest.raises(ProtocolError, match="inject_faults"):
            request_from_wire({"source": "x", "inject_faults": [1]})

    def test_default_max_frame_fits_real_requests(self):
        request = CompileRequest(source="int x;\n" * 1000)
        frame = encode_frame(request_message("m", request))
        assert len(frame) < DEFAULT_MAX_FRAME_BYTES
