"""Unit tests: the diagnostics engine itself."""

import pytest

from repro.diagnostics import (
    DiagnosticsEngine,
    FatalErrorOccurred,
    Severity,
    TooManyErrors,
)
from repro.sourcemgr import MemoryBuffer, SourceManager


@pytest.fixture
def engine_with_source():
    sm = SourceManager()
    fid = sm.create_main_file(
        MemoryBuffer("d.c", "int x;\nint broken here;\n")
    )
    return DiagnosticsEngine(sm), sm, fid


class TestCountsAndQueries:
    def test_counts(self):
        engine = DiagnosticsEngine()
        engine.warning("w1")
        engine.error("e1")
        engine.warning("w2")
        engine.note("n1")
        assert engine.warning_count == 2
        assert engine.error_count == 1
        assert engine.has_errors()
        assert len(engine) == 4

    def test_iteration_filters(self):
        engine = DiagnosticsEngine()
        engine.warning("w")
        engine.error("e")
        assert [d.message for d in engine.errors()] == ["e"]
        assert [d.message for d in engine.warnings()] == ["w"]

    def test_clear(self):
        engine = DiagnosticsEngine()
        engine.error("e")
        engine.clear()
        assert not engine.has_errors()

    def test_empty_engine_is_falsy_but_usable(self):
        """Regression: `engine or default` must not be used — an empty
        engine is falsy via __len__."""
        engine = DiagnosticsEngine()
        assert len(engine) == 0
        assert not engine  # documents the footgun
        engine.error("x")
        assert engine


class TestSeverityBehaviour:
    def test_warnings_as_errors(self):
        engine = DiagnosticsEngine(warnings_as_errors=True)
        engine.warning("promoted")
        assert engine.error_count == 1
        assert engine.warning_count == 0

    def test_fatal_raises(self):
        engine = DiagnosticsEngine()
        with pytest.raises(FatalErrorOccurred):
            engine.fatal("boom")
        assert engine.error_count == 1

    def test_error_limit(self):
        engine = DiagnosticsEngine(error_limit=2)
        engine.error("1")
        engine.error("2")
        with pytest.raises(TooManyErrors):
            engine.error("3")

    def test_severity_labels(self):
        assert Severity.ERROR.label == "error"
        assert Severity.FATAL.label == "fatal error"
        assert Severity.NOTE.label == "note"


class TestNotes:
    def test_note_chaining(self):
        engine = DiagnosticsEngine()
        diag = engine.error("primary").add_note("context one").add_note(
            "context two"
        )
        assert len(diag.notes) == 2
        assert diag.notes[0].severity == Severity.NOTE

    def test_render_includes_notes(self):
        engine = DiagnosticsEngine()
        engine.error("primary").add_note("declared here")
        text = engine.render_all()
        assert "error: primary" in text
        assert "note: declared here" in text


class TestRendering:
    def test_caret_rendering(self, engine_with_source):
        engine, sm, fid = engine_with_source
        loc = sm.get_loc_for_offset(fid, 11)  # 'broken' on line 2
        engine.error("something is broken", loc)
        text = engine.render_all()
        assert "d.c:2:5: error: something is broken" in text
        lines = text.splitlines()
        caret_line = lines[-1]
        assert caret_line.strip() == "^"
        assert caret_line.index("^") == 4  # column 5, 0-based 4

    def test_invalid_location_renders_unknown(self):
        engine = DiagnosticsEngine()
        engine.error("floating message")
        assert "<unknown>" in engine.render_all()

    def test_summary(self):
        engine = DiagnosticsEngine()
        assert engine.summary() == ""
        engine.warning("w")
        assert engine.summary() == "1 warning generated."
        engine.error("e")
        engine.error("e2")
        assert engine.summary() == "1 warning and 2 errors generated."


class TestSuppression:
    def test_suppressed_context(self):
        engine = DiagnosticsEngine()
        with engine.suppressed():
            engine.error("invisible")
        assert engine.error_count == 0
        engine.error("visible")
        assert engine.error_count == 1

    def test_nested_suppression(self):
        engine = DiagnosticsEngine()
        with engine.suppressed():
            with engine.suppressed():
                engine.warning("deep")
            engine.warning("mid")
        engine.warning("out")
        assert engine.warning_count == 1

    def test_fatal_escapes_suppression(self):
        engine = DiagnosticsEngine()
        with pytest.raises(FatalErrorOccurred):
            with engine.suppressed():
                engine.fatal("cannot hide")

    def test_category_filter(self):
        engine = DiagnosticsEngine()
        engine.report(Severity.WARNING, "a", category="openmp")
        engine.report(Severity.WARNING, "b", category="lex")
        assert [d.message for d in engine.by_category("openmp")] == [
            "a"
        ]
