"""E3: the class hierarchies match the paper's Figs. 4, 5 and 6.

* Fig. 4: Stmt -> Expr; Stmt -> ForStmt/CXXForRangeStmt;
  Stmt -> OMPExecutableDirective -> OMPLoopDirective -> OMPForDirective /
  OMPParallelForDirective; Stmt -> CapturedStmt.
* Fig. 5: OMPLoopBasedDirective inserted between OMPExecutableDirective
  and OMPLoopDirective; OMPUnrollDirective/OMPTileDirective derive from
  OMPLoopBasedDirective (not OMPLoopDirective!).
* Fig. 6: OMPClause -> OMPFullClause / OMPPartialClause / OMPSizesClause.
* §1.2: no common base class across Stmt / Decl / Type / OMPClause.
"""

from repro.astlib import clauses as cl
from repro.astlib import decls as d
from repro.astlib import exprs as e
from repro.astlib import omp
from repro.astlib import stmts as s
from repro.astlib import types as t


class TestFig4StmtHierarchy:
    def test_expr_derives_from_stmt(self):
        assert issubclass(e.Expr, s.Stmt)

    def test_loops_derive_from_stmt(self):
        assert issubclass(s.ForStmt, s.Stmt)
        assert issubclass(s.CXXForRangeStmt, s.Stmt)

    def test_captured_stmt_is_a_stmt(self):
        assert issubclass(s.CapturedStmt, s.Stmt)

    def test_directive_chain(self):
        assert issubclass(omp.OMPExecutableDirective, s.Stmt)
        assert issubclass(
            omp.OMPParallelDirective, omp.OMPExecutableDirective
        )
        assert issubclass(omp.OMPLoopDirective, omp.OMPExecutableDirective)
        assert issubclass(omp.OMPForDirective, omp.OMPLoopDirective)
        assert issubclass(
            omp.OMPParallelForDirective, omp.OMPLoopDirective
        )


class TestFig5LoopTransformationHierarchy:
    def test_loop_based_between_executable_and_loop(self):
        assert issubclass(
            omp.OMPLoopBasedDirective, omp.OMPExecutableDirective
        )
        assert issubclass(
            omp.OMPLoopDirective, omp.OMPLoopBasedDirective
        )

    def test_transformations_derive_from_loop_based(self):
        assert issubclass(
            omp.OMPUnrollDirective, omp.OMPLoopBasedDirective
        )
        assert issubclass(
            omp.OMPTileDirective, omp.OMPLoopBasedDirective
        )

    def test_transformations_do_not_inherit_loop_directive_shadow(self):
        """The motivation for OMPLoopBasedDirective: transformations do
        not need OMPLoopDirective's many shadow AST nodes."""
        assert not issubclass(
            omp.OMPUnrollDirective, omp.OMPLoopDirective
        )
        assert not issubclass(
            omp.OMPTileDirective, omp.OMPLoopDirective
        )

    def test_parallel_not_loop_based(self):
        assert not issubclass(
            omp.OMPParallelDirective, omp.OMPLoopBasedDirective
        )


class TestFig6ClauseHierarchy:
    def test_new_clauses(self):
        assert issubclass(cl.OMPFullClause, cl.OMPClause)
        assert issubclass(cl.OMPPartialClause, cl.OMPClause)
        assert issubclass(cl.OMPSizesClause, cl.OMPClause)

    def test_existing_clauses(self):
        assert issubclass(cl.OMPScheduleClause, cl.OMPClause)
        assert issubclass(cl.OMPReductionClause, cl.OMPVarListClause)


class TestNoCommonBaseClass:
    """Paper §1.2: 'there is no common base class for AST nodes'."""

    def test_four_distinct_roots(self):
        roots = [s.Stmt, d.Decl, t.Type, cl.OMPClause]
        for i, a in enumerate(roots):
            for b in roots[i + 1 :]:
                assert not issubclass(a, b)
                assert not issubclass(b, a)

    def test_separate_visitors_exist(self):
        from repro.astlib.visitor import (
            DeclVisitor,
            OMPClauseVisitor,
            StmtVisitorBase,
            TypeVisitor,
        )

        visitors = [
            StmtVisitorBase,
            DeclVisitor,
            TypeVisitor,
            OMPClauseVisitor,
        ]
        for i, a in enumerate(visitors):
            for b in visitors[i + 1 :]:
                assert a is not b


class TestShadowASTAccounting:
    """Paper §1.2: 'up to 30 shadow AST statements for representing a
    loop nest, plus 6 for each loop'."""

    def test_loop_nest_capacity_at_least_30(self):
        assert omp.LoopDirectiveHelpers.capacity() >= 30

    def test_per_loop_capacity_is_6(self):
        assert omp.LoopHelperExprs.capacity() == 6

    def test_shadow_capacity_formula(self):
        assert omp.OMPLoopDirective.shadow_capacity(1) == (
            omp.LoopDirectiveHelpers.capacity() + 6
        )
        assert omp.OMPLoopDirective.shadow_capacity(3) == (
            omp.LoopDirectiveHelpers.capacity() + 18
        )

    def test_canonical_loop_meta_count_is_3(self):
        """Paper §3.1: the minimal meta-information set — distance fn,
        user value fn, user variable reference."""
        import inspect

        sig = inspect.signature(omp.OMPCanonicalLoop.__init__)
        meta_params = [
            p
            for p in sig.parameters
            if p in ("distance_func", "loop_var_func", "loop_var_ref")
        ]
        assert len(meta_params) == 3


class TestChildrenSemantics:
    def test_children_excludes_clauses(self):
        """Paper §1.2 footnote: children() returns Stmts only, so clauses
        cannot be enumerated through it."""
        from repro.astlib.context import ASTContext

        ctx = ASTContext()
        clause = cl.OMPFullClause()
        body = s.NullStmt()
        directive = omp.OMPUnrollDirective([clause], body)
        children = list(directive.children())
        assert body in children
        assert clause not in children

    def test_shadow_children_hidden_from_children(self):
        body = s.NullStmt()
        transformed = s.NullStmt()
        directive = omp.OMPUnrollDirective(
            [], body, 1, transformed_stmt=transformed
        )
        assert transformed not in list(directive.children())
        assert transformed in list(directive.shadow_children())
        assert directive.get_transformed_stmt() is transformed
