"""Unit tests: the AST dumper format and the visitor infrastructure."""

import pytest

from repro.astlib.context import ASTContext
from repro.astlib.decls import VarDecl
from repro.astlib.dump import dump_ast
from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.astlib.visitor import (
    RecursiveASTVisitor,
    StmtVisitorBase,
    collect_stmts,
    count_nodes,
)


@pytest.fixture
def ctx():
    return ASTContext()


def make_loop(ctx):
    """for (int i = 7; i < 17; i += 3) ;  -- paper Listing 3's loop."""
    var = VarDecl("i", ctx.int_type, e.IntegerLiteral(7, ctx.int_type))
    ref = e.DeclRefExpr(var, ctx.int_type)
    loaded = e.ImplicitCastExpr(
        e.CastKind.LVALUE_TO_RVALUE, ref, ctx.int_type
    )
    cond = e.BinaryOperator(
        e.BinaryOperatorKind.LT,
        loaded,
        e.IntegerLiteral(17, ctx.int_type),
        ctx.int_type,
    )
    inc = e.CompoundAssignOperator(
        e.BinaryOperatorKind.ADD_ASSIGN,
        e.DeclRefExpr(var, ctx.int_type),
        e.IntegerLiteral(3, ctx.int_type),
        ctx.int_type,
        ctx.int_type,
    )
    return s.ForStmt(s.DeclStmt([var]), cond, inc, s.NullStmt()), var


class TestDumpFormat:
    def test_tree_connectors(self, ctx):
        loop, _ = make_loop(ctx)
        dump = dump_ast(loop)
        lines = dump.splitlines()
        assert lines[0] == "ForStmt"
        assert lines[1].startswith("|-DeclStmt")
        assert any(line.startswith("`-") for line in lines)
        assert any(line.startswith("| `-") for line in lines)

    def test_vardecl_line(self, ctx):
        loop, _ = make_loop(ctx)
        dump = dump_ast(loop)
        assert "VarDecl used i 'int' cinit" in dump

    def test_integer_literal_line(self, ctx):
        loop, _ = make_loop(ctx)
        assert "IntegerLiteral 'int' 7" in dump_ast(loop)
        assert "IntegerLiteral 'int' 17" in dump_ast(loop)

    def test_declref_line(self, ctx):
        loop, _ = make_loop(ctx)
        assert (
            "DeclRefExpr 'int' lvalue Var 'i' 'int'" in dump_ast(loop)
        )

    def test_compound_assign_line(self, ctx):
        loop, _ = make_loop(ctx)
        assert "CompoundAssignOperator 'int' '+='" in dump_ast(loop)

    def test_null_slot_marker(self, ctx):
        loop = s.ForStmt(None, None, None, s.NullStmt())
        dump = dump_ast(loop)
        assert dump.count("<<<NULL>>>") == 3

    def test_implicit_cast_line(self, ctx):
        loop, _ = make_loop(ctx)
        assert "ImplicitCastExpr 'int' <LValueToRValue>" in dump_ast(
            loop
        )

    def test_constant_expr_with_value_line(self, ctx):
        """Paper Listing 5: ConstantExpr dumps a 'value: Int N' line."""
        inner = e.IntegerLiteral(2, ctx.int_type)
        const = e.ConstantExpr(inner, 2)
        dump = dump_ast(const)
        assert "ConstantExpr 'int'" in dump
        assert "value: Int 2" in dump

    def test_addresses_optional(self, ctx):
        loop, _ = make_loop(ctx)
        plain = dump_ast(loop)
        with_addr = dump_ast(loop, show_addresses=True)
        assert "0x" not in plain
        assert "0x" in with_addr

    def test_attributed_stmt_with_loop_hint(self, ctx):
        hint = s.LoopHintAttr(
            s.LoopHintAttr.UNROLL_COUNT,
            e.IntegerLiteral(2, ctx.int_type),
        )
        stmt = s.AttributedStmt([hint], s.NullStmt())
        dump = dump_ast(stmt)
        assert "AttributedStmt" in dump
        assert "LoopHintAttr Implicit loop UnrollCount Numeric" in dump


class TestStmtVisitor:
    def test_dispatch_most_derived(self, ctx):
        loop, _ = make_loop(ctx)
        hits = []

        class V(StmtVisitorBase):
            def visit_ForStmt(self, stmt):
                hits.append("for")

            def visit_Stmt(self, stmt):
                hits.append("stmt")

        V().visit(loop)
        assert hits == ["for"]

    def test_dispatch_falls_back_to_base(self, ctx):
        loop, _ = make_loop(ctx)

        class V(StmtVisitorBase):
            def visit_Stmt(self, stmt):
                return "generic"

        assert V().visit(loop) == "generic"

    def test_compound_assign_dispatches_before_binary(self, ctx):
        _, var = make_loop(ctx)
        compound = e.CompoundAssignOperator(
            e.BinaryOperatorKind.ADD_ASSIGN,
            e.DeclRefExpr(var, ctx.int_type),
            e.IntegerLiteral(1, ctx.int_type),
            ctx.int_type,
            ctx.int_type,
        )

        class V(StmtVisitorBase):
            def visit_CompoundAssignOperator(self, stmt):
                return "compound"

            def visit_BinaryOperator(self, stmt):
                return "binary"

        assert V().visit(compound) == "compound"


class TestRecursiveVisitor:
    def test_counts_nodes(self, ctx):
        loop, _ = make_loop(ctx)
        n = count_nodes(loop)
        assert n >= 8

    def test_shadow_excluded_by_default(self, ctx):
        from repro.astlib import omp

        loop, _ = make_loop(ctx)
        directive = omp.OMPUnrollDirective(
            [], s.NullStmt(), 1, transformed_stmt=loop
        )
        without = count_nodes(directive)
        with_shadow = count_nodes(directive, include_shadow=True)
        assert with_shadow > without

    def test_collect_with_predicate(self, ctx):
        loop, _ = make_loop(ctx)
        literals = collect_stmts(
            loop, predicate=lambda st: isinstance(st, e.IntegerLiteral)
        )
        assert len(literals) == 3  # 7, 17, 3

    def test_visits_decl_initializers(self, ctx):
        loop, var = make_loop(ctx)
        seen = []

        class V(RecursiveASTVisitor):
            def visit_decl(self, decl):
                seen.append(decl)
                return True

        V().traverse_stmt(loop)
        assert var in seen

    def test_prune_subtree(self, ctx):
        loop, _ = make_loop(ctx)
        seen = []

        class V(RecursiveASTVisitor):
            def visit_stmt(self, stmt):
                seen.append(type(stmt).__name__)
                return not isinstance(stmt, s.ForStmt)

        V().traverse_stmt(loop)
        assert seen == ["ForStmt"]


class TestWalk:
    def test_preorder(self, ctx):
        loop, _ = make_loop(ctx)
        names = [type(n).__name__ for n in loop.walk()]
        assert names[0] == "ForStmt"
        assert "BinaryOperator" in names
        assert "NullStmt" in names

    def test_ignore_helpers(self, ctx):
        inner = e.IntegerLiteral(1, ctx.int_type)
        wrapped = e.ParenExpr(
            e.ImplicitCastExpr(
                e.CastKind.INTEGRAL_CAST, inner, ctx.long_type
            )
        )
        assert wrapped.ignore_parens() is not inner
        assert wrapped.ignore_implicit_casts() is inner
