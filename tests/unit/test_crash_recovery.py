"""Unit tests for the crash-resilience subsystem (PR 3).

Covers :mod:`repro.core.crash_recovery` (recovery scopes, pretty stacks,
reproducer writing), :mod:`repro.instrument.faultinject` (deterministic
fault windows), the Sema :class:`~repro.astlib.exprs.RecoveryExpr`
placeholders, and the interpreter guardrail primitives.
"""

from __future__ import annotations

import pytest

from repro.astlib import exprs as e
from repro.core.crash_recovery import (
    InternalCompilerError,
    crash_context,
    crash_recovery_enabled,
    format_location,
    pretty_stack,
    pretty_stack_entry,
    recovery_scope,
    set_crash_recovery_enabled,
    write_reproducer,
)
from repro.diagnostics import (
    DiagnosticsEngine,
    FatalErrorOccurred,
    Severity,
    TooManyErrors,
)
from repro.instrument.faultinject import (
    FAULTS,
    FaultRegistry,
    InjectedFault,
)
from repro.interp.memory import Memory, MemoryLimitExceeded
from repro.pipeline import compile_source


@pytest.fixture(autouse=True)
def _clean_fault_state():
    FAULTS.disarm_all()
    set_crash_recovery_enabled(True)
    yield
    FAULTS.disarm_all()
    set_crash_recovery_enabled(True)


class TestPrettyStack:
    def test_nesting_and_unwind(self):
        assert pretty_stack() == []
        with pretty_stack_entry("outer"):
            with pretty_stack_entry("inner"):
                assert pretty_stack() == ["outer", "inner"]
            assert pretty_stack() == ["outer"]
        assert pretty_stack() == []

    def test_snapshot_stapled_to_escaping_exception(self):
        """The innermost entries survive unwinding (crash-point
        semantics, like Clang's signal-time PrettyStackTrace dump)."""
        try:
            with pretty_stack_entry("outer"):
                with pretty_stack_entry("inner"):
                    raise ValueError("boom")
        except ValueError as err:
            assert err._pretty_stack == ["outer", "inner"]
        assert pretty_stack() == []


class TestRecoveryScope:
    def test_propagate_mode_raises_ice(self):
        with pytest.raises(InternalCompilerError) as exc:
            with pretty_stack_entry("doing the thing"):
                with recovery_scope("testing"):
                    raise RuntimeError("kaboom")
        ice = exc.value
        assert ice.phase == "testing"
        assert "internal compiler error in testing" in str(ice)
        assert "RuntimeError" in str(ice)
        assert "doing the thing" in ice.stack
        assert "Traceback" in ice.traceback_text
        # the rendered report never leaks the raw Python traceback
        assert "Traceback (most recent call last)" not in ice.render()
        assert "Stack dump:" in ice.render()

    def test_recover_mode_emits_ice_diagnostic(self):
        diags = DiagnosticsEngine()
        with recovery_scope("sema-directive", diags, recover=True):
            raise RuntimeError("kaboom")
        assert diags.ice_count == 1
        assert diags.has_internal_errors()
        assert diags.error_count == 1
        diag = diags.diagnostics[0]
        assert diag.category == "ice"
        assert "internal compiler error in sema-directive" in diag.message

    def test_control_flow_exceptions_pass_through(self):
        diags = DiagnosticsEngine()
        for exc_type in (TooManyErrors,):
            with pytest.raises(exc_type):
                with recovery_scope("phase", diags, recover=True):
                    raise exc_type("limit")
        with pytest.raises(FatalErrorOccurred):
            with recovery_scope("phase", diags, recover=True):
                diags.fatal("fatal thing")
        # a nested ICE is not double-wrapped
        inner = InternalCompilerError("inner", ValueError("x"), [], "tb")
        with pytest.raises(InternalCompilerError) as exc:
            with recovery_scope("outer"):
                raise inner
        assert exc.value is inner

    def test_passthrough_parameter(self):
        class GuestTrap(Exception):
            pass

        with pytest.raises(GuestTrap):
            with recovery_scope("interpret", passthrough=(GuestTrap,)):
                raise GuestTrap()

    def test_disabled_recovery_reraises_raw(self):
        set_crash_recovery_enabled(False)
        assert not crash_recovery_enabled()
        with pytest.raises(RuntimeError):
            with recovery_scope("phase"):
                raise RuntimeError("raw")

    def test_ice_error_bypasses_error_limit(self):
        """ICE diagnostics are appended directly so containment cannot
        re-trip -ferror-limit inside the crash handler."""
        diags = DiagnosticsEngine(error_limit=1)
        diags.error("first")
        with recovery_scope("phase", diags, recover=True):
            raise RuntimeError("crash after limit")
        assert diags.ice_count == 1


class TestReproducerWriting:
    def test_reproducer_layout(self, tmp_path):
        src = "int main() { return 0; }\n"
        with crash_context(
            src, "t.c", "miniclang t.c", str(tmp_path)
        ):
            with pretty_stack_entry("compiling 't.c'"):
                path = write_reproducer(
                    "parse", ValueError("boom"), "fake traceback\n"
                )
        assert path is not None
        repro_dir = tmp_path / "t-parse-001"
        assert (repro_dir / "repro.c").read_text() == src
        assert "miniclang t.c" in (repro_dir / "cmd").read_text()
        tb = (repro_dir / "traceback.txt").read_text()
        assert "phase: parse" in tb
        assert "ValueError: boom" in tb
        assert "compiling 't.c'" in tb

    def test_no_context_no_write(self):
        assert write_reproducer("x", ValueError(), "tb") is None

    def test_sequence_numbering(self, tmp_path):
        with crash_context("src", "a.c", None, str(tmp_path)):
            p1 = write_reproducer("sema", ValueError(), "tb")
            p2 = write_reproducer("sema", ValueError(), "tb")
        assert p1.endswith("001")
        assert p2.endswith("002")

    def test_scope_writes_reproducer(self, tmp_path):
        with crash_context("src", "b.c", None, str(tmp_path)):
            with pytest.raises(InternalCompilerError) as exc:
                with recovery_scope("codegen"):
                    raise KeyError("lost")
        assert exc.value.reproducer_path is not None
        assert "b-codegen-001" in exc.value.reproducer_path


class TestFaultRegistry:
    def test_registered_sites_enumerable(self):
        names = FAULTS.site_names()
        for expected in (
            "lexer",
            "preprocessor",
            "parser",
            "sema-directive",
            "codegen-function",
            "midend-pass",
            "interp-step",
        ):
            assert expected in names

    def test_unarmed_hit_is_free(self):
        assert not FAULTS.armed
        FAULTS.hit("lexer")  # no exception

    def test_arm_first_occurrence(self):
        reg = FaultRegistry()
        reg.register("site-a")
        assert reg.arm_spec("site-a") == "site-a"
        with pytest.raises(InjectedFault) as exc:
            reg.hit("site-a")
        assert exc.value.site == "site-a"
        # the window is one occurrence wide: later hits pass
        reg.hit("site-a")

    def test_arm_nth_occurrence(self):
        reg = FaultRegistry()
        reg.register("site-b")
        reg.arm_spec("site-b:3")
        reg.hit("site-b")
        reg.hit("site-b")
        with pytest.raises(InjectedFault) as exc:
            reg.hit("site-b")
        assert exc.value.occurrence == 3

    def test_bad_specs_rejected(self):
        reg = FaultRegistry()
        reg.register("site-c")
        with pytest.raises(ValueError, match="unknown fault site"):
            reg.arm_spec("nope")
        with pytest.raises(ValueError, match="integer"):
            reg.arm_spec("site-c:xyz")
        with pytest.raises(ValueError, match=">= 1"):
            reg.arm_spec("site-c:0")

    def test_disarm_all(self):
        reg = FaultRegistry()
        reg.register("site-d")
        reg.arm_spec("site-d")
        reg.disarm_all()
        assert not reg.armed
        reg.hit("site-d")  # no exception


class TestRecoveryExpr:
    def test_undeclared_identifier_yields_recovery_expr(self):
        result = compile_source(
            "int main() { return nope; }", strict=False
        )
        assert result.diagnostics.error_count == 1
        dump = result.ast_dump()
        assert "RecoveryExpr" in dump

    def test_cascade_suppressed(self):
        """One undeclared identifier used in many operations produces
        exactly one diagnostic, not an error avalanche."""
        src = """
        int main() {
          int x = nope + 1;
          int y = -nope;
          int z = nope ? nope : nope;
          return x + y + z + nope;
        }
        """
        result = compile_source(src, strict=False)
        messages = [d.message for d in result.diagnostics.errors()]
        # Six mentions of `nope`, six primary errors — and nothing else:
        # no "invalid operands", no "called object is not a function",
        # no follow-on type errors derived from the poisoned value.
        assert len(messages) == 6
        assert all(
            "use of undeclared identifier" in m for m in messages
        )

    def test_contains_errors_helper(self):
        from repro.astlib.types import QualType

        rec = e.RecoveryExpr([], None)
        assert e.contains_errors(rec)
        assert not e.contains_errors(None)
        assert not e.contains_errors()


class TestMemoryLimit:
    def test_allocate_over_limit_raises(self):
        mem = Memory(1 << 12, limit=1 << 13)
        mem.allocate(1 << 12)  # grows fine
        with pytest.raises(MemoryLimitExceeded, match="ceiling"):
            mem.allocate(1 << 13)

    def test_unlimited_by_default(self):
        mem = Memory(1 << 12)
        mem.allocate(1 << 14)  # grows geometrically, no limit
