"""Unit tests for the service metrics registry
(:mod:`repro.instrument.telemetry.metrics`)."""

from __future__ import annotations

import pytest

from repro.instrument.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)


class TestCounterAndGauge:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "help text")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("responses_total", "", ("status",))
        c.labels(status="ok").inc(2)
        c.labels(status="error").inc()
        assert c.labels(status="ok").value == 2
        assert c.labels(status="error").value == 1

    def test_label_names_validated(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "", ("status",))
        with pytest.raises(ValueError):
            c.labels(wrong="ok")
        with pytest.raises(ValueError):
            c.inc()  # labeled metric requires .labels(...)

    def test_gauge_up_and_down(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4

    def test_reregistration_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError):
            reg.gauge("a_total")
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 3.0))
        reg.counter("lbl", "", ("x",))
        with pytest.raises(ValueError):
            reg.counter("lbl", "", ("y",))


class TestHistogram:
    def test_bucket_boundaries_are_upper_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        cell = h.labels()
        for v in (0.1, 0.05):  # both land in (0, 0.1]
            cell.observe(v)
        cell.observe(0.5)  # (0.1, 1.0]
        cell.observe(100.0)  # overflow
        assert cell.counts == [2, 1, 0, 1]
        assert cell.total == 4

    def test_quantiles_within_one_bucket_of_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=DEFAULT_LATENCY_BUCKETS)
        cell = h.labels()
        values = [0.001, 0.002, 0.004, 0.02, 0.2, 2.0]
        for v in values:
            cell.observe(v)
        for q in (0.5, 0.95, 0.99):
            lo, hi = cell.quantile_bounds(q)
            exact = sorted(values)[
                max(0, int(-(-q * len(values) // 1)) - 1)
            ]
            assert lo < exact <= hi

    def test_quantile_of_empty_histogram_is_zero(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        assert h.quantile(0.99) == 0.0

    def test_overflow_reports_last_finite_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.5) == 2.0


class TestSnapshotAndMerge:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("reqs_total", "r", ("status",)).labels(
            status="ok"
        ).inc(3)
        reg.gauge("depth").set(7)
        h = reg.histogram("lat", "l", ("outcome",), buckets=(0.1, 1.0))
        h.labels(outcome="ok").observe(0.05)
        h.labels(outcome="ok").observe(0.5)
        return reg

    def test_snapshot_roundtrips_through_merge(self):
        snap = self._registry().snapshot()
        merged = MetricsRegistry()
        merged.merge(snap)
        merged.merge(snap)
        out = merged.snapshot()
        ok_row = out["reqs_total"]["series"][0]
        assert ok_row["value"] == 6
        lat_row = out["lat"]["series"][0]
        assert lat_row["count"] == 4
        assert lat_row["buckets"] == [2, 2, 0]
        # gauges take the max, not the sum
        assert out["depth"]["series"][0]["value"] == 7

    def test_merge_rejects_different_bucket_layout(self):
        reg = MetricsRegistry()
        reg.histogram("lat", "l", ("outcome",), buckets=(0.5,)).labels(
            outcome="ok"
        ).observe(0.1)
        with pytest.raises(ValueError):
            reg.merge(self._registry().snapshot())

    def test_snapshot_has_precomputed_percentiles(self):
        snap = self._registry().snapshot()
        row = snap["lat"]["series"][0]
        assert {"p50", "p95", "p99"} <= set(row)

    def test_snapshot_is_json_safe_and_sorted(self):
        import json

        snap = self._registry().snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)


class TestPrometheusRendering:
    def test_text_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", "requests", ("status",)).labels(
            status="ok"
        ).inc(2)
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(9.0)
        text = reg.render_prometheus()
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{status="ok"} 2' in text
        assert "# TYPE lat_seconds histogram" in text
        # cumulative buckets, le-labelled, +Inf equals the count
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert text.endswith("\n")
