"""Unit + hypothesis property tests for tools/filecheck.py — the
pure-python FileCheck backing the conformance suite.  A matcher bug
here silently green-lights broken conformance tests, so the directive
semantics are pinned both by examples and by generated properties."""

from __future__ import annotations

import os
import sys

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        "tools",
    ),
)

from filecheck import (  # noqa: E402
    FileCheckError,
    check_text,
    compile_pattern,
    parse_check_file,
)


def ok(input_text: str, checks: str, **kw) -> None:
    check_text(input_text, checks, **kw)


def fails(input_text: str, checks: str, **kw) -> FileCheckError:
    with pytest.raises(FileCheckError) as err:
        check_text(input_text, checks, **kw)
    return err.value


# ----------------------------------------------------------------------
# Directive semantics, one example each
# ----------------------------------------------------------------------
class TestDirectives:
    def test_plain_in_order(self):
        ok("alpha\nbeta\ngamma\n", "CHECK: alpha\nCHECK: gamma")
        fails("alpha\nbeta\n", "CHECK: beta\nCHECK: alpha")

    def test_next_requires_adjacent_line(self):
        ok("a\nb\n", "CHECK: a\nCHECK-NEXT: b")
        fails("a\nx\nb\n", "CHECK: a\nCHECK-NEXT: b")

    def test_same_stays_on_line(self):
        ok("key = value\n", "CHECK: key\nCHECK-SAME: value")
        fails("key\nvalue\n", "CHECK: key\nCHECK-SAME: value")

    def test_same_cannot_rematch_consumed_text(self):
        fails("value key\n", "CHECK: key\nCHECK-SAME: value")

    def test_empty(self):
        ok("a\n\nb\n", "CHECK: a\nCHECK-EMPTY:")
        fails("a\nb\n", "CHECK: a\nCHECK-EMPTY:")

    def test_not_between_positive_matches(self):
        ok("a\nc\n", "CHECK: a\nCHECK-NOT: b\nCHECK: c")
        fails("a\nb\nc\n", "CHECK: a\nCHECK-NOT: b\nCHECK: c")

    def test_not_after_last_positive_runs_to_eof(self):
        fails("a\nb\n", "CHECK: a\nCHECK-NOT: b")
        ok("a\n", "CHECK: a\nCHECK-NOT: b")

    def test_dag_any_order(self):
        ok("y\nx\n", "CHECK-DAG: x\nCHECK-DAG: y")
        ok("x\ny\n", "CHECK-DAG: x\nCHECK-DAG: y")

    def test_dag_matches_may_not_overlap(self):
        # one 'x' cannot satisfy two -DAG directives
        fails("x\n", "CHECK-DAG: x\nCHECK-DAG: x")
        ok("x x\n", "CHECK-DAG: x\nCHECK-DAG: x")

    def test_label_partitions_input(self):
        text = "f:\n  a\ng:\n  b\n"
        ok(text, "CHECK-LABEL: f:\nCHECK: a\nCHECK-LABEL: g:\nCHECK: b")
        # 'b' lives in g's block; a check anchored in f's block must
        # not reach across the label boundary.
        fails(text, "CHECK-LABEL: f:\nCHECK: b\nCHECK-LABEL: g:")

    def test_whitespace_runs_are_canonical(self):
        ok("a      b\n", "CHECK: a b")
        ok("a\tb\n", "CHECK: a b")
        fails("ab\n", "CHECK: a b")

    def test_regex_blocks(self):
        ok("val=42\n", "CHECK: val={{[0-9]+}}")
        fails("val=x\n", "CHECK: val={{[0-9]+}}")

    def test_variable_capture_and_reuse(self):
        ok(
            "store %tmp.3\nload %tmp.3\n",
            "CHECK: store %[[R:tmp.[0-9]+]]\nCHECK: load %[[R]]",
        )
        fails(
            "store %tmp.3\nload %tmp.4\n",
            "CHECK: store %[[R:tmp.[0-9]+]]\nCHECK: load %[[R]]",
        )

    def test_variable_use_before_def(self):
        err = fails("x\n", "CHECK: [[V]]")
        assert "used before" in err.message

    def test_unterminated_regex_and_variable(self):
        assert "unterminated" in fails("x\n", "CHECK: {{abc").message
        assert "unterminated" in fails("x\n", "CHECK: [[V:abc").message

    def test_check_prefix_selects_directives(self):
        checks = "CHECK: absent\nFOO: present"
        ok("present\n", checks, prefixes=["FOO"])
        fails("present\n", checks)  # default CHECK prefix

    def test_empty_input_rejected_without_allow_empty(self):
        err = fails("", "CHECK-NOT: anything")
        assert "empty input" in err.message
        ok("", "CHECK-NOT: anything", allow_empty=True)

    def test_no_directives_is_an_error(self):
        err = fails("text\n", "// no checks here")
        assert "no check directives" in err.message


class TestParsing:
    def test_parse_extracts_kind_and_line(self):
        ds = parse_check_file(
            "// CHECK: a\n// CHECK-NEXT: b\n", "t.c", ["CHECK"]
        )
        assert [(d.kind, d.line_no) for d in ds] == [
            ("PLAIN", 1),
            ("NEXT", 2),
        ]

    def test_unknown_suffix_is_not_a_directive(self):
        assert (
            parse_check_file("// CHECK-BOGUS: a\n", "t.c", ["CHECK"])
            == []
        )

    def test_compile_pattern_part_kinds(self):
        (d,) = parse_check_file(
            "// CHECK: a{{b+}}[[V:c]][[V]]\n", "t.c", ["CHECK"]
        )
        assert [op for op, _ in compile_pattern(d).parts] == [
            "lit",
            "re",
            "def",
            "use",
        ]


# ----------------------------------------------------------------------
# Hypothesis properties
# ----------------------------------------------------------------------
# Tokens that cannot collide with directive syntax, regex
# metacharacters, or whitespace canonicalization.
_token = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
    min_size=1,
    max_size=8,
)
_lines = st.lists(_token, min_size=1, max_size=12)

_SETTINGS = settings(max_examples=80, deadline=None)


class TestProperties:
    @_SETTINGS
    @given(lines=_lines, data=st.data())
    def test_any_subsequence_of_lines_matches(self, lines, data):
        """CHECK directives built from an in-order subsequence of the
        input's lines always pass."""
        n = len(lines)
        picks = data.draw(
            st.lists(
                st.integers(0, n - 1), unique=True, max_size=n
            ).map(sorted)
        )
        checks = "\n".join(f"CHECK: {lines[i]}" for i in picks)
        if not picks:
            return
        check_text("\n".join(lines) + "\n", checks)

    @_SETTINGS
    @given(lines=_lines)
    def test_full_next_chain_matches(self, lines):
        """A CHECK-NEXT chain over every consecutive line passes."""
        checks = [f"CHECK: {lines[0]}"] + [
            f"CHECK-NEXT: {ln}" for ln in lines[1:]
        ]
        check_text("\n".join(lines) + "\n", "\n".join(checks))

    @_SETTINGS
    @given(lines=_lines)
    def test_absent_token_fails_and_not_passes(self, lines):
        """A token guaranteed absent fails as CHECK and passes as
        CHECK-NOT (duality)."""
        marker = "Z" + "z".join(lines) + "Z"  # cannot be a substring
        text = "\n".join(lines) + "\n"
        with pytest.raises(FileCheckError):
            check_text(text, f"CHECK: {marker}")
        check_text(text, f"CHECK-NOT: {marker}")

    @_SETTINGS
    @given(lines=st.lists(_token, min_size=1, max_size=8, unique=True),
           data=st.data())
    def test_dag_is_permutation_invariant(self, lines, data):
        """Lines match a -DAG group in any directive order.

        Like LLVM's FileCheck, -DAG placement is greedy in directive
        order (no backtracking), so tokens that are substrings of one
        another can legitimately fail in some orders — exclude them.
        """
        assume(
            not any(
                a in b
                for a in lines
                for b in lines
                if a is not b
            )
        )
        perm = data.draw(st.permutations(lines))
        checks = "\n".join(f"CHECK-DAG: {ln}" for ln in perm)
        check_text("\n".join(lines) + "\n", checks)

    @_SETTINGS
    @given(token=_token, pad=st.integers(1, 5))
    def test_whitespace_canonicalization(self, token, pad):
        """Any run of blanks in the input matches one space in the
        pattern and vice versa."""
        check_text(
            f"a{' ' * pad}{token}\n", f"CHECK: a {token}"
        )
        check_text(f"a {token}\n", f"CHECK: a{' ' * pad}{token}")

    @_SETTINGS
    @given(token=_token)
    def test_variable_roundtrip(self, token):
        """[[V:re]] binds whatever matched; [[V]] re-matches exactly
        that text."""
        text = f"def {token}\nuse {token}\n"
        check_text(
            text, "CHECK: def [[V:[a-z0-9]+]]\nCHECK: use [[V]]"
        )
