"""Crash-safety of the on-disk cache tier: self-verifying entries,
errno-class degradation with re-probe, injected I/O faults, and the
``miniclang-cache`` maintenance surface (verify / gc / doctor)."""

from __future__ import annotations

import errno
import json
import os

import pytest

from repro.cache.disk import DiskTier

REPROBE_INTERVAL_S = DiskTier.REPROBE_INTERVAL_S
from repro.cache.integrity import (
    IntegrityError,
    payload_digest,
    seal,
    unseal,
)
from repro.instrument.faultinject import FAULTS
from repro.instrument.stats import STATS

KEY = "artifact:" + "cd" * 32
PAYLOAD = {"ir": "ret i32 7", "stage": "codegen"}


@pytest.fixture(autouse=True)
def _disarm():
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()


def _quiet(_msg: str) -> None:
    pass


def make_tier(tmp_path, **kwargs) -> DiskTier:
    kwargs.setdefault("diagnostic", _quiet)
    return DiskTier(str(tmp_path / "cache"), **kwargs)


# ----------------------------------------------------------------------
# Integrity envelope
# ----------------------------------------------------------------------
class TestEnvelope:
    def test_roundtrip(self):
        assert unseal(seal(PAYLOAD)) == PAYLOAD

    def test_digest_is_stable_under_key_order(self):
        a = {"x": 1, "y": [1, 2]}
        b = {"y": [1, 2], "x": 1}
        assert payload_digest(a) == payload_digest(b)

    def test_tampered_payload_rejected(self):
        envelope = json.loads(seal(PAYLOAD))
        envelope["payload"]["ir"] = "ret i32 8"
        with pytest.raises(IntegrityError):
            unseal(json.dumps(envelope))

    def test_foreign_format_rejected(self):
        envelope = json.loads(seal(PAYLOAD))
        envelope["format"] = 999
        with pytest.raises(IntegrityError):
            unseal(json.dumps(envelope))


# ----------------------------------------------------------------------
# Self-healing reads
# ----------------------------------------------------------------------
class TestSelfHealing:
    def test_corrupt_object_detected_counted_deleted(self, tmp_path):
        tier = make_tier(tmp_path)
        tier.put(KEY, PAYLOAD)
        path = tier._object_path(KEY)
        with open(path, "ab") as fh:
            fh.write(b"garbage")
        before = STATS.snapshot()
        assert tier.get(KEY) is None
        assert not os.path.exists(path)
        delta = STATS.delta_since(before)
        assert delta.get("cache.corrupt-entries", 0) == 1

    def test_corrupt_alias_detected(self, tmp_path):
        tier = make_tier(tmp_path)
        tier.put_alias("alias:" + "ee" * 32, KEY)
        path = tier._alias_path("alias:" + "ee" * 32)
        with open(path, "wb") as fh:
            fh.write(b"\x00\x01\x02")
        assert tier.get_alias("alias:" + "ee" * 32) is None
        assert not os.path.exists(path)

    def test_healed_entry_can_be_rewritten(self, tmp_path):
        tier = make_tier(tmp_path)
        tier.put(KEY, PAYLOAD)
        path = tier._object_path(KEY)
        with open(path, "wb") as fh:
            fh.write(b"torn")
        assert tier.get(KEY) is None
        assert tier.put(KEY, PAYLOAD) > 0
        assert tier.get(KEY) == PAYLOAD


# ----------------------------------------------------------------------
# errno classification and degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_enospc_disables_writes(self, tmp_path):
        tier = make_tier(tmp_path)
        before = STATS.snapshot()
        tier._note_write_error(
            OSError(errno.ENOSPC, "disk full"), "p"
        )
        assert tier.write_disabled
        delta = STATS.delta_since(before)
        assert delta.get("cache.disk-disabled", 0) == 1
        assert delta.get("cache.disk-enospc", 0) == 1
        # Reads still work while writes are off.
        assert tier.get(KEY) is None

    def test_readonly_and_denied_disable(self, tmp_path):
        for code in (errno.EROFS, errno.EACCES):
            tier = make_tier(tmp_path / str(code))
            tier._note_write_error(OSError(code, "no"), "p")
            assert tier.write_disabled

    def test_transient_eio_does_not_disable(self, tmp_path):
        tier = make_tier(tmp_path)
        before = STATS.snapshot()
        tier._note_write_error(OSError(errno.EIO, "blip"), "p")
        assert not tier.write_disabled
        delta = STATS.delta_since(before)
        assert delta.get("cache.disk-write-errors", 0) == 1

    def test_reprobe_reenables_after_interval(self, tmp_path):
        now = [0.0]
        tier = make_tier(tmp_path, clock=lambda: now[0])
        tier._note_write_error(OSError(errno.ENOSPC, "full"), "p")
        assert tier.put(KEY, PAYLOAD) == 0  # gated, not crashing
        assert tier.get(KEY) is None
        now[0] = REPROBE_INTERVAL_S + 1.0
        before = STATS.snapshot()
        assert tier.put(KEY, PAYLOAD) > 0  # the probe succeeds
        assert not tier.write_disabled
        assert tier.get(KEY) == PAYLOAD
        delta = STATS.delta_since(before)
        assert delta.get("cache.disk-reenabled", 0) == 1

    def test_diagnostic_reported_once_per_class(self, tmp_path):
        messages: list[str] = []
        tier = DiskTier(
            str(tmp_path / "cache"), diagnostic=messages.append
        )
        err = OSError(errno.ENOSPC, "full")
        tier._note_write_error(err, "p")
        tier._note_write_error(err, "p")
        assert len(messages) == 1


# ----------------------------------------------------------------------
# Injected storage faults are absorbed in-place
# ----------------------------------------------------------------------
class TestInjectedFaults:
    def test_torn_write_detected_on_read(self, tmp_path):
        tier = make_tier(tmp_path)
        FAULTS.arm_spec("storage-write-torn")
        tier.put(KEY, PAYLOAD)
        FAULTS.disarm_all()
        before = STATS.snapshot()
        assert tier.get(KEY) is None  # torn half never served
        delta = STATS.delta_since(before)
        assert delta.get("cache.corrupt-entries", 0) == 1

    def test_enospc_fault_degrades(self, tmp_path):
        tier = make_tier(tmp_path)
        FAULTS.arm_spec("storage-write-enospc")
        assert tier.put(KEY, PAYLOAD) == 0
        FAULTS.disarm_all()
        assert tier.write_disabled

    def test_rename_fault_leaves_no_entry(self, tmp_path):
        tier = make_tier(tmp_path)
        FAULTS.arm_spec("storage-rename-fail")
        assert tier.put(KEY, PAYLOAD) == 0
        FAULTS.disarm_all()
        assert tier.get(KEY) is None
        assert tier.verify()["tmp"] == 0  # temp file cleaned up

    def test_read_corrupt_fault_heals(self, tmp_path):
        tier = make_tier(tmp_path)
        tier.put(KEY, PAYLOAD)
        FAULTS.arm_spec("storage-read-corrupt")
        before = STATS.snapshot()
        assert tier.get(KEY) is None
        FAULTS.disarm_all()
        delta = STATS.delta_since(before)
        assert delta.get("cache.corrupt-entries", 0) == 1

    def test_fsync_fault_durable_counts_write_error(self, tmp_path):
        tier = make_tier(tmp_path, durable=True)
        FAULTS.arm_spec("storage-fsync-fail")
        before = STATS.snapshot()
        assert tier.put(KEY, PAYLOAD) == 0
        FAULTS.disarm_all()
        delta = STATS.delta_since(before)
        assert delta.get("cache.disk-write-errors", 0) == 1
        assert not tier.write_disabled  # EIO is transient

    def test_fsync_fault_ignored_without_durable(self, tmp_path):
        tier = make_tier(tmp_path, durable=False)
        FAULTS.arm_spec("storage-fsync-fail")
        assert tier.put(KEY, PAYLOAD) > 0
        FAULTS.disarm_all()
        assert tier.get(KEY) == PAYLOAD


# ----------------------------------------------------------------------
# Maintenance surface
# ----------------------------------------------------------------------
class TestMaintenance:
    def test_verify_reports_and_repairs(self, tmp_path):
        tier = make_tier(tmp_path)
        tier.put(KEY, PAYLOAD)
        other = "artifact:" + "ff" * 32
        tier.put(other, PAYLOAD)
        with open(tier._object_path(other), "wb") as fh:
            fh.write(b"junk")
        report = tier.verify()
        assert report["objects"] == 2
        assert report["corrupt"] == 1
        assert report["removed"] == 0
        report = tier.verify(repair=True)
        assert report["removed"] == 1
        assert tier.verify()["corrupt"] == 0

    def test_gc_drops_orphan_aliases(self, tmp_path):
        tier = make_tier(tmp_path)
        tier.put(KEY, PAYLOAD)
        tier.put_alias("alias:" + "aa" * 32, KEY)
        tier.put_alias("alias:" + "bb" * 32, "artifact:" + "00" * 32)
        report = tier.gc()
        assert report["orphan_aliases"] == 1
        assert tier.get_alias("alias:" + "aa" * 32) == KEY

    def test_cachectl_verify_exit_codes(self, tmp_path, capsys):
        from repro.driver.cachectl import main as cachectl

        tier = make_tier(tmp_path)
        tier.put(KEY, PAYLOAD)
        root = str(tmp_path / "cache")
        assert cachectl(["-d", root, "verify"]) == 0
        with open(tier._object_path(KEY), "wb") as fh:
            fh.write(b"junk")
        assert cachectl(["-d", root, "verify"]) == 1
        assert cachectl(["-d", root, "verify", "--repair"]) == 0
        assert cachectl(["-d", root, "doctor"]) == 0
        capsys.readouterr()

    def test_cachectl_doctor_missing_dir(self, tmp_path, capsys):
        from repro.driver.cachectl import main as cachectl

        assert (
            cachectl(["-d", str(tmp_path / "nowhere"), "doctor"]) == 1
        )
        capsys.readouterr()
