"""Unit tests: mid-end analyses and passes (dominators, loop info,
LoopUnroll, simplify-cfg, constant folding, DCE)."""

import pytest

from repro.ir import (
    ConstantInt,
    FunctionType,
    IRBuilder,
    Module,
    i32,
    i64,
    loop_metadata,
    verify_module,
    void_t,
)
from repro.ir.instructions import BinOp, ICmpPred
from repro.interp import Interpreter
from repro.midend import (
    ConstantFoldPass,
    DeadCodeEliminationPass,
    DominatorTree,
    LoopInfo,
    LoopUnrollPass,
    SimplifyCFGPass,
    default_pass_pipeline,
)
from repro.midend.cfg import postorder, reverse_postorder


def diamond_function():
    """entry -> (left|right) -> merge -> exit"""
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(i32, [i32]))
    b = IRBuilder(mod)
    entry = fn.append_block("entry")
    left = fn.append_block("left")
    right = fn.append_block("right")
    merge = fn.append_block("merge")
    b.set_insert_point(entry)
    cmp = b.icmp(ICmpPred.SGT, fn.args[0], b.const_int(i32, 0))
    b.cond_br(cmp, left, right)
    b.set_insert_point(left)
    b.br(merge)
    b.set_insert_point(right)
    b.br(merge)
    b.set_insert_point(merge)
    phi = b.phi(i32, "v")
    phi.add_incoming(b.const_int(i32, 1), left)
    phi.add_incoming(b.const_int(i32, 2), right)
    b.ret(phi)
    return mod, fn


def memory_loop_function(bound_const: int | None = None):
    """Memory-form loop: i alloca, for(i=0; i<bound; i+=1) call body(i).

    bound_const None -> uses the i32 argument as the bound.
    """
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(void_t, [i32]))
    sink = mod.add_function("body", FunctionType(void_t, [i32]))
    b = IRBuilder(mod)
    b.folding_enabled = False
    entry = fn.append_block("entry")
    cond = fn.append_block("for.cond")
    body = fn.append_block("for.body")
    inc = fn.append_block("for.inc")
    end = fn.append_block("for.end")
    b.set_insert_point(entry)
    iv = b.alloca(i32, name="i")
    b.store(b.const_int(i32, 0), iv)
    b.br(cond)
    b.set_insert_point(cond)
    loaded = b.load(i32, iv, "i.val")
    bound = (
        b.const_int(i32, bound_const)
        if bound_const is not None
        else fn.args[0]
    )
    cmp = b.icmp(ICmpPred.SLT, loaded, bound, "cmp")
    b.cond_br(cmp, body, end)
    b.set_insert_point(body)
    v = b.load(i32, iv)
    b.call(sink, [v])
    b.br(inc)
    b.set_insert_point(inc)
    old = b.load(i32, iv)
    new = b.binop(BinOp.ADD, old, b.const_int(i32, 1), "next")
    b.store(new, iv)
    latch_br = b.br(cond)
    b.set_insert_point(end)
    b.ret()
    return mod, fn, latch_br


class TestCFGTraversal:
    def test_postorder_ends_at_entry(self):
        _, fn = diamond_function()
        order = postorder(fn)
        assert order[-1].name == "entry"

    def test_rpo_starts_at_entry(self):
        _, fn = diamond_function()
        assert reverse_postorder(fn)[0].name == "entry"

    def test_all_blocks_visited(self):
        _, fn = diamond_function()
        assert len(postorder(fn)) == 4


class TestDominators:
    def test_entry_dominates_all(self):
        _, fn = diamond_function()
        dt = DominatorTree(fn)
        for block in fn.blocks:
            assert dt.dominates(fn.entry_block, block)

    def test_branches_do_not_dominate_merge(self):
        _, fn = diamond_function()
        dt = DominatorTree(fn)
        left = next(b for b in fn.blocks if b.name == "left")
        merge = next(b for b in fn.blocks if b.name == "merge")
        assert not dt.dominates(left, merge)
        assert dt.immediate_dominator(merge) is fn.entry_block

    def test_loop_header_dominates_body(self):
        _, fn, _ = memory_loop_function(10)
        dt = DominatorTree(fn)
        cond = next(b for b in fn.blocks if b.name == "for.cond")
        body = next(b for b in fn.blocks if b.name == "for.body")
        assert dt.dominates(cond, body)

    def test_dominates_is_reflexive(self):
        _, fn = diamond_function()
        dt = DominatorTree(fn)
        for block in fn.blocks:
            assert dt.dominates(block, block)


class TestLoopInfo:
    def test_finds_loop(self):
        _, fn, _ = memory_loop_function(10)
        li = LoopInfo(fn)
        assert len(li.loops) == 1
        loop = li.loops[0]
        assert loop.header.name == "for.cond"
        assert loop.single_latch.name == "for.inc"
        assert {b.name for b in loop.blocks} == {
            "for.cond",
            "for.body",
            "for.inc",
        }

    def test_preheader_and_exits(self):
        _, fn, _ = memory_loop_function(10)
        loop = LoopInfo(fn).loops[0]
        assert loop.preheader().name == "entry"
        assert [b.name for b in loop.exit_blocks()] == ["for.end"]

    def test_no_loops_in_diamond(self):
        _, fn = diamond_function()
        assert LoopInfo(fn).loops == []


def run_counting_body(mod, arg=None):
    """Execute @f; return list of body(i) call arguments."""
    interp = Interpreter(mod)
    calls = []
    interp.register_native(
        "body", lambda i, c, a: calls.append(a[0])
    )
    interp.run("f", [arg] if arg is not None else [0])
    return calls


class TestLoopUnrollFull:
    def test_full_unroll_constant_trip(self):
        mod, fn, latch_br = memory_loop_function(6)
        latch_br.metadata["llvm.loop"] = loop_metadata(unroll_full=True)
        pass_ = LoopUnrollPass()
        assert pass_.run_on_function(fn)
        verify_module(mod)
        assert pass_.stats.fully_unrolled == 1
        # No loop remains.
        from repro.midend import LoopInfo as LI

        assert LI(fn).loops == []
        assert run_counting_body(mod) == [0, 1, 2, 3, 4, 5]

    def test_full_unroll_trip_zero(self):
        mod, fn, latch_br = memory_loop_function(0)
        latch_br.metadata["llvm.loop"] = loop_metadata(unroll_full=True)
        LoopUnrollPass().run_on_function(fn)
        verify_module(mod)
        assert run_counting_body(mod) == []

    def test_full_without_constant_trip_falls_back(self):
        mod, fn, latch_br = memory_loop_function(None)
        latch_br.metadata["llvm.loop"] = loop_metadata(unroll_full=True)
        pass_ = LoopUnrollPass()
        pass_.run_on_function(fn)
        verify_module(mod)
        assert pass_.stats.fully_unrolled == 0
        assert run_counting_body(mod, 5) == [0, 1, 2, 3, 4]


class TestLoopUnrollPartialRemainder:
    def test_remainder_structure(self):
        """E6: the main loop + remainder loop of paper Listing 2."""
        mod, fn, latch_br = memory_loop_function(None)
        latch_br.metadata["llvm.loop"] = loop_metadata(unroll_count=4)
        pass_ = LoopUnrollPass()
        assert pass_.run_on_function(fn)
        verify_module(mod)
        assert pass_.stats.partially_unrolled == 1
        assert pass_.stats.remainder_loops_created == 1
        # Two loops now: the unrolled main loop and the remainder.
        loops = LoopInfo(fn).loops
        assert len(loops) == 2
        names = {loop.header.name for loop in loops}
        assert "for.cond.unrolled" in names
        assert "for.cond" in names  # original survives as remainder

    @pytest.mark.parametrize("n", [0, 1, 3, 4, 7, 8, 15, 16, 100])
    def test_semantics_preserved_all_remainders(self, n):
        mod, fn, latch_br = memory_loop_function(None)
        latch_br.metadata["llvm.loop"] = loop_metadata(unroll_count=4)
        LoopUnrollPass().run_on_function(fn)
        verify_module(mod)
        assert run_counting_body(mod, n) == list(range(n))

    def test_main_loop_guard_strengthened(self):
        mod, fn, latch_br = memory_loop_function(None)
        latch_br.metadata["llvm.loop"] = loop_metadata(unroll_count=4)
        LoopUnrollPass().run_on_function(fn)
        main_header = next(
            b for b in fn.blocks if b.name == "for.cond.unrolled"
        )
        from repro.ir.instructions import BinaryInst

        adds = [
            inst
            for inst in main_header.instructions
            if isinstance(inst, BinaryInst)
            and inst.op == BinOp.ADD
        ]
        # iv + (F-1)*step with F=4, step=1 -> +3
        assert any(
            isinstance(a.rhs, ConstantInt) and a.rhs.value == 3
            for a in adds
        )

    def test_metadata_consumed(self):
        mod, fn, latch_br = memory_loop_function(None)
        latch_br.metadata["llvm.loop"] = loop_metadata(unroll_count=4)
        LoopUnrollPass().run_on_function(fn)
        for block in fn.blocks:
            term = block.terminator
            assert term is None or "llvm.loop" not in term.metadata

    def test_disable_metadata_respected(self):
        mod, fn, latch_br = memory_loop_function(None)
        latch_br.metadata["llvm.loop"] = loop_metadata(
            unroll_disable=True
        )
        pass_ = LoopUnrollPass()
        changed = pass_.run_on_function(fn)
        assert not changed
        assert pass_.stats.skipped == 1


class TestLoopUnrollHeuristic:
    def test_small_constant_trip_fully_unrolls(self):
        mod, fn, latch_br = memory_loop_function(8)
        latch_br.metadata["llvm.loop"] = loop_metadata(
            unroll_enable=True
        )
        pass_ = LoopUnrollPass()
        pass_.run_on_function(fn)
        assert pass_.stats.fully_unrolled == 1

    def test_runtime_trip_partial(self):
        mod, fn, latch_br = memory_loop_function(None)
        latch_br.metadata["llvm.loop"] = loop_metadata(
            unroll_enable=True
        )
        pass_ = LoopUnrollPass()
        pass_.run_on_function(fn)
        assert pass_.stats.partially_unrolled == 1
        assert run_counting_body(mod, 13) == list(range(13))


class TestCleanupPasses:
    def test_constant_fold(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(i32, []))
        b = IRBuilder(mod)
        b.folding_enabled = False
        b.set_insert_point(fn.append_block("entry"))
        x = b.add(b.const_int(i32, 2), b.const_int(i32, 3))
        y = b.mul(x, b.const_int(i32, 4))
        b.ret(y)
        assert ConstantFoldPass().run_on_function(fn)
        verify_module(mod)
        assert Interpreter(mod).run("f") == 20
        # Everything folded away except the return.
        assert len(fn.entry_block.instructions) == 1

    def test_dce_removes_unused(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(i32, [i32]))
        b = IRBuilder(mod)
        b.folding_enabled = False
        b.set_insert_point(fn.append_block("entry"))
        b.add(fn.args[0], b.const_int(i32, 1), "unused")
        b.ret(fn.args[0])
        assert DeadCodeEliminationPass().run_on_function(fn)
        assert len(fn.entry_block.instructions) == 1

    def test_dce_keeps_calls(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(void_t, []))
        effect = mod.add_function("effect", FunctionType(void_t, []))
        b = IRBuilder(mod)
        b.set_insert_point(fn.append_block("entry"))
        b.call(effect, [])
        b.ret()
        DeadCodeEliminationPass().run_on_function(fn)
        assert any(
            inst.opcode == "call"
            for inst in fn.entry_block.instructions
        )

    def test_dce_removes_store_only_allocas(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(void_t, []))
        b = IRBuilder(mod)
        b.set_insert_point(fn.append_block("entry"))
        slot = b.alloca(i32, name="deadslot")
        b.store(b.const_int(i32, 1), slot)
        b.ret()
        assert DeadCodeEliminationPass().run_on_function(fn)
        assert len(fn.entry_block.instructions) == 1

    def test_simplify_cfg_merges_chain(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(i32, []))
        b = IRBuilder(mod)
        a_bb = fn.append_block("a")
        b_bb = fn.append_block("b")
        c_bb = fn.append_block("c")
        b.set_insert_point(a_bb)
        b.br(b_bb)
        b.set_insert_point(b_bb)
        b.br(c_bb)
        b.set_insert_point(c_bb)
        b.ret(b.const_int(i32, 7))
        assert SimplifyCFGPass().run_on_function(fn)
        verify_module(mod)
        assert len(fn.blocks) == 1
        assert Interpreter(mod).run("f") == 7

    def test_pipeline_on_full_unroll_cleans_up(self):
        mod, fn, latch_br = memory_loop_function(4)
        latch_br.metadata["llvm.loop"] = loop_metadata(unroll_full=True)
        default_pass_pipeline().run(mod)
        verify_module(mod)
        assert run_counting_body(mod) == [0, 1, 2, 3]
        # No loop remains and the per-copy cond blocks were merged away
        # (entry + one straight-line body block per copy + exit).
        assert LoopInfo(fn).loops == []
        assert len(fn.blocks) <= 2 + 4
