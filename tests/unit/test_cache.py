"""Unit tests for the compilation-cache building blocks: content
addressing (:mod:`repro.cache.key`), the in-memory LRU tier, the
on-disk content-addressed tier, the two-tier facade, and the
single-flight table."""

from __future__ import annotations

import json
import os

import pytest

from repro.cache import (
    CompilationCache,
    InflightTable,
    degraded_key,
    request_fingerprint,
    stage_key,
)
from repro.cache.cache import DEGRADED_KEY_SUFFIX
from repro.cache.disk import DiskTier
from repro.cache.key import (
    CACHE_FORMAT_VERSION,
    canonicalize_flag_tokens,
    canonicalize_source,
    define_items,
    source_id,
)
from repro.cache.lru import LRUTier


class TestKeys:
    def test_source_canonicalization_normalizes_line_endings(self):
        assert canonicalize_source("a\r\nb\rc\n") == "a\nb\nc\n"
        assert source_id("a\r\nb") == source_id("a\nb")

    def test_flag_whitespace_and_order_are_not_identity(self):
        assert canonicalize_flag_tokens(
            ["  -O ", "-fopenmp"]
        ) == canonicalize_flag_tokens(["-fopenmp", "-O", ""])

    def test_defines_are_order_insensitive(self):
        assert define_items({"A": "1", "B": "2"}) == define_items(
            {"B": "2", "A": "1"}
        )

    def test_stage_key_depends_on_every_ingredient(self):
        base = stage_key("codegen", "parent", ["m"])
        assert stage_key("opt", "parent", ["m"]) != base
        assert stage_key("codegen", "other", ["m"]) != base
        assert stage_key("codegen", "parent", ["n"]) != base
        assert stage_key("codegen", "parent", ["m"]) == base

    def test_fingerprint_is_deterministic_and_flag_sensitive(self):
        fp = request_fingerprint("int main() {}\n")
        assert fp == request_fingerprint("int main() {}\n")
        assert fp != request_fingerprint("int main() {}\n", optimize=True)
        assert fp != request_fingerprint(
            "int main() {}\n", enable_irbuilder=True
        )
        assert fp != request_fingerprint("int main( ) {}\n")

    def test_fingerprint_include_path_order_matters(self):
        a = request_fingerprint("x", include_paths=["inc1", "inc2"])
        b = request_fingerprint("x", include_paths=["inc2", "inc1"])
        assert a != b  # header search order is semantics

    def test_fingerprint_extra_flag_spelling_is_not_identity(self):
        a = request_fingerprint("x", extra_flags=["-O ", " -fopenmp"])
        b = request_fingerprint("x", extra_flags=["-fopenmp", "-O"])
        assert a == b

    def test_degraded_key_is_tagged(self):
        assert degraded_key("abc") == "abc" + DEGRADED_KEY_SUFFIX
        assert degraded_key("abc") != "abc"


class TestLRUTier:
    def test_get_refreshes_recency(self):
        tier = LRUTier(max_entries=2)
        tier.put("a", 1, 1)
        tier.put("b", 2, 1)
        tier.get("a")  # refresh: "b" is now the cold end
        tier.put("c", 3, 1)
        assert "a" in tier and "c" in tier and "b" not in tier

    def test_entry_count_bound(self):
        tier = LRUTier(max_entries=3)
        for i in range(5):
            tier.put(f"k{i}", i, 1)
        assert len(tier) == 3
        assert "k0" not in tier and "k2" in tier

    def test_byte_budget_bound(self):
        tier = LRUTier(max_entries=100, max_bytes=10)
        tier.put("a", "x", 6)
        evicted = tier.put("b", "y", 6)
        assert evicted == 1  # "a" evicted: 12 bytes > 10
        assert "b" in tier and tier.bytes == 6

    def test_replace_updates_bytes(self):
        tier = LRUTier(max_entries=10, max_bytes=100)
        tier.put("a", "x", 40)
        tier.put("a", "y", 10)
        assert tier.bytes == 10 and len(tier) == 1

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            LRUTier(max_entries=0)
        with pytest.raises(ValueError):
            LRUTier(max_bytes=0)


class TestDiskTier:
    def test_roundtrip_and_stamp(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"))
        tier.put("k" * 64, {"ir": "define", "diagnostics": ""})
        assert tier.get("k" * 64) == {"ir": "define", "diagnostics": ""}
        assert (tmp_path / "c" / "CACHEDIR.TAG").exists()
        stamp = (tmp_path / "c" / "format").read_text()
        assert str(CACHE_FORMAT_VERSION) in stamp

    def test_alias_roundtrip(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"))
        tier.put_alias("req" + "0" * 61, "target-key")
        assert tier.get_alias("req" + "0" * 61) == "target-key"
        assert tier.get_alias("ab" + "1" * 62) is None

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"))
        key = "f" * 64
        tier.put(key, {"ir": "x"})
        path = tier._object_path(key)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"truncat')
        assert tier.get(key) is None
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('"a bare string, not a dict"')
        assert tier.get(key) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"))
        for i in range(8):
            tier.put(f"{i:064x}", {"ir": "x" * 100})
        leftovers = [
            name
            for _, _, names in os.walk(tmp_path)
            for name in names
            if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_byte_budget_evicts_oldest(self, tmp_path):
        tier = DiskTier(str(tmp_path / "c"), max_bytes=400)
        for i in range(10):
            tier.put(f"{i:064x}", {"ir": "x" * 80})
        assert tier.evictions > 0
        assert tier.bytes <= 400


class TestCompilationCache:
    def test_artifact_roundtrip_memory_only(self):
        cache = CompilationCache()
        assert cache.get_artifact("k") is None
        cache.put_artifact("k", {"ir": "define", "diagnostics": ""})
        assert cache.get_artifact("k")["ir"] == "define"

    def test_disk_survives_a_new_cache_instance(self, tmp_path):
        d = str(tmp_path / "cache")
        CompilationCache(d).put_artifact("k", {"ir": "persisted"})
        fresh = CompilationCache(d)
        assert fresh.get_artifact("k")["ir"] == "persisted"
        # the hit was promoted into the fresh instance's memory tier
        assert "artifact:k" in fresh.memory

    def test_alias_roundtrip_across_instances(self, tmp_path):
        d = str(tmp_path / "cache")
        CompilationCache(d).put_alias("request-key", "artifact-key")
        assert (
            CompilationCache(d).get_alias("request-key")
            == "artifact-key"
        )

    def test_module_memo_hands_out_copies(self):
        cache = CompilationCache()
        original = {"functions": ["f"]}  # stand-in for a live Module
        cache.put_module("k", original)
        copy1 = cache.get_module("k")
        copy1["functions"].append("mutated")
        copy2 = cache.get_module("k")
        assert copy2 == {"functions": ["f"]}
        assert cache.get_module("missing") is None

    def test_describe_mentions_the_directory(self, tmp_path):
        assert "<memory-only>" in CompilationCache().describe()
        d = str(tmp_path / "cache")
        assert d in CompilationCache(d).describe()


class TestInflightTable:
    def test_leader_follower_fanout(self):
        table = InflightTable()
        table.lead("fp", "leader")
        assert table.leader("fp") == "leader"
        table.follow("fp", "f1")
        table.follow("fp", "f2")
        assert table.parked == 2 and table.collapsed == 2
        assert table.resolve("fp", "leader") == ["f1", "f2"]
        assert table.leader("fp") is None and len(table) == 0

    def test_stale_resolution_cannot_hijack(self):
        table = InflightTable()
        table.lead("fp", "leader-1")
        table.follow("fp", "f1")
        assert table.resolve("fp", "someone-else") == []
        assert table.leader("fp") == "leader-1"
        assert table.resolve("fp", "leader-1") == ["f1"]
