"""Unit tests: FileManager / SourceManager / SourceLocation layer."""

import pytest

from repro.sourcemgr import (
    FileManager,
    MemoryBuffer,
    SourceLocation,
    SourceManager,
    SourceRange,
)


class TestSourceLocation:
    def test_invalid_by_default(self):
        assert SourceLocation().is_invalid()
        assert not SourceLocation().is_valid()

    def test_valid_location(self):
        loc = SourceLocation(5)
        assert loc.is_valid()

    def test_offsetting(self):
        loc = SourceLocation(10)
        assert loc.with_offset(3).offset == 13

    def test_offsetting_invalid_stays_invalid(self):
        assert SourceLocation().with_offset(3).is_invalid()

    def test_ordering(self):
        assert SourceLocation(1) < SourceLocation(2)
        assert SourceLocation(2) >= SourceLocation(2)

    def test_range_contains(self):
        r = SourceRange(SourceLocation(5), SourceLocation(10))
        assert r.contains(SourceLocation(5))
        assert r.contains(SourceLocation(9))
        assert not r.contains(SourceLocation(10))

    def test_range_union(self):
        a = SourceRange(SourceLocation(5), SourceLocation(10))
        b = SourceRange(SourceLocation(8), SourceLocation(20))
        u = a.union(b)
        assert u.begin.offset == 5 and u.end.offset == 20


class TestMemoryBuffer:
    def test_line_offsets(self):
        buf = MemoryBuffer("t.c", "ab\ncd\nef")
        assert buf.line_offsets() == [0, 3, 6]

    def test_line_column_decode(self):
        buf = MemoryBuffer("t.c", "ab\ncd\nef")
        assert buf.line_column(0) == (1, 1)
        assert buf.line_column(1) == (1, 2)
        assert buf.line_column(3) == (2, 1)
        assert buf.line_column(7) == (3, 2)

    def test_line_text(self):
        buf = MemoryBuffer("t.c", "first\nsecond\n")
        assert buf.line_text(1) == "first"
        assert buf.line_text(2) == "second"
        assert buf.line_text(99) is None

    def test_empty_buffer(self):
        buf = MemoryBuffer("t.c", "")
        assert buf.num_lines() == 1
        assert buf.line_column(0) == (1, 1)


class TestSourceManager:
    def test_roundtrip_offset(self):
        sm = SourceManager()
        fid = sm.create_main_file(MemoryBuffer("main.c", "hello\nworld"))
        loc = sm.get_loc_for_offset(fid, 7)
        got_fid, offset = sm.get_decomposed_loc(loc)
        assert got_fid.index == fid.index
        assert offset == 7

    def test_presumed_loc(self):
        sm = SourceManager()
        fid = sm.create_main_file(MemoryBuffer("main.c", "hello\nworld"))
        loc = sm.get_loc_for_offset(fid, 7)
        ploc = sm.get_presumed_loc(loc)
        assert (ploc.filename, ploc.line, ploc.column) == ("main.c", 2, 2)

    def test_two_files_disjoint_offsets(self):
        sm = SourceManager()
        fid_a = sm.create_main_file(MemoryBuffer("a.c", "aaaa"))
        fid_b = sm.create_file_id(MemoryBuffer("b.h", "bbbb"))
        loc_a = sm.get_loc_for_offset(fid_a, 2)
        loc_b = sm.get_loc_for_offset(fid_b, 2)
        assert sm.get_filename(loc_a) == "a.c"
        assert sm.get_filename(loc_b) == "b.h"
        assert loc_a.offset != loc_b.offset

    def test_offset_zero_is_invalid_location(self):
        sm = SourceManager()
        sm.create_main_file(MemoryBuffer("a.c", "x"))
        assert not sm.get_file_id(SourceLocation(0)).is_valid()

    def test_line_override(self):
        sm = SourceManager()
        fid = sm.create_main_file(
            MemoryBuffer("a.c", "l1\nl2\nl3\nl4")
        )
        override_loc = sm.get_loc_for_offset(fid, 3)  # start of line 2
        sm.add_line_override(override_loc, "other.h", 100)
        loc = sm.get_loc_for_offset(fid, 6)  # line 3
        ploc = sm.get_presumed_loc(loc)
        assert ploc.filename == "other.h"
        assert ploc.line == 101

    def test_get_line_text(self):
        sm = SourceManager()
        fid = sm.create_main_file(MemoryBuffer("a.c", "abc\ndef"))
        loc = sm.get_loc_for_offset(fid, 5)
        assert sm.get_line_text(loc) == "def"

    def test_is_before(self):
        sm = SourceManager()
        fid = sm.create_main_file(MemoryBuffer("a.c", "abcdef"))
        early = sm.get_loc_for_offset(fid, 1)
        late = sm.get_loc_for_offset(fid, 4)
        assert sm.is_before(early, late)
        assert not sm.is_before(late, early)


class TestFileManager:
    def test_virtual_file(self):
        fm = FileManager()
        fm.register_virtual_file("virt.h", "int x;")
        entry = fm.get_file("virt.h")
        assert entry is not None and entry.is_virtual
        assert fm.get_buffer(entry).text == "int x;"

    def test_missing_file(self):
        fm = FileManager()
        assert fm.get_file("definitely/not/here.h") is None

    def test_include_resolution_relative_first(self):
        fm = FileManager()
        fm.register_virtual_file("dir/inc.h", "// relative")
        fm.register_virtual_file("inc.h", "// toplevel")
        entry = fm.resolve_include("inc.h", "dir/main.c", angled=False)
        assert entry is not None
        assert entry.name == "dir/inc.h"

    def test_angled_include_skips_relative(self):
        fm = FileManager()
        fm.register_virtual_file("dir/inc.h", "// relative")
        fm.register_virtual_file("inc.h", "// toplevel")
        entry = fm.resolve_include("inc.h", "dir/main.c", angled=True)
        assert entry is not None
        assert entry.name == "inc.h"

    def test_search_path(self):
        fm = FileManager(search_paths=["sys"])
        fm.register_virtual_file("sys/omp.h", "// omp")
        entry = fm.resolve_include("omp.h", None, angled=True)
        assert entry is not None and entry.name == "sys/omp.h"
