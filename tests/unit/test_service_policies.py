"""Pure-unit tests for the compile-service policy objects.

No worker processes anywhere in this file: the retry policy is plain
arithmetic over an injected RNG, the circuit breaker takes a fake clock,
and the admission queue is a counter exercise — the whole point of
keeping policy separate from the pool mechanism.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    STATUS_OK,
    AdmissionQueue,
    CircuitBreaker,
    CompileRequest,
    CompileResponse,
    RetryPolicy,
    other_mode,
)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_unjittered_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay_s=0.1,
            multiplier=2.0,
            max_delay_s=0.5,
            jitter=0.0,
        )
        delays = [policy.backoff(i) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.2, jitter=0.5
        )
        for seed in range(50):
            rng = random.Random(seed)
            for i in range(3):
                lo, hi = policy.bounds(i)
                delay = policy.backoff(i, rng)
                assert lo <= delay <= hi

    def test_bounds_envelope(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.25)
        lo, hi = policy.bounds(0)
        assert lo == pytest.approx(0.75)
        assert hi == pytest.approx(1.25)

    def test_same_seed_same_schedule(self):
        policy = RetryPolicy(max_attempts=5)
        a = policy.schedule(random.Random(7))
        b = policy.schedule(random.Random(7))
        assert a == b

    def test_schedule_length_is_retries_not_attempts(self):
        assert len(RetryPolicy(max_attempts=3).schedule()) == 2
        assert RetryPolicy(max_attempts=1).schedule() == []

    def test_budget_truncates_last_delay(self):
        policy = RetryPolicy(
            max_attempts=3,
            base_delay_s=1.0,
            multiplier=2.0,
            max_delay_s=10.0,
            jitter=0.0,
        )
        # unclamped schedule would be [1.0, 2.0]
        assert policy.schedule(budget_s=1.5) == [1.0, 0.5]

    def test_budget_drops_unfittable_retries(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=1.0, jitter=0.0
        )
        assert policy.schedule(budget_s=1.0) == [1.0]
        assert policy.schedule(budget_s=0.0) == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        base=st.floats(0.001, 2.0),
        multiplier=st.floats(1.0, 4.0),
        max_attempts=st.integers(1, 8),
        jitter=st.floats(0.0, 0.9),
        budget=st.floats(0.0, 5.0),
    )
    def test_schedule_never_exceeds_budget(
        self, seed, base, multiplier, max_attempts, jitter, budget
    ):
        """The invariant the service deadline math leans on: sleeping
        through the whole retry schedule never exceeds the budget."""
        policy = RetryPolicy(
            max_attempts=max_attempts,
            base_delay_s=base,
            multiplier=multiplier,
            jitter=jitter,
        )
        delays = policy.schedule(random.Random(seed), budget_s=budget)
        assert sum(delays) <= budget + 1e-9
        assert all(d >= 0 for d in delays)
        assert len(delays) <= max_attempts - 1


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=30.0):
        clock = FakeClock()
        return CircuitBreaker(threshold, cooldown, clock), clock

    def test_closed_allows_and_counts_to_threshold(self):
        breaker, _ = self.make(threshold=3)
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.record_failure()  # the tripping failure
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_consecutive_failures(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()  # count restarted
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown_grants_single_probe(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.allow()  # no probe rationing when closed

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker, clock = self.make(threshold=3, cooldown=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert breaker.record_failure()  # half-open failure trips again
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()

    def test_stranded_probe_is_regranted_after_cooldown(self):
        """A granted probe whose request never reports back (e.g. shed
        at admission) must not wedge the breaker half-open forever."""
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        # probe never reports...
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()  # re-granted, breaker self-heals

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


# ----------------------------------------------------------------------
# AdmissionQueue
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_sheds_over_capacity_counting_in_flight(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.offer("a")
        assert queue.offer("b")
        assert not queue.offer("c")  # shed
        assert queue.shed_count == 1
        assert queue.pop() == "a"
        # popped work is in flight: still over capacity
        assert not queue.offer("c")
        queue.release()
        assert queue.offer("c")
        assert queue.load == 2

    def test_requeue_returns_to_head_without_shedding(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer("a")
        item = queue.pop()
        queue.requeue(item)
        assert queue.pop() == "a"
        assert queue.shed_count == 0

    def test_release_without_pop_raises(self):
        queue = AdmissionQueue(capacity=1)
        with pytest.raises(RuntimeError):
            queue.release()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


# ----------------------------------------------------------------------
# Request fingerprints and response shape
# ----------------------------------------------------------------------
class TestRequestTypes:
    def test_fingerprint_stable_and_behavior_sensitive(self):
        request = CompileRequest(source="int main() { return 0; }")
        assert request.fingerprint() == request.fingerprint()
        same = CompileRequest(source="int main() { return 0; }")
        assert request.fingerprint() == same.fingerprint()
        for variant in (
            CompileRequest(source="int main() { return 1; }"),
            CompileRequest(
                source="int main() { return 0; }", mode="irbuilder"
            ),
            CompileRequest(
                source="int main() { return 0; }", action="run"
            ),
            CompileRequest(
                source="int main() { return 0; }",
                inject_faults=("service-worker",),
            ),
            CompileRequest(
                source="int main() { return 0; }",
                inject_faults=("service-worker",),
                fault_attempts=-1,
            ),
        ):
            assert request.fingerprint() != variant.fingerprint()
        # identity fields don't change the fingerprint
        renamed = CompileRequest(
            source="int main() { return 0; }",
            filename="other.c",
            request_id="r1",
            deadline_s=1.0,
        )
        assert request.fingerprint() == renamed.fingerprint()

    def test_faults_for_attempt_windows(self):
        request = CompileRequest(
            source="x",
            inject_faults=("service-worker-exit",),
            fault_attempts=2,
        )
        assert request.faults_for_attempt(0)
        assert request.faults_for_attempt(1)
        assert not request.faults_for_attempt(2)
        poison = CompileRequest(
            source="x",
            inject_faults=("service-worker",),
            fault_attempts=-1,
        )
        assert all(poison.faults_for_attempt(i) for i in range(10))

    def test_response_roundtrip(self):
        response = CompileResponse(
            request_id="r1",
            status=STATUS_OK,
            output="ir",
            attempts=2,
            retries=1,
        )
        assert response.ok
        payload = response.to_dict()
        assert payload["status"] == "ok"
        assert payload["attempts"] == 2
        assert payload["retries"] == 1

    def test_other_mode_is_an_involution(self):
        assert other_mode("shadow") == "irbuilder"
        assert other_mode("irbuilder") == "shadow"
