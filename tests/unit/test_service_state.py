"""Durable service state: atomic snapshots, corrupt-snapshot triage,
and breaker-board export/restore with age-based cooldown carry-over."""

from __future__ import annotations

import json
import os

from repro.service.breaker import BreakerBoard, CircuitBreaker
from repro.service.state import (
    ServiceState,
    load_state,
    save_state,
    state_path,
)


class TestSnapshotFile:
    def test_roundtrip(self, tmp_path):
        state = ServiceState(
            breakers={"fp1": {"state": "open", "opened_age_s": 2.0}},
            quarantined={"fp1": {"filename": "poison.c"}},
        )
        path = save_state(str(tmp_path), state)
        assert path == state_path(str(tmp_path))
        loaded = load_state(str(tmp_path))
        assert loaded is not None
        assert loaded.breakers == state.breakers
        assert loaded.quarantined == state.quarantined
        assert loaded.saved_at  # stamped at save time

    def test_missing_dir_is_none(self, tmp_path):
        assert load_state(str(tmp_path / "nope")) is None

    def test_corrupt_snapshot_set_aside(self, tmp_path):
        save_state(str(tmp_path), ServiceState())
        path = state_path(str(tmp_path))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{ not json")
        messages: list[str] = []
        assert load_state(str(tmp_path), messages.append) is None
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert messages and "starting fresh" in messages[0]

    def test_foreign_version_set_aside(self, tmp_path):
        from repro.cache.integrity import seal

        os.makedirs(str(tmp_path), exist_ok=True)
        with open(state_path(str(tmp_path)), "w") as fh:
            fh.write(seal({"version": 999}))
        assert load_state(str(tmp_path)) is None
        assert os.path.exists(state_path(str(tmp_path)) + ".corrupt")

    def test_no_stale_temp_files(self, tmp_path):
        save_state(str(tmp_path), ServiceState())
        save_state(str(tmp_path), ServiceState())
        stray = [
            name
            for name in os.listdir(str(tmp_path))
            if name.startswith(".tmp-")
        ]
        assert stray == []

    def test_snapshot_is_sealed(self, tmp_path):
        save_state(str(tmp_path), ServiceState())
        with open(state_path(str(tmp_path))) as fh:
            envelope = json.load(fh)
        assert "sha256" in envelope and "payload" in envelope


class TestBreakerExportRestore:
    def test_closed_breaker_exports_none(self):
        assert CircuitBreaker().export_state() is None

    def test_open_breaker_roundtrip_stays_open(self):
        now = [100.0]
        a = CircuitBreaker(
            failure_threshold=1,
            cooldown_s=60.0,
            clock=lambda: now[0],
        )
        assert a.record_failure()  # trips
        now[0] += 5.0
        exported = a.export_state()
        assert exported["state"] == "open"
        assert exported["opened_age_s"] == 5.0

        # "Another process, later": a fresh clock epoch.
        later = [0.0]
        b = CircuitBreaker(
            failure_threshold=1,
            cooldown_s=60.0,
            clock=lambda: later[0],
        )
        b.restore_state(exported)
        assert b.state == "open"
        assert not b.allow()
        # The cooldown *continues* rather than restarting: 5s served,
        # 55s remain.
        later[0] += 56.0
        assert b.state == "half-open"
        assert b.allow()

    def test_aged_out_snapshot_presents_half_open(self):
        a = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        a.record_failure()
        exported = a.export_state()
        exported["opened_age_s"] = 999.0
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        b.restore_state(exported)
        assert b.state == "half-open"
        assert b.allow()  # probe re-granted immediately

    def test_garbage_snapshot_ignored(self):
        b = CircuitBreaker()
        b.restore_state({"state": "molten"})
        assert b.state == "closed"

    def test_board_roundtrip(self):
        board = BreakerBoard(failure_threshold=1, cooldown_s=600.0)
        board.get("poison").record_failure()
        board.get("healthy").record_success()
        exported = board.export_state()
        assert set(exported.keys()) == {"poison"}

        transitions: list[tuple[str, str, str]] = []
        fresh = BreakerBoard(
            failure_threshold=1,
            cooldown_s=600.0,
            on_transition=lambda fp, old, new: transitions.append(
                (fp, old, new)
            ),
        )
        assert fresh.restore_state(exported) == 1
        assert fresh.get("poison").state == "open"
        assert fresh.open_count == 1
        # Observers attach through the restore path too: the next real
        # transition must fire them.
        fresh.get("poison").record_success()
        assert ("poison", "open", "closed") in transitions
