"""Unit tests for the memoized pipeline entry point
(:func:`repro.pipeline.compile_source_cached`): the four resume levels,
byte identity against the uncached pipeline, the diagnostics replay
gate, and cold-path error handling."""

from __future__ import annotations

import pytest

from repro.cache import CompilationCache
from repro.ir.verifier import verify_module
from repro.midend import default_pass_pipeline
from repro.pipeline import (
    CompilationError,
    compile_source,
    compile_source_cached,
)

PROGRAM = """\
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp tile sizes(3)
  for (int i = 0; i < 9; i += 1)
    sum += i;
  printf("sum=%d\\n", sum);
  return 0;
}
"""

#: nonzero integer-to-pointer initialization: compiles with a warning,
#: whose rendered caret embeds a line/column number
WARNS = """\
int main() {
  int *p = 5;
  return 0;
}
"""


def cold_ir(source: str, optimize: bool = False, **kwargs) -> str:
    result = compile_source(source, strict=True, **kwargs)
    if optimize:
        default_pass_pipeline(
            remarks=result.diagnostics.remarks
        ).run(result.module)
        verify_module(result.module)
    return result.ir_text()


class TestResumeLevels:
    def test_cold_then_exact(self):
        cache = CompilationCache()
        first = compile_source_cached(PROGRAM, cache)
        assert not first.hit and first.resumed_from is None
        second = compile_source_cached(PROGRAM, cache)
        assert second.hit and second.resumed_from == "exact"
        assert second.origin == "memory"
        assert second.ir_text == first.ir_text == cold_ir(PROGRAM)

    def test_comment_edit_resumes_at_tokens(self):
        cache = CompilationCache()
        compile_source_cached(PROGRAM, cache)
        edited = "// a comment the preprocessor strips\n" + PROGRAM
        second = compile_source_cached(edited, cache)
        assert second.hit and second.resumed_from == "tokens"
        assert second.ir_text == cold_ir(PROGRAM)

    def test_optimize_flip_resumes_at_module(self):
        cache = CompilationCache()
        compile_source_cached(PROGRAM, cache)
        opt = compile_source_cached(PROGRAM, cache, optimize=True)
        assert opt.resumed_from == "module"
        assert opt.ir_text == cold_ir(PROGRAM, optimize=True)
        # and the memoized module was not corrupted by the pass
        # pipeline: the unoptimized artifact still replays bit-exact
        again = compile_source_cached(PROGRAM, cache)
        assert again.resumed_from == "exact"
        assert again.ir_text == cold_ir(PROGRAM)

    def test_optimized_repeat_is_an_exact_hit(self):
        cache = CompilationCache()
        compile_source_cached(PROGRAM, cache, optimize=True)
        again = compile_source_cached(PROGRAM, cache, optimize=True)
        assert again.hit and again.resumed_from == "exact"

    def test_mode_change_is_not_a_final_artifact_hit(self):
        cache = CompilationCache()
        compile_source_cached(PROGRAM, cache)
        other = compile_source_cached(
            PROGRAM, cache, enable_irbuilder=True
        )
        assert other.resumed_from not in ("exact", "tokens")
        assert other.ir_text == cold_ir(
            PROGRAM, enable_irbuilder=True
        )


class TestDiskTier:
    def test_exact_hit_across_cache_instances(self, tmp_path):
        d = str(tmp_path / "cache")
        warm = compile_source_cached(PROGRAM, CompilationCache(d))
        fresh = CompilationCache(d)  # new process simulation
        replay = compile_source_cached(PROGRAM, fresh)
        assert replay.hit and replay.resumed_from == "exact"
        assert replay.origin == "disk"
        assert replay.ir_text == warm.ir_text


class TestDiagnostics:
    def test_warning_replays_byte_identically(self):
        cache = CompilationCache()
        first = compile_source_cached(WARNS, cache)
        assert "integer to pointer" in first.diagnostics_text
        second = compile_source_cached(WARNS, cache)
        assert second.hit
        assert second.diagnostics_text == first.diagnostics_text

    def test_shifted_warning_is_not_replayed_with_stale_carets(self):
        """A comment edit keeps the token stream identical but moves the
        warning to another line: the artifact's rendered caret (keyed to
        the original source) must not be replayed verbatim."""
        cache = CompilationCache()
        compile_source_cached(WARNS, cache)
        shifted = "// pushes everything down one line\n" + WARNS
        second = compile_source_cached(shifted, cache)
        reference = compile_source(shifted, strict=True)
        assert (
            second.diagnostics_text == reference.diagnostics_text()
        )
        assert "3:" in second.diagnostics_text  # the *shifted* line

    def test_clean_compile_replays_across_comment_edits(self):
        cache = CompilationCache()
        compile_source_cached(PROGRAM, cache)
        second = compile_source_cached("// c\n" + PROGRAM, cache)
        assert second.resumed_from == "tokens"
        assert second.diagnostics_text == ""


class TestErrors:
    def test_errors_propagate_and_are_never_cached(self):
        cache = CompilationCache()
        bad = "int main() { return undeclared; }\n"
        with pytest.raises(CompilationError):
            compile_source_cached(bad, cache)
        assert len(cache.memory) == 0
        with pytest.raises(CompilationError):  # still a real compile
            compile_source_cached(bad, cache)

    def test_cache_does_not_change_error_text(self):
        cache = CompilationCache()
        bad = "int main() { return undeclared; }\n"
        with pytest.raises(CompilationError) as cached_exc:
            compile_source_cached(bad, cache)
        with pytest.raises(CompilationError) as cold_exc:
            compile_source(bad, strict=True)
        assert str(cached_exc.value) == str(cold_exc.value)
