"""Tests for machine-readable statistics export: ``--stats-json`` on
both CLIs and deterministic ``-print-stats`` ordering.

Worker-side statistics used to vanish when a request failed; the
service now folds every outcome's stats into the parent registry (see
``CompileService._absorb_worker_telemetry``), so ``miniclang-serve
--stats-json`` must report parse/sema work even for batches that never
succeed.  Determinism matters because the dumps are diffed across runs
in CI.
"""

from __future__ import annotations

import json

import pytest

from repro.driver import cli, serve

HELLO = """\
int printf(const char *fmt, ...);
int main() {
  #pragma omp unroll partial(2)
  for (int i = 0; i < 4; i += 1)
    printf("i=%d\\n", i);
  return 0;
}
"""

BAD = "int main() { return undeclared; }\n"


@pytest.fixture()
def hello_c(tmp_path):
    path = tmp_path / "hello.c"
    path.write_text(HELLO)
    return str(path)


class TestMiniclangStatsJson:
    def test_writes_sorted_json_deltas(self, tmp_path, hello_c):
        out = tmp_path / "stats.json"
        code = cli.main(
            ["-fsyntax-only", "--stats-json", str(out), hello_c]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data, "no statistics collected"
        assert list(data) == sorted(data)
        assert all(isinstance(v, int) for v in data.values())
        # only this invocation's deltas, so parse work is visible
        assert any(key.startswith("parser.") for key in data)

    def test_dash_writes_to_stdout(self, capsys, hello_c):
        code = cli.main(["-fsyntax-only", "--stats-json", "-", hello_c])
        assert code == 0
        payload = capsys.readouterr().out
        data = json.loads(payload)
        assert list(data) == sorted(data)

    def test_repeated_runs_identical(self, tmp_path, hello_c):
        outs = []
        for i in range(2):
            out = tmp_path / f"stats{i}.json"
            cli.main(
                ["-fsyntax-only", "--stats-json", str(out), hello_c]
            )
            outs.append(out.read_text())
        assert outs[0] == outs[1]


class TestMiniclangPrintStatsOrdering:
    def _stats_block(self, err: str) -> list[str]:
        lines = err.splitlines()
        start = next(
            i for i, l in enumerate(lines) if "Statistics Collected" in l
        )
        return lines[start + 2 :]

    def test_rows_sorted_and_stable_across_runs(
        self, capsys, hello_c
    ):
        blocks = []
        for _ in range(2):
            cli.main(["-fsyntax-only", "-print-stats", hello_c])
            blocks.append(self._stats_block(capsys.readouterr().err))
        assert blocks[0] == blocks[1]
        assert blocks[0], "empty stats dump"


class TestServeStatsJson:
    def test_serve_writes_sorted_json(self, tmp_path, hello_c):
        out = tmp_path / "serve-stats.json"
        code = serve.main(
            [
                "--workers",
                "1",
                "--stats-json",
                str(out),
                hello_c,
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert list(data) == sorted(data)
        assert data.get("service.requests") == 1
        assert data.get("service.responses") == 1
        # worker-side pipeline stats crossed the process boundary
        assert any(key.startswith("parser.") for key in data)

    def test_worker_stats_survive_failed_requests(self, tmp_path):
        # Regression: stats from failed attempts used to be dropped on
        # the floor because only successful outcomes were merged.
        bad = tmp_path / "bad.c"
        bad.write_text(BAD)
        out = tmp_path / "stats.json"
        code = serve.main(
            [
                "--workers",
                "1",
                "--retries",
                "0",
                "--stats-json",
                str(out),
                str(bad),
            ]
        )
        assert code != 0  # the batch failed...
        data = json.loads(out.read_text())
        # ...but the worker's parse/sema effort is still accounted for
        assert any(key.startswith("parser.") for key in data)
        assert data.get("service.responses") == 1
