"""Unit tests: OpenMP directive/clause parsing and Sema error paths."""

import pytest

from repro.pipeline import CompilationError

from tests.conftest import compile_c, run_c


def errors_of(src: str, **kw) -> str:
    result = compile_c(src, syntax_only=True, strict=False, **kw)
    return result.diagnostics_text()


def wrap(pragma_and_loop: str) -> str:
    return f"int main(void) {{\n{pragma_and_loop}\nreturn 0; }}"


class TestDirectiveParsing:
    def test_unknown_directive(self):
        text = errors_of(wrap(
            "#pragma omp frobnicate\nfor (int i = 0; i < 2; ++i) ;"
        ))
        assert "unknown OpenMP directive" in text

    def test_unknown_clause(self):
        text = errors_of(wrap(
            "#pragma omp parallel froz(1)\n{ }"
        ))
        assert "unknown OpenMP clause 'froz'" in text

    def test_clause_not_allowed_on_directive(self):
        text = errors_of(wrap(
            "#pragma omp unroll schedule(static)\n"
            "for (int i = 0; i < 2; ++i) ;"
        ))
        assert "'schedule' clause is not allowed" in text

    def test_missing_directive_name(self):
        text = errors_of(wrap("#pragma omp\n;"))
        assert "expected an OpenMP directive name" in text

    def test_combined_directive_greedy_match(self):
        result = compile_c(wrap(
            "#pragma omp parallel for simd\n"
            "for (int i = 0; i < 2; ++i) ;"
        ), syntax_only=True)
        from repro.astlib import omp

        directive = result.function("main").body.statements[0]
        assert isinstance(
            directive, omp.OMPParallelForSimdDirective
        )

    def test_schedule_unknown_kind(self):
        text = errors_of(wrap(
            "#pragma omp for schedule(weird)\n"
            "for (int i = 0; i < 2; ++i) ;"
        ))
        assert "unknown schedule kind 'weird'" in text

    def test_clause_missing_parens(self):
        text = errors_of(wrap(
            "#pragma omp for schedule\n"
            "for (int i = 0; i < 2; ++i) ;"
        ))
        assert "expected '(' after 'schedule' clause" in text

    def test_reduction_missing_colon(self):
        text = errors_of(wrap(
            "int s = 0;\n"
            "#pragma omp for reduction(+ s)\n"
            "for (int i = 0; i < 2; ++i) ;"
        ))
        assert "expected ':' in 'reduction' clause" in text

    def test_reduction_unknown_operator(self):
        text = errors_of(wrap(
            "int s = 0;\n"
            "#pragma omp for reduction(@: s)\n"
            "for (int i = 0; i < 2; ++i) ;"
        ))
        assert "unknown reduction operator" in text

    def test_var_list_non_variable(self):
        text = errors_of(wrap(
            "#pragma omp parallel private(1 + 2)\n{ }"
        ))
        assert "expected a variable name" in text

    def test_directive_at_file_scope_rejected(self):
        text = errors_of(
            "#pragma omp parallel\nint x;\n"
        )
        assert "not allowed at file scope" in text


class TestClauseSemanticChecks:
    def test_partial_factor_must_be_constant(self):
        text = errors_of(
            "int main(void) {\n"
            "int n = 4;\n"
            "#pragma omp unroll partial(n)\n"
            "for (int i = 0; i < 8; ++i) ;\n"
            "return 0; }"
        )
        assert "must be a constant expression" in text

    def test_partial_factor_positive(self):
        text = errors_of(wrap(
            "#pragma omp unroll partial(-2)\n"
            "for (int i = 0; i < 8; ++i) ;"
        ))
        assert "strictly positive" in text

    def test_collapse_positive(self):
        text = errors_of(wrap(
            "#pragma omp for collapse(0)\n"
            "for (int i = 0; i < 8; ++i) ;"
        ))
        assert "strictly positive" in text

    def test_full_and_partial_mutually_exclusive(self):
        text = errors_of(wrap(
            "#pragma omp unroll full partial(2)\n"
            "for (int i = 0; i < 8; ++i) ;"
        ))
        assert "mutually exclusive" in text

    def test_reduction_on_pointer_rejected(self):
        text = errors_of(
            "int main(void) {\n"
            "int buf[2]; int *p = buf;\n"
            "#pragma omp parallel for reduction(+: p)\n"
            "for (int i = 0; i < 2; ++i) ;\n"
            "return 0; }"
        )
        assert "not valid for reduction" in text

    def test_directive_needs_statement(self):
        text = errors_of(wrap("#pragma omp parallel\n"))
        # The next token is `return` -> the parallel region grabs it; a
        # directive at the very end of a block errors out.
        src = (
            "int main(void) { if (1) { }\n"
            "#pragma omp unroll\n"
            "}"
        )
        text = errors_of(src)
        assert text  # some diagnostic about the malformed statement


class TestDirectiveSemantics:
    def test_non_loop_after_loop_directive(self):
        text = errors_of(wrap(
            "#pragma omp for\n{ int x = 1; }"
        ))
        assert "expected 1 nested for loop" in text

    def test_while_loop_rejected(self):
        text = errors_of(
            "int main(void) {\nint i = 0;\n"
            "#pragma omp for\nwhile (i < 5) i += 1;\n"
            "return 0; }"
        )
        assert "expected 1 nested for loop" in text

    def test_collapse_deeper_than_nest(self):
        text = errors_of(wrap(
            "#pragma omp for collapse(3)\n"
            "for (int i = 0; i < 4; ++i)\n"
            "  for (int j = 0; j < 4; ++j) ;"
        ))
        assert "expected 3 nested" in text

    def test_num_threads_runtime_expr_allowed(self):
        # num_threads does NOT need to be a compile-time constant.
        src = wrap(
            "int t = 2;\n"
            "#pragma omp parallel num_threads(t + 1)\n{ }"
        )
        result = compile_c(src, syntax_only=True)
        assert result.ok

    def test_num_threads_executes(self):
        src = r"""
        int main(void) {
          int n = 0;
          int want = 3;
          #pragma omp parallel num_threads(want)
          {
            #pragma omp master
            { n = omp_get_num_threads(); }
          }
          printf("%d\n", n);
          return 0;
        }
        """
        assert run_c(src).stdout == "3\n"

    def test_if_clause_false_serializes(self):
        src = r"""
        int main(void) {
          int teamsize = -1;
          #pragma omp parallel if(0)
          { teamsize = omp_get_num_threads(); }
          printf("%d\n", teamsize);
          return 0;
        }
        """
        assert run_c(src).stdout == "1\n"

    def test_if_clause_true_parallelizes(self):
        src = r"""
        int main(void) {
          int teamsize = -1;
          #pragma omp parallel if(1) num_threads(4)
          {
            #pragma omp master
            { teamsize = omp_get_num_threads(); }
          }
          printf("%d\n", teamsize);
          return 0;
        }
        """
        assert run_c(src).stdout == "4\n"
