"""Unit tests: the #if constant-expression evaluator, exercised directly."""

import pytest

from repro.diagnostics import DiagnosticsEngine
from repro.lex.lexer import tokenize_string
from repro.preprocessor.pp_expr import (
    PPExpressionEvaluator,
    parse_integer_literal,
)


def evaluate(text: str) -> int:
    diags = DiagnosticsEngine()
    tokens = tokenize_string(text)
    value = PPExpressionEvaluator(tokens, diags).evaluate()
    assert not diags.has_errors(), diags.render_all()
    return value


def evaluate_error(text: str) -> str:
    diags = DiagnosticsEngine()
    tokens = tokenize_string(text)
    PPExpressionEvaluator(tokens, diags).evaluate()
    assert diags.has_errors()
    return diags.render_all()


class TestLiterals:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0", 0),
            ("42", 42),
            ("0x1F", 31),
            ("017", 15),
            ("0b101", 5),
            ("42u", 42),
            ("42L", 42),
            ("1ULL", 1),
        ],
    )
    def test_integer_literals(self, text, value):
        assert evaluate(text) == value

    def test_parse_integer_literal_invalid(self):
        assert parse_integer_literal("12abc") is None
        assert parse_integer_literal("uLL") is None

    def test_char_constants(self):
        assert evaluate("'A'") == 65
        assert evaluate("'\\n'") == 10
        assert evaluate("'\\0'") == 0


class TestOperators:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("7 / 2", 3),
            ("-7 / 2", -3),
            ("7 % 3", 1),
            ("-7 % 3", -1),
            ("1 << 4", 16),
            ("256 >> 4", 16),
            ("0xF0 & 0x1F", 0x10),
            ("0xF0 | 0x0F", 0xFF),
            ("0xFF ^ 0x0F", 0xF0),
            ("~0", -1),
            ("!0", 1),
            ("!3", 0),
            ("-(-5)", 5),
            ("+5", 5),
        ],
    )
    def test_arithmetic(self, text, value):
        assert evaluate(text) == value

    @pytest.mark.parametrize(
        "text,value",
        [
            ("3 < 5", 1),
            ("5 <= 5", 1),
            ("5 > 5", 0),
            ("5 >= 6", 0),
            ("4 == 4", 1),
            ("4 != 4", 0),
        ],
    )
    def test_comparisons(self, text, value):
        assert evaluate(text) == value

    def test_logical_short_circuit_semantics(self):
        assert evaluate("1 && 2") == 1
        assert evaluate("0 && (1/0)") == 0  # rhs not evaluated... but
        # NOTE: the pp evaluator evaluates eagerly except where guarded:
        # C requires short-circuit, which the 0 && case tests.

    def test_conditional_operator(self):
        assert evaluate("1 ? 10 : 20") == 10
        assert evaluate("0 ? 10 : 20") == 20
        assert evaluate("1 ? 0 ? 1 : 2 : 3") == 2

    def test_unknown_identifier_is_zero(self):
        assert evaluate("NOT_DEFINED + 1") == 1

    def test_wrap_to_64_bits(self):
        assert evaluate("0x7FFFFFFFFFFFFFFF + 1") == -(1 << 63)


class TestErrors:
    def test_division_by_zero(self):
        text = evaluate_error("1 / 0")
        assert "division by zero" in text

    def test_unbalanced_paren(self):
        text = evaluate_error("(1 + 2")
        assert "expected ')'" in text

    def test_trailing_tokens(self):
        text = evaluate_error("1 2")
        assert "unexpected token" in text

    def test_missing_colon(self):
        text = evaluate_error("1 ? 2")
        assert "':'" in text

    def test_empty_expression(self):
        diags = DiagnosticsEngine()
        PPExpressionEvaluator([], diags).evaluate()
        assert diags.has_errors()
