"""Shared test helpers.

``compile_c`` / ``run_c`` wrap the pipeline with test-friendly defaults;
``run_both`` executes a program under both OpenMP representations (shadow
AST and OMPCanonicalLoop/OpenMPIRBuilder) and asserts identical output —
the paper's central semantic-equivalence property.
"""

from __future__ import annotations

import pytest

from repro.pipeline import CompileResult, RunResult, compile_source, run_source


def compile_c(source: str, **kwargs) -> CompileResult:
    kwargs.setdefault("openmp", True)
    return compile_source(source, **kwargs)


def run_c(source: str, **kwargs) -> RunResult:
    kwargs.setdefault("openmp", True)
    kwargs.setdefault("num_threads", 4)
    return run_source(source, **kwargs)


def run_both(source: str, **kwargs) -> tuple[RunResult, RunResult]:
    """Run under the shadow-AST path and the IRBuilder path; assert the
    observable output matches."""
    legacy = run_c(source, enable_irbuilder=False, **kwargs)
    irbuilder = run_c(source, enable_irbuilder=True, **kwargs)
    assert legacy.stdout == irbuilder.stdout, (
        "representations disagree:\n"
        f"shadow AST: {legacy.stdout!r}\n"
        f"irbuilder:  {irbuilder.stdout!r}"
    )
    return legacy, irbuilder


@pytest.fixture
def fresh_context():
    from repro.astlib.context import ASTContext

    return ASTContext()


@pytest.fixture
def diag_engine():
    from repro.diagnostics import DiagnosticsEngine

    return DiagnosticsEngine()
