"""Shared test helpers.

``compile_c`` / ``run_c`` wrap the pipeline with test-friendly defaults;
``run_both`` executes a program under both OpenMP representations (shadow
AST and OMPCanonicalLoop/OpenMPIRBuilder) and asserts identical output —
the paper's central semantic-equivalence property.
"""

from __future__ import annotations

import os

import pytest

from repro.pipeline import CompileResult, RunResult, compile_source, run_source


@pytest.fixture(autouse=True, scope="session")
def _artifact_dirs_in_tmp(tmp_path_factory):
    """Point crash reproducers and quarantine output at a temp dir.

    ``-crash-reproducer-dir`` and ``--quarantine-dir`` default to these
    environment variables, and subprocesses spawned by tests inherit
    them — so a failing test can never strew ``miniclang-crashes/`` or
    ``service-quarantine/`` across the repository root (CI enforces a
    clean tree after the suite)."""
    base = tmp_path_factory.mktemp("artifacts")
    before = {
        key: os.environ.get(key)
        for key in ("MINICLANG_CRASH_DIR", "MINICLANG_QUARANTINE_DIR")
    }
    os.environ["MINICLANG_CRASH_DIR"] = str(base / "crashes")
    os.environ["MINICLANG_QUARANTINE_DIR"] = str(base / "quarantine")
    yield
    for key, value in before.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


@pytest.fixture(params=["interp", "closures"])
def exec_engine(request) -> str:
    """Parametrizes a test over both execution engines (the reference
    tree-walking interpreter and the closure-compiled engine); pass the
    value straight to ``run_source(..., exec_engine=...)``.  Guardrail
    and semantics tests using this fixture assert engine parity by
    construction."""
    return request.param


def compile_c(source: str, **kwargs) -> CompileResult:
    kwargs.setdefault("openmp", True)
    return compile_source(source, **kwargs)


def run_c(source: str, **kwargs) -> RunResult:
    kwargs.setdefault("openmp", True)
    kwargs.setdefault("num_threads", 4)
    return run_source(source, **kwargs)


def run_both(source: str, **kwargs) -> tuple[RunResult, RunResult]:
    """Run under the shadow-AST path and the IRBuilder path; assert the
    observable output matches."""
    legacy = run_c(source, enable_irbuilder=False, **kwargs)
    irbuilder = run_c(source, enable_irbuilder=True, **kwargs)
    assert legacy.stdout == irbuilder.stdout, (
        "representations disagree:\n"
        f"shadow AST: {legacy.stdout!r}\n"
        f"irbuilder:  {irbuilder.stdout!r}"
    )
    return legacy, irbuilder


@pytest.fixture
def fresh_context():
    from repro.astlib.context import ASTContext

    return ASTContext()


@pytest.fixture
def diag_engine():
    from repro.diagnostics import DiagnosticsEngine

    return DiagnosticsEngine()
