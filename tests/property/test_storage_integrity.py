"""Property-based tests (hypothesis) on disk-cache integrity.

The self-verifying envelope is the disk tier's entire crash-safety
argument: *whatever* happens to the bytes at rest — a torn write, a
flipped bit, a truncated tail, another process scribbling over the
file — a later read must either return the original payload or a miss.
Never an exception, never wrong bytes.  So the property is exactly
that, quantified over arbitrary corruptions:

* flip any one byte of a stored entry → the read is a miss, the entry
  is deleted (self-healing), and ``cache.corrupt-entries`` counts it;
* truncate the entry at any point → same;
* splice arbitrary bytes anywhere → the read is a miss **or** the
  original payload (a corruption that keeps the digest valid can only
  be the identity).
"""

from __future__ import annotations

import os

from hypothesis import given, settings, strategies as st

from repro.cache.disk import DiskTier
from repro.cache.integrity import IntegrityError, seal, unseal
from repro.instrument.stats import STATS

FAST = settings(max_examples=60, deadline=None)

PAYLOAD = {
    "ir": "define i32 @main() {\nentry:\n  ret i32 0\n}\n",
    "diagnostics": [],
    "stage": "codegen",
}
KEY = "artifact:" + "ab" * 32


def _tier_with_entry(tmp_path) -> tuple[DiskTier, str]:
    tier = DiskTier(str(tmp_path / "cache"))
    tier.put(KEY, PAYLOAD)
    path = tier._object_path(KEY)
    assert os.path.isfile(path)
    return tier, path


def _mangle(path: str, mutate) -> None:
    with open(path, "rb") as fh:
        data = fh.read()
    with open(path, "wb") as fh:
        fh.write(mutate(data))


@FAST
@given(offset=st.integers(min_value=0, max_value=10_000), flip=st.integers(min_value=1, max_value=255))
def test_single_byte_flip_heals(tmp_path_factory, offset, flip):
    tmp_path = tmp_path_factory.mktemp("flip")
    tier, path = _tier_with_entry(tmp_path)
    before = STATS.snapshot()

    def mutate(data: bytes) -> bytes:
        i = offset % len(data)
        return data[:i] + bytes([data[i] ^ flip]) + data[i + 1 :]

    _mangle(path, mutate)
    got = tier.get(KEY)
    delta = STATS.delta_since(before)
    if got is None:
        # Detected: the poisoned entry must be gone and counted.
        assert not os.path.exists(path)
        assert delta.get("cache.corrupt-entries", 0) == 1
        assert tier.get(KEY) is None  # and it stays a miss
    else:
        # A flip inside JSON whitespace/etc. that survives the digest
        # check can only mean the payload decoded identically.
        assert got == PAYLOAD


@FAST
@given(cut=st.integers(min_value=0, max_value=10_000))
def test_truncation_heals(tmp_path_factory, cut):
    tmp_path = tmp_path_factory.mktemp("trunc")
    tier, path = _tier_with_entry(tmp_path)
    before = STATS.snapshot()
    _mangle(path, lambda data: data[: cut % len(data)])
    got = tier.get(KEY)
    delta = STATS.delta_since(before)
    assert got is None
    assert not os.path.exists(path)
    assert delta.get("cache.corrupt-entries", 0) == 1


@FAST
@given(
    where=st.integers(min_value=0, max_value=10_000),
    junk=st.binary(min_size=1, max_size=64),
)
def test_spliced_bytes_never_served(tmp_path_factory, where, junk):
    tmp_path = tmp_path_factory.mktemp("splice")
    tier, path = _tier_with_entry(tmp_path)

    def mutate(data: bytes) -> bytes:
        i = where % (len(data) + 1)
        return data[:i] + junk + data[i:]

    _mangle(path, mutate)
    got = tier.get(KEY)
    assert got is None or got == PAYLOAD


@FAST
@given(data=st.binary(max_size=256))
def test_unseal_arbitrary_bytes_never_crashes(data):
    """unseal() totalizes: arbitrary bytes either raise IntegrityError
    or round-trip a genuinely sealed payload."""
    try:
        unseal(data)
    except IntegrityError:
        pass


@FAST
@given(
    payload=st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**31), max_value=2**31)
        | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=10,
    )
)
def test_seal_unseal_roundtrip(payload):
    assert unseal(seal(payload)) == payload
