"""Property-based engine equivalence.

Two properties back the closure engine:

* **No divergence** — programs drawn from the fuzzer's generator (the
  same distribution the 200-seed campaign samples) and
  hypothesis-generated loop nests never produce different stdout, exit
  codes or execution profiles across engines.
* **Deterministic compilation** — compiling the same IR twice yields
  the same dispatch table (the closure engine's analogue of
  reproducible codegen), rendered via ``describe_code()`` which is
  name/slot-based and free of object identities.

Seeds are fixed (``derandomize=True``) so CI failures reproduce
locally.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import create_interpreter, profile_fingerprint
from repro.pipeline import compile_source, run_source
from repro.testing.generator import generate_program

pytestmark = pytest.mark.exec_differential

FIXED = settings(max_examples=12, deadline=None, derandomize=True)


def assert_engines_agree(source: str, num_threads: int = 3) -> str:
    interp = run_source(
        source,
        num_threads=num_threads,
        profile_detail=True,
        exec_engine="interp",
    )
    closures = run_source(
        source,
        num_threads=num_threads,
        profile_detail=True,
        exec_engine="closures",
    )
    assert closures.stdout == interp.stdout
    assert closures.exit_code == interp.exit_code
    assert profile_fingerprint(
        closures.interpreter.profile
    ) == profile_fingerprint(interp.interpreter.profile)
    return interp.stdout


class TestGeneratedProgramsNeverDiverge:
    @FIXED
    @given(seed=st.integers(min_value=1, max_value=100_000))
    def test_generator_corpus(self, seed):
        program = generate_program(seed)
        stdout = assert_engines_agree(program.source)
        if program.expected_stdout is not None:
            assert stdout == program.expected_stdout

    @FIXED
    @given(
        n=st.integers(min_value=0, max_value=9),
        m=st.integers(min_value=1, max_value=6),
        tile=st.integers(min_value=1, max_value=4),
        factor=st.integers(min_value=1, max_value=4),
    )
    def test_transformed_nests(self, n, m, tile, factor):
        src = rf"""
int main(void) {{
  long acc = 0;
  #pragma omp tile sizes({tile}, {tile})
  for (int i = 0; i < {n}; i += 1)
    for (int j = 0; j < {m}; j += 1)
      acc += i * 17 + j;
  #pragma omp unroll partial({factor})
  for (int k = 0; k < {n + m}; k += 1)
    acc -= k;
  printf("%d\n", (int)acc);
  return 0;
}}
"""
        assert_engines_agree(src)

    @FIXED
    @given(
        n=st.integers(min_value=0, max_value=16),
        chunk=st.integers(min_value=1, max_value=5),
        threads=st.integers(min_value=1, max_value=4),
    )
    def test_worksharing_interleaving(self, n, chunk, threads):
        """Dynamic scheduling makes printf order a function of the
        exact round-robin interleaving — the sharpest observable
        surface of scheduler parity."""
        src = rf"""
int main(void) {{
  #pragma omp parallel for schedule(dynamic, {chunk}) \
      num_threads({threads})
  for (int i = 0; i < {n}; i += 1)
    printf("%d:%d ", omp_get_thread_num(), i);
  printf("\n");
  return 0;
}}
"""
        assert_engines_agree(src, num_threads=threads)


class TestClosureCompilationDeterministic:
    SOURCE = r"""
    int helper(int x) { return x * 3 - 1; }
    int main() {
      long acc = 0;
      #pragma omp tile sizes(3)
      for (int i = 0; i < 11; i += 1)
        acc += helper(i);
      printf("%d\n", (int)acc);
      return 0;
    }
    """

    def _dispatch_table(self) -> str:
        result = compile_source(self.SOURCE)
        engine = create_interpreter(result.module, engine="closures")
        return engine.describe_code()

    def test_same_ir_same_dispatch_table(self):
        """Same source -> same IR -> byte-identical dispatch table,
        across independent compiler/engine instances."""
        assert self._dispatch_table() == self._dispatch_table()

    def test_dispatch_table_is_slot_based(self):
        """The rendering must not leak object identities (id()s,
        addresses) — that is what makes the determinism assertion
        meaningful."""
        table = self._dispatch_table()
        assert "0x" not in table
        assert "function @main" in table
        assert "function @helper" in table

    @FIXED
    @given(seed=st.integers(min_value=1, max_value=10_000))
    def test_generated_programs_deterministic(self, seed):
        source = generate_program(seed).source

        def table() -> str:
            result = compile_source(source)
            engine = create_interpreter(
                result.module, engine="closures"
            )
            return engine.describe_code()

        assert table() == table()

    def test_compilation_is_lazy_but_table_is_total(self):
        """describe_code() compiles every defined function (the
        determinism artifact is total) even though execution alone
        compiles only what it calls."""
        result = compile_source(self.SOURCE)
        engine = create_interpreter(result.module, engine="closures")
        table = engine.describe_code()
        assert table.count("function @") >= 2
