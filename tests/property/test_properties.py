"""Property-based tests (hypothesis) on the core invariants.

The central property is the paper's: **loop transformations preserve
semantics** — for arbitrary canonical loops and transformation parameters,
the transformed program computes the same result, under both AST
representations and with/without the mid-end.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline import run_source
from repro.sema.canonical_loop import compute_trip_count

# Compilation through the whole pipeline is not cheap; keep example
# counts moderate but meaningful.
FAST = settings(max_examples=25, deadline=None)
SLOW = settings(max_examples=12, deadline=None)

bounds = st.integers(min_value=-30, max_value=30)
steps = st.integers(min_value=1, max_value=7)
factors = st.integers(min_value=1, max_value=9)
tile_sizes = st.integers(min_value=1, max_value=6)
extents = st.integers(min_value=0, max_value=10)


class TestTripCountProperties:
    @FAST
    @given(lb=bounds, ub=bounds, step=steps)
    def test_trip_count_matches_python_range(self, lb, ub, step):
        expected = len(range(lb, ub, step))
        assert (
            compute_trip_count(lb, ub, step, inclusive=False,
                               is_inequality=False)
            == expected
        )

    @FAST
    @given(lb=bounds, ub=bounds, step=steps)
    def test_inclusive_trip_count(self, lb, ub, step):
        expected = len(range(lb, ub + 1, step))
        assert (
            compute_trip_count(lb, ub, step, inclusive=True,
                               is_inequality=False)
            == expected
        )

    @FAST
    @given(lb=bounds, ub=bounds, step=steps)
    def test_down_trip_count(self, lb, ub, step):
        expected = len(range(lb, ub, -step))
        assert (
            compute_trip_count(lb, ub, -step, inclusive=False,
                               is_inequality=False)
            == expected
        )

    @FAST
    @given(lb=bounds, ub=bounds, step=steps)
    def test_trip_count_non_negative(self, lb, ub, step):
        assert (
            compute_trip_count(lb, ub, step, False, False) >= 0
        )


def loop_checksum_source(lb, ub, step, pragma):
    return rf"""
int main(void) {{
  long acc = 0;
  int pos = 0;
  {pragma}
  for (int i = {lb}; i < {ub}; i += {step}) {{
    acc += (long)i * 3 + 7;
    acc ^= (long)pos;
    pos += 1;
  }}
  printf("%d %d\n", (int)acc, pos);
  return 0;
}}
"""


def reference_checksum(lb, ub, step):
    acc = 0
    pos = 0
    for i in range(lb, ub, step):
        acc += i * 3 + 7
        acc ^= pos
        pos += 1
    # wrap to int32 for the printed %d
    acc &= (1 << 64) - 1
    acc_i32 = acc & 0xFFFFFFFF
    if acc_i32 >= 1 << 31:
        acc_i32 -= 1 << 32
    return acc_i32, pos


class TestUnrollPreservesSemanticsProperty:
    @SLOW
    @given(lb=bounds, ub=bounds, step=steps, factor=factors)
    def test_unroll_partial_equals_original(self, lb, ub, step, factor):
        pragma = f"#pragma omp unroll partial({factor})"
        src = loop_checksum_source(lb, ub, step, pragma)
        expected_acc, expected_pos = reference_checksum(lb, ub, step)
        result = run_source(src, openmp=True)
        acc, pos = map(int, result.stdout.split())
        assert (acc, pos) == (expected_acc, expected_pos)

    @SLOW
    @given(lb=bounds, ub=bounds, step=steps, factor=factors)
    def test_unroll_irbuilder_agrees(self, lb, ub, step, factor):
        pragma = f"#pragma omp unroll partial({factor})"
        src = loop_checksum_source(lb, ub, step, pragma)
        legacy = run_source(src, enable_irbuilder=False)
        irb = run_source(src, enable_irbuilder=True)
        assert legacy.stdout == irb.stdout

    @SLOW
    @given(lb=bounds, ub=bounds, step=steps, factor=factors)
    def test_midend_unroll_agrees(self, lb, ub, step, factor):
        pragma = f"#pragma omp unroll partial({factor})"
        src = loop_checksum_source(lb, ub, step, pragma)
        plain = run_source(src)
        optimized = run_source(src, optimize=True)
        assert plain.stdout == optimized.stdout


class TestTilePreservesIterationSet:
    @SLOW
    @given(n=extents, m=extents, si=tile_sizes, sj=tile_sizes)
    def test_tile_full_coverage_exactly_once(self, n, m, si, sj):
        src = rf"""
int main(void) {{
  int hits[128];
  for (int k = 0; k < 128; k += 1) hits[k] = 0;
  #pragma omp tile sizes({si}, {sj})
  for (int i = 0; i < {n}; i += 1)
    for (int j = 0; j < {m}; j += 1)
      hits[i * {max(m, 1)} + j] += 1;
  int once = 0;
  int wrong = 0;
  for (int k = 0; k < 128; k += 1) {{
    if (hits[k] == 1) once += 1;
    if (hits[k] > 1) wrong += 1;
  }}
  printf("%d %d\n", once, wrong);
  return 0;
}}
"""
        result = run_source(src)
        once, wrong = map(int, result.stdout.split())
        assert once == n * m
        assert wrong == 0

    @SLOW
    @given(n=extents, si=tile_sizes)
    def test_1d_tile_preserves_order(self, n, si):
        """With a single loop, tiling must preserve execution order."""
        src = rf"""
int main(void) {{
  int order[32]; int pos = 0;
  #pragma omp tile sizes({si})
  for (int i = 0; i < {n}; i += 1) {{ order[pos] = i; pos += 1; }}
  for (int k = 0; k < pos; k += 1) printf("%d ", order[k]);
  printf("\n");
  return 0;
}}
"""
        result = run_source(src)
        assert result.stdout.split() == [str(i) for i in range(n)]


class TestWorksharingProperties:
    @SLOW
    @given(
        n=st.integers(min_value=0, max_value=40),
        threads=st.integers(min_value=1, max_value=6),
        data=st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=40,
            max_size=40,
        ),
    )
    def test_static_covers_each_index_once(self, n, threads, data):
        array_init = ", ".join(str(v) for v in data[:40])
        src = rf"""
int main(void) {{
  int input[40] = {{{array_init}}};
  long sum = 0;
  #pragma omp parallel for reduction(+: sum)
  for (int i = 0; i < {n}; i += 1)
    sum += input[i];
  printf("%d\n", (int)sum);
  return 0;
}}
"""
        result = run_source(src, num_threads=threads)
        assert int(result.stdout) == sum(data[:n])

    @SLOW
    @given(
        n=st.integers(min_value=1, max_value=32),
        chunk=st.integers(min_value=1, max_value=8),
        threads=st.integers(min_value=1, max_value=5),
    )
    def test_dynamic_covers_all(self, n, chunk, threads):
        src = rf"""
int main(void) {{
  int hits[32];
  for (int k = 0; k < 32; k += 1) hits[k] = 0;
  #pragma omp parallel for schedule(dynamic, {chunk})
  for (int i = 0; i < {n}; i += 1)
    hits[i] += 1;
  int bad = 0;
  for (int k = 0; k < {n}; k += 1) if (hits[k] != 1) bad += 1;
  printf("%d\n", bad);
  return 0;
}}
"""
        result = run_source(src, num_threads=threads)
        assert result.stdout == "0\n"


class TestExpressionEvaluationProperty:
    @FAST
    @given(
        a=st.integers(min_value=-1000, max_value=1000),
        b=st.integers(min_value=-1000, max_value=1000),
        c=st.integers(min_value=1, max_value=50),
    )
    def test_compiled_arithmetic_matches_python(self, a, b, c):
        src = rf"""
int main(void) {{
  int a = {a}; int b = {b}; int c = {c};
  int r = (a * 3 - b) / c + (a % c) * (b < a ? 2 : -2) + (a ^ b);
  printf("%d\n", r);
  return 0;
}}
"""
        # C semantics: division truncates toward zero; % follows dividend.
        def cdiv(x, y):
            q = abs(x) // abs(y)
            return -q if (x < 0) != (y < 0) else q

        def cmod(x, y):
            return x - cdiv(x, y) * y

        expected = (
            cdiv(a * 3 - b, c)
            + cmod(a, c) * (2 if b < a else -2)
            + (a ^ b)
        )
        expected &= 0xFFFFFFFF
        if expected >= 1 << 31:
            expected -= 1 << 32
        result = run_source(src, openmp=False)
        assert int(result.stdout) == expected

    @FAST
    @given(
        values=st.lists(
            st.integers(min_value=-50, max_value=50),
            min_size=1,
            max_size=16,
        )
    )
    def test_array_reduction_roundtrip(self, values):
        init = ", ".join(map(str, values))
        src = rf"""
int main(void) {{
  int data[{len(values)}] = {{{init}}};
  int mx = data[0];
  for (int i = 0; i < {len(values)}; i += 1)
    if (data[i] > mx) mx = data[i];
  printf("%d\n", mx);
  return 0;
}}
"""
        assert int(run_source(src, openmp=False).stdout) == max(values)


class TestLexerRoundTripProperty:
    @FAST
    @given(
        idents=st.lists(
            st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,8}", fullmatch=True),
            min_size=1,
            max_size=10,
        )
    )
    def test_identifier_stream_roundtrips(self, idents):
        from repro.lex.lexer import tokenize_string
        from repro.lex.tokens import KEYWORDS

        text = " ".join(idents)
        tokens = tokenize_string(text)[:-1]
        assert [t.spelling for t in tokens] == idents
        for tok in tokens:
            if tok.spelling in KEYWORDS:
                assert tok.kind == KEYWORDS[tok.spelling]

    @FAST
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_integer_literal_roundtrip(self, value):
        src = f'int main(void) {{ printf("%d\\n", {value}); return 0; }}'
        assert int(run_source(src, openmp=False).stdout) == value
