"""Property-based tests for the OpenMP 6.0 extension transformations
(reverse / interchange / fuse): semantic preservation over random
iteration spaces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline import run_source

SLOW = settings(max_examples=12, deadline=None)

extents = st.integers(min_value=0, max_value=8)
small_extents = st.integers(min_value=1, max_value=5)


class TestReverseProperty:
    @SLOW
    @given(
        lb=st.integers(min_value=-10, max_value=10),
        ub=st.integers(min_value=-10, max_value=10),
        step=st.integers(min_value=1, max_value=4),
    )
    def test_reverse_emits_mirrored_sequence(self, lb, ub, step):
        src = rf"""
int main(void) {{
  #pragma omp reverse
  for (int i = {lb}; i < {ub}; i += {step})
    printf("%d ", i);
  printf("\n");
  return 0;
}}
"""
        result = run_source(src)
        expected = [str(i) for i in reversed(range(lb, ub, step))]
        assert result.stdout.split() == expected

    @SLOW
    @given(
        n=st.integers(min_value=0, max_value=12),
        step=st.integers(min_value=1, max_value=3),
    )
    def test_double_reverse_identity(self, n, step):
        src = rf"""
int main(void) {{
  #pragma omp reverse
  #pragma omp reverse
  for (int i = 0; i < {n}; i += {step})
    printf("%d ", i);
  printf("\n");
  return 0;
}}
"""
        result = run_source(src)
        assert result.stdout.split() == [
            str(i) for i in range(0, n, step)
        ]


class TestInterchangeProperty:
    @SLOW
    @given(n=extents, m=extents)
    def test_interchange_is_transposed_order(self, n, m):
        src = rf"""
int main(void) {{
  #pragma omp interchange
  for (int i = 0; i < {n}; i += 1)
    for (int j = 0; j < {m}; j += 1)
      printf("%d,%d ", i, j);
  printf("\n");
  return 0;
}}
"""
        result = run_source(src)
        expected = [
            f"{i},{j}" for j in range(m) for i in range(n)
        ]
        assert result.stdout.split() == expected

    @SLOW
    @given(n=small_extents, m=small_extents, k=small_extents)
    def test_permutation_round_trip(self, n, m, k):
        """Applying a permutation and its inverse restores the original
        order."""
        src = rf"""
int main(void) {{
  #pragma omp interchange permutation(2, 3, 1)
  #pragma omp interchange permutation(3, 1, 2)
  for (int i = 0; i < {n}; i += 1)
    for (int j = 0; j < {m}; j += 1)
      for (int l = 0; l < {k}; l += 1)
        printf("%d%d%d ", i, j, l);
  printf("\n");
  return 0;
}}
"""
        result = run_source(src)
        expected = [
            f"{i}{j}{l}"
            for i in range(n)
            for j in range(m)
            for l in range(k)
        ]
        assert result.stdout.split() == expected


class TestFuseProperty:
    @SLOW
    @given(n=extents, m=extents)
    def test_fuse_runs_each_body_its_trip_count(self, n, m):
        src = rf"""
int main(void) {{
  int a = 0; int b = 0;
  #pragma omp fuse
  {{
    for (int i = 0; i < {n}; i += 1) a += 1;
    for (int j = 0; j < {m}; j += 1) b += 1;
  }}
  printf("%d %d\n", a, b);
  return 0;
}}
"""
        # fuse requires >= 2 loops; both extents may be 0 (zero-trip).
        result = run_source(src)
        assert result.stdout.split() == [str(n), str(m)]

    @SLOW
    @given(
        n=extents,
        m=extents,
        values=st.lists(
            st.integers(min_value=-9, max_value=9),
            min_size=8,
            max_size=8,
        ),
    )
    def test_fuse_preserves_values(self, n, m, values):
        init = ", ".join(map(str, values))
        src = rf"""
int main(void) {{
  int data[8] = {{{init}}};
  long s1 = 0; long s2 = 0;
  #pragma omp fuse
  {{
    for (int i = 0; i < {min(n, 8)}; i += 1) s1 += data[i];
    for (int j = 0; j < {min(m, 8)}; j += 1) s2 += data[j] * 2;
  }}
  printf("%d %d\n", (int)s1, (int)s2);
  return 0;
}}
"""
        result = run_source(src)
        s1 = sum(values[: min(n, 8)])
        s2 = sum(v * 2 for v in values[: min(m, 8)])
        assert result.stdout.split() == [str(s1), str(s2)]


class TestTransformCompositionProperty:
    @SLOW
    @given(
        n=st.integers(min_value=0, max_value=20),
        factor=st.integers(min_value=1, max_value=5),
    )
    def test_reverse_then_unroll(self, n, factor):
        src = rf"""
int main(void) {{
  #pragma omp unroll partial({factor})
  #pragma omp reverse
  for (int i = 0; i < {n}; i += 1)
    printf("%d ", i);
  printf("\n");
  return 0;
}}
"""
        result = run_source(src)
        assert result.stdout.split() == [
            str(i) for i in reversed(range(n))
        ]

    @SLOW
    @given(n=small_extents, m=small_extents, size=st.integers(1, 4))
    def test_tile_of_interchange_coverage(self, n, m, size):
        src = rf"""
int main(void) {{
  int hits[64];
  for (int k = 0; k < 64; k += 1) hits[k] = 0;
  #pragma omp tile sizes({size}, {size})
  #pragma omp interchange
  for (int i = 0; i < {n}; i += 1)
    for (int j = 0; j < {m}; j += 1)
      hits[i * 8 + j] += 1;
  int bad = 0;
  for (int i = 0; i < {n}; i += 1)
    for (int j = 0; j < {m}; j += 1)
      if (hits[i * 8 + j] != 1) bad += 1;
  printf("%d\n", bad);
  return 0;
}}
"""
        result = run_source(src)
        assert result.stdout == "0\n"
