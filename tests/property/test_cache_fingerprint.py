"""Property-based tests (hypothesis) on cache-key stability.

The content address is the cache's entire correctness argument: two
requests share a key iff a compiler run could not tell them apart.  So
the properties are exactly the ones a wrong key would break:

* determinism — the same request always hashes identically, including
  in a fresh interpreter (no ``PYTHONHASHSEED`` leakage);
* sensitivity — any single-byte source change, and any semantically
  distinct flag change, produces a different key;
* insensitivity — flag-token whitespace and ordering (which the driver
  normalizes away) do not produce a different key.
"""

from __future__ import annotations

import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.cache import request_fingerprint
from repro.cache.key import (
    canonicalize_flag_tokens,
    source_id,
    stage_key,
)

FAST = settings(max_examples=50, deadline=None)

sources = st.text(
    alphabet=st.characters(codec="ascii", exclude_categories=("Cs",)),
    min_size=1,
    max_size=120,
)
flag_sets = st.lists(
    st.sampled_from(
        ["-O", "-fopenmp", "-fno-cache", "-Werror", "-ftime-trace"]
    ),
    unique=True,
    max_size=5,
)


class TestDeterminism:
    @FAST
    @given(source=sources, optimize=st.booleans())
    def test_same_request_same_key(self, source, optimize):
        assert request_fingerprint(
            source, optimize=optimize
        ) == request_fingerprint(source, optimize=optimize)

    @FAST
    @given(material=st.lists(st.text(max_size=20), max_size=4))
    def test_stage_key_is_pure(self, material):
        assert stage_key("codegen", "p", material) == stage_key(
            "codegen", "p", material
        )

    def test_fingerprint_is_stable_across_processes(self):
        """The key must not depend on interpreter state: a fresh
        process (fresh ``PYTHONHASHSEED``) computes the same hash."""
        import os

        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        source = "int main() { return 42; }\n"
        here = request_fingerprint(source, optimize=True)
        script = (
            f"import sys; sys.path.insert(0, {src_dir!r})\n"
            "from repro.cache import request_fingerprint\n"
            f"print(request_fingerprint({source!r}, optimize=True))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == here


class TestSensitivity:
    @FAST
    @given(source=sources, data=st.data())
    def test_single_byte_change_alters_key(self, source, data):
        index = data.draw(
            st.integers(min_value=0, max_value=len(source) - 1)
        )
        old = source[index]
        replacement = data.draw(
            st.characters(codec="ascii").filter(lambda c: c != old)
        )
        mutated = source[:index] + replacement + source[index + 1 :]
        if mutated.replace("\r\n", "\n").replace(
            "\r", "\n"
        ) == source.replace("\r\n", "\n").replace("\r", "\n"):
            return  # e.g. a CR<->LF swap: line-ending
            # canonicalization folds these together, a shared key
            # is the *correct* answer
        assert request_fingerprint(mutated) != request_fingerprint(
            source
        )
        assert source_id(mutated) != source_id(source)

    @FAST
    @given(source=sources)
    def test_semantic_flag_changes_alter_key(self, source):
        base = request_fingerprint(source)
        assert request_fingerprint(source, optimize=True) != base
        assert request_fingerprint(source, enable_irbuilder=True) != base
        assert request_fingerprint(source, openmp=False) != base
        assert (
            request_fingerprint(source, strip_omp_transforms=True)
            != base
        )
        assert request_fingerprint(source, defines={"N": "4"}) != base
        assert request_fingerprint(source, action="run") != base

    @FAST
    @given(source=sources, a=st.text("DN14", max_size=3))
    def test_define_value_alters_key(self, source, a):
        assert request_fingerprint(
            source, defines={"X": a}
        ) != request_fingerprint(source, defines={"X": a + "1"})


class TestInsensitivity:
    @FAST
    @given(source=sources, flags=flag_sets, data=st.data())
    def test_flag_whitespace_and_order_do_not_alter_key(
        self, source, flags, data
    ):
        shuffled = data.draw(st.permutations(flags))
        padded = [
            data.draw(st.sampled_from(["", " ", "\t"]))
            + flag
            + data.draw(st.sampled_from(["", " ", "  "]))
            for flag in shuffled
        ]
        assert request_fingerprint(
            source, extra_flags=flags
        ) == request_fingerprint(source, extra_flags=padded)

    @FAST
    @given(flags=flag_sets, data=st.data())
    def test_canonical_flag_tokens_are_order_free(self, flags, data):
        shuffled = data.draw(st.permutations(flags))
        assert canonicalize_flag_tokens(
            flags
        ) == canonicalize_flag_tokens(shuffled)

    @FAST
    @given(source=sources)
    def test_line_ending_spelling_does_not_alter_key(self, source):
        assert request_fingerprint(
            source.replace("\n", "\r\n")
        ) == request_fingerprint(source)
