"""Property-based tests (hypothesis) for the telemetry layer.

The metrics registry's whole design bet is that fixed-bucket histograms
merge *exactly* — so merging must be associative and commutative, and
quantile estimates must be within one bucket of the exact order
statistic no matter how observations are distributed or split across
processes.  The tracing properties mirror the parent's merge step: span
forests reconstructed from properly nested scope events have no orphan
parents, and clock alignment + clamping keeps children inside their
parents (monotonic nesting) for any clock offset and clamp window.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.instrument.telemetry import (
    MetricsRegistry,
    RequestTrace,
    events_to_spans,
    new_span_id,
)
from repro.instrument.timetrace import TraceEvent

FAST = settings(max_examples=60, deadline=None)

BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0)

observations = st.lists(
    st.floats(
        min_value=1e-6,
        max_value=100.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    max_size=40,
)


def _hist_snapshot(values: list[float]) -> dict:
    reg = MetricsRegistry()
    h = reg.histogram("lat", "l", ("k",), buckets=BOUNDS)
    for v in values:
        h.labels(k="a").observe(v)
    return reg.snapshot()


def _merged(*snaps: dict) -> dict:
    reg = MetricsRegistry()
    for snap in snaps:
        reg.merge(snap)
    return reg.snapshot()


def _exact_parts(snap: dict) -> tuple[dict, list[float]]:
    """Split a snapshot into its exact part (bucket counts, totals,
    quantiles — everything but the float ``sum`` accumulators, which
    are only reproducible up to float addition order) and the sums."""
    import copy

    exact = copy.deepcopy(snap)
    sums: list[float] = []
    for metric in exact.values():
        for row in metric.get("series", []):
            if "sum" in row:
                sums.append(row.pop("sum"))
    return exact, sums


def _assert_equivalent(left: dict, right: dict) -> None:
    import pytest

    exact_l, sums_l = _exact_parts(left)
    exact_r, sums_r = _exact_parts(right)
    assert exact_l == exact_r
    # snapshot() quantizes each sum to 9 decimals, so every snapshot
    # that crosses a merge contributes up to 0.5e-9 of rounding error
    # on top of float addition order (e.g. two snapshots of [1/3] merge
    # to 0.666666666 while the union stream rounds to 0.666666667).
    assert sums_l == pytest.approx(sums_r, rel=1e-9, abs=1e-8)


class TestHistogramMergeAlgebra:
    @FAST
    @given(observations, observations)
    def test_merge_commutative(self, xs, ys):
        a, b = _hist_snapshot(xs), _hist_snapshot(ys)
        _assert_equivalent(_merged(a, b), _merged(b, a))

    @FAST
    @given(observations, observations, observations)
    def test_merge_associative(self, xs, ys, zs):
        a, b, c = map(_hist_snapshot, (xs, ys, zs))
        _assert_equivalent(
            _merged(_merged(a, b), c), _merged(a, _merged(b, c))
        )

    @FAST
    @given(observations, observations)
    def test_merge_equals_union_stream(self, xs, ys):
        # Splitting a stream across two processes and merging loses
        # nothing: identical to observing the union in one registry.
        _assert_equivalent(
            _merged(_hist_snapshot(xs), _hist_snapshot(ys)),
            _hist_snapshot(xs + ys),
        )


class TestQuantileBounds:
    @FAST
    @given(
        observations.filter(bool),
        st.sampled_from([0.5, 0.9, 0.95, 0.99]),
    )
    def test_exact_order_statistic_within_reported_bucket(
        self, values, q
    ):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=BOUNDS)
        for v in values:
            h.observe(v)
        cell = h.labels()
        lo, hi = cell.quantile_bounds(q)
        rank = max(1, min(len(values), math.ceil(q * len(values))))
        exact = sorted(values)[rank - 1]
        assert lo < exact <= hi
        # the point estimate is the bucket's upper bound (or the last
        # finite bound for the overflow bucket)
        assert cell.quantile(q) in (hi, BOUNDS[-1])


@st.composite
def nested_scope_events(draw) -> list[TraceEvent]:
    """Properly nested scope events, as scoped ``with``-instrumentation
    produces them: a random push/pop walk over a monotone clock."""
    ops = draw(
        st.lists(
            st.sampled_from(["push", "pop", "tick"]),
            min_size=1,
            max_size=30,
        )
    )
    clock = 0
    stack: list[tuple[str, int]] = []
    events: list[TraceEvent] = []
    serial = 0
    for op in ops:
        clock += draw(st.integers(min_value=1, max_value=50))
        if op == "push":
            stack.append((f"scope{serial}", clock))
            serial += 1
        elif op == "pop" and stack:
            name, start = stack.pop()
            events.append(
                TraceEvent(
                    name=name,
                    detail="",
                    start_ns=start,
                    duration_ns=clock - start,
                )
            )
    while stack:
        clock += 1
        name, start = stack.pop()
        events.append(
            TraceEvent(
                name=name,
                detail="",
                start_ns=start,
                duration_ns=clock - start,
            )
        )
    return events


class TestSpanMerge:
    @FAST
    @given(nested_scope_events())
    def test_reconstruction_has_no_orphans_and_nests(self, events):
        spans = events_to_spans(events, "t1", "root")
        ids = {s.span_id for s in spans}
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            assert span.parent_id == "root" or span.parent_id in ids
            if span.parent_id in by_id:
                parent = by_id[span.parent_id]
                assert parent.start_ns <= span.start_ns
                assert span.end_ns <= parent.end_ns

    @FAST
    @given(
        nested_scope_events(),
        st.integers(min_value=-(10**12), max_value=10**12),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_adopted_spans_stay_clamped_and_nested(
        self, events, skew, clamp_start, clamp_width
    ):
        spans = events_to_spans(events, "t1", None)
        clamp_end = clamp_start + clamp_width
        trace = RequestTrace("t1", "r1")
        attempt_id = new_span_id()
        # a worker whose perf-counter origin differs by `skew`
        worker_anchor = (
            trace._anchor[0],
            trace._anchor[1] + skew,
        )
        trace.merge_worker_spans(
            [s.to_dict() for s in spans],
            worker_anchor,
            attempt_id,
            clamp_start_ns=clamp_start,
            clamp_end_ns=clamp_end,
        )
        adopted = trace.spans
        by_id = {s.span_id: s for s in adopted}
        for span in adopted:
            # inside the attempt window, and still a valid interval
            assert clamp_start <= span.start_ns <= span.end_ns
            assert span.end_ns <= clamp_end
            # no orphans: parents are the attempt span or adopted spans
            assert (
                span.parent_id == attempt_id
                or span.parent_id in by_id
            )
            if span.parent_id in by_id:
                parent = by_id[span.parent_id]
                assert parent.start_ns <= span.start_ns
                assert span.end_ns <= parent.end_ns
