"""Property test: no input ever escapes the driver as a raw traceback.

Satellite 3 (property half): arbitrary byte soup, token soup, and
mutated near-C programs pushed through the full CLI must always come
back as a *classified* outcome — success, ordinary diagnostics, or a
contained ICE — never an unhandled Python exception, and never an
unknown exit code.  CI runs this with a fixed seed
(``--hypothesis-seed=0``, see .github/workflows/ci.yml).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.crash_recovery import set_crash_recovery_enabled
from repro.driver.cli import (
    EXIT_ICE,
    EXIT_OK,
    EXIT_TIMEOUT,
    EXIT_USER_ERROR,
    main,
)
from repro.instrument.faultinject import FAULTS

#: every classified outcome of a compile-only invocation; --run
#: additionally maps the guest's own exit status (masked to 0..255)
COMPILE_EXIT_CODES = {EXIT_OK, EXIT_USER_ERROR, EXIT_ICE}

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

# Fragments that steer random programs toward the interesting machinery
# (directives, loops, declarations) far more often than raw text would.
_C_FRAGMENTS = st.sampled_from(
    [
        "int", "float", "void", "main", "x", "(", ")", "{", "}",
        "[", "]", ";", ",", "=", "+", "-", "*", "/", "<", ">", "!",
        "0", "1", "42", "1.5", '"str"', "'c'", "return", "if",
        "else", "while", "for", "do", "break", "continue",
        "#pragma omp parallel", "#pragma omp for",
        "#pragma omp tile sizes(2)", "#pragma omp unroll partial(4)",
        "#pragma omp barrier", "#pragma omp critical",
        "#define M 3", "#include \"nope.h\"", "#if 0", "#endif",
        "\n", " ",
    ]
)


@pytest.fixture(autouse=True)
def _clean_global_state():
    yield
    FAULTS.disarm_all()
    set_crash_recovery_enabled(True)


def _drive_text(tmp_path, text: str) -> int:
    path = tmp_path / "soup.c"
    path.write_text(text, encoding="utf-8")
    return main([str(path)])


@_SETTINGS
@given(st.text(max_size=300))
def test_arbitrary_text_never_escapes(tmp_path, text):
    assert _drive_text(tmp_path, text) in COMPILE_EXIT_CODES


@_SETTINGS
@given(st.lists(_C_FRAGMENTS, max_size=80).map(" ".join))
def test_token_soup_never_escapes(tmp_path, text):
    assert _drive_text(tmp_path, text) in COMPILE_EXIT_CODES


@_SETTINGS
@given(
    st.lists(_C_FRAGMENTS, max_size=40).map(" ".join),
    st.integers(min_value=0, max_value=400),
)
def test_mutated_program_never_escapes(tmp_path, injected, cut):
    """Splice random fragments into a valid OpenMP program at a random
    point — near-C inputs reach Sema and CodeGen, where cascades and
    half-built state would show if recovery were leaky."""
    base = (
        "int main() {\n"
        "  int s = 0;\n"
        "  #pragma omp parallel for reduction(+: s)\n"
        "  for (int i = 0; i < 8; ++i) s += i;\n"
        "  #pragma omp tile sizes(2)\n"
        "  for (int i = 0; i < 8; ++i) s += 1;\n"
        "  return s;\n"
        "}\n"
    )
    cut = min(cut, len(base))
    assert (
        _drive_text(tmp_path, base[:cut] + injected + base[cut:])
        in COMPILE_EXIT_CODES
    )


@_SETTINGS
@given(st.binary(max_size=200))
def test_byte_soup_never_escapes(tmp_path, blob):
    """Even non-UTF-8 bytes: decoding errors are the *driver's* problem
    to classify, not an excuse for a traceback."""
    path = tmp_path / "soup.c"
    path.write_bytes(blob)
    assert main([str(path)]) in COMPILE_EXIT_CODES
