"""Property-based tests (hypothesis) for the wire-frame decoder.

The decoder's contract is *totality* over untrusted input: any byte
stream, fed in any chunking, must come back as a sequence of payload
dicts and structured :class:`FrameError` records — never an exception,
and never a dependence on how the stream was split into ``feed`` calls.
After noise that contains no accidental frame boundary, every valid
frame that follows must still be recovered (clean resync).

Caveat encoded below: noise that *contains* the magic bytes can
legitimately swallow a following frame (the scanner locks onto the fake
boundary and the real header bytes get consumed as a bogus payload), so
the full-recovery properties generate magic-free noise; arbitrary noise
only gets the never-crash / stream-order guarantees.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.service.net.protocol import (
    MAGIC,
    FrameDecoder,
    FrameError,
    encode_frame,
)

FAST = settings(max_examples=80, deadline=None)

#: arbitrary hostile bytes
noise = st.binary(max_size=200)

#: bytes that cannot contain the two-byte magic: drop the first magic
#: byte entirely, so no adjacent pair can spell it
magic_free_noise = st.binary(max_size=200).map(
    lambda b: bytes(x for x in b if x != MAGIC[0])
)

#: JSON-object payloads that survive a wire round trip
payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(
        st.integers(min_value=-(10**9), max_value=10**9),
        st.text(max_size=20),
        st.booleans(),
        st.none(),
    ),
    max_size=5,
)


def feed_chunked(
    decoder: FrameDecoder, data: bytes, cuts: list[int]
) -> list:
    """Feed *data* split at the (sorted, deduped) *cuts* offsets."""
    bounds = sorted({min(c, len(data)) for c in cuts})
    events = []
    prev = 0
    for cut in bounds + [len(data)]:
        events.extend(decoder.feed(data[prev:cut]))
        prev = cut
    return events


@FAST
@given(data=noise, cuts=st.lists(st.integers(0, 200), max_size=8))
def test_arbitrary_noise_never_raises(data, cuts):
    decoder = FrameDecoder(max_frame_bytes=4096)
    events = feed_chunked(decoder, data, cuts)
    for event in events:
        assert isinstance(event, (dict, FrameError))


@FAST
@given(payload=payloads, cut=st.integers(0, 300))
def test_truncated_frame_emits_nothing_but_never_crashes(payload, cut):
    frame = encode_frame(payload)
    truncated = frame[: min(cut, len(frame) - 1)]
    decoder = FrameDecoder()
    events = decoder.feed(truncated)
    # a prefix of one valid frame can never complete an event
    assert events == []
    assert decoder.mid_frame or len(truncated) == 0


@FAST
@given(
    items=st.lists(payloads, min_size=1, max_size=4),
    cuts=st.lists(st.integers(0, 500), max_size=10),
)
def test_chunking_invariance(items, cuts):
    data = b"".join(encode_frame(p) for p in items)
    whole = FrameDecoder().feed(data)
    chunked = feed_chunked(FrameDecoder(), data, cuts)
    assert chunked == whole == items


@FAST
@given(
    junk=magic_free_noise,
    items=st.lists(payloads, min_size=1, max_size=3),
    cuts=st.lists(st.integers(0, 700), max_size=10),
)
def test_resync_recovers_every_frame_after_magic_free_noise(
    junk, items, cuts
):
    data = junk + b"".join(encode_frame(p) for p in items)
    decoder = FrameDecoder()
    events = feed_chunked(decoder, data, cuts)
    decoded = [e for e in events if isinstance(e, dict)]
    errors = [e for e in events if isinstance(e, FrameError)]
    assert decoded == items
    if junk:
        # exactly one coalesced bad-magic error accounting for all of it
        assert len(errors) == 1
        assert errors[0].code == "bad-magic"
        assert errors[0].skipped == len(junk)
    else:
        assert errors == []


@FAST
@given(
    junk=magic_free_noise,
    payload=payloads,
    more_junk=magic_free_noise,
    second=payloads,
)
def test_noise_between_frames_does_not_lose_either(
    junk, payload, more_junk, second
):
    data = (
        junk
        + encode_frame(payload)
        + more_junk
        + encode_frame(second)
    )
    events = FrameDecoder().feed(data)
    decoded = [e for e in events if isinstance(e, dict)]
    assert decoded == [payload, second]


@FAST
@given(data=noise, payload=payloads)
def test_stream_stays_usable_after_any_noise_plus_sync_gap(
    data, payload
):
    """Whatever the noise did, a long non-magic gap flushes the scanner
    and the next frame is decoded: the connection is resyncable."""
    decoder = FrameDecoder(max_frame_bytes=4096)
    decoder.feed(data)
    # a gap of zero bytes longer than any declared length the noise
    # could have smuggled in as a plausible header
    decoder.feed(b"\x00" * (4096 + 64))
    events = decoder.feed(encode_frame(payload))
    decoded = [e for e in events if isinstance(e, dict)]
    assert decoded[-1:] == [payload]
    for event in events:
        assert isinstance(event, (dict, FrameError))
