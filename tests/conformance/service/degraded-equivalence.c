// Graceful degradation is semantics-preserving: with the IRBuilder
// path deterministically broken (injected fault on every attempt), the
// service must fall back to the shadow-AST representation and produce
// output byte-identical to a direct shadow compile of the same
// tile+unroll program — the paper's two implementations of the same
// transformations acting as each other's spares.
//
// RUN: miniclang-serve --run --mode irbuilder --inject-fault service-irbuilder --fault-attempts -1 --quarantine-dir= %s > %t.degraded 2> %t.log
// RUN: miniclang --run %s > %t.direct
// RUN: %python -c "import sys; a = open(sys.argv[1]).read(); b = open(sys.argv[2]).read(); sys.exit(0 if a == b and a else 1)" %t.degraded %t.direct
// RUN: FileCheck --check-prefix=LOG --input-file %t.log %s
// RUN: FileCheck --input-file %t.degraded %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp tile sizes(2, 2)
  for (int i = 0; i < 4; i += 1)
    for (int j = 0; j < 4; j += 1)
      sum += i * 4 + j;
  #pragma omp unroll partial(2)
  for (int k = 0; k < 6; k += 1)
    sum += k;
  printf("sum=%d\n", sum);
  return 0;
}
// LOG: degraded (irbuilder->shadow)
// CHECK: sum=135
