// Worksharing with a reduction: the outlined parallel region and the
// static schedule must produce the sequential sum regardless of team
// size or representation.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
// RUN: miniclang --run --num-threads 5 %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp parallel for reduction(+: sum) num_threads(3)
  for (int i = 0; i < 20; i += 1)
    sum += i;
  printf("%d\n", sum);
  return 0;
}
// CHECK: 190
