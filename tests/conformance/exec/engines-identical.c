// The engine-equivalence contract as a RUN-line pair: the same program
// through -fexec=interp and -fexec=closures must satisfy the same
// FileCheck expectations line for line — worksharing interleaving,
// critical-section ordering and the final reduction value included.
// RUN: miniclang --run -fexec=interp --num-threads 3 %s | FileCheck %s
// RUN: miniclang --run -fexec=closures --num-threads 3 %s | FileCheck %s
// RUN: miniclang --run -fexec=interp -O --num-threads 3 %s | FileCheck %s
// RUN: miniclang --run -fexec=closures -O --num-threads 3 %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp parallel for reduction(+: sum) schedule(static)
  for (int i = 0; i < 9; i += 1)
    sum += i + 1;
  printf("sum=%d\n", sum);
  int ticket = 0;
  #pragma omp parallel
  {
    #pragma omp critical
    { ticket += 1; }
  }
  printf("tickets=%d\n", ticket);
  return 0;
}
// CHECK: sum=45
// CHECK: tickets=3
