// The closure-compiled engine (-fexec=closures) on a tiled loop nest
// with remainder tiles: 5x5 under sizes(2,2) leaves partial tiles on
// both dimensions, so the floor/guard arithmetic the transformation
// emits is exercised end to end on the compiled dispatch path.
// RUN: miniclang --run -fexec=closures %s | FileCheck %s
// RUN: miniclang --run -fexec=closures -O %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int checksum = 0;
  #pragma omp tile sizes(2, 2)
  for (int i = 0; i < 5; i += 1)
    for (int j = 0; j < 5; j += 1)
      checksum += i * 10 + j;
  printf("checksum=%d\n", checksum);
  return 0;
}
// CHECK: checksum=550
