// OpenMP 6.0 'fuse' over a loop *sequence* (paper §4): bodies are
// interleaved iteration by iteration.  The OpenMPIRBuilder path fuses
// CanonicalLoopInfo handles and must match the shadow-AST semantics.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  #pragma omp fuse
  {
    for (int i = 0; i < 3; i += 1)
      printf("a%d ", i);
    for (int j = 0; j < 3; j += 1)
      printf("b%d ", j);
  }
  printf("\n");
  return 0;
}
// CHECK: a0 b0 a1 b1 a2 b2
