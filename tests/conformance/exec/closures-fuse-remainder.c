// 'fuse' over loops of unequal trip counts under the closure engine:
// the guarded tail (iterations where only the longer loop's body
// runs) must interleave identically to the reference interpreter.
// RUN: miniclang --run -fexec=closures %s | FileCheck %s
// RUN: miniclang --run -fexec=closures -fopenmp-enable-irbuilder %s \
// RUN:     | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  #pragma omp fuse
  {
    for (int i = 0; i < 4; i += 1)
      printf("a%d ", i);
    for (int j = 0; j < 2; j += 1)
      printf("b%d ", j);
  }
  printf("\n");
  return 0;
}
// CHECK: a0 b0 a1 b1 a2 a3
