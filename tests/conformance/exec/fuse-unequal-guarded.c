// Fusing loops with different trip counts: the fused loop runs
// max(tc) iterations and each shorter body is guarded by its own
// trip count (iv < tc_k) — identical in both representations.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp fuse
  {
    for (int i = 0; i < 5; i += 1)
      printf("a%d ", i);
    for (int j = 2; j < 4; j += 1)
      sum += j;
  }
  printf("| %d\n", sum);
  return 0;
}
// CHECK: a0 a1 a2 a3 a4 | 5
