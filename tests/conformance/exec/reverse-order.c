// OpenMP 6.0 'reverse' (paper §4): iterations execute back-to-front.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  #pragma omp reverse
  for (int i = 0; i < 5; i += 1)
    printf("%d ", i);
  printf("\n");
  return 0;
}
// CHECK: 4 3 2 1 0
