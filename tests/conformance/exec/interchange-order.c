// OpenMP 6.0 'interchange' (paper §4): permutation(2, 1) swaps the
// nest so j becomes the outer iteration.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  #pragma omp interchange permutation(2, 1)
  for (int i = 0; i < 2; i += 1)
    for (int j = 0; j < 3; j += 1)
      printf("%d%d ", i, j);
  printf("\n");
  return 0;
}
// CHECK: 00 10 01 11 02 12
