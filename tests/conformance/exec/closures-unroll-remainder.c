// Partial unroll with a remainder (10 % 4 != 0) under the closure
// engine: the epilogue loop the mid-end materializes must retire on
// the compiled dispatch path with the same trip accounting.
// RUN: miniclang --run -fexec=closures %s | FileCheck %s
// RUN: miniclang --run -fexec=closures -O %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  long acc = 0;
  #pragma omp unroll partial(4)
  for (int i = 0; i < 10; i += 1)
    acc += i * 3 + 1;
  printf("acc=%d\n", (int)acc);
  return 0;
}
// CHECK: acc=145
