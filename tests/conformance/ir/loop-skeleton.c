// The canonical loop skeleton emitted by OpenMPIRBuilder
// (createCanonicalLoop, paper §3.2): preheader / header / cond / body /
// inc / latch chain with the continuation in the after block.
// RUN: miniclang -emit-llvm -fopenmp-enable-irbuilder %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp unroll
  for (int i = 0; i < 10; i += 1)
    sum += i;
  printf("sum=%d\n", sum);
  return 0;
}
// The entry-side block is reused as the preheader, so the skeleton
// starts at the named header block.
// CHECK: define i32 @main()
// CHECK: br label %[[L:omp_loop.[0-9]+]].header
// CHECK: [[L]].header:
// CHECK: [[L]].cond:
// CHECK: br i1 {{.+}}, label %[[L]].body, label %[[L]].exit
// CHECK: [[L]].body:
// CHECK: [[L]].inc:
// CHECK: br label %[[L]].header
// CHECK: [[L]].exit:
// CHECK: [[L]].after:
// CHECK: call i32 @printf
