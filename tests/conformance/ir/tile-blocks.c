// IR-level tiling (OpenMPIRBuilder::tileLoops, paper §3.2): a floor
// loop iterating tile origins wraps a tile loop whose trip count is
// min(size, remaining) to handle the partial last tile.
// RUN: miniclang -emit-llvm -fopenmp-enable-irbuilder %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp tile sizes(4)
  for (int i = 0; i < 10; i += 1)
    sum += i;
  printf("sum=%d\n", sum);
  return 0;
}
// CHECK: define i32 @main()
// CHECK: %floor.tc = udiv i32 %tile.num
// CHECK: floor.0.header:
// CHECK: floor.0.body:
// CHECK-DAG: %origin.0 = mul i32
// CHECK-DAG: %remaining.0 = sub i32
// CHECK: %is.partial = icmp ult i32 %remaining.0
// CHECK: %tile.tc.0 = select i1 %is.partial
// CHECK: tile.0.header:
// CHECK: tile.0.body:
// CHECK: %tiled.iv.0 = add i32 %origin.0
// CHECK: floor.0.exit:
// CHECK: call i32 @printf
