// Partial unrolling only annotates: the shadow AST strip-mines and the
// inner loop's latch carries llvm.loop.unroll metadata for the mid-end
// LoopUnroll pass (paper §2.2 "defer unrolling to the LoopUnroll pass").
// RUN: miniclang -emit-llvm %s | FileCheck %s
// RUN: miniclang -emit-llvm -fopenmp-enable-irbuilder %s \
// RUN:   | FileCheck --check-prefix=CANON %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp unroll partial(4)
  for (int i = 0; i < 10; i += 1)
    sum += i;
  printf("sum=%d\n", sum);
  return 0;
}
// CHECK: define i32 @main()
// CHECK: %unrolled.iv.i = alloca i32
// CHECK: %unroll_inner.iv.i = alloca i32
// CHECK: !{{.*}}llvm.loop.unroll.count{{.*}}4

// The IRBuilder path strip-mines via tileLoops and marks the intra-tile
// loop (unrollLoopPartial, paper §3.2).
// CANON: floor.0.header:
// CANON: tile.0.header:
// CANON: !{{.*}}llvm.loop.unroll.count{{.*}}4
