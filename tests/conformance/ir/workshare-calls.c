// Worksharing lowering: the region is outlined, launched through
// __kmpc_fork_call and scheduled with __kmpc_for_static_init_4u.
// RUN: miniclang -emit-llvm %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp parallel for reduction(+: sum) schedule(static)
  for (int i = 0; i < 10; i += 1)
    sum += i;
  printf("sum=%d\n", sum);
  return 0;
}
// CHECK: declare void @__kmpc_fork_call(ptr, i32, ptr, ptr)
// CHECK: define i32 @main()
// CHECK: call void @__kmpc_fork_call(ptr null, i32 1, ptr @[[OUTLINED:[A-Za-z0-9_.]+]], ptr
// CHECK: define void @[[OUTLINED]](ptr %gtid.addr, ptr %btid.addr, ptr %context)
// CHECK: call void @__kmpc_for_static_init_4u
// CHECK-DAG: call void @__kmpc_critical
// CHECK-DAG: call void @__kmpc_end_critical
