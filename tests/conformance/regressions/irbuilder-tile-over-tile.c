// Fuzzer-found: same continuation-block bug as unroll-over-tile, but
// for 'tile' consuming a generated loop.  Also locks in the chained
// CanonicalLoopInfo handoff (paper §4: consumed transformations).
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
// RUN: miniclang --run %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp tile sizes(2)
  #pragma omp tile sizes(5)
  for (int i = 0; i < 17; i += 1)
    sum += i;
  printf("after %d\n", sum);
  return 0;
}
// CHECK: after 136
