// Fuzzer-found: every fuse-containing program failed to compile with
// -fopenmp-enable-irbuilder ("not implemented").  fuse_loops now
// merges sibling CanonicalLoopInfo handles; worksharing can consume
// the fused loop like any other generated loop.
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
// RUN: miniclang --run %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp parallel for reduction(+: sum) num_threads(3)
  #pragma omp fuse
  {
    for (int i = 0; i < 7; i += 1)
      sum += i;
    for (int j = 0; j < 4; j += 1)
      sum += 100;
  }
  printf("%d\n", sum);
  return 0;
}
// CHECK: {{^}}421{{$}}
