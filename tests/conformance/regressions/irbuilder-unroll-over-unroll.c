// Fuzzer-found: 'unroll partial' consuming another 'unroll partial'
// must chain through the floor loop handle returned by the inner
// transformation (unroll_loop_partial = tile + intra-tile metadata).
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
// RUN: miniclang --run %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp unroll partial(2)
  #pragma omp unroll partial(3)
  for (int i = 0; i < 17; i += 1)
    sum += i;
  printf("after %d\n", sum);
  return 0;
}
// CHECK: after 136
