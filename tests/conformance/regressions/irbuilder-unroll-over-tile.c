// Fuzzer-found: composing 'unroll partial' over 'tile' in IRBuilder
// mode continued emission with set_insert_point on the inner after
// block, which already carried a branch terminator — later statements
// landed after the terminator and the real continuation stayed empty
// ("block omp_loop.0.after is empty").  Emission must follow the
// pass-through branch chain to the final unterminated block.
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
// RUN: miniclang --run %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp unroll partial(2)
  #pragma omp tile sizes(3)
  for (int i = 0; i < 17; i += 1)
    sum += i;
  printf("after %d\n", sum);
  return 0;
}
// CHECK: after 136
