// 'unroll full' on a constant trip count: defers to the mid-end
// LoopUnroll pass via llvm.loop.unroll.full metadata (paper §2.2), so
// the observable behaviour never changes.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
// RUN: miniclang --run -O1 %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int fact = 1;
  #pragma omp unroll full
  for (int i = 1; i <= 10; i += 1)
    fact *= i;
  printf("10! = %d\n", fact);
  return 0;
}
// CHECK: 10! = 3628800
