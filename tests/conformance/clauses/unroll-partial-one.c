// 'partial(1)' is legal: the tile degenerates to single iterations and
// the loop's semantics are untouched in every representation.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
// RUN: miniclang --run --strip-omp-transforms %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp unroll partial(1)
  for (int i = 0; i < 17; i += 1)
    sum += i;
  printf("%d\n", sum);
  return 0;
}
// CHECK: 136
