// 2-D tiling with remainders in both dimensions (5 % 3 and 3 % 2):
// iteration order walks tiles in tile-row-major order, partial tiles
// last per dimension.  Both representations agree on the exact order.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  #pragma omp tile sizes(3, 2)
  for (int i = 0; i < 5; i += 1)
    for (int j = 0; j < 3; j += 1)
      printf("%d%d ", i, j);
  printf("\n");
  return 0;
}
// CHECK: 00 01 10 11 20 21 02 12 22 30 31 40 41 32 42
