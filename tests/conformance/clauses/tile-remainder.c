// Tiling with a size that does not divide the trip count: the last
// (partial) tile must still execute its remainder iterations, in order.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  #pragma omp tile sizes(3)
  for (int i = 0; i < 8; i += 1)
    printf("%d ", i);
  printf("\n");
  return 0;
}
// CHECK: 0 1 2 3 4 5 6 7
