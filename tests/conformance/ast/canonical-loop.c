// OMPCanonicalLoop wrapping in the OpenMPIRBuilder representation
// (paper §3.1): the loop is wrapped together with CapturedStmt helpers
// for the distance and loop-variable functions.
// RUN: miniclang -ast-dump -fsyntax-only -fopenmp-enable-irbuilder %s \
// RUN:   | FileCheck %s
// RUN: miniclang -ast-dump -fsyntax-only %s \
// RUN:   | FileCheck --check-prefix=DEFAULT %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp unroll partial(4)
  for (int i = 0; i < 10; i += 1)
    sum += i;
  printf("sum=%d\n", sum);
  return 0;
}
// CHECK: OMPUnrollDirective
// CHECK-NEXT: OMPPartialClause
// CHECK: OMPCanonicalLoop
// CHECK-NEXT: ForStmt
// CHECK: CapturedStmt

// The default (shadow) representation never builds OMPCanonicalLoop.
// DEFAULT-NOT: OMPCanonicalLoop
// DEFAULT: OMPUnrollDirective
