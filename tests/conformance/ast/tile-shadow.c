// Shadow AST of a 2-d tile (paper §2.2): floor loops iterate tile
// origins, tile loops iterate within a tile; the literal loops stay as
// the syntactic children.
// RUN: miniclang -ast-dump %s -fsyntax-only | FileCheck %s
// RUN: miniclang -ast-dump-shadow %s -fsyntax-only \
// RUN:   | FileCheck --check-prefix=SHADOW %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp tile sizes(2, 4)
  for (int i = 0; i < 6; i += 1)
    for (int j = 0; j < 8; j += 1)
      sum += i * j;
  printf("sum=%d\n", sum);
  return 0;
}
// CHECK: OMPTileDirective
// CHECK-NEXT: OMPSizesClause
// CHECK: ForStmt
// CHECK-NOT: CapturedStmt

// SHADOW: OMPTileDirective
// SHADOW: OMPSizesClause
// SHADOW-DAG: .floor.0.iv.i
// SHADOW-DAG: .floor.1.iv.j
// SHADOW-DAG: .tile.0.iv.i
// SHADOW-DAG: .tile.1.iv.j
