// Composed unroll directives (paper Listing 5): the syntactic child of
// the outer directive is the inner directive itself — no CapturedStmt
// wrapper (paper §2.1).  In the canonical representation the loop is
// wrapped in OMPCanonicalLoop instead (paper §3.1).
// RUN: miniclang -ast-dump -fsyntax-only %s | FileCheck %s
// RUN: miniclang -ast-dump -fsyntax-only -fopenmp-enable-irbuilder %s \
// RUN:   | FileCheck --check-prefix=CANON %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp unroll full
  #pragma omp unroll partial
  for (int i = 0; i < 12; i += 1)
    sum += i;
  printf("sum=%d\n", sum);
  return 0;
}
// CHECK: OMPUnrollDirective
// CHECK-NEXT: OMPFullClause
// CHECK-NEXT: OMPUnrollDirective
// CHECK-NEXT: OMPPartialClause
// CHECK-NEXT: ForStmt
// CHECK-NOT: CapturedStmt

// CANON: OMPUnrollDirective
// CANON-NEXT: OMPFullClause
// CANON-NEXT: OMPUnrollDirective
// CANON-NEXT: OMPPartialClause
// CANON-NEXT: OMPCanonicalLoop
// CANON-NEXT: ForStmt
// CANON: CapturedStmt
