// Shadow AST of a partial unroll (paper Listing 6): strip-mined outer
// loop over an inner loop annotated with a LoopHintAttr so the mid-end
// LoopUnroll pass performs the duplication.
// RUN: miniclang -ast-dump-shadow -fsyntax-only %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp unroll partial(2)
  for (int i = 0; i < 12; i += 1)
    sum += i;
  printf("sum=%d\n", sum);
  return 0;
}
// CHECK: OMPUnrollDirective
// CHECK: OMPPartialClause
// The captured trip count is an internal variable (paper §2).
// CHECK: VarDecl implicit used .capture_expr. 'const unsigned int'
// CHECK: VarDecl implicit used unrolled.iv.i 'unsigned int'
// CHECK: AttributedStmt
// CHECK-NEXT: LoopHintAttr Implicit loop UnrollCount Numeric
// CHECK: VarDecl implicit used unroll_inner.iv.i 'unsigned int'
