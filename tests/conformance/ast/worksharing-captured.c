// Worksharing directives outline their region through a CapturedStmt
// even when loop transformations do not (paper §2.1/§3.1: "other
// directives such as OMPParallelForDirective still may").
// RUN: miniclang -ast-dump -fsyntax-only %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp parallel for reduction(+: sum)
  for (int i = 0; i < 10; i += 1)
    sum += i;
  printf("sum=%d\n", sum);
  return 0;
}
// CHECK: OMPParallelForDirective
// CHECK: OMPReductionClause
// CHECK: CapturedStmt
// CHECK: ForStmt
