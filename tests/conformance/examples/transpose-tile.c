// Port of examples/stencil_tiling.py PARALLEL_TRANSPOSE (8x8): tiled
// transpose under a reduction.  Addends are exact in double, so the
// tile reordering cannot change the checksum.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
// RUN: miniclang --run --strip-omp-transforms %s | FileCheck %s
int main(void) {
  double a[8 * 8];
  double b[8 * 8];
  for (int k = 0; k < 8 * 8; k += 1)
    a[k] = (double)(k % 13);

  double checksum = 0.0;

  #pragma omp parallel for reduction(+: checksum)
  #pragma omp tile sizes(4, 4)
  for (int i = 0; i < 8; i += 1)
    for (int j = 0; j < 8; j += 1) {
      int dst = j * 8 + i;
      b[dst] = a[i * 8 + j];
      checksum += b[dst] * (double)(i + 1);
    }

  printf("checksum=%g\n", checksum);
  return 0;
}
// CHECK: checksum=1789
