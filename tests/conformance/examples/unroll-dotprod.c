// Port of examples/unroll_experiments.py KERNEL: partial unroll of a
// floating-point dot product.  All addends are small integers, so the
// sum is exact and identical in every representation.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
// RUN: miniclang --run -O %s | FileCheck %s
int main(void) {
  double x[256];
  double y[256];
  for (int k = 0; k < 256; k += 1) {
    x[k] = (double)(k % 9);
    y[k] = (double)(k % 5);
  }
  double dot = 0.0;
  #pragma omp unroll partial(4)
  for (int i = 0; i < 250; i += 1)
    dot += x[i] * y[i];
  printf("%g\n", dot);
  return 0;
}
// CHECK: {{^}}1991{{$}}
