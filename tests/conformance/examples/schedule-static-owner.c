// Port of examples/schedule_explorer.py: schedule(static) assigns
// deterministic contiguous chunks, and the critical section keeps the
// per-thread load tally race-free.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
int main(void) {
  int owner[8];
  int load[8];
  for (int t = 0; t < 8; t += 1) load[t] = 0;

  #pragma omp parallel for schedule(static) num_threads(4)
  for (int i = 0; i < 8; i += 1) {
    int me = omp_get_thread_num();
    owner[i] = me;
    int cost = 0;
    for (int w = 0; w < i; w += 1)
      cost += 1;
    #pragma omp critical
    { load[me] += cost; }
  }

  for (int i = 0; i < 8; i += 1) printf("%d", owner[i]);
  printf("|");
  for (int t = 0; t < 4; t += 1) printf("%d ", load[t]);
  printf("\n");
  return 0;
}
// CHECK: 00112233|1 5 9 13
