// Port of examples/source_to_source.py unrolled_kernel: the shadow AST
// of a runtime-trip-count partial unroll strip-mines the loop and tags
// the inner loop with a LoopHintAttr (paper §2.2).
// RUN: miniclang -ast-dump %s | FileCheck %s
// RUN: miniclang -ast-dump-shadow %s | FileCheck %s --check-prefix=SHADOW
void body(int i, int j);

void unrolled_kernel(int N) {
  #pragma omp unroll partial(4)
  for (int i = 0; i < N; i += 1)
    body(i, 0);
}
// CHECK: OMPUnrollDirective
// CHECK: OMPPartialClause
// CHECK: ForStmt
// SHADOW: AttributedStmt
// SHADOW: LoopHintAttr
// SHADOW: ForStmt
