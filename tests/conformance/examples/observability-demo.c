// Port of examples/observability_demo.c: the README's observability
// walkthrough must keep printing the same sums under -O and the
// remark/stat flags (flags only add stderr noise, never change stdout).
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -O %s | FileCheck %s
// RUN: miniclang --run -O -Rpass=.* -print-stats %s 2> %t.err | FileCheck %s
int main() {
  int sum = 0;
#pragma omp unroll partial(4)
  for (int i = 0; i < 32; i++) {
    sum += i;
  }

  int parallel_sum = 0;
#pragma omp parallel for reduction(+ : parallel_sum)
  for (int i = 0; i < 64; i++) {
    parallel_sum += i;
  }

  printf("sum=%d parallel_sum=%d\n", sum, parallel_sum);
  return 0;
}
// CHECK: sum=496 parallel_sum=2016
