// Port of examples/quickstart.py LISTING3 (paper Listing 3): a
// worksharing loop with a non-unit step lowers to the static-init
// runtime protocol over the logical iteration space.
// RUN: miniclang -emit-llvm -fopenmp-enable-irbuilder %s | FileCheck %s
void body(int i);
void f(void) {
  #pragma omp parallel for schedule(static)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
// CHECK: __kmpc_fork_call
// CHECK: define {{.*}}@[[OUTLINED:[A-Za-z0-9_.]+]]
// CHECK: __kmpc_for_static_init_4u
// CHECK: call void @body
// CHECK: __kmpc_for_static_fini
