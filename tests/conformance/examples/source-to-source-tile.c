// Port of examples/source_to_source.py tiled_kernel: a 2-D tile keeps
// its directive node with the sizes clause; the literal nest stays the
// associated statement.
// RUN: miniclang -ast-dump %s | FileCheck %s
void body(int i, int j);

void tiled_kernel(void) {
  #pragma omp tile sizes(2, 4)
  for (int i = 0; i < 8; i += 1)
    for (int j = 0; j < 12; j += 1)
      body(i, j);
}
// CHECK: OMPTileDirective
// CHECK: OMPSizesClause
// CHECK: ForStmt
// CHECK: ForStmt
