// Port of examples/quickstart.py LISTING5 (paper Listing 5): 'unroll
// full' consumes the floor loop of 'unroll partial(2)'.  Execution
// order of the original iterations is preserved.
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
int main(void) {
  #pragma omp unroll full
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3)
    printf("%d ", i);
  printf("\n");
  return 0;
}
// CHECK: 7 10 13 16
