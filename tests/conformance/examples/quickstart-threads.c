// Port of examples/quickstart.py PROGRAM: worksharing consumes the
// unroll-generated floor loop, so static chunks cover *pairs* of
// original iterations (iterations 0-3 land on thread 0, not 0-2).
// RUN: miniclang --run %s | FileCheck %s
int main(void) {
  int N = 12;
  int out[12];

  #pragma omp parallel for schedule(static) num_threads(4)
  #pragma omp unroll partial(2)
  for (int i = 0; i < N; i += 1)
    out[i] = omp_get_thread_num();

  for (int i = 0; i < N; i += 1)
    printf("iteration %2d ran on thread %d\n", i, out[i]);
  return 0;
}
// CHECK: iteration  0 ran on thread 0
// CHECK-NEXT: iteration  1 ran on thread 0
// CHECK-NEXT: iteration  2 ran on thread 0
// CHECK-NEXT: iteration  3 ran on thread 0
// CHECK-NEXT: iteration  4 ran on thread 1
// CHECK-NEXT: iteration  5 ran on thread 1
// CHECK-NEXT: iteration  6 ran on thread 1
// CHECK-NEXT: iteration  7 ran on thread 1
// CHECK-NEXT: iteration  8 ran on thread 2
// CHECK-NEXT: iteration  9 ran on thread 2
// CHECK-NEXT: iteration 10 ran on thread 3
// CHECK-NEXT: iteration 11 ran on thread 3
