// The metamorphic property the fuzzer checks, as a fixed test: a
// transformed program and its stripped twin print identical output
// (paper: transformations preserve the iteration *set*; the body here
// is order-invariant, so reordering by tile cannot show through).
// RUN: miniclang --run %s | FileCheck %s
// RUN: miniclang --run --strip-omp-transforms %s | FileCheck %s
// RUN: miniclang --run -fopenmp-enable-irbuilder %s | FileCheck %s
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp tile sizes(3, 2)
  for (int i = 0; i < 5; i += 1)
    for (int j = 0; j < 4; j += 1)
      sum += (i + 1) * (j + 2);
  #pragma omp reverse
  for (int k = 0; k < 6; k += 1)
    sum += k * k;
  printf("%d\n", sum);
  return 0;
}
// CHECK: {{^}}265{{$}}
