// --strip-omp-transforms only removes the pure transformations
// (unroll/tile/reverse/interchange/fuse); worksharing and parallel
// directives carry execution semantics and must survive.
// RUN: miniclang -ast-dump --strip-omp-transforms %s | FileCheck %s
int main() {
  int sum = 0;
  #pragma omp parallel for reduction(+: sum)
  #pragma omp tile sizes(4)
  for (int i = 0; i < 16; i += 1)
    sum += i;
  return sum;
}
// CHECK: OMPParallelForDirective
// CHECK: OMPReductionClause
// CHECK-NOT: OMPTileDirective
