// --strip-omp-transforms drops pure loop-transformation directives at
// the preprocessor level: no transformation nodes reach the AST, the
// literal loop nest survives untouched.
// RUN: miniclang -ast-dump --strip-omp-transforms %s | FileCheck %s
int main() {
  int sum = 0;
  #pragma omp tile sizes(4)
  for (int i = 0; i < 16; i += 1)
    #pragma omp unroll partial(2)
    for (int j = 0; j < 8; j += 1)
      sum += i * j;
  return sum;
}
// CHECK-NOT: OMPTileDirective
// CHECK-NOT: OMPUnrollDirective
// CHECK: ForStmt
// CHECK: ForStmt
// CHECK-NOT: OMP
