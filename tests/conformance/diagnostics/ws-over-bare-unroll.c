// Worksharing cannot consume a bare (heuristic) unroll: whether a loop
// remains — and its shape — is unspecified.  Both representations must
// agree on the rejection (fuzzer-found parity bug).
// RUN: not miniclang -fsyntax-only %s 2>&1 | FileCheck %s
// RUN: not miniclang -fsyntax-only -fopenmp-enable-irbuilder %s 2>&1 \
// RUN:   | FileCheck %s
int main() {
  int sum = 0;
  #pragma omp parallel for reduction(+: sum)
  #pragma omp unroll
  for (int i = 0; i < 20; i += 1)
    sum += i;
  return sum;
}
// CHECK: error: '#pragma omp parallel for' cannot be applied to the '#pragma omp unroll' construct without a 'partial' clause: the shape of the generated loop is unspecified
