// 'full' and 'partial' cannot be combined on one unroll directive.
// RUN: not miniclang -fsyntax-only %s 2>&1 | FileCheck %s
int main() {
  int sum = 0;
  #pragma omp unroll full partial(2)
  for (int i = 0; i < 8; i += 1)
    sum += i;
  return sum;
}
// CHECK: error: 'full' and 'partial' clauses are mutually exclusive on '#pragma omp unroll'
