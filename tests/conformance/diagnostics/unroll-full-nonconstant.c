// Full unrolling requires a compile-time constant trip count; the note
// points at a representative location of the literal loop even though
// the failing expression names internal shadow variables (paper §2).
// RUN: not miniclang -fsyntax-only %s 2>&1 | FileCheck %s
int f(int n) {
  int sum = 0;
  #pragma omp unroll full
  for (int i = 0; i < n; i += 1)
    sum += i;
  return sum;
}
// CHECK: error: loop to fully unroll must have a constant trip count
// CHECK: note:
