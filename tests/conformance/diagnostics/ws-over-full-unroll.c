// Worksharing cannot consume 'unroll full': no generated loop remains.
// RUN: not miniclang -fsyntax-only %s 2>&1 | FileCheck %s
// RUN: not miniclang -fsyntax-only -fopenmp-enable-irbuilder %s 2>&1 \
// RUN:   | FileCheck %s
int main() {
  int sum = 0;
  #pragma omp parallel for reduction(+: sum)
  #pragma omp unroll full
  for (int i = 0; i < 20; i += 1)
    sum += i;
  return sum;
}
// CHECK: error: '#pragma omp parallel for' cannot be applied to the '#pragma omp unroll full' construct: a fully unrolled loop leaves no generated loop to associate with
