// The sizes clause is mandatory on tile.
// RUN: not miniclang -fsyntax-only %s 2>&1 | FileCheck %s
int main() {
  int sum = 0;
  #pragma omp tile
  for (int i = 0; i < 8; i += 1)
    sum += i;
  return sum;
}
// CHECK: error: expected 'sizes' clause on '#pragma omp tile'
