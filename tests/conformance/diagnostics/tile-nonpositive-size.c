// Tile sizes must be strictly positive constants.
// RUN: not miniclang -fsyntax-only %s 2>&1 | FileCheck %s
int main() {
  int sum = 0;
  #pragma omp tile sizes(0)
  for (int i = 0; i < 8; i += 1)
    sum += i;
  return sum;
}
// CHECK: error: argument to 'sizes' clause must be a strictly positive integer value
