// A permutation must name each loop of the nest exactly once.
// RUN: not miniclang -fsyntax-only %s 2>&1 | FileCheck %s
int main() {
  int sum = 0;
  #pragma omp interchange permutation(1, 1)
  for (int i = 0; i < 4; i += 1)
    for (int j = 0; j < 4; j += 1)
      sum += i * j;
  return sum;
}
// CHECK: error: 'permutation' clause must name each loop of the nest exactly once
