"""E9: the loop skeleton of ``create_canonical_loop`` (paper Fig. 7) and
the CanonicalLoopInfo invariants (paper §3.2)."""

import pytest

from repro.ir import (
    FunctionType,
    IRBuilder,
    Module,
    i64,
    verify_module,
    void_t,
)
from repro.ir.instructions import BranchInst, CondBranchInst, ICmpPred
from repro.ompirbuilder import (
    CanonicalLoopInfo,
    OpenMPIRBuilder,
    SkeletonError,
)


@pytest.fixture
def env():
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(void_t, [i64]))
    fn.args[0].name = "n"
    entry = fn.append_block("entry")
    b = IRBuilder(mod)
    b.set_insert_point(entry)
    ompb = OpenMPIRBuilder(mod)
    return mod, fn, b, ompb


def make_loop(env, name="omp_loop"):
    mod, fn, b, ompb = env
    sink = mod.add_function("sink", FunctionType(void_t, [i64]))
    cli = ompb.create_canonical_loop(
        b, fn.args[0], lambda bld, iv: bld.call(sink, [iv]), name
    )
    b.ret()
    return cli


class TestFig7Skeleton:
    def test_seven_explicit_blocks(self, env):
        """Paper: 'Explicit basic blocks for preheader, header, condition
        check, body entry, latch, exit and after.'"""
        cli = make_loop(env)
        roles = cli.block_names()
        assert set(roles) == {
            "preheader",
            "header",
            "cond",
            "body",
            "latch",
            "exit",
            "after",
        }
        # All distinct blocks.
        assert len(set(roles.values())) == 7

    def test_edge_structure(self, env):
        cli = make_loop(env)
        assert isinstance(cli.preheader.terminator, BranchInst)
        assert cli.preheader.terminator.target is cli.header
        assert cli.header.terminator.target is cli.cond
        cond_term = cli.cond.terminator
        assert isinstance(cond_term, CondBranchInst)
        assert cond_term.true_block is cli.body
        assert cond_term.false_block is cli.exit
        assert cli.body.terminator.target is cli.latch
        assert cli.latch.terminator.target is cli.header
        assert cli.exit.terminator.target is cli.after

    def test_identifiable_induction_variable(self, env):
        """'Identifiable logical iteration variable/induction variable':
        the header phi, starting at 0, incremented by 1 in the latch."""
        cli = make_loop(env)
        indvar = cli.indvar
        assert indvar.parent is cli.header
        start = indvar.incoming_for(cli.preheader)
        from repro.ir import ConstantInt

        assert isinstance(start, ConstantInt) and start.value == 0
        inc = indvar.incoming_for(cli.latch)
        assert inc.parent is cli.latch

    def test_identifiable_trip_count_no_scev(self, env):
        """'Identifiable loop trip count, without requiring analysis by
        ScalarEvolution': it is literally the compare's rhs."""
        mod, fn, b, ompb = env
        cli = make_loop(env)
        assert cli.trip_count is fn.args[0]
        assert cli.compare.pred == ICmpPred.ULT

    def test_unsigned_comparison(self, env):
        """The logical iteration counter is unsigned (paper §3.1)."""
        cli = make_loop(env)
        assert cli.compare.pred == ICmpPred.ULT

    def test_assert_ok_passes(self, env):
        cli = make_loop(env)
        cli.assert_ok()

    def test_module_verifies(self, env):
        mod, *_ = env
        make_loop(env)
        verify_module(mod)

    def test_body_callback_receives_indvar(self, env):
        mod, fn, b, ompb = env
        seen = {}
        sink = mod.add_function("sink", FunctionType(void_t, [i64]))

        def body(bld, iv):
            seen["iv"] = iv
            bld.call(sink, [iv])

        cli = ompb.create_canonical_loop(b, fn.args[0], body)
        assert seen["iv"] is cli.indvar

    def test_builder_left_at_after_block(self, env):
        mod, fn, b, ompb = env
        cli = ompb.create_canonical_loop(
            b, fn.args[0], None, "omp_loop"
        )
        assert b.insert_block is cli.after


class TestSkeletonInvariantChecking:
    def test_broken_preheader_edge_detected(self, env):
        cli = make_loop(env)
        other = cli.function.append_block("rogue")
        cli.preheader.terminator.target = other
        with pytest.raises(SkeletonError, match="preheader"):
            cli.assert_ok()

    def test_nonzero_start_detected(self, env):
        from repro.ir import ConstantInt
        from repro.ir.types import IntType

        cli = make_loop(env)
        indvar = cli.indvar
        indvar.incoming = [
            (
                (ConstantInt(IntType(64), 5), blk)
                if blk is cli.preheader
                else (v, blk)
            )
            for v, blk in indvar.incoming
        ]
        with pytest.raises(SkeletonError, match="start at 0"):
            cli.assert_ok()

    def test_invalidated_handle_rejected(self, env):
        cli = make_loop(env)
        cli.invalidate()
        with pytest.raises(SkeletonError, match="invalidated"):
            cli.assert_ok()

    def test_wrong_compare_predicate_detected(self, env):
        cli = make_loop(env)
        cli.compare.pred = ICmpPred.SLT
        with pytest.raises(SkeletonError, match="ult"):
            cli.assert_ok()


class TestCodegenProducesSkeleton:
    """The full pipeline in IRBuilder mode emits Fig. 7 skeletons."""

    def test_skeleton_blocks_in_emitted_ir(self):
        from tests.conftest import compile_c

        src = """
        void body(int);
        void f(int N) {
          #pragma omp unroll partial(2)
          for (int i = 0; i < N; ++i) body(i);
        }
        """
        result = compile_c(src, enable_irbuilder=True)
        text = result.ir_text()
        # After unroll_loop_partial (tiling), floor/tile skeleton blocks:
        for role in ("header", "cond", "body", "inc", "exit"):
            assert f"floor.0.{role}" in text, role
            assert f"tile.0.{role}" in text, role

    def test_workshare_loop_keeps_skeleton(self):
        from tests.conftest import compile_c

        src = """
        void body(int);
        void f(int N) {
          #pragma omp for
          for (int i = 0; i < N; ++i) body(i);
        }
        """
        result = compile_c(src, enable_irbuilder=True)
        text = result.ir_text()
        for role in ("header", "cond", "body", "inc", "exit", "after"):
            assert f"omp_loop.0.{role}" in text, role
        assert "__kmpc_for_static_init_4u" in text
        assert "__kmpc_for_static_fini" in text


class TestTileLoopsInvariants:
    def test_tile_returns_2n_valid_handles(self, env):
        mod, fn, b, ompb = env
        cli = make_loop(env)
        b2 = IRBuilder(mod)
        result = ompb.tile_loops(b2, [cli], [4])
        assert len(result) == 2
        for new_cli in result:
            new_cli.assert_ok()
        assert not cli.is_valid  # old handle abandoned
        verify_module(mod)

    def test_collapse_returns_single_valid_handle(self, env):
        mod, fn, b, ompb = env
        sink = mod.add_function("sink", FunctionType(void_t, [i64]))
        outer = ompb.create_canonical_loop(
            b, fn.args[0], None, "omp_loop.0"
        )
        b.set_insert_point(outer.body, 0)
        inner = ompb.create_canonical_loop(
            b, fn.args[0], None, "omp_loop.1"
        )
        b.set_insert_point(inner.body, 0)
        b.call(sink, [inner.indvar])
        b.set_insert_point(outer.after)
        b.ret()
        b2 = IRBuilder(mod)
        collapsed = ompb.collapse_loops(b2, [outer, inner])
        collapsed.assert_ok()
        assert not outer.is_valid and not inner.is_valid
        verify_module(mod)
