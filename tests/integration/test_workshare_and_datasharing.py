"""Worksharing schedules, data-sharing clauses, and edge-case iteration
spaces, executed under both representations."""

import pytest

from tests.conftest import run_both, run_c


class TestScheduleIterationMapping:
    MAP_SRC = r"""
    int main(void) {
      int owner[%(n)d];
      #pragma omp parallel for schedule(%(sched)s) num_threads(%(t)d)
      for (int i = 0; i < %(n)d; i += 1)
        owner[i] = omp_get_thread_num();
      for (int i = 0; i < %(n)d; i += 1) printf("%%d", owner[i]);
      printf("\n");
      return 0;
    }
    """

    def owners(self, sched, n=16, t=4, irb=False):
        src = self.MAP_SRC % {"sched": sched, "n": n, "t": t}
        return run_c(src, enable_irbuilder=irb).stdout.strip()

    def test_static_contiguous_blocks(self):
        owners = self.owners("static")
        assert owners == "0000111122223333"

    def test_static_uneven(self):
        owners = self.owners("static", n=10)
        # 10/4: first two threads get 3, last two get 2.
        assert owners == "0001112233"

    def test_static_chunked_round_robin(self):
        owners = self.owners("static, 2")
        assert owners == "0011223300112233"

    def test_dynamic_all_covered_once(self):
        owners = self.owners("dynamic, 3", n=16)
        assert len(owners) == 16
        assert set(owners) <= {"0", "1", "2", "3"}

    def test_guided_all_covered(self):
        owners = self.owners("guided", n=16)
        assert len(owners) == 16

    @pytest.mark.parametrize(
        "sched", ["static", "static, 2", "dynamic", "guided"]
    )
    def test_representations_agree_on_mapping(self, sched):
        src = self.MAP_SRC % {"sched": sched, "n": 16, "t": 4}
        run_both(src)

    def test_single_thread_gets_everything(self):
        owners = self.owners("static", n=8, t=1)
        assert owners == "00000000"

    def test_more_threads_than_iterations(self):
        owners = self.owners("static", n=2, t=4)
        assert owners == "01"


class TestZeroAndEdgeTrips:
    @pytest.mark.parametrize(
        "loop",
        [
            "for (int i = 0; i < 0; i += 1)",
            "for (int i = 10; i < 10; i += 1)",
            "for (int i = 10; i < 2; i += 1)",
        ],
    )
    def test_zero_trip_workshare(self, loop):
        src = (
            "int main(void) { int count = 0;\n"
            "#pragma omp parallel for\n"
            f"{loop} count += 1;\n"
            'printf("%d\\n", count); return 0; }'
        )
        legacy, _ = run_both(src)
        assert legacy.stdout == "0\n"

    def test_zero_trip_inner_collapse(self):
        src = r"""
        int main(void) {
          int count = 0;
          #pragma omp parallel for collapse(2)
          for (int i = 0; i < 4; i += 1)
            for (int j = 0; j < 0; j += 1)
              count += 1;
          printf("%d\n", count);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "0\n"

    def test_single_iteration(self):
        src = r"""
        int main(void) {
          int v = -1;
          #pragma omp parallel for
          for (int i = 5; i < 6; i += 1) v = i;
          printf("%d\n", v);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "5\n"

    def test_downward_loop(self):
        src = r"""
        int main(void) {
          int mask = 0;
          #pragma omp parallel for reduction(|: mask)
          for (int i = 7; i >= 0; i -= 1)
            mask |= 1 << i;
          printf("%d\n", mask);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "255\n"

    def test_stride_loop_values(self):
        src = r"""
        int main(void) {
          int sum = 0;
          #pragma omp parallel for reduction(+: sum)
          for (int i = 3; i <= 30; i += 4) sum += i;
          printf("%d\n", sum);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert int(legacy.stdout) == sum(range(3, 31, 4))


class TestCollapse:
    def test_collapse_covers_full_space(self):
        src = r"""
        int main(void) {
          int grid[6][7];
          #pragma omp parallel for collapse(2)
          for (int i = 0; i < 6; i += 1)
            for (int j = 0; j < 7; j += 1)
              grid[i][j] = i * 7 + j;
          int ok = 1;
          for (int i = 0; i < 6; i += 1)
            for (int j = 0; j < 7; j += 1)
              if (grid[i][j] != i * 7 + j) ok = 0;
          printf("%d\n", ok);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "1\n"

    def test_collapse_balances_work(self):
        """collapse(2) distributes the 4x8=32-point space over 4 threads
        8 iterations each; without collapse only the 4 outer iterations
        are distributed."""
        src = r"""
        int main(void) {
          int owner[32];
          #pragma omp parallel for collapse(2)
          for (int i = 0; i < 4; i += 1)
            for (int j = 0; j < 8; j += 1)
              owner[i * 8 + j] = omp_get_thread_num();
          int counts[4] = {0, 0, 0, 0};
          for (int k = 0; k < 32; k += 1) counts[owner[k]] += 1;
          printf("%d %d %d %d\n", counts[0], counts[1], counts[2], counts[3]);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "8 8 8 8\n"

    def test_collapse_three_deep(self):
        src = r"""
        int main(void) {
          int sum = 0;
          #pragma omp parallel for collapse(3) reduction(+: sum)
          for (int i = 0; i < 3; i += 1)
            for (int j = 0; j < 3; j += 1)
              for (int k = 0; k < 3; k += 1)
                sum += i * 9 + j * 3 + k;
          printf("%d\n", sum);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert int(legacy.stdout) == sum(range(27))


class TestDataSharing:
    def test_private_uninitialized_copy(self):
        src = r"""
        int main(void) {
          int tmp = 999;
          int ok = 1;
          #pragma omp parallel for private(tmp)
          for (int i = 0; i < 8; i += 1) {
            tmp = i;
            if (tmp != i) ok = 0;
          }
          printf("%d %d\n", ok, tmp);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        ok, tmp = legacy.stdout.split()
        assert ok == "1"
        assert tmp == "999"  # original untouched

    def test_firstprivate_copies_in(self):
        src = r"""
        int main(void) {
          int base = 40;
          int out[4];
          #pragma omp parallel for firstprivate(base)
          for (int i = 0; i < 4; i += 1) {
            base += i;
            out[i] = base;
          }
          printf("%d\n", base);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "40\n"  # original unchanged

    def test_lastprivate_takes_final_iteration(self):
        src = r"""
        int main(void) {
          int last = -1;
          #pragma omp parallel for lastprivate(last)
          for (int i = 0; i < 10; i += 1)
            last = i * 100;
          printf("%d\n", last);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "900\n"

    def test_lastprivate_with_dynamic_schedule(self):
        src = r"""
        int main(void) {
          int last = -1;
          #pragma omp parallel for schedule(dynamic, 2) lastprivate(last)
          for (int i = 0; i < 11; i += 1)
            last = i;
          printf("%d\n", last);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "10\n"

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("+: acc", str(sum(range(20)))),
            ("*: acc", "0"),  # multiplied by 0 at i==0... acc starts 1
            ("max: acc", "19"),
            ("min: acc", "0"),
        ],
    )
    def test_reduction_operators(self, op, expected):
        init = "1" if "*" in op else ("-99" if "max" in op else "99" if "min" in op else "0")
        src = rf"""
        int main(void) {{
          int acc = {init};
          #pragma omp parallel for reduction({op})
          for (int i = 0; i < 20; i += 1) {{
            {"acc += i;" if "+" in op else ""}
            {"acc *= i;" if "*" in op else ""}
            {"if (i > acc) acc = i;" if "max" in op else ""}
            {"if (i < acc) acc = i;" if "min" in op else ""}
          }}
          printf("%d\n", acc);
          return 0;
        }}
        """
        legacy, _ = run_both(src)
        if "max" in op:
            assert int(legacy.stdout) == 19
        elif "min" in op:
            assert int(legacy.stdout) == 0
        elif "*" in op:
            assert int(legacy.stdout) == 0
        else:
            assert int(legacy.stdout) == sum(range(20))

    def test_reduction_double(self):
        src = r"""
        int main(void) {
          double total = 0.0;
          #pragma omp parallel for reduction(+: total)
          for (int i = 0; i < 16; i += 1)
            total += 0.5;
          printf("%g\n", total);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "8\n"

    def test_conflicting_clauses_rejected(self):
        from repro.pipeline import CompilationError

        src = r"""
        int main(void) {
          int x = 0;
          #pragma omp parallel for private(x) reduction(+: x)
          for (int i = 0; i < 4; i += 1) x += 1;
          return 0;
        }
        """
        with pytest.raises(CompilationError) as err:
            run_c(src)
        assert "cannot appear in both" in str(err.value)

    def test_nowait_skips_barrier(self):
        src = r"""
        int main(void) {
          #pragma omp parallel
          {
            #pragma omp for nowait
            for (int i = 0; i < 4; i += 1) ;
          }
          printf("done\n");
          return 0;
        }
        """
        result = run_c(src)
        assert result.stdout == "done\n"
        # Only the parallel-region end behaviour remains; the explicit
        # worksharing barrier was skipped.
        assert result.interpreter.omp.barrier_count == 0

    def test_for_barrier_counted_without_nowait(self):
        src = r"""
        int main(void) {
          #pragma omp parallel
          {
            #pragma omp for
            for (int i = 0; i < 4; i += 1) ;
          }
          return 0;
        }
        """
        result = run_c(src)
        assert result.interpreter.omp.barrier_count >= 1


class TestOrphanedWorksharing:
    def test_for_outside_parallel_runs_serially(self):
        src = r"""
        int main(void) {
          int sum = 0;
          #pragma omp for
          for (int i = 0; i < 10; i += 1) sum += i;
          printf("%d\n", sum);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert int(legacy.stdout) == 45

    def test_simd_directive(self):
        src = r"""
        int main(void) {
          int sum = 0;
          #pragma omp simd reduction(+: sum)
          for (int i = 0; i < 10; i += 1) sum += i * i;
          printf("%d\n", sum);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert int(legacy.stdout) == sum(i * i for i in range(10))

    def test_barrier_standalone_outside_parallel(self):
        src = r"""
        int main(void) {
          #pragma omp barrier
          printf("after\n");
          return 0;
        }
        """
        assert run_c(src).stdout == "after\n"
