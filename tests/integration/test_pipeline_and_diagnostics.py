"""E1 (component layers), E13 (shadow-AST diagnostic quality), E14 (AST
size of the two representations), and driver-level behaviour."""

import pytest

from repro.astlib import omp
from repro.astlib.visitor import count_nodes
from repro.diagnostics import Severity
from repro.pipeline import CompilationError, compile_source

from tests.conftest import compile_c, run_c


class TestE1PipelineLayers:
    """Fig. 1: each layer consumes the previous layer's output; the same
    SourceLocation identifies a character across all of them."""

    SRC = "int x = 1;\nint bad = undeclared_name;\n"

    def test_location_flows_from_lexer_to_diagnostic(self):
        result = compile_c(self.SRC, syntax_only=True, strict=False)
        errors = list(result.diagnostics.errors())
        assert errors
        ploc = result.source_manager.get_presumed_loc(
            errors[0].location
        )
        assert ploc.line == 2
        line_text = result.source_manager.get_line_text(
            errors[0].location
        )
        assert "undeclared_name" in line_text

    def test_rendered_diagnostic_has_caret(self):
        result = compile_c(self.SRC, syntax_only=True, strict=False)
        text = result.diagnostics_text()
        assert "<input>:2:11: error:" in text
        assert "^" in text

    def test_include_crosses_layers(self):
        result = compile_c(
            '#include "lib.h"\nint y = LIB_VALUE;\n',
            syntax_only=True,
            virtual_files={"lib.h": "#define LIB_VALUE 77\n"},
        )
        decl = result.translation_unit.lookup("y")
        assert decl.init.ignore_implicit_casts().value == 77

    def test_preprocessor_conditional_selects_transformation(self):
        """The paper's motivation: choose different optimizations per
        target 'by using the preprocessor ... while using the same source
        code'."""
        src = r"""
        int main(void) {
          int sum = 0;
        #ifdef WIDE_CORE
          #pragma omp unroll partial(8)
        #else
          #pragma omp unroll partial(2)
        #endif
          for (int i = 0; i < 20; i += 1) sum += i;
          printf("%d\n", sum);
          return 0;
        }
        """
        narrow = run_c(src)
        wide = run_c(src, defines={"WIDE_CORE": "1"})
        assert narrow.stdout == wide.stdout == "190\n"

    def test_full_stack_compile_and_run(self):
        src = r"""
        int fib(int n) {
          if (n < 2) return n;
          return fib(n - 1) + fib(n - 2);
        }
        int main(void) { printf("%d\n", fib(12)); return 0; }
        """
        assert run_c(src, openmp=False).stdout == "144\n"

    def test_syntax_only_skips_codegen(self):
        result = compile_c("int f(void) { return 1; }", syntax_only=True)
        assert result.module is None


class TestE13ShadowDiagnostics:
    """Paper §2: diagnostics over the shadow AST leak internal names like
    '.capture_expr.' but should point at a representative source location
    of the literal loop."""

    SRC = """
void body(int);
void f(int N) {
  #pragma omp unroll full
  #pragma omp unroll partial(2)
  for (int i = 0; i < N; i += 1)
    body(i);
}
"""

    def compile_failing(self):
        return compile_c(self.SRC, syntax_only=True, strict=False)

    def test_error_emitted(self):
        result = self.compile_failing()
        assert result.diagnostics.has_errors()

    def test_note_leaks_internal_name(self):
        """The exact diagnostic text the paper quotes."""
        result = self.compile_failing()
        text = result.diagnostics_text()
        assert (
            "read of non-const variable '.capture_expr.' is not "
            "allowed in a constant expression" in text
        )

    def test_note_has_representative_location(self):
        """'a representative source location for the associated literal
        loop can be used' — the note points at the for-loop line."""
        result = self.compile_failing()
        error = next(iter(result.diagnostics.errors()))
        assert error.notes
        note = error.notes[0]
        assert note.location is not None and note.location.is_valid()
        ploc = result.source_manager.get_presumed_loc(note.location)
        line = result.source_manager.get_line_text(note.location)
        assert "for (int i = 0; i < N" in line

    def test_note_severity(self):
        result = self.compile_failing()
        error = next(iter(result.diagnostics.errors()))
        assert error.notes[0].severity == Severity.NOTE

    def test_constant_bounds_compose_cleanly(self):
        """With constant bounds the materialized '.capture_expr.' is
        const and folds, so the same composition succeeds."""
        src = self.SRC.replace("int N)", "void)").replace("i < N", "i < 8")
        result = compile_c(src, syntax_only=True)
        assert not result.diagnostics.has_errors()


class TestE14RepresentationSize:
    """Paper §3: the canonical representation reduces the Sema-resolved
    meta information from ~36 shadow nodes to 3."""

    SRC = """
void body(int);
void f(int N) {
  #pragma omp parallel for
  for (int i = 0; i < N; i += 1)
    body(i);
}
"""

    def directive(self, irbuilder: bool):
        result = compile_c(
            self.SRC, syntax_only=True, enable_irbuilder=irbuilder
        )
        return result.function("f").body.statements[0]

    def test_shadow_capacity_matches_paper(self):
        assert omp.OMPLoopDirective.shadow_capacity(1) >= 36

    def test_shadow_directive_populates_many_helpers(self):
        directive = self.directive(irbuilder=False)
        assert isinstance(directive, omp.OMPLoopDirective)
        assert directive.shadow_node_count() >= 15

    def test_canonical_loop_has_exactly_three_meta_nodes(self):
        directive = self.directive(irbuilder=True)
        captured = directive.captured_stmt
        wrapper = captured.body
        while not isinstance(wrapper, omp.OMPCanonicalLoop):
            wrapper = list(wrapper.children())[0]
        assert wrapper.meta_node_count() == 3

    def test_canonical_tree_smaller_than_shadow_tree(self):
        shadow = self.directive(irbuilder=False)
        canonical = self.directive(irbuilder=True)
        shadow_total = count_nodes(shadow, include_shadow=True)
        canonical_total = count_nodes(canonical, include_shadow=True)
        assert canonical_total < shadow_total


class TestDriverCLI:
    def run_cli(self, args, source):
        import io
        import sys

        from repro.driver.cli import main

        path = None
        import tempfile, os

        with tempfile.NamedTemporaryFile(
            "w", suffix=".c", delete=False
        ) as fh:
            fh.write(source)
            path = fh.name
        old_stdout = sys.stdout
        sys.stdout = io.StringIO()
        try:
            code = main([*args, path])
            output = sys.stdout.getvalue()
        finally:
            sys.stdout = old_stdout
            os.unlink(path)
        return code, output

    SRC = r"""
int main(void) {
  int sum = 0;
  #pragma omp unroll partial(2)
  for (int i = 0; i < 10; i += 1) sum += i;
  printf("%d\n", sum);
  return sum;
}
"""

    def test_emit_llvm_default(self):
        code, out = self.run_cli([], self.SRC)
        assert code == 0
        assert "define i32 @main" in out
        assert "llvm.loop.unroll.count" in out

    def test_ast_dump(self):
        code, out = self.run_cli(["-ast-dump"], self.SRC)
        assert code == 0
        assert "OMPUnrollDirective" in out
        assert "OMPPartialClause" in out
        assert "unrolled.iv.i" not in out  # shadow hidden

    def test_ast_dump_shadow(self):
        code, out = self.run_cli(["-ast-dump-shadow"], self.SRC)
        assert "unrolled.iv.i" in out

    def test_run_flag(self):
        code, out = self.run_cli(["--run"], self.SRC)
        assert out == "45\n"
        assert code == 45

    def test_run_with_irbuilder(self):
        code, out = self.run_cli(
            ["--run", "-fopenmp-enable-irbuilder"], self.SRC
        )
        assert out == "45\n"

    def test_run_optimized(self):
        code, out = self.run_cli(["--run", "-O"], self.SRC)
        assert out == "45\n"

    def test_syntax_only_quiet(self):
        code, out = self.run_cli(["-fsyntax-only"], self.SRC)
        assert code == 0
        assert out == ""

    def test_define_flag(self):
        src = r"""
int main(void) { printf("%d\n", VALUE); return 0; }
"""
        code, out = self.run_cli(["--run", "-D", "VALUE=33"], src)
        assert out == "33\n"

    def test_no_openmp_ignores_pragma(self):
        code, out = self.run_cli(
            ["--run", "-fno-openmp"], self.SRC
        )
        assert out == "45\n"

    def test_error_exit_code(self):
        code, _ = self.run_cli([], "int broken(void) { return x; }")
        assert code == 1
