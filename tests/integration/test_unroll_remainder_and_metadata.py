"""E6 + E11: unroll metadata flow and the remainder loop.

E11 (paper §2.2): a non-consumed unroll attaches ``llvm.loop.unroll.*``
metadata without duplicating any code in the front-end; heuristic mode
leaves the decision to the mid-end pass.

E6 (paper Listing 2): the mid-end LoopUnroll pass turns the annotated
loop into a main loop processing F iterations per backedge plus a
remainder loop — and "handles the case when the iteration count is not a
multiple of the unroll factor".
"""

import re

import pytest

from repro.ir.metadata import (
    UNROLL_ENABLE,
    UNROLL_FULL,
    get_unroll_count,
    has_flag,
)
from repro.midend import LoopInfo, LoopUnrollPass, default_pass_pipeline

from tests.conftest import compile_c, run_c


def loop_metadata_of(result, fn_name="f"):
    fn = result.module.get_function(fn_name)
    found = []
    for block in fn.blocks:
        term = block.terminator
        if term is not None and "llvm.loop" in term.metadata:
            found.append(term.metadata["llvm.loop"])
    return found


class TestE11MetadataOnly:
    def test_partial_unroll_emits_count_metadata(self):
        src = """
        void body(int);
        void f(int N) {
          #pragma omp unroll partial(4)
          for (int i = 0; i < N; ++i) body(i);
        }
        """
        result = compile_c(src)
        mds = loop_metadata_of(result)
        assert len(mds) == 1
        assert get_unroll_count(mds[0]) == 4

    def test_no_front_end_duplication(self):
        """The body call appears exactly once in the emitted IR — no
        duplication until the mid-end (paper §2.1)."""
        src = """
        void body(int);
        void f(int N) {
          #pragma omp unroll partial(8)
          for (int i = 0; i < N; ++i) body(i);
        }
        """
        result = compile_c(src)
        text = result.ir_text()
        assert text.count("call void @body") == 1

    def test_full_unroll_emits_full_metadata(self):
        src = """
        void body(int);
        void f(void) {
          #pragma omp unroll full
          for (int i = 0; i < 6; ++i) body(i);
        }
        """
        result = compile_c(src)
        mds = loop_metadata_of(result)
        assert len(mds) == 1
        assert has_flag(mds[0], UNROLL_FULL)
        assert result.ir_text().count("call void @body") == 1

    def test_heuristic_mode_emits_enable(self):
        """No clause: 'the compiler decides what to do' — metadata lets
        the LoopUnroll pass apply its profitability heuristic."""
        src = """
        void body(int);
        void f(int N) {
          #pragma omp unroll
          for (int i = 0; i < N; ++i) body(i);
        }
        """
        result = compile_c(src)
        mds = loop_metadata_of(result)
        assert len(mds) == 1
        assert has_flag(mds[0], UNROLL_ENABLE)
        assert get_unroll_count(mds[0]) is None

    def test_clang_loop_pragma_same_mechanism(self):
        """#pragma clang loop unroll_count(N) uses the same LoopHintAttr
        lowering the shadow-AST unroll reuses."""
        src = """
        void body(int);
        void f(int N) {
          #pragma clang loop unroll_count(3)
          for (int i = 0; i < N; ++i) body(i);
        }
        """
        result = compile_c(src, openmp=False)
        mds = loop_metadata_of(result)
        assert len(mds) == 1
        assert get_unroll_count(mds[0]) == 3

    def test_irbuilder_partial_tags_inner_tile_loop(self):
        src = """
        void body(int);
        void f(int N) {
          #pragma omp unroll partial(4)
          for (int i = 0; i < N; ++i) body(i);
        }
        """
        result = compile_c(src, enable_irbuilder=True)
        mds = loop_metadata_of(result)
        assert len(mds) == 1
        assert get_unroll_count(mds[0]) == 4


class TestE6RemainderLoop:
    SRC = """
    void body(int);
    void f(int N) {
      #pragma omp unroll partial(4)
      for (int i = 0; i < N; ++i) body(i);
    }
    """

    def test_pass_creates_main_plus_remainder(self):
        result = compile_c(self.SRC)
        pass_ = LoopUnrollPass()
        fn = result.module.get_function("f")
        assert pass_.run_on_function(fn)
        # The strip-mined inner loop has a compound (&&) condition, so it
        # takes the conditional-exit scheme; the loop structure still
        # duplicates the body 4x.
        assert pass_.stats.total >= 1
        text_after = result.ir_text()
        assert text_after.count("call void @body") == 4

    def test_simple_loop_gets_remainder_shape(self):
        """A plain annotated loop (clang loop hint) gets the exact
        Listing 2 shape: strengthened main header + original loop as
        remainder."""
        src = """
        void body(int);
        void f(int N) {
          #pragma clang loop unroll_count(4)
          for (int i = 0; i < N; ++i) body(i);
        }
        """
        result = compile_c(src, openmp=False)
        fn = result.module.get_function("f")
        pass_ = LoopUnrollPass()
        assert pass_.run_on_function(fn)
        assert pass_.stats.partially_unrolled == 1
        assert pass_.stats.remainder_loops_created == 1
        loops = LoopInfo(fn).loops
        headers = {l.header.name for l in loops}
        assert any("unrolled" in h for h in headers)  # main loop
        assert "for.cond" in headers  # remainder = original loop
        # Main loop carries 4 body calls, remainder 1.
        assert result.ir_text().count("call void @body") == 5

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 7, 8, 9, 100, 101])
    def test_remainder_semantics_every_modulus(self, n):
        src = (
            """
        int main(void) {
          int sum = 0;
          int n = %d;
          #pragma omp unroll partial(4)
          for (int i = 0; i < n; ++i) sum += 2 * i + 1;
          printf("%%d\\n", sum);
          return 0;
        }
        """
            % n
        )
        expected = sum(2 * i + 1 for i in range(n))
        plain = run_c(src)
        optimized = run_c(src, optimize=True)
        assert int(plain.stdout) == expected
        assert int(optimized.stdout) == expected

    def test_optimized_executes_fewer_backedges(self):
        """The unrolled main loop reduces dynamic instruction count."""
        src = r"""
        int main(void) {
          int sum = 0;
          #pragma clang loop unroll_count(8)
          for (int i = 0; i < 1000; ++i) sum += i;
          printf("%d\n", sum);
          return 0;
        }
        """
        plain = run_c(src, openmp=False)
        optimized = run_c(src, openmp=False, optimize=True)
        assert plain.stdout == optimized.stdout
        assert (
            optimized.instruction_count < plain.instruction_count
        )

    def test_full_unroll_removes_loop_entirely(self):
        src = """
        void body(int);
        void f(void) {
          #pragma omp unroll full
          for (int i = 0; i < 5; ++i) body(i);
        }
        """
        result = compile_c(src)
        default_pass_pipeline().run(result.module)
        fn = result.module.get_function("f")
        assert LoopInfo(fn).loops == []
        assert result.ir_text().count("call void @body") == 5
