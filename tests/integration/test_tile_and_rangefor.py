"""E15 (tile semantics) + E10 (range-for de-sugaring, paper Listing
'rangeloop')."""

import pytest

from repro.astlib import stmts as s
from tests.conftest import compile_c, run_both, run_c


def tile_traversal(n, m, si, sj):
    """Reference traversal order of a tiled i/j nest."""
    order = []
    for fi in range(0, n, si):
        for fj in range(0, m, sj):
            for i in range(fi, min(fi + si, n)):
                for j in range(fj, min(fj + sj, m)):
                    order.append((i, j))
    return order


TILE_SRC = r"""
int main(void) {
  int n = %(n)d; int m = %(m)d;
  int order[512]; int pos = 0;
  #pragma omp tile sizes(%(si)d, %(sj)d)
  for (int i = 0; i < n; i += 1)
    for (int j = 0; j < m; j += 1) {
      order[pos] = i * 100 + j;
      pos += 1;
    }
  printf("%%d:", pos);
  for (int k = 0; k < pos; k += 1) printf("%%d ", order[k]);
  printf("\n");
  return 0;
}
"""


class TestTileSemantics:
    @pytest.mark.parametrize(
        "n,m,si,sj",
        [
            (6, 6, 2, 3),     # rectangular, sizes divide evenly
            (7, 5, 2, 2),     # both extents non-multiples
            (4, 4, 8, 8),     # tiles larger than the space
            (5, 1, 2, 1),     # degenerate inner dimension
            (1, 1, 1, 1),
            (8, 8, 1, 1),     # unit tiles = original order
        ],
    )
    def test_traversal_order_both_representations(self, n, m, si, sj):
        src = TILE_SRC % {"n": n, "m": m, "si": si, "sj": sj}
        legacy, irb = run_both(src)
        count, _, values = legacy.stdout.partition(":")
        got = [int(v) for v in values.split()]
        expected = [
            i * 100 + j for i, j in tile_traversal(n, m, si, sj)
        ]
        assert int(count) == n * m
        assert got == expected

    def test_1d_tile(self):
        src = r"""
        int main(void) {
          int order[16]; int pos = 0;
          #pragma omp tile sizes(4)
          for (int i = 0; i < 10; i += 1) { order[pos] = i; pos += 1; }
          for (int k = 0; k < pos; k += 1) printf("%d ", order[k]);
          printf("\n");
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout.split() == [str(i) for i in range(10)]

    def test_3d_tile(self):
        src = r"""
        int main(void) {
          int sum = 0; int count = 0;
          #pragma omp tile sizes(2, 2, 2)
          for (int i = 0; i < 3; i += 1)
            for (int j = 0; j < 4; j += 1)
              for (int k = 0; k < 5; k += 1) {
                sum += i * 100 + j * 10 + k;
                count += 1;
              }
          printf("%d %d\n", sum, count);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        expected = sum(
            i * 100 + j * 10 + k
            for i in range(3)
            for j in range(4)
            for k in range(5)
        )
        assert legacy.stdout.split() == [str(expected), "60"]

    def test_tile_requires_sizes_clause(self):
        from repro.pipeline import CompilationError

        with pytest.raises(CompilationError) as err:
            run_c(
                "int main(void) {\n"
                "#pragma omp tile\n"
                "for (int i = 0; i < 4; i += 1) ;\n"
                "return 0; }"
            )
        assert "sizes" in str(err.value)

    def test_tile_size_must_be_positive_constant(self):
        from repro.pipeline import CompilationError

        with pytest.raises(CompilationError) as err:
            run_c(
                "int main(void) {\n"
                "#pragma omp tile sizes(0)\n"
                "for (int i = 0; i < 4; i += 1) ;\n"
                "return 0; }"
            )
        assert "positive" in str(err.value)

    def test_tile_nest_depth_mismatch(self):
        from repro.pipeline import CompilationError

        with pytest.raises(CompilationError) as err:
            run_c(
                "int main(void) {\n"
                "#pragma omp tile sizes(2, 2)\n"
                "for (int i = 0; i < 4; i += 1) ;\n"
                "return 0; }"
            )
        assert "nested" in str(err.value)

    def test_parallel_for_over_tile(self):
        """Worksharing over the generated floor loop covers everything
        exactly once regardless of representation."""
        src = r"""
        int main(void) {
          int hits[64];
          for (int k = 0; k < 64; k += 1) hits[k] = 0;
          #pragma omp parallel for
          #pragma omp tile sizes(4, 4)
          for (int i = 0; i < 8; i += 1)
            for (int j = 0; j < 8; j += 1)
              hits[i * 8 + j] += 1;
          int bad = 0;
          for (int k = 0; k < 64; k += 1)
            if (hits[k] != 1) bad += 1;
          printf("bad=%d\n", bad);
          return 0;
        }
        """
        legacy, irb = run_both(src)
        assert legacy.stdout == "bad=0\n"


class TestE10RangeForDesugaring:
    """Paper Listing 'rangeloop': three stages of the same loop."""

    def test_desugared_children_present(self):
        """The CXXForRangeStmt keeps the de-sugared helper statements
        (__range/__begin/__end, cond, inc) as children — Listing (b)."""
        src = "void f(void) { int data[4]; for (int &x : data) ; }"
        result = compile_c(src, syntax_only=True)
        loop = result.function("f").body.statements[1]
        assert isinstance(loop, s.CXXForRangeStmt)
        names = [
            st.single_decl.name
            for st in (loop.range_stmt, loop.begin_stmt, loop.end_stmt)
        ]
        assert names == ["__range1", "__begin1", "__end1"]
        assert loop.loop_variable.name == "x"

    def test_three_variable_distinction(self):
        """Val is the *loop user variable*, __begin the *loop iteration
        variable*, and the logical counter is a normalized unsigned int
        (paper Fig. caption)."""
        from repro.sema.canonical_loop import analyze_canonical_loop

        src = "void f(void) { double data[8]; for (double &v : data) ; }"
        result = compile_c(src, syntax_only=True)
        loop = result.function("f").body.statements[1]
        analysis = analyze_canonical_loop(
            result.ast_context, result.diagnostics, loop
        )
        # loop iteration variable: the pointer __begin1
        assert analysis.iter_var.name == "__begin1"
        assert analysis.iter_var.type.spelling() == "double *"
        # loop user variable: v (a reference)
        assert loop.loop_variable.name == "v"
        assert loop.loop_variable.type.spelling() == "double &"
        # logical counter: unsigned, pointer-width
        assert analysis.logical_type.is_unsigned_integer()
        assert (
            result.ast_context.type_width(analysis.logical_type) == 64
        )

    def test_all_three_stages_execute_identically(self):
        """Listing (a) range-for == Listing (b) iterator de-sugaring ==
        Listing (c) logical-iteration de-sugaring."""
        stage_a = r"""
        int main(void) {
          double c[6] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
          double total = 0.0;
          for (double &val : c) { val = val * 2.0; total += val; }
          printf("%g %g %g\n", total, c[0], c[5]);
          return 0;
        }
        """
        stage_b = r"""
        int main(void) {
          double c[6] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
          double total = 0.0;
          double *__begin = c;
          double *__end = c + 6;
          for (; __begin != __end; ++__begin) {
            double *val = __begin;
            *val = *val * 2.0;
            total += *val;
          }
          printf("%g %g %g\n", total, c[0], c[5]);
          return 0;
        }
        """
        stage_c = r"""
        int main(void) {
          double c[6] = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
          double total = 0.0;
          double *__begin = c;
          double *__end = c + 6;
          ptrdiff_t distance = __end - __begin;
          for (long __i = 0; __i < distance; ++__i) {
            double *val = __begin + __i;
            *val = *val * 2.0;
            total += *val;
          }
          printf("%g %g %g\n", total, c[0], c[5]);
          return 0;
        }
        """
        outputs = {
            run_c(code, openmp=False).stdout
            for code in (stage_a, stage_b, stage_c)
        }
        assert len(outputs) == 1
        assert outputs.pop() == "42 2 12\n"

    def test_range_for_under_every_directive(self):
        src = r"""
        int main(void) {
          int data[12];
          for (int i = 0; i < 12; i += 1) data[i] = i + 1;
          long product_like = 0;
          #pragma omp parallel for reduction(+: product_like)
          for (int &x : data)
            product_like += x * x;
          printf("%d\n", (int)product_like);
          return 0;
        }
        """
        legacy, irb = run_both(src)
        assert int(legacy.stdout) == sum(
            (i + 1) ** 2 for i in range(12)
        )

    def test_tile_of_range_for(self):
        """Loop transformations apply to range-based for loops too."""
        src = r"""
        int main(void) {
          int data[10];
          for (int i = 0; i < 10; i += 1) data[i] = i;
          int order[10]; int pos = 0;
          #pragma omp tile sizes(4)
          for (int &x : data) { order[pos] = x; pos += 1; }
          for (int k = 0; k < pos; k += 1) printf("%d ", order[k]);
          printf("\n");
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout.split() == [str(i) for i in range(10)]

    def test_unroll_of_range_for(self):
        src = r"""
        int main(void) {
          double data[7] = {1, 2, 3, 4, 5, 6, 7};
          double sum = 0.0;
          #pragma omp unroll partial(3)
          for (double &v : data) sum += v;
          printf("%g\n", sum);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "28\n"
