"""Paper §4 extensions: the OpenMP 6.0 loop transformations the paper
anticipates ("OpenMP 6.0 is expected to introduce additional loop
transformations"), implemented on both representations to demonstrate
that the OMPCanonicalLoop / OpenMPIRBuilder abstractions "build the
foundation for implementing these extensions"."""

import pytest

from repro.astlib import omp
from repro.pipeline import CompilationError

from tests.conftest import compile_c, run_both, run_c


class TestReverse:
    def test_reverses_iteration_order(self):
        src = r"""
        int main(void) {
          int order[8]; int pos = 0;
          #pragma omp reverse
          for (int i = 0; i < 8; i += 1) { order[pos] = i; pos += 1; }
          for (int k = 0; k < pos; k += 1) printf("%d ", order[k]);
          printf("\n");
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout.split() == [str(i) for i in range(7, -1, -1)]

    def test_reverse_strided_loop(self):
        src = r"""
        int main(void) {
          #pragma omp reverse
          for (int i = 3; i < 20; i += 4) printf("%d ", i);
          printf("\n");
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout.split() == [
            str(i) for i in reversed(range(3, 20, 4))
        ]

    def test_reverse_of_reverse_is_identity(self):
        src = r"""
        int main(void) {
          #pragma omp reverse
          #pragma omp reverse
          for (int i = 0; i < 6; i += 1) printf("%d ", i);
          printf("\n");
          return 0;
        }
        """
        # Composition goes through get_transformed_stmt (shadow path).
        result = run_c(src)
        assert result.stdout.split() == [str(i) for i in range(6)]

    def test_worksharing_consumes_reverse(self):
        src = r"""
        int main(void) {
          int sum = 0;
          #pragma omp parallel for reduction(+: sum)
          #pragma omp reverse
          for (int i = 0; i < 30; i += 1) sum += i * i;
          printf("%d\n", sum);
          return 0;
        }
        """
        legacy, irb = run_both(src)
        assert int(legacy.stdout) == sum(i * i for i in range(30))

    def test_reverse_directive_class(self):
        src = r"""
        void f(void) {
          #pragma omp reverse
          for (int i = 0; i < 4; i += 1) ;
        }
        """
        result = compile_c(src, syntax_only=True)
        directive = result.function("f").body.statements[0]
        assert isinstance(directive, omp.OMPReverseDirective)
        assert isinstance(
            directive, omp.OMPLoopTransformationDirective
        )
        assert directive.get_transformed_stmt() is not None

    def test_reverse_zero_trip(self):
        src = r"""
        int main(void) {
          int count = 0;
          #pragma omp reverse
          for (int i = 5; i < 5; i += 1) count += 1;
          printf("%d\n", count);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "0\n"


class TestInterchange:
    def test_default_swaps_two_loops(self):
        src = r"""
        int main(void) {
          #pragma omp interchange
          for (int i = 0; i < 3; i += 1)
            for (int j = 0; j < 2; j += 1)
              printf("%d%d ", i, j);
          printf("\n");
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout.split() == [
            "00", "10", "20", "01", "11", "21"
        ]

    def test_permutation_clause_three_loops(self):
        src = r"""
        int main(void) {
          #pragma omp interchange permutation(3, 1, 2)
          for (int i = 0; i < 2; i += 1)
            for (int j = 0; j < 2; j += 1)
              for (int k = 0; k < 2; k += 1)
                printf("%d%d%d ", i, j, k);
          printf("\n");
          return 0;
        }
        """
        legacy, _ = run_both(src)
        expected = [
            f"{i}{j}{k}"
            for k in range(2)
            for i in range(2)
            for j in range(2)
        ]
        assert legacy.stdout.split() == expected

    def test_identity_permutation(self):
        src = r"""
        int main(void) {
          #pragma omp interchange permutation(1, 2)
          for (int i = 0; i < 2; i += 1)
            for (int j = 0; j < 3; j += 1)
              printf("%d%d ", i, j);
          printf("\n");
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout.split() == [
            "00", "01", "02", "10", "11", "12"
        ]

    def test_invalid_permutation_rejected(self):
        src = r"""
        int main(void) {
          #pragma omp interchange permutation(1, 1)
          for (int i = 0; i < 2; i += 1)
            for (int j = 0; j < 2; j += 1) ;
          return 0;
        }
        """
        with pytest.raises(CompilationError) as err:
            run_c(src)
        assert "exactly once" in str(err.value)

    def test_interchange_requires_perfect_nest(self):
        src = r"""
        int main(void) {
          #pragma omp interchange
          for (int i = 0; i < 2; i += 1) ;
          return 0;
        }
        """
        with pytest.raises(CompilationError):
            run_c(src)

    def test_tile_after_interchange_composition(self):
        """Transformations compose: tile the interchanged nest."""
        src = r"""
        int main(void) {
          int checksum = 0; int pos = 0;
          #pragma omp tile sizes(2, 2)
          #pragma omp interchange
          for (int i = 0; i < 4; i += 1)
            for (int j = 0; j < 4; j += 1) {
              checksum += (i * 4 + j) * (pos + 1);
              pos += 1;
            }
          printf("%d %d\n", checksum, pos);
          return 0;
        }
        """
        result = run_c(src)
        _, pos = result.stdout.split()
        assert pos == "16"

    def test_worksharing_consumes_interchange(self):
        src = r"""
        int main(void) {
          int hits[24];
          for (int k = 0; k < 24; k += 1) hits[k] = 0;
          #pragma omp parallel for
          #pragma omp interchange
          for (int i = 0; i < 4; i += 1)
            for (int j = 0; j < 6; j += 1)
              hits[i * 6 + j] += 1;
          int bad = 0;
          for (int k = 0; k < 24; k += 1) if (hits[k] != 1) bad += 1;
          printf("%d\n", bad);
          return 0;
        }
        """
        legacy, irb = run_both(src)
        assert legacy.stdout == "0\n"

    def test_interchange_balances_outer_parallelism(self):
        """The §4 motivation: after interchange, worksharing distributes
        the (previously inner, larger) loop."""
        src = r"""
        int main(void) {
          int owners[32];
          #pragma omp parallel for
          #pragma omp interchange
          for (int i = 0; i < 2; i += 1)
            for (int j = 0; j < 16; j += 1)
              owners[i * 16 + j] = omp_get_thread_num();
          int distinct = 0;
          int seen[4] = {0, 0, 0, 0};
          for (int k = 0; k < 32; k += 1) seen[owners[k]] = 1;
          for (int t = 0; t < 4; t += 1) distinct += seen[t];
          printf("%d\n", distinct);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        # Without interchange, only 2 outer iterations exist -> at most
        # 2 threads get work; after interchange all 4 participate.
        assert int(legacy.stdout) == 4


class TestExtensionDumps:
    def test_reverse_shadow_dump(self):
        src = r"""
        void f(int N) {
          #pragma omp reverse
          for (int i = 0; i < N; i += 1) ;
        }
        """
        result = compile_c(src, syntax_only=True)
        directive = result.function("f").body.statements[0]
        from repro.astlib.dump import dump_ast

        shadow = dump_ast(directive, dump_shadow=True)
        assert "reversed.iv.i" in shadow

    def test_interchange_canonical_wrappers(self):
        src = r"""
        void f(void) {
          #pragma omp interchange
          for (int i = 0; i < 4; i += 1)
            for (int j = 0; j < 4; j += 1) ;
        }
        """
        result = compile_c(
            src, syntax_only=True, enable_irbuilder=True
        )
        directive = result.function("f").body.statements[0]
        assert len(getattr(directive, "canonical_loops")) == 2
        assert getattr(directive, "permutation") == [1, 0]
