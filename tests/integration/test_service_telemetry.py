"""End-to-end tests for the service telemetry stack: cross-process
request tracing, the metrics registry, worker-stat aggregation, and the
JSONL event log — real worker processes throughout.
"""

from __future__ import annotations

import io
import json
import os

from repro.instrument.stats import STATS
from repro.instrument.telemetry import EventLog, read_jsonl
from repro.service import (
    STATUS_OK,
    CompileRequest,
    CompileService,
    RetryPolicy,
    ServiceConfig,
)

HELLO = """\
int printf(const char *fmt, ...);
int main() {
  #pragma omp tile sizes(2)
  for (int i = 0; i < 6; i += 1)
    printf("i%d ", i);
  printf("\\n");
  return 0;
}
"""

BAD = "int main() { return undeclared; }\n"


def make_service(**overrides) -> CompileService:
    kwargs = dict(
        workers=2,
        deadline_s=15.0,
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.05
        ),
        quarantine_dir=None,
    )
    kwargs.update(overrides)
    return CompileService(ServiceConfig(**kwargs))


class TestRequestTracing:
    def test_single_request_one_trace_two_processes(self, tmp_path):
        """The acceptance criterion: one traced request produces ONE
        Chrome-JSON covering parent-side orchestration AND worker-side
        pipeline stages, with real pids from at least two OS processes
        and correct parent/child nesting throughout."""
        trace_dir = str(tmp_path / "traces")
        with make_service(
            trace_requests=True, trace_dir=trace_dir
        ) as svc:
            (response,) = svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
        assert response.status == STATUS_OK
        assert response.trace_id

        files = os.listdir(trace_dir)
        assert len(files) == 1  # one request -> one trace file
        data = json.load(open(os.path.join(trace_dir, files[0])))
        assert data["trace_id"] == response.trace_id

        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in xs}
        assert os.getpid() in pids
        assert len(pids) >= 2  # parent + at least one worker process

        # the parent-side request anatomy is all there
        names = {e["name"] for e in xs}
        assert "ServiceRequest" in names
        assert "queue-wait" in names
        assert "breaker-decision" in names
        assert "attempt-0" in names
        # ... and so are worker-side pipeline stages
        worker_names = {
            e["name"] for e in xs if e["pid"] != os.getpid()
        }
        assert worker_names, "no worker spans shipped back"

        # nesting: every span's parent exists, children sit inside
        # their parents on the (aligned) timeline
        by_id = {e["args"]["span_id"]: e for e in xs}
        roots = 0
        for e in xs:
            parent_id = e["args"].get("parent_id")
            if parent_id is None:
                roots += 1
                continue
            assert parent_id in by_id, f"orphan span {e['name']}"
            parent = by_id[parent_id]
            assert parent["ts"] <= e["ts"] + 1e-6
            assert (
                e["ts"] + e["dur"]
                <= parent["ts"] + parent["dur"] + 1e-6
            )
        assert roots == 1  # exactly one root: the request itself

        # worker spans were clamped into their attempt's interval
        attempt = next(e for e in xs if e["name"] == "attempt-0")
        for e in xs:
            if e["pid"] == os.getpid():
                continue
            assert attempt["ts"] <= e["ts"] + 1e-6
            assert (
                e["ts"] + e["dur"]
                <= attempt["ts"] + attempt["dur"] + 1e-6
            )

    def test_untraced_requests_write_nothing(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        with make_service(trace_dir=None) as svc:
            (response,) = svc.process_batch(
                [CompileRequest(source=HELLO)]
            )
        assert response.status == STATUS_OK
        assert response.trace_id is None
        assert not os.path.exists(trace_dir)


class TestWorkerStatsAggregation:
    def test_failed_requests_still_report_worker_stats(self):
        """Regression: worker-side statistics were only merged on
        success, so failed attempts' parse/sema work silently vanished
        from the parent's registry."""
        before = STATS.snapshot()
        with make_service(
            retry=RetryPolicy(max_attempts=1)
        ) as svc:
            (response,) = svc.process_batch(
                [CompileRequest(source=BAD)]
            )
        assert not response.ok
        delta = STATS.delta_since(before)
        assert delta.get("parser.external-decls-parsed", 0) > 0
        assert delta.get("lexer.raw-tokens", 0) > 0

    def test_worker_attempt_metrics_cross_the_boundary(self):
        with make_service() as svc:
            svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
            snap = svc.metrics.snapshot()
        rows = snap["worker_attempt_duration_seconds"]["series"]
        assert sum(r["count"] for r in rows) >= 1
        assert all(r["sum"] > 0 for r in rows)


class TestMetricsAccounting:
    def test_requests_in_equals_terminal_statuses_mixed_batch(self):
        """A mixed batch — successes, compile errors, worker kills,
        poison inputs — must balance: every admitted request shows up
        in exactly one terminal-status counter and exactly once in the
        latency histogram."""
        batch = []
        for i in range(12):
            if i % 4 == 1:
                batch.append(CompileRequest(source=BAD))
            elif i % 4 == 2:
                batch.append(
                    CompileRequest(
                        source=HELLO + f"// kill {i}\n",
                        action="run",
                        inject_faults=("service-worker-exit",),
                        fault_attempts=1,
                    )
                )
            elif i % 4 == 3:
                batch.append(
                    CompileRequest(
                        source=HELLO + f"// poison {i}\n",
                        inject_faults=("service-worker",),
                        fault_attempts=-1,
                    )
                )
            else:
                batch.append(
                    CompileRequest(source=HELLO + f"// ok {i}\n")
                )
        with make_service(breaker_threshold=3) as svc:
            responses = svc.process_batch(batch)
            snap = svc.metrics.snapshot()
        assert all(r is not None and r.status for r in responses)

        requests_in = snap["service_requests_total"]["series"][0][
            "value"
        ]
        terminal = {
            row["labels"]["status"]: row["value"]
            for row in snap["service_responses_total"]["series"]
        }
        assert requests_in == len(batch)
        assert sum(terminal.values()) == requests_in
        observed = sum(
            row["count"]
            for row in snap["service_request_duration_seconds"][
                "series"
            ]
        )
        assert observed == requests_in
        # and the python-level statuses agree with the counters
        got = {}
        for r in responses:
            got[r.status] = got.get(r.status, 0) + 1
        assert got == terminal


class TestEventLogCorrelation:
    def test_events_share_the_response_trace_id(self, tmp_path):
        stream = io.StringIO()
        log = EventLog(stream=stream)
        with make_service(
            trace_requests=True, event_log=log
        ) as svc:
            (response,) = svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
        events = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
        ]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "submit"
        assert kinds[-1] == "response"
        assert "dispatch" in kinds and "attempt-complete" in kinds
        # every event of this request carries the same trace id
        assert {e.get("trace_id") for e in events} == {
            response.trace_id
        }
        assert events[-1]["status"] == STATUS_OK

    def test_serve_cli_writes_all_telemetry_files(self, tmp_path):
        from repro.driver import serve

        src = tmp_path / "hello.c"
        src.write_text(HELLO)
        trace_dir = tmp_path / "traces"
        metrics_json = tmp_path / "metrics.json"
        metrics_prom = tmp_path / "metrics.prom"
        events_path = tmp_path / "events.jsonl"
        code = serve.main(
            [
                "--workers",
                "1",
                f"-ftrace-requests={trace_dir}",
                "--metrics-json",
                str(metrics_json),
                "--metrics-prom",
                str(metrics_prom),
                "--log-jsonl",
                str(events_path),
                str(src),
            ]
        )
        assert code == 0
        assert len(os.listdir(trace_dir)) == 1
        snap = json.loads(metrics_json.read_text())
        assert "service_request_duration_seconds" in snap
        prom = metrics_prom.read_text()
        assert "# TYPE service_requests_total counter" in prom
        records = read_jsonl(str(events_path))
        assert records[0]["event"] == "submit"
        assert records[-1]["event"] == "response"
