"""Paper §4: loop fusion over a *sequence* of loops (`#pragma omp fuse`,
OpenMP 6.0) — "loop fusion and fission that handle sequences of loops in
addition to loop nests"."""

import pytest

from repro.astlib import omp
from repro.pipeline import CompilationError

from tests.conftest import compile_c, run_c


class TestFuseSemantics:
    def test_equal_trip_counts(self):
        src = r"""
        int main(void) {
          int a[8]; int b[8];
          #pragma omp fuse
          {
            for (int i = 0; i < 8; i += 1) a[i] = i;
            for (int j = 0; j < 8; j += 1) b[j] = j * j;
          }
          int s = 0;
          for (int k = 0; k < 8; k += 1) s += a[k] + b[k];
          printf("%d\n", s);
          return 0;
        }
        """
        expected = sum(i + i * i for i in range(8))
        assert int(run_c(src).stdout) == expected

    def test_unequal_trip_counts_guarded(self):
        """The generated loop runs max(tc) iterations; shorter bodies are
        guarded by their own trip count."""
        src = r"""
        int main(void) {
          int hits_a = 0; int hits_b = 0;
          #pragma omp fuse
          {
            for (int i = 0; i < 10; i += 1) hits_a += 1;
            for (int j = 0; j < 3; j += 1) hits_b += 1;
          }
          printf("%d %d\n", hits_a, hits_b);
          return 0;
        }
        """
        assert run_c(src).stdout == "10 3\n"

    def test_interleaved_execution_order(self):
        """Fusion interleaves the bodies iteration by iteration."""
        src = r"""
        int main(void) {
          #pragma omp fuse
          {
            for (int i = 0; i < 3; i += 1) printf("a%d ", i);
            for (int j = 0; j < 3; j += 1) printf("b%d ", j);
          }
          printf("\n");
          return 0;
        }
        """
        assert run_c(src).stdout.split() == [
            "a0", "b0", "a1", "b1", "a2", "b2"
        ]

    def test_three_loops(self):
        src = r"""
        int main(void) {
          int s = 0;
          #pragma omp fuse
          {
            for (int i = 0; i < 4; i += 1) s += 1;
            for (int j = 0; j < 5; j += 1) s += 10;
            for (int k = 0; k < 2; k += 1) s += 100;
          }
          printf("%d\n", s);
          return 0;
        }
        """
        assert int(run_c(src).stdout) == 4 + 50 + 200

    def test_different_iteration_variable_types(self):
        src = r"""
        int main(void) {
          long total = 0;
          #pragma omp fuse
          {
            for (long i = 0; i < 6; i += 2) total += i;
            for (int j = 10; j > 4; j -= 1) total += j;
          }
          printf("%d\n", (int)total);
          return 0;
        }
        """
        expected = sum(range(0, 6, 2)) + sum(range(10, 4, -1))
        assert int(run_c(src).stdout) == expected

    def test_parallel_for_consumes_fused_loop(self):
        """The fused loop is a generated canonical loop; a worksharing
        directive distributes its iterations."""
        src = r"""
        int main(void) {
          double x[16]; double sx = 0.0; double sy = 0.0;
          #pragma omp parallel for reduction(+: sx) reduction(+: sy)
          #pragma omp fuse
          {
            for (int i = 0; i < 16; i += 1) { x[i] = i * 0.5; sx += x[i]; }
            for (int j = 0; j < 12; j += 1) { sy += j * 2.0; }
          }
          printf("%g %g\n", sx, sy);
          return 0;
        }
        """
        result = run_c(src)
        sx, sy = result.stdout.split()
        assert float(sx) == sum(i * 0.5 for i in range(16))
        assert float(sy) == sum(j * 2.0 for j in range(12))


class TestFuseDiagnostics:
    def test_requires_compound(self):
        src = r"""
        int main(void) {
          #pragma omp fuse
          for (int i = 0; i < 4; i += 1) ;
          return 0;
        }
        """
        with pytest.raises(CompilationError) as err:
            run_c(src)
        assert "compound statement" in str(err.value)

    def test_requires_two_loops(self):
        src = r"""
        int main(void) {
          #pragma omp fuse
          { for (int i = 0; i < 4; i += 1) ; }
          return 0;
        }
        """
        with pytest.raises(CompilationError) as err:
            run_c(src)
        assert "at least two loops" in str(err.value)

    def test_non_loop_member_rejected(self):
        src = r"""
        int main(void) {
          int x = 0;
          #pragma omp fuse
          {
            for (int i = 0; i < 4; i += 1) ;
            x += 1;
          }
          return 0;
        }
        """
        with pytest.raises(CompilationError) as err:
            run_c(src)
        assert "canonical for loop" in str(err.value)

    def test_irbuilder_mode_matches_shadow(self):
        """OpenMPIRBuilder.fuse_loops mirrors the shadow semantics:
        interleaved bodies, shorter loops guarded by their trip count."""
        src = r"""
        int main(void) {
          int hits_b = 0;
          #pragma omp fuse
          {
            for (int i = 0; i < 5; i += 1) printf("a%d ", i);
            for (int j = 0; j < 3; j += 1) hits_b += 1;
          }
          printf("| %d\n", hits_b);
          return 0;
        }
        """
        shadow = run_c(src).stdout
        irb = run_c(src, enable_irbuilder=True).stdout
        assert shadow == irb == "a0 a1 a2 a3 a4 | 3\n"


class TestFuseAST:
    def test_directive_class_and_shadow(self):
        src = r"""
        void f(void) {
          #pragma omp fuse
          {
            for (int i = 0; i < 4; i += 1) ;
            for (int j = 0; j < 4; j += 1) ;
          }
        }
        """
        result = compile_c(src, syntax_only=True)
        directive = result.function("f").body.statements[0]
        assert isinstance(directive, omp.OMPFuseDirective)
        assert isinstance(
            directive, omp.OMPLoopTransformationDirective
        )
        transformed = directive.get_transformed_stmt()
        assert transformed is not None
        from repro.astlib.dump import dump_ast

        shadow = dump_ast(transformed)
        assert "fused.iv" in shadow
        # Two guarded bodies.
        assert shadow.count("IfStmt") == 2
