"""End-to-end program zoo: realistic C programs through the full stack.

Each test compiles, (optionally) optimizes, and executes a small but
non-trivial program, checking output against a Python reference.  These
exercise codegen paths the directive-focused tests don't: recursion,
function pointers, structs by pointer, switch, strings, floating point,
and OpenMP used the way application code uses it.
"""

import pytest

from tests.conftest import run_both, run_c


class TestSerialAlgorithms:
    @pytest.mark.parametrize("optimize", [False, True])
    def test_insertion_sort(self, optimize):
        src = r"""
        int main(void) {
          int a[10] = {9, 3, 7, 1, 8, 2, 6, 0, 5, 4};
          for (int i = 1; i < 10; i += 1) {
            int key = a[i];
            int j = i - 1;
            while (j >= 0 && a[j] > key) {
              a[j + 1] = a[j];
              j -= 1;
            }
            a[j + 1] = key;
          }
          for (int i = 0; i < 10; i += 1) printf("%d", a[i]);
          printf("\n");
          return 0;
        }
        """
        assert run_c(src, optimize=optimize).stdout == "0123456789\n"

    def test_sieve_of_eratosthenes(self):
        src = r"""
        int main(void) {
          int is_composite[50];
          memset(is_composite, 0, 50 * sizeof(int));
          for (int p = 2; p < 50; p += 1) {
            if (is_composite[p]) continue;
            printf("%d ", p);
            for (int m = p * p; m < 50; m += p)
              is_composite[m] = 1;
          }
          printf("\n");
          return 0;
        }
        """
        primes = [
            p
            for p in range(2, 50)
            if all(p % d for d in range(2, p))
        ]
        assert run_c(src).stdout.split() == [str(p) for p in primes]

    def test_recursive_gcd_and_ackermann_ish(self):
        src = r"""
        int gcd(int a, int b) {
          if (b == 0) return a;
          return gcd(b, a % b);
        }
        int main(void) {
          printf("%d %d %d\n", gcd(48, 36), gcd(17, 5), gcd(0, 9));
          return 0;
        }
        """
        assert run_c(src).stdout == "12 1 9\n"

    def test_function_pointer_dispatch(self):
        src = r"""
        int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        int apply(int (*op)(int, int), int a, int b) {
          return op(a, b);
        }
        int main(void) {
          int (*table[2])(int, int);
          table[0] = add;
          table[1] = mul;
          printf("%d %d %d\n",
                 apply(add, 3, 4),
                 apply(table[1], 3, 4),
                 table[0](10, 20));
          return 0;
        }
        """
        assert run_c(src, openmp=False).stdout == "7 12 30\n"

    def test_struct_linked_computation(self):
        src = r"""
        struct vec { double x; double y; double z; };
        double dot(struct vec *a, struct vec *b) {
          return a->x * b->x + a->y * b->y + a->z * b->z;
        }
        void scale(struct vec *v, double s) {
          v->x *= s; v->y *= s; v->z *= s;
        }
        int main(void) {
          struct vec a; struct vec b;
          a.x = 1.0; a.y = 2.0; a.z = 3.0;
          b.x = 4.0; b.y = 5.0; b.z = 6.0;
          scale(&a, 2.0);
          printf("%g\n", dot(&a, &b));
          return 0;
        }
        """
        assert run_c(src, openmp=False).stdout == "64\n"

    def test_string_reversal(self):
        src = r"""
        int main(void) {
          char buf[16];
          const char *src = "abcdefg";
          int n = 0;
          while (src[n] != '\0') n += 1;
          for (int i = 0; i < n; i += 1)
            buf[i] = src[n - 1 - i];
          buf[n] = '\0';
          printf("%s\n", buf);
          return 0;
        }
        """
        assert run_c(src, openmp=False).stdout == "gfedcba\n"

    def test_switch_state_machine(self):
        src = r"""
        int main(void) {
          /* count digits/letters/others in a string via switch */
          const char *text = "a1b2;c3!";
          int digits = 0; int letters = 0; int others = 0;
          for (int i = 0; text[i] != '\0'; i += 1) {
            int c = text[i];
            int kind;
            if (c >= '0' && c <= '9') kind = 0;
            else if (c >= 'a' && c <= 'z') kind = 1;
            else kind = 2;
            switch (kind) {
              case 0: digits += 1; break;
              case 1: letters += 1; break;
              default: others += 1; break;
            }
          }
          printf("%d %d %d\n", digits, letters, others);
          return 0;
        }
        """
        assert run_c(src, openmp=False).stdout == "3 3 2\n"

    def test_newton_sqrt(self):
        src = r"""
        int main(void) {
          double x = 2.0;
          double guess = 1.0;
          for (int it = 0; it < 20; it += 1)
            guess = 0.5 * (guess + x / guess);
          double err = guess - sqrt(2.0);
          if (err < 0.0) err = -err;
          printf("%d\n", err < 1e-9 ? 1 : 0);
          return 0;
        }
        """
        assert run_c(src, openmp=False).stdout == "1\n"

    def test_do_while_and_goto_free_collatz(self):
        src = r"""
        int main(void) {
          int n = 27;
          int steps = 0;
          do {
            if (n % 2 == 0) n /= 2;
            else n = 3 * n + 1;
            steps += 1;
          } while (n != 1);
          printf("%d\n", steps);
          return 0;
        }
        """
        assert run_c(src, openmp=False).stdout == "111\n"


class TestParallelApplications:
    def test_parallel_matmul(self):
        n = 8
        src = rf"""
        int main(void) {{
          double a[{n*n}]; double b[{n*n}]; double c[{n*n}];
          for (int k = 0; k < {n*n}; k += 1) {{
            a[k] = (double)(k % 5);
            b[k] = (double)(k % 3);
            c[k] = 0.0;
          }}
          #pragma omp parallel for collapse(2)
          for (int i = 0; i < {n}; i += 1)
            for (int j = 0; j < {n}; j += 1) {{
              double sum = 0.0;
              for (int k = 0; k < {n}; k += 1)
                sum += a[i * {n} + k] * b[k * {n} + j];
              c[i * {n} + j] = sum;
            }}
          double checksum = 0.0;
          for (int k = 0; k < {n*n}; k += 1)
            checksum += c[k] * (double)(k % 7);
          printf("%g\n", checksum);
          return 0;
        }}
        """
        # Python reference
        a = [k % 5 for k in range(n * n)]
        b = [k % 3 for k in range(n * n)]
        c = [
            sum(a[i * n + k] * b[k * n + j] for k in range(n))
            for i in range(n)
            for j in range(n)
        ]
        expected = sum(v * (k % 7) for k, v in enumerate(c))
        legacy, irb = run_both(src)
        assert float(legacy.stdout) == pytest.approx(expected)

    def test_parallel_histogram_with_critical(self):
        src = r"""
        int main(void) {
          int bins[4] = {0, 0, 0, 0};
          #pragma omp parallel for
          for (int i = 0; i < 64; i += 1) {
            int b = (i * 7) % 4;
            #pragma omp critical
            { bins[b] += 1; }
          }
          printf("%d %d %d %d\n", bins[0], bins[1], bins[2], bins[3]);
          return 0;
        }
        """
        from collections import Counter

        counts = Counter((i * 7) % 4 for i in range(64))
        legacy, _ = run_both(src)
        assert [int(x) for x in legacy.stdout.split()] == [
            counts[b] for b in range(4)
        ]

    def test_parallel_pi_estimate(self):
        src = r"""
        int main(void) {
          double pi = 0.0;
          int n = 5000;
          #pragma omp parallel for reduction(+: pi)
          for (int i = 0; i < n; i += 1) {
            double x = ((double)i + 0.5) / (double)n;
            pi += 4.0 / (1.0 + x * x);
          }
          pi = pi / (double)n;
          printf("%.4f\n", pi);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "3.1416\n"

    def test_tiled_parallel_transpose_matches_serial(self):
        src_tmpl = r"""
        int main(void) {
          int a[64]; int b[64];
          for (int k = 0; k < 64; k += 1) { a[k] = k * 3 + 1; b[k] = 0; }
          %s
          for (int i = 0; i < 8; i += 1)
            for (int j = 0; j < 8; j += 1)
              b[j * 8 + i] = a[i * 8 + j];
          int checksum = 0;
          for (int k = 0; k < 64; k += 1) checksum += b[k] * (k + 1);
          printf("%%d\n", checksum);
          return 0;
        }
        """
        serial = run_c(src_tmpl % "")
        tiled = run_c(
            src_tmpl
            % "#pragma omp parallel for\n#pragma omp tile sizes(4, 4)"
        )
        assert serial.stdout == tiled.stdout

    def test_unrolled_parallel_daxpy(self):
        src = r"""
        int main(void) {
          double x[100]; double y[100];
          for (int k = 0; k < 100; k += 1) {
            x[k] = (double)k;
            y[k] = (double)(100 - k);
          }
          #pragma omp parallel for
          #pragma omp unroll partial(4)
          for (int i = 0; i < 100; i += 1)
            y[i] = y[i] + 2.5 * x[i];
          double sum = 0.0;
          for (int k = 0; k < 100; k += 1) sum += y[k];
          printf("%g\n", sum);
          return 0;
        }
        """
        expected = sum((100 - k) + 2.5 * k for k in range(100))
        legacy, irb = run_both(src)
        assert float(legacy.stdout) == pytest.approx(expected)

    def test_stencil_with_barrier_phases(self):
        src = r"""
        int main(void) {
          double cur[32]; double nxt[32];
          for (int k = 0; k < 32; k += 1) cur[k] = (k == 16) ? 100.0 : 0.0;
          #pragma omp parallel num_threads(4)
          {
            for (int step = 0; step < 3; step += 1) {
              #pragma omp for
              for (int i = 1; i < 31; i += 1)
                nxt[i] = 0.5 * cur[i]
                       + 0.25 * (cur[i - 1] + cur[i + 1]);
              #pragma omp for
              for (int i = 1; i < 31; i += 1)
                cur[i] = nxt[i];
            }
          }
          double total = 0.0;
          for (int k = 1; k < 31; k += 1) total += cur[k];
          printf("%g\n", total);
          return 0;
        }
        """
        # Python reference
        cur = [100.0 if k == 16 else 0.0 for k in range(32)]
        for _ in range(3):
            nxt = list(cur)
            for i in range(1, 31):
                nxt[i] = 0.5 * cur[i] + 0.25 * (cur[i - 1] + cur[i + 1])
            cur = nxt
        expected = sum(cur[1:31])
        legacy, _ = run_both(src)
        assert float(legacy.stdout) == pytest.approx(expected)

    def test_reverse_time_loop_application(self):
        """Suffix sums need the reverse iteration order (OpenMP 6.0
        `reverse` used for a real dependency pattern, serially)."""
        src = r"""
        int main(void) {
          int a[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
          int suffix = 0;
          #pragma omp reverse
          for (int i = 0; i < 10; i += 1) {
            suffix += a[i];
            a[i] = suffix;
          }
          for (int k = 0; k < 10; k += 1) printf("%d ", a[k]);
          printf("\n");
          return 0;
        }
        """
        data = list(range(1, 11))
        suffix = 0
        out = [0] * 10
        for i in reversed(range(10)):
            suffix += data[i]
            out[i] = suffix
        legacy, _ = run_both(src)
        assert legacy.stdout.split() == [str(v) for v in out]
