"""Service lifecycle: graceful drain on SIGTERM, durable state across
restarts, worker recycling, and heartbeat recovery."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.instrument.stats import STATS
from repro.service import (
    STATUS_CIRCUIT_OPEN,
    STATUS_RESOURCE_EXHAUSTED,
    CompileRequest,
    CompileService,
    RetryPolicy,
    ServiceConfig,
    load_state,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

SOURCE = """\
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp tile sizes(2)
  for (int i = 0; i < 8; i += 1)
    sum += i;
  printf("sum %d\\n", sum);
  return 0;
}
"""


def _request(index: int, **kwargs) -> CompileRequest:
    kwargs.setdefault("action", "compile")
    return CompileRequest(
        source=SOURCE.replace("sum %d", f"sum[{index}] %d"),
        filename=f"life-{index}.c",
        deadline_s=10.0,
        **kwargs,
    )


def _serve(argv, tmp_path, **popen_kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.setdefault("MINICLANG_QUARANTINE_DIR", str(tmp_path / "q"))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.driver.serve", *argv],
        env=env,
        cwd=str(tmp_path),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **popen_kwargs,
    )


# ----------------------------------------------------------------------
# SIGTERM -> drain -> snapshot -> exit 0
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        # Each request interprets a ~2s loop: 20 of them on one worker
        # keep the service loaded far past the signal.
        slow = """\
int printf(const char *fmt, ...);
int main() {{
  int sum = 0;
  for (int i = 0; i < 40000; i += 1)
    sum += i * {index};
  printf("sum %d\\n", sum);
  return 0;
}}
"""
        sources = []
        for i in range(20):
            path = tmp_path / f"in-{i}.c"
            path.write_text(slow.format(index=i), encoding="utf-8")
            sources.append(str(path))
        state_dir = tmp_path / "state"
        proc = _serve(
            [
                *sources,
                "--run",
                "--workers",
                "1",
                "--state-dir",
                str(state_dir),
                "--drain-timeout",
                "1.0",
            ],
            tmp_path,
        )
        time.sleep(4.0)  # let the batch get going
        proc.send_signal(signal.SIGTERM)
        try:
            _, stderr = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
        assert proc.returncode == 0, stderr
        assert "SIGTERM received: draining" in stderr
        assert "drained:" in stderr
        assert "exiting 0" in stderr
        # Shed requests got a structured answer, not silence.
        assert (
            "resource-exhausted" in stderr or "shed" in stderr
        ), stderr
        # The state snapshot survived the stop.
        assert load_state(str(state_dir)) is not None

    def test_drain_mode_rejects_new_admissions(self):
        before = STATS.snapshot()
        with CompileService(
            ServiceConfig(workers=1, quarantine_dir=None)
        ) as service:
            service.begin_drain(5.0)
            response = service.submit(_request(0))
            assert response is not None
            assert response.status == STATUS_RESOURCE_EXHAUSTED
            assert "draining" in response.detail
        delta = STATS.delta_since(before)
        assert delta.get("service.drain-rejected", 0) == 1

    def test_drain_deadline_sheds_inflight(self):
        clock = time.monotonic
        with CompileService(
            ServiceConfig(
                workers=1,
                quarantine_dir=None,
                deadline_s=30.0,
                retry=RetryPolicy(max_attempts=1),
            )
        ) as service:
            # A worker hang outlives any sane drain deadline.
            service.submit(
                _request(
                    0,
                    inject_faults=("service-worker-hang",),
                    fault_attempts=-1,
                )
            )
            started = clock()
            service.begin_drain(0.3)
            service.drain()
            assert clock() - started < 10.0
            responses = list(service.responses.values())
            assert len(responses) == 1
            assert (
                responses[0].status == STATUS_RESOURCE_EXHAUSTED
            )
            assert "drain deadline" in responses[0].detail


# ----------------------------------------------------------------------
# Durable state across a restart
# ----------------------------------------------------------------------
class TestStateAcrossRestart:
    def test_quarantine_survives_restart(self, tmp_path):
        state_dir = str(tmp_path / "state")
        poison = _request(
            7,
            inject_faults=("service-worker",),
            fault_attempts=-1,
        )

        def config() -> ServiceConfig:
            return ServiceConfig(
                workers=1,
                quarantine_dir=str(tmp_path / "quarantine"),
                state_dir=state_dir,
                breaker_threshold=2,
                breaker_cooldown_s=600.0,
                retry=RetryPolicy(
                    max_attempts=2, base_delay_s=0.01, max_delay_s=0.02
                ),
            )

        with CompileService(config()) as first:
            [response] = first.process_batch([poison])
            assert response.status == STATUS_CIRCUIT_OPEN
            fingerprint = poison.fingerprint()
            assert fingerprint in first.quarantined

        saved = load_state(state_dir)
        assert saved is not None
        assert fingerprint in saved.quarantined
        assert saved.breakers[fingerprint]["state"] == "open"

        before = STATS.snapshot()
        with CompileService(config()) as second:
            assert fingerprint in second.quarantined
            resubmit = second.submit(poison)
            second.drain()
            assert resubmit.status == STATUS_CIRCUIT_OPEN
            # Rejected at admission: no worker attempt was re-burned.
            assert resubmit.attempts == 0
        delta = STATS.delta_since(before)
        assert delta.get("service.quarantine-restored", 0) == 1
        assert delta.get("service.state-restores", 0) == 1

    def test_corrupt_state_degrades_to_fresh_start(self, tmp_path):
        state_dir = tmp_path / "state"
        state_dir.mkdir()
        (state_dir / "state.json").write_text("garbage")
        with CompileService(
            ServiceConfig(
                workers=1,
                quarantine_dir=None,
                state_dir=str(state_dir),
            )
        ) as service:
            [response] = service.process_batch([_request(1)])
            assert response.ok
        assert (state_dir / "state.json.corrupt").exists()


# ----------------------------------------------------------------------
# Worker recycling and heartbeat
# ----------------------------------------------------------------------
class TestWorkerLifecycle:
    def test_max_requests_recycles_without_loss(self):
        before = STATS.snapshot()
        with CompileService(
            ServiceConfig(
                workers=1,
                quarantine_dir=None,
                worker_max_requests=2,
            )
        ) as service:
            responses = service.process_batch(
                [_request(i) for i in range(6)]
            )
        assert len(responses) == 6
        assert all(r.ok for r in responses)
        delta = STATS.delta_since(before)
        assert delta.get("service.worker-recycled", 0) >= 1

    def test_heartbeat_replaces_dead_idle_worker(self):
        before = STATS.snapshot()
        with CompileService(
            ServiceConfig(
                workers=1,
                quarantine_dir=None,
                heartbeat_interval_s=0.01,
            )
        ) as service:
            [first] = service.process_batch([_request(0)])
            assert first.ok
            worker = service.pool.workers[0]
            worker.proc.kill()
            worker.proc.join(timeout=10)
            # Force the next health check and run it.
            service._last_heartbeat_at = -1e9
            service._check_worker_health(time.monotonic())
            assert service.pool.workers[0].proc.is_alive()
            [second] = service.process_batch([_request(1)])
            assert second.ok
        delta = STATS.delta_since(before)
        assert delta.get("service.worker-heartbeat-restarts", 0) == 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-v"]))
