"""Engine-differential integration suite.

Every program in the standing corpus (``examples/`` plus the
``tests/conformance/exec/`` cases) runs under both execution engines —
the reference tree-walking interpreter and the closure-compiled engine
— asserting byte-identical stdout, equal exit codes and equal execution
profiles (total and per-thread retired instructions, barrier/fork
accounting, detailed per-block counts).  Guardrail parity is asserted
separately: fuel exhaustion, wall-clock timeout (exit code 124 through
the CLI) and deadlock detection must classify, count and render
identically under ``-fexec=closures``.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.driver.cli import main as cli_main
from repro.driver.exitcodes import EXIT_TIMEOUT, EXIT_USER_ERROR
from repro.exec import create_interpreter, profile_fingerprint
from repro.interp.interpreter import DeadlockError, ExecutionTimeout
from repro.pipeline import run_source

pytestmark = pytest.mark.exec_differential

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

CORPUS = sorted(
    glob.glob(os.path.join(REPO_ROOT, "examples", "*.c"))
) + sorted(
    glob.glob(
        os.path.join(REPO_ROOT, "tests", "conformance", "exec", "*.c")
    )
)


def run_both_engines(source: str, **kwargs):
    """Run under both engines; assert the full parity contract."""
    kwargs.setdefault("num_threads", 3)
    kwargs.setdefault("profile_detail", True)
    interp = run_source(source, exec_engine="interp", **kwargs)
    closures = run_source(source, exec_engine="closures", **kwargs)
    assert closures.stdout == interp.stdout, (
        "stdout diverged between engines:\n"
        f"interp:   {interp.stdout!r}\n"
        f"closures: {closures.stdout!r}"
    )
    assert closures.exit_code == interp.exit_code
    assert closures.instruction_count == interp.instruction_count
    fp_interp = profile_fingerprint(interp.interpreter.profile)
    fp_closures = profile_fingerprint(closures.interpreter.profile)
    assert fp_closures == fp_interp, (
        "execution profiles diverged between engines"
    )
    return interp, closures


class TestCorpusParity:
    @pytest.mark.parametrize(
        "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
    )
    @pytest.mark.parametrize("optimize", [False, True], ids=["O0", "O1"])
    def test_program_parity(self, path, optimize):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        run_both_engines(source, optimize=optimize)

    def test_corpus_nonempty(self):
        # the parametrization above silently collects nothing if the
        # corpus moves; pin the floor
        assert len(CORPUS) >= 10


class TestRepresentationMatrix:
    """Both engines across both OpenMP representations."""

    SOURCE = r"""
    int main() {
      int sum = 0;
      #pragma omp parallel for reduction(+: sum) schedule(dynamic, 2)
      for (int i = 0; i < 13; i += 1)
        sum += i * 2 + 1;
      printf("sum=%d\n", sum);
      return 0;
    }
    """

    @pytest.mark.parametrize("irbuilder", [False, True])
    @pytest.mark.parametrize("optimize", [False, True])
    def test_matrix(self, irbuilder, optimize):
        interp, _ = run_both_engines(
            self.SOURCE,
            enable_irbuilder=irbuilder,
            optimize=optimize,
        )
        assert interp.stdout == "sum=169\n"


class TestGuardrailParity:
    HANG = "int main() { while (1) {} return 0; }"

    def test_fuel_exhaustion_identical(self):
        outcomes = {}
        for engine in ("interp", "closures"):
            with pytest.raises(ExecutionTimeout) as exc_info:
                run_source(self.HANG, fuel=5000, exec_engine=engine)
            snap = exc_info.value.snapshot
            outcomes[engine] = (
                str(exc_info.value),
                snap.total_instructions,
                len(snap.threads),
                snap.render(),
            )
        assert outcomes["closures"] == outcomes["interp"]

    def test_fuel_boundary_identical(self):
        """The exact fuel value at which a program flips from timeout
        to success must be the same for both engines (shared
        accounting: one unit per retired instruction)."""
        source = "int main() { return 7; }"
        for fuel in range(1, 32):
            results = []
            for engine in ("interp", "closures"):
                try:
                    r = run_source(
                        source, fuel=fuel, exec_engine=engine
                    )
                    results.append(("ok", r.exit_code))
                except ExecutionTimeout:
                    results.append(("timeout", None))
            assert results[0] == results[1], (
                f"fuel accounting diverged at fuel={fuel}: {results}"
            )

    def test_cli_fuel_exit_124(self, tmp_path, capsys):
        path = tmp_path / "hang.c"
        path.write_text(self.HANG)
        for engine in ("interp", "closures"):
            code = cli_main(
                ["--run", f"-fexec={engine}", "--fuel", "5000", str(path)]
            )
            err = capsys.readouterr().err
            assert code == EXIT_TIMEOUT
            assert "Scheduler state at abort:" in err

    def test_deadlock_detection_identical(self):
        source = r"""
        int main() {
          #pragma omp parallel num_threads(2)
          {
            if (omp_get_thread_num() == 0) {
              #pragma omp barrier
            }
          }
          return 0;
        }
        """
        messages = {}
        for engine in ("interp", "closures"):
            with pytest.raises(DeadlockError) as exc_info:
                run_source(source, exec_engine=engine)
            messages[engine] = (
                str(exc_info.value),
                exc_info.value.snapshot.total_instructions,
            )
        assert messages["closures"] == messages["interp"]

    def test_cli_deadlock_exit_code(self, tmp_path, capsys):
        path = tmp_path / "deadlock.c"
        path.write_text(
            "int main() {\n"
            "  #pragma omp parallel num_threads(2)\n"
            "  {\n"
            "    if (omp_get_thread_num() == 0) {\n"
            "      #pragma omp barrier\n"
            "    }\n"
            "  }\n"
            "  return 0;\n"
            "}\n"
        )
        for engine in ("interp", "closures"):
            code = cli_main(["--run", f"-fexec={engine}", str(path)])
            capsys.readouterr()
            assert code == EXIT_USER_ERROR

    def test_guest_error_parity(self, exec_engine):
        """Runtime traps carry the same classification under either
        engine (parametrized by the shared conftest fixture)."""
        from repro.interp.interpreter import Trap

        source = "int main() { int x = 0; return 1 / x; }"
        with pytest.raises(Trap, match="division by zero"):
            run_source(source, exec_engine=exec_engine)

    def test_recursion_limit_parity(self, exec_engine):
        from repro.interp.interpreter import InterpreterError

        source = "int f(int n) { return f(n + 1); } int main() { return f(0); }"
        with pytest.raises(
            InterpreterError, match="guest call depth exceeded"
        ):
            run_source(source, exec_engine=exec_engine, max_call_depth=64)


class TestEngineInternals:
    """Closure-engine behaviours with no interpreter counterpart."""

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            run_source("int main() { return 0; }", exec_engine="jit")

    def test_cli_rejects_unknown_engine(self, tmp_path, capsys):
        path = tmp_path / "ok.c"
        path.write_text("int main() { return 0; }")
        with pytest.raises(SystemExit):
            cli_main(["--run", "-fexec=jit", str(path)])
        capsys.readouterr()

    def test_lazy_compilation(self):
        """Only functions the program actually calls are compiled."""
        from repro.pipeline import compile_source

        source = r"""
        int used(int x) { return x + 1; }
        int unused(int x) { return x - 1; }
        int main() { return used(41) - 42; }
        """
        result = compile_source(source)
        engine = create_interpreter(result.module, engine="closures")
        assert engine.run("main", []) == 0
        compiled = {
            code.fn.name for code in engine._code.values()
        }
        assert "used" in compiled and "main" in compiled
        assert "unused" not in compiled
