"""Integration tests for the resilient compile service.

Real worker processes, real compiles, deterministic chaos via
``-finject-fault`` specs armed per (request, attempt) — every failure
below is reproducible, no flaky sleeps.  Deadlines and backoff are kept
tiny so the whole file stays fast.
"""

from __future__ import annotations

import pytest

from repro.pipeline import run_source
from repro.service import (
    STATUS_CIRCUIT_OPEN,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_RESOURCE_EXHAUSTED,
    CompileRequest,
    CompileService,
    RetryPolicy,
    ServiceConfig,
)

HELLO = """\
int printf(const char *fmt, ...);
int main() {
  #pragma omp tile sizes(2)
  for (int i = 0; i < 6; i += 1)
    printf("i%d ", i);
  printf("\\n");
  return 0;
}
"""

BAD = "int main() { return undeclared; }\n"

TRANSFORMED = """\
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp tile sizes(3)
  for (int i = 0; i < 9; i += 1)
    sum += i;
  #pragma omp unroll partial(2)
  for (int j = 0; j < 4; j += 1)
    sum += j;
  printf("sum=%d\\n", sum);
  return 0;
}
"""


def make_service(**overrides) -> CompileService:
    kwargs = dict(
        workers=2,
        deadline_s=15.0,
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.05
        ),
        quarantine_dir=None,
    )
    kwargs.update(overrides)
    return CompileService(ServiceConfig(**kwargs))


class TestBasicServing:
    def test_run_and_compile_batch(self):
        with make_service() as svc:
            run, compile_ = svc.process_batch(
                [
                    CompileRequest(source=HELLO, action="run"),
                    CompileRequest(source=HELLO, action="compile"),
                ]
            )
        assert run.status == STATUS_OK
        assert run.output == "i0 i1 i2 i3 i4 i5 \n"
        assert run.exit_code == 0
        assert run.attempts == 1 and run.retries == 0
        assert compile_.status == STATUS_OK
        assert "define" in compile_.output
        assert compile_.mode_used == "shadow"

    def test_irbuilder_mode_served_natively(self):
        with make_service() as svc:
            [response] = svc.process_batch(
                [
                    CompileRequest(
                        source=HELLO, action="run", mode="irbuilder"
                    )
                ]
            )
        assert response.status == STATUS_OK
        assert response.mode_used == "irbuilder"
        assert not response.degraded

    def test_user_error_is_terminal_without_retry(self):
        with make_service() as svc:
            [response] = svc.process_batch(
                [CompileRequest(source=BAD, action="compile")]
            )
        assert response.status == STATUS_ERROR
        assert response.attempts == 1  # never retried
        assert "undeclared" in response.diagnostics

    def test_guest_exit_code_passes_through(self):
        with make_service() as svc:
            [response] = svc.process_batch(
                [
                    CompileRequest(
                        source="int main() { return 7; }\n",
                        action="run",
                    )
                ]
            )
        assert response.status == STATUS_OK
        assert response.exit_code == 7


class TestFaultRecovery:
    def test_worker_death_is_retried(self):
        with make_service() as svc:
            [response] = svc.process_batch(
                [
                    CompileRequest(
                        source=HELLO,
                        action="run",
                        inject_faults=("service-worker-exit",),
                        fault_attempts=1,
                    )
                ]
            )
        assert response.status == STATUS_OK
        assert response.output == "i0 i1 i2 i3 i4 i5 \n"
        assert response.attempts == 2
        assert response.retries == 1

    def test_hang_is_killed_at_deadline_and_retried(self):
        with make_service() as svc:
            [response] = svc.process_batch(
                [
                    CompileRequest(
                        source=HELLO,
                        action="run",
                        deadline_s=1.0,
                        inject_faults=("service-worker-hang",),
                        fault_attempts=1,
                    )
                ]
            )
        assert response.status == STATUS_OK
        assert response.attempts == 2

    def test_transient_ice_is_retried_on_same_mode(self):
        with make_service() as svc:
            [response] = svc.process_batch(
                [
                    CompileRequest(
                        source=HELLO,
                        action="run",
                        inject_faults=("service-worker",),
                        fault_attempts=1,
                    )
                ]
            )
        assert response.status == STATUS_OK
        assert response.mode_used == "shadow"  # no degradation needed
        assert not response.degraded
        assert response.attempts == 2

    def test_other_requests_survive_a_poison_neighbor(self):
        with make_service() as svc:
            responses = svc.process_batch(
                [
                    CompileRequest(source=HELLO, action="run"),
                    CompileRequest(
                        source=HELLO + "// poison\n",
                        action="run",
                        inject_faults=("service-worker-exit",),
                        fault_attempts=-1,
                    ),
                    CompileRequest(
                        source=HELLO + "// second\n", action="run"
                    ),
                ]
            )
        assert responses[0].status == STATUS_OK
        assert responses[1].status == STATUS_CIRCUIT_OPEN
        assert responses[2].status == STATUS_OK


class TestCircuitBreaker:
    def test_poison_trips_breaker_within_threshold(self, tmp_path):
        quarantine = str(tmp_path / "quarantine")
        with make_service(quarantine_dir=quarantine) as svc:
            poison = CompileRequest(
                source=HELLO,
                action="run",
                inject_faults=("service-worker",),
                fault_attempts=-1,
            )
            [response] = svc.process_batch([poison])
            assert response.status == STATUS_CIRCUIT_OPEN
            assert response.attempts <= svc.config.breaker_threshold
            assert response.reproducer_path is not None
            repro_dir = tmp_path / "quarantine"
            [entry] = list(repro_dir.iterdir())
            assert (entry / "repro.c").read_text() == HELLO
            assert (entry / "cmd").exists()

            # resubmission is rejected at admission, no workers burned
            rejection = svc.submit(
                CompileRequest(
                    source=HELLO,
                    action="run",
                    inject_faults=("service-worker",),
                    fault_attempts=-1,
                )
            )
            assert rejection is not None
            assert rejection.status == STATUS_CIRCUIT_OPEN
            assert rejection.attempts == 0

    def test_distinct_inputs_have_independent_breakers(self):
        with make_service() as svc:
            [poisoned] = svc.process_batch(
                [
                    CompileRequest(
                        source=HELLO,
                        action="run",
                        inject_faults=("service-worker",),
                        fault_attempts=-1,
                    )
                ]
            )
            assert poisoned.status == STATUS_CIRCUIT_OPEN
            # same source *without* the poison faults: different
            # fingerprint, healthy breaker
            [healthy] = svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
            assert healthy.status == STATUS_OK


class TestGracefulDegradation:
    def test_irbuilder_failure_degrades_to_shadow(self):
        """The paper's dual representation as fault tolerance: with the
        IRBuilder path deterministically broken, the service serves the
        same program from the shadow-AST path and the output matches a
        direct in-process shadow compile byte for byte."""
        with make_service() as svc:
            [response] = svc.process_batch(
                [
                    CompileRequest(
                        source=TRANSFORMED,
                        action="run",
                        mode="irbuilder",
                        inject_faults=("service-irbuilder",),
                        fault_attempts=-1,
                    )
                ]
            )
        assert response.status == STATUS_DEGRADED
        assert response.ok
        assert response.degraded
        assert response.mode_used == "shadow"
        direct = run_source(TRANSFORMED, enable_irbuilder=False)
        assert response.output == direct.stdout
        assert "degraded" in response.detail

    def test_shadow_failure_degrades_to_irbuilder(self):
        with make_service() as svc:
            [response] = svc.process_batch(
                [
                    CompileRequest(
                        source=TRANSFORMED,
                        action="run",
                        mode="shadow",
                        inject_faults=("service-shadow",),
                        fault_attempts=-1,
                    )
                ]
            )
        assert response.status == STATUS_DEGRADED
        assert response.mode_used == "irbuilder"
        direct = run_source(TRANSFORMED, enable_irbuilder=True)
        assert response.output == direct.stdout

    def test_no_degrade_flag_fails_hard(self):
        with make_service(allow_degraded=False) as svc:
            [response] = svc.process_batch(
                [
                    CompileRequest(
                        source=TRANSFORMED,
                        action="run",
                        mode="irbuilder",
                        inject_faults=("service-irbuilder",),
                        fault_attempts=-1,
                    )
                ]
            )
        # with no fallback the breaker quarantines the input instead
        assert response.status == STATUS_CIRCUIT_OPEN
        assert not response.degraded


class TestAdmissionControl:
    def test_overload_sheds_with_structured_response(self):
        with make_service(queue_capacity=2) as svc:
            requests = [
                CompileRequest(
                    source=HELLO + f"// v{i}\n", action="run"
                )
                for i in range(4)
            ]
            responses = svc.process_batch(requests)
        statuses = [r.status for r in responses]
        assert statuses[:2] == [STATUS_OK, STATUS_OK]
        assert statuses[2:] == [
            STATUS_RESOURCE_EXHAUSTED,
            STATUS_RESOURCE_EXHAUSTED,
        ]
        for shed in responses[2:]:
            assert shed.attempts == 0
            assert "capacity" in shed.detail


class TestHedging:
    def test_straggler_gets_hedged_and_request_still_resolves(self):
        """First attempt hangs; after hedge_delay a duplicate runs on
        the other worker and wins long before the straggler's
        deadline."""
        with make_service(hedge_delay_s=0.3) as svc:
            [response] = svc.process_batch(
                [
                    CompileRequest(
                        source=HELLO,
                        action="run",
                        deadline_s=10.0,
                        inject_faults=("service-worker-hang",),
                        fault_attempts=1,
                    )
                ]
            )
        assert response.status == STATUS_OK
        assert response.hedged
        assert response.attempts == 2
        assert response.retries == 0  # the hedge is not a retry
        assert response.duration_s < 10.0  # did not wait for deadline


class TestMiniChaos:
    def test_mixed_chaos_batch_zero_lost_requests(self, tmp_path):
        """A small in-test chaos batch: every request gets exactly one
        terminal response (the CI-scale batch lives in
        repro.service.chaos)."""
        from repro.service.chaos import main as chaos_main

        code = chaos_main(
            [
                "--count",
                "16",
                "--kill-every",
                "5",
                "--hang-every",
                "0",
                "--poison",
                "1",
                "--workers",
                "2",
                "--deadline",
                "10",
                "--quarantine-dir",
                str(tmp_path / "q"),
            ]
        )
        assert code == 0
