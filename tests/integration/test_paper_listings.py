"""E2/E4/E5/E8: the paper's AST listings, regenerated.

Each test compiles the exact source of a paper listing and checks the
structural properties its AST dump shows.
"""

import pytest

from repro.astlib import omp
from repro.astlib import stmts as s
from repro.astlib.dump import dump_ast

from tests.conftest import compile_c

# --- Paper Listing 3: #pragma omp parallel for schedule(static) -------
PARALLEL_FOR_SRC = """
void body(int i);
void f(void) {
  #pragma omp parallel for schedule(static)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
"""


class TestListing3ParallelForDump:
    @pytest.fixture(scope="class")
    def dump(self):
        result = compile_c(PARALLEL_FOR_SRC, syntax_only=True)
        return dump_ast(result.function("f").body.statements[0])

    def test_root_is_directive(self, dump):
        assert dump.splitlines()[0] == "OMPParallelForDirective"

    def test_schedule_clause_first_child(self, dump):
        assert dump.splitlines()[1] == "|-OMPScheduleClause static"

    def test_captured_stmt_wraps_code(self, dump):
        assert "`-CapturedStmt" in dump
        assert "CapturedDecl nothrow" in dump

    def test_forstmt_components(self, dump):
        assert "ForStmt" in dump
        assert "VarDecl used i 'int' cinit" in dump
        assert "IntegerLiteral 'int' 7" in dump
        assert "IntegerLiteral 'int' 17" in dump
        assert "CompoundAssignOperator 'int' '+='" in dump
        assert "CallExpr 'void'" in dump

    def test_implicit_params(self, dump):
        """The three implicit parameters of the outlined function."""
        assert (
            "ImplicitParamDecl implicit .global_tid. "
            "'const int *const __restrict'" in dump
        )
        assert (
            "ImplicitParamDecl implicit .bound_tid. "
            "'const int *const __restrict'" in dump
        )
        assert "ImplicitParamDecl implicit __context" in dump
        assert "(unnamed struct) *const __restrict" in dump

    def test_order_clauses_before_captured(self, dump):
        lines = dump.splitlines()
        clause_idx = next(
            i for i, l in enumerate(lines) if "OMPScheduleClause" in l
        )
        captured_idx = next(
            i for i, l in enumerate(lines) if "CapturedStmt" in l
        )
        assert clause_idx < captured_idx


# --- Paper Listing 5: composed unroll directives ------------------------
COMPOSED_SRC = """
void body(int i);
void f(void) {
  #pragma omp unroll full
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3)
    body(i);
}
"""


class TestListing5ComposedUnroll:
    @pytest.fixture(scope="class")
    def directive(self):
        result = compile_c(COMPOSED_SRC, syntax_only=True)
        return result.function("f").body.statements[0]

    def test_outer_is_unroll_with_full(self, directive):
        assert isinstance(directive, omp.OMPUnrollDirective)
        from repro.astlib import clauses as cl

        assert directive.has_clause(cl.OMPFullClause)

    def test_syntactic_child_is_inner_directive(self, directive):
        """The syntactic AST nests the directives (paper Listing 5) —
        the transformed code is shadow, not the visible child."""
        inner = directive.associated_stmt
        assert isinstance(inner, omp.OMPUnrollDirective)
        from repro.astlib import clauses as cl

        partial = inner.get_clause(cl.OMPPartialClause)
        assert partial is not None

    def test_inner_child_is_literal_for(self, directive):
        inner = directive.associated_stmt
        assert isinstance(inner.associated_stmt, s.ForStmt)

    def test_no_captured_stmt_in_transform_chain(self, directive):
        """Paper §2.1: 'the loop body code is not wrapped inside a
        CapturedStmt' for loop transformations."""
        dump = dump_ast(directive)
        assert "CapturedStmt" not in dump

    def test_dump_matches_paper_shape(self, directive):
        dump = dump_ast(directive)
        lines = dump.splitlines()
        assert lines[0] == "OMPUnrollDirective"
        assert lines[1] == "|-OMPFullClause"
        assert lines[2] == "`-OMPUnrollDirective"
        assert lines[3] == "  |-OMPPartialClause"
        assert "ConstantExpr 'int'" in dump
        assert "value: Int 2" in dump

    def test_inner_has_transformed_stmt(self, directive):
        inner = directive.associated_stmt
        assert inner.get_transformed_stmt() is not None

    def test_outer_full_has_no_transformed_stmt(self, directive):
        """A full unroll leaves no generated loop (paper §2.2: codegen
        emits it directly)."""
        assert directive.get_transformed_stmt() is None


# --- Paper Listing 6 ('transformedast'): shadow AST of partial unroll --
class TestListing6TransformedAST:
    @pytest.fixture(scope="class")
    def transformed(self):
        result = compile_c(COMPOSED_SRC, syntax_only=True)
        outer = result.function("f").body.statements[0]
        return outer.associated_stmt.get_transformed_stmt()

    def test_strip_mined_structure(self, transformed):
        assert isinstance(transformed, s.ForStmt)
        assert (
            transformed.init.single_decl.name == "unrolled.iv.i"
        )
        annotated = transformed.body
        assert isinstance(annotated, s.AttributedStmt)
        inner = annotated.sub_stmt
        assert isinstance(inner, s.ForStmt)
        assert inner.init.single_decl.name == "unroll_inner.iv.i"

    def test_loop_hint_attr(self, transformed):
        dump = dump_ast(transformed)
        assert "AttributedStmt" in dump
        assert (
            "LoopHintAttr Implicit loop UnrollCount Numeric" in dump
        )
        assert "IntegerLiteral 'int' 2" in dump

    def test_outer_increment_by_factor(self, transformed):
        from repro.astlib import exprs as e

        inc = transformed.inc
        assert isinstance(inc, e.CompoundAssignOperator)
        assert inc.rhs.ignore_implicit_casts().value == 2

    def test_shadow_hidden_from_normal_dump(self):
        result = compile_c(COMPOSED_SRC, syntax_only=True)
        outer = result.function("f").body.statements[0]
        normal = dump_ast(outer)
        shadow = dump_ast(outer, dump_shadow=True)
        assert "unrolled.iv.i" not in normal
        assert "unrolled.iv.i" in shadow


# --- Paper Listing 7: OMPCanonicalLoop ------------------------------------
CANONICAL_SRC = """
void body(int i);
void f(int N) {
  #pragma omp unroll partial(2)
  for (int i = 0; i < N; i += 1)
    body(i);
}
"""


class TestListing7OMPCanonicalLoop:
    @pytest.fixture(scope="class")
    def directive(self):
        result = compile_c(
            CANONICAL_SRC, syntax_only=True, enable_irbuilder=True
        )
        return result.function("f").body.statements[0]

    def test_wrapper_present(self, directive):
        assert isinstance(directive, omp.OMPUnrollDirective)
        wrapper = directive.associated_stmt
        assert isinstance(wrapper, omp.OMPCanonicalLoop)

    def test_four_children_in_paper_order(self, directive):
        wrapper = directive.associated_stmt
        children = list(wrapper.children())
        assert isinstance(children[0], s.ForStmt)
        assert isinstance(children[1], s.CapturedStmt)  # distance fn
        assert isinstance(children[2], s.CapturedStmt)  # loop value fn
        from repro.astlib import exprs as e

        assert isinstance(children[3], e.DeclRefExpr)
        assert children[3].decl.name == "i"

    def test_distance_fn_signature(self, directive):
        """[&](logical &Result) { Result = ...; } — one by-reference
        Result parameter of the unsigned logical type."""
        wrapper = directive.associated_stmt
        params = wrapper.distance_func.captured_decl.params
        assert [p.name for p in params] == ["Result"]
        assert params[0].type.spelling() == "unsigned int &"

    def test_value_fn_signature(self, directive):
        """[&,__begin](auto &Result, size_t __i)."""
        wrapper = directive.associated_stmt
        params = wrapper.loop_var_func.captured_decl.params
        assert [p.name for p in params] == ["Result", "__i"]
        assert params[0].type.spelling() == "int &"
        assert params[1].type.spelling() == "unsigned int"

    def test_begin_captured_by_value(self, directive):
        """Paper §3.1: __begin is captured by value so it retains the
        start value even though it is modified inside the loop."""
        wrapper = directive.associated_stmt
        assert "i" in wrapper.loop_var_func.by_value

    def test_lossless_unwrap(self, directive):
        """The wrapper 'can be losslessly removed again' (paper §3.1)."""
        wrapper = directive.associated_stmt
        unwrapped = wrapper.unwrap()
        assert isinstance(unwrapped, s.ForStmt)
        assert unwrapped is wrapper.loop_stmt

    def test_dump_shape(self, directive):
        dump = dump_ast(directive)
        lines = dump.splitlines()
        assert lines[0] == "OMPUnrollDirective"
        assert any(l.startswith("`-OMPCanonicalLoop") for l in lines)
        assert dump.count("CapturedStmt") == 2
        assert "DeclRefExpr 'int' lvalue Var 'i' 'int'" in dump

    def test_no_transformed_stmt_in_irbuilder_mode(self, directive):
        """Code generation moved to the OpenMPIRBuilder: no shadow
        transformed AST is built (paper §3)."""
        assert directive.get_transformed_stmt() is None
