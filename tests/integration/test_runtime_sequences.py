"""Runtime sequencing: multiple worksharing regions per parallel region,
dispatch-state reset, barrier phases, and team reuse."""

import pytest

from tests.conftest import run_both, run_c


class TestConsecutiveWorksharing:
    def test_two_dynamic_loops_reset_dispatch(self):
        src = r"""
        int main(void) {
          int first[12]; int second[12];
          #pragma omp parallel num_threads(3)
          {
            #pragma omp for schedule(dynamic, 2)
            for (int i = 0; i < 12; i += 1) first[i] = 1;
            #pragma omp for schedule(dynamic, 3)
            for (int i = 0; i < 12; i += 1) second[i] = 1;
          }
          int a = 0; int b = 0;
          for (int i = 0; i < 12; i += 1) { a += first[i]; b += second[i]; }
          printf("%d %d\n", a, b);
          return 0;
        }
        """
        legacy, _ = run_both(src, num_threads=3)
        assert legacy.stdout == "12 12\n"

    def test_static_then_dynamic(self):
        src = r"""
        int main(void) {
          int count = 0;
          #pragma omp parallel num_threads(4)
          {
            #pragma omp for
            for (int i = 0; i < 8; i += 1) {
              #pragma omp critical
              { count += 1; }
            }
            #pragma omp for schedule(guided)
            for (int i = 0; i < 8; i += 1) {
              #pragma omp critical
              { count += 10; }
            }
          }
          printf("%d\n", count);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "88\n"

    def test_loop_then_single_then_loop(self):
        src = r"""
        int main(void) {
          int phase[3] = {0, 0, 0};
          #pragma omp parallel num_threads(4)
          {
            #pragma omp for
            for (int i = 0; i < 4; i += 1) {
              #pragma omp critical
              { phase[0] += 1; }
            }
            #pragma omp single
            { phase[1] += 1; }
            #pragma omp for
            for (int i = 0; i < 4; i += 1) {
              #pragma omp critical
              { phase[2] += 1; }
            }
          }
          printf("%d %d %d\n", phase[0], phase[1], phase[2]);
          return 0;
        }
        """
        result = run_c(src)
        assert result.stdout == "4 1 4\n"

    def test_sequential_parallel_regions_fresh_teams(self):
        src = r"""
        int main(void) {
          int sizes[3];
          for (int r = 0; r < 3; r += 1) {
            #pragma omp parallel num_threads(2 + r)
            {
              #pragma omp master
              { sizes[r] = omp_get_num_threads(); }
            }
          }
          printf("%d %d %d\n", sizes[0], sizes[1], sizes[2]);
          return 0;
        }
        """
        assert run_c(src).stdout == "2 3 4\n"

    def test_fork_count_statistics(self):
        src = r"""
        int main(void) {
          #pragma omp parallel
          { }
          #pragma omp parallel for
          for (int i = 0; i < 4; i += 1) ;
          return 0;
        }
        """
        result = run_c(src)
        assert result.interpreter.omp.fork_count == 2

    def test_worksharing_in_loop_over_regions(self):
        """A worksharing loop executed repeatedly inside one region:
        dispatch state must reset each trip."""
        src = r"""
        int main(void) {
          int total = 0;
          #pragma omp parallel num_threads(2)
          {
            for (int round = 0; round < 3; round += 1) {
              #pragma omp for schedule(dynamic)
              for (int i = 0; i < 5; i += 1) {
                #pragma omp critical
                { total += 1; }
              }
            }
          }
          printf("%d\n", total);
          return 0;
        }
        """
        legacy, _ = run_both(src, num_threads=2)
        assert legacy.stdout == "15\n"


class TestBarrierPhases:
    def test_ping_pong_buffers(self):
        src = r"""
        int main(void) {
          int a[8]; int b[8];
          for (int k = 0; k < 8; k += 1) a[k] = k;
          #pragma omp parallel num_threads(4)
          {
            for (int step = 0; step < 4; step += 1) {
              #pragma omp for
              for (int i = 0; i < 8; i += 1)
                b[i] = a[i] + 1;
              #pragma omp for
              for (int i = 0; i < 8; i += 1)
                a[i] = b[i];
            }
          }
          int sum = 0;
          for (int k = 0; k < 8; k += 1) sum += a[k];
          printf("%d\n", sum);
          return 0;
        }
        """
        expected = sum(k + 4 for k in range(8))
        legacy, _ = run_both(src)
        assert int(legacy.stdout) == expected

    def test_explicit_barrier_between_phases(self):
        src = r"""
        int main(void) {
          int stage[8];
          int ok = 1;
          #pragma omp parallel num_threads(4)
          {
            int me = omp_get_thread_num();
            stage[me] = me * me;
            stage[me + 4] = -1;
            #pragma omp barrier
            /* every thread checks a DIFFERENT thread's write */
            int other = (me + 1) % 4;
            if (stage[other] != other * other) {
              #pragma omp critical
              { ok = 0; }
            }
          }
          printf("%d\n", ok);
          return 0;
        }
        """
        legacy, _ = run_both(src)
        assert legacy.stdout == "1\n"

    def test_barrier_generation_counter(self):
        src = r"""
        int main(void) {
          #pragma omp parallel num_threads(4)
          {
            #pragma omp barrier
            #pragma omp barrier
          }
          return 0;
        }
        """
        result = run_c(src)
        assert result.interpreter.omp.barrier_count >= 8  # 2 x 4 threads
