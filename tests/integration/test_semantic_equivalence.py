"""E7: the paper's §1.1 semantic-equivalence claim, checked by execution.

"The code above is semantically equivalent to the following version where
the loop is unrolled manually by the programmer" — we compile BOTH
versions, run them on the simulated OpenMP runtime, and require identical
results; and we require both AST representations to agree with each other.
"""

import pytest

from tests.conftest import run_both, run_c

# The paper's motivating example (§1.1), made observable.
DIRECTIVE_VERSION = r"""
void record(int *out, int i, int tid);
int main(void) {
  int N = %(N)d;
  int out[128];
  int tids[128];
  for (int k = 0; k < N; k += 1) { out[k] = -1; tids[k] = -1; }
  #pragma omp parallel for
  #pragma omp unroll partial(2)
  for (int i = 0; i < N; i += 1) {
    out[i] = i * i;
    tids[i] = omp_get_thread_num();
  }
  for (int k = 0; k < N; k += 1) printf("%%d:%%d ", out[k], tids[k]);
  printf("\n");
  return 0;
}
"""

MANUAL_VERSION = r"""
int main(void) {
  int N = %(N)d;
  int out[128];
  int tids[128];
  for (int k = 0; k < N; k += 1) { out[k] = -1; tids[k] = -1; }
  #pragma omp parallel for
  for (int i = 0; i < N; i += 2) {
    out[i] = i * i;
    tids[i] = omp_get_thread_num();
    if (i + 1 < N) {
      out[i + 1] = (i + 1) * (i + 1);
      tids[i + 1] = omp_get_thread_num();
    }
  }
  for (int k = 0; k < N; k += 1) printf("%%d:%%d ", out[k], tids[k]);
  printf("\n");
  return 0;
}
"""


class TestPaperSection11Equivalence:
    @pytest.mark.parametrize("n", [8, 16, 17, 31])
    def test_directive_equals_manual_unroll(self, n):
        """`parallel for` + `unroll partial(2)` computes the same values
        AND the same iteration->thread mapping as the manually unrolled
        loop (the unrolled loop's logical iterations are what the
        consuming worksharing directive distributes)."""
        directive = run_c(DIRECTIVE_VERSION % {"N": n})
        manual = run_c(MANUAL_VERSION % {"N": n})
        assert directive.stdout == manual.stdout

    @pytest.mark.parametrize("n", [8, 17])
    def test_both_representations_agree(self, n):
        run_both(DIRECTIVE_VERSION % {"N": n})


UNROLL_VALUES_ONLY = r"""
int main(void) {
  int sum = 0;
  #pragma omp unroll %(clause)s
  for (int i = %(lb)d; i < %(ub)d; i += %(step)d)
    sum += i * 2 + 1;
  printf("%%d\n", sum);
  return 0;
}
"""


class TestUnrollPreservesSemantics:
    @pytest.mark.parametrize(
        "clause", ["partial(2)", "partial(3)", "partial(8)", "partial"]
    )
    @pytest.mark.parametrize(
        "lb,ub,step",
        [(0, 10, 1), (7, 17, 3), (0, 7, 2), (5, 5, 1), (0, 100, 7)],
    )
    def test_partial_unroll_all_shapes(self, clause, lb, ub, step):
        src = UNROLL_VALUES_ONLY % {
            "clause": clause,
            "lb": lb,
            "ub": ub,
            "step": step,
        }
        reference = sum(
            i * 2 + 1 for i in range(lb, ub, step)
        )
        legacy, irb = run_both(src)
        assert int(legacy.stdout) == reference

    @pytest.mark.parametrize(
        "lb,ub,step", [(0, 6, 1), (1, 10, 4), (3, 3, 1)]
    )
    def test_full_unroll(self, lb, ub, step):
        src = UNROLL_VALUES_ONLY % {
            "clause": "full",
            "lb": lb,
            "ub": ub,
            "step": step,
        }
        reference = sum(i * 2 + 1 for i in range(lb, ub, step))
        legacy, irb = run_both(src)
        assert int(legacy.stdout) == reference

    def test_unroll_heuristic_mode(self):
        src = UNROLL_VALUES_ONLY % {
            "clause": "",
            "lb": 0,
            "ub": 12,
            "step": 1,
        }
        legacy, _ = run_both(src)
        assert int(legacy.stdout) == sum(i * 2 + 1 for i in range(12))

    @pytest.mark.parametrize("optimize", [False, True])
    def test_unroll_with_midend(self, optimize):
        """With -O the LoopUnroll pass actually duplicates; results must
        not change."""
        src = UNROLL_VALUES_ONLY % {
            "clause": "partial(4)",
            "lb": 0,
            "ub": 37,
            "step": 2,
        }
        reference = sum(i * 2 + 1 for i in range(0, 37, 2))
        result = run_c(src, optimize=optimize)
        assert int(result.stdout) == reference


COMPOSED = r"""
int main(void) {
  int order[64];
  int pos = 0;
  #pragma omp unroll full
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3) {
    order[pos] = i;
    pos += 1;
  }
  printf("pos=%d vals=", pos);
  for (int k = 0; k < pos; k += 1) printf("%d ", order[k]);
  printf("\n");
  return 0;
}
"""


class TestDirectiveComposition:
    def test_paper_listing5_composition_executes(self):
        """unroll full over unroll partial(2): 'effectively equivalent to
        just being unrolled completely' — same iterations, same order."""
        result = run_c(COMPOSED)
        assert result.stdout == "pos=4 vals=7 10 13 16 \n"

    def test_composition_with_midend(self):
        result = run_c(COMPOSED, optimize=True)
        assert result.stdout == "pos=4 vals=7 10 13 16 \n"

    def test_worksharing_consumes_transformed_loop(self):
        """`parallel for` over `tile`: the generated (floor) loop is what
        gets distributed (paper §4's composition direction)."""
        src = r"""
        int main(void) {
          int hits[100];
          for (int k = 0; k < 100; k += 1) hits[k] = 0;
          #pragma omp parallel for
          #pragma omp tile sizes(4)
          for (int i = 0; i < 100; i += 1)
            hits[i] += 1;
          int total = 0;
          for (int k = 0; k < 100; k += 1) total += hits[k];
          printf("%d\n", total);
          return 0;
        }
        """
        result = run_c(src)
        assert int(result.stdout) == 100

    def test_consuming_full_unroll_is_an_error(self):
        """A fully unrolled loop leaves no loop to associate with."""
        from repro.pipeline import CompilationError

        src = r"""
        int main(void) {
          #pragma omp parallel for
          #pragma omp unroll full
          for (int i = 0; i < 4; i += 1) ;
          return 0;
        }
        """
        with pytest.raises(CompilationError) as err:
            run_c(src)
        assert "fully unrolled" in str(err.value)


class TestEquivalenceAcrossSchedules:
    SRC = r"""
    int main(void) {
      int N = 40;
      int out[40];
      int sum = 0;
      #pragma omp parallel for schedule(%(sched)s) reduction(+: sum)
      for (int i = 0; i < N; i += 1) {
        out[i] = 3 * i + 1;
        sum += out[i];
      }
      int check = 0;
      for (int i = 0; i < N; i += 1) check += out[i];
      printf("%%d %%d\n", sum, check);
      return 0;
    }
    """

    @pytest.mark.parametrize(
        "sched",
        ["static", "static, 3", "dynamic", "dynamic, 5", "guided"],
    )
    def test_all_schedules_compute_same_values(self, sched):
        legacy, irb = run_both(self.SRC % {"sched": sched})
        sum_v, check = map(int, legacy.stdout.split())
        expected = sum(3 * i + 1 for i in range(40))
        assert sum_v == expected
        assert check == expected
