"""End-to-end crash-resilience tests (ISSUE PR 3 acceptance scenarios).

Drives the CLI in-process and asserts the exit-code contract
(0 ok / 1 user error / 70 ICE / 124 timeout), the fault-injection sweep
(every site must surface as a contained ICE with pretty stack and a
loadable crash reproducer — never a raw Python traceback), diagnostic
resync after bad directives, and the interpreter guardrails (fuel,
wall-clock timeout, memory ceiling, recursion cap, deadlock detection).
"""

from __future__ import annotations

import pytest

from repro.core.crash_recovery import set_crash_recovery_enabled
from repro.driver.cli import (
    EXIT_ICE,
    EXIT_OK,
    EXIT_TIMEOUT,
    EXIT_USER_ERROR,
    main,
)
from repro.instrument.faultinject import FAULTS

OK_SRC = """
int main() { int s = 0; for (int i = 0; i < 4; ++i) s += i; return s; }
"""

BAD_SRC = "int main() { return undeclared + 1; }\n"

# Exercises every fault site when run with `-O --run`: lexer,
# preprocessor, parser, sema-directive (two directives), codegen,
# the mid-end pipeline, and interpretation.
OMP_SRC = """
extern int printf(const char*, ...);
int main() {
  int a[8];
  #pragma omp parallel for
  for (int i = 0; i < 8; ++i) a[i] = i;
  #pragma omp tile sizes(2)
  for (int i = 0; i < 8; ++i) a[i] += 1;
  int s = 0;
  for (int i = 0; i < 8; ++i) s += a[i];
  printf("%d\\n", s);
  return 0;
}
"""

THREE_BAD_DIRECTIVES_SRC = """
int main() {
  int x = 0;
  #pragma omp tile sizes(0)
  for (int i = 0; i < 8; ++i) x += i;
  #pragma omp unroll partial(-1)
  for (int i = 0; i < 8; ++i) x += i;
  #pragma omp tile sizes(2)
  while (x < 100) x += 1;
  return x;
}
"""

INFINITE_LOOP_SRC = "int main() { while (1) {} return 0; }\n"

# A barrier under a thread-divergent `if`: thread 0 waits forever while
# its teammates run to completion.
DEADLOCK_SRC = """
extern int omp_get_thread_num(void);
int main() {
  #pragma omp parallel
  {
    if (omp_get_thread_num() == 0) {
      #pragma omp barrier
    }
  }
  return 0;
}
"""

RECURSION_SRC = """
int f(int n) { return f(n + 1); }
int main() { return f(0); }
"""

MALLOC_LOOP_SRC = """
extern void *malloc(unsigned long);
int main() { for (int i = 0; i < 100000; ++i) malloc(65536); return 0; }
"""


@pytest.fixture(autouse=True)
def _clean_global_state():
    """main() restores this itself, but a test that asserts mid-failure
    must not poison its neighbours."""
    yield
    FAULTS.disarm_all()
    set_crash_recovery_enabled(True)


def _write(tmp_path, name: str, text: str):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestExitCodes:
    """Satellite 1: one regression test per exit code."""

    def test_exit_0_success(self, tmp_path):
        src = _write(tmp_path, "ok.c", "int main() { return 0; }\n")
        assert main([src]) == EXIT_OK

    def test_exit_1_user_error(self, tmp_path, capsys):
        src = _write(tmp_path, "bad.c", BAD_SRC)
        assert main([src]) == EXIT_USER_ERROR
        err = capsys.readouterr().err
        assert "use of undeclared identifier" in err
        assert "Traceback" not in err

    def test_exit_70_internal_compiler_error(self, tmp_path, capsys):
        src = _write(tmp_path, "ok.c", OK_SRC)
        code = main(
            [
                "-finject-fault=parser",
                f"-crash-reproducer-dir={tmp_path / 'crashes'}",
                src,
            ]
        )
        assert code == EXIT_ICE
        err = capsys.readouterr().err
        assert "internal compiler error" in err
        assert "Traceback (most recent call last)" not in err

    def test_exit_124_timeout(self, tmp_path, capsys):
        src = _write(tmp_path, "loop.c", INFINITE_LOOP_SRC)
        assert main(["--run", "--fuel", "5000", src]) == EXIT_TIMEOUT
        assert "fuel exhausted" in capsys.readouterr().err


class TestFaultInjectionSweep:
    """Tentpole acceptance: for EVERY registered site, the injected
    crash surfaces as a contained ICE — exit 70, diagnostic, pretty
    stack, loadable reproducer, zero raw tracebacks."""

    @pytest.mark.parametrize("site", FAULTS.site_names(scope="pipeline"))
    def test_site_contained(self, site, tmp_path, capsys):
        src = _write(tmp_path, "omp.c", OMP_SRC)
        crash_dir = tmp_path / "crashes"
        code = main(
            [
                f"-finject-fault={site}",
                f"-crash-reproducer-dir={crash_dir}",
                "-O",
                "--run",
                src,
            ]
        )
        captured = capsys.readouterr()
        output = captured.err + captured.out
        assert code == EXIT_ICE, f"site {site}: exit {code}\n{output}"
        assert "internal compiler error" in output
        assert f"injected fault at site '{site}'" in output
        assert "Traceback (most recent call last)" not in output
        # the reproducer is self-contained and loadable
        crashes = list(crash_dir.iterdir())
        assert len(crashes) == 1, f"site {site}: {crashes}"
        repro = crashes[0]
        assert (repro / "repro.c").read_text() == OMP_SRC
        cmd = (repro / "cmd").read_text()
        assert "miniclang" in cmd and f"-finject-fault={site}" in cmd
        tb = (repro / "traceback.txt").read_text()
        assert "InjectedFault" in tb

    def test_pretty_stack_names_the_construct(self, tmp_path, capsys):
        src = _write(tmp_path, "omp.c", OMP_SRC)
        main(["-finject-fault=sema-directive", "-O", "--run", src])
        err = capsys.readouterr().err
        assert "#pragma omp parallel for" in err
        assert "omp.c:5" in err  # location of the first directive

    def test_second_occurrence_selects_second_directive(
        self, tmp_path, capsys
    ):
        src = _write(tmp_path, "omp.c", OMP_SRC)
        main(["-finject-fault=sema-directive:2", "-O", "--run", src])
        assert "#pragma omp tile" in capsys.readouterr().err

    def test_print_fault_sites(self, capsys):
        assert main(["-print-fault-sites"]) == EXIT_OK
        out = capsys.readouterr().out
        for site in (
            "lexer",
            "preprocessor",
            "parser",
            "sema-directive",
            "codegen-function",
            "midend-pass",
            "interp-step",
        ):
            assert site in out

    def test_unknown_site_is_user_error(self, tmp_path, capsys):
        src = _write(tmp_path, "ok.c", OK_SRC)
        assert main(["-finject-fault=bogus", src]) == EXIT_USER_ERROR
        assert "unknown fault site" in capsys.readouterr().err

    def test_fno_crash_recovery_reraises(self, tmp_path):
        from repro.instrument.faultinject import InjectedFault

        src = _write(tmp_path, "ok.c", OK_SRC)
        with pytest.raises(InjectedFault):
            main(
                ["-fno-crash-recovery", "-finject-fault=parser", src]
            )


class TestDiagnosticResync:
    """Satellite 3: the parser/Sema recover per directive so one bad
    construct costs one error."""

    def test_three_bad_directives_three_errors(self, tmp_path, capsys):
        src = _write(tmp_path, "bad3.c", THREE_BAD_DIRECTIVES_SRC)
        assert main([src]) == EXIT_USER_ERROR
        err = capsys.readouterr().err
        assert err.count("error:") == 3
        assert "Traceback" not in err

    def test_error_limit_stops_early(self, tmp_path, capsys):
        src = _write(
            tmp_path,
            "manyerr.c",
            "int main() { a; b; c; d; e; return 0; }\n",
        )
        assert main(["-ferror-limit=2", src]) == EXIT_USER_ERROR
        err = capsys.readouterr().err
        assert err.count("use of undeclared identifier") == 2
        assert (
            "too many errors emitted, stopping now "
            "[-ferror-limit=2]" in err
        )


class TestGuardrails:
    def test_fuel_exhaustion_renders_scheduler_snapshot(
        self, tmp_path, capsys
    ):
        """Satellite 2: fuel exhaustion carries a scheduler snapshot
        the CLI renders — which threads, where, how far along."""
        src = _write(tmp_path, "loop.c", INFINITE_LOOP_SRC)
        assert main(["--run", "--fuel", "5000", src]) == EXIT_TIMEOUT
        err = capsys.readouterr().err
        assert "fuel exhausted" in err
        assert "Scheduler state at abort:" in err
        assert "thread 0" in err
        assert "@main" in err

    def test_wall_clock_timeout(self, tmp_path, capsys):
        src = _write(tmp_path, "loop.c", INFINITE_LOOP_SRC)
        code = main(["--run", "--timeout", "0.2", src])
        assert code == EXIT_TIMEOUT
        assert "wall-clock timeout" in capsys.readouterr().err

    def test_deadlock_reports_waiters_and_finished(
        self, tmp_path, capsys
    ):
        src = _write(tmp_path, "dead.c", DEADLOCK_SRC)
        assert main(["--run", src]) == EXIT_USER_ERROR
        err = capsys.readouterr().err
        assert "deadlock detected" in err
        assert "barrier" in err
        assert "already finished and can never reach the barrier" in err
        assert "Scheduler state at abort:" in err
        assert "Traceback" not in err

    def test_recursion_cap(self, tmp_path, capsys):
        src = _write(tmp_path, "rec.c", RECURSION_SRC)
        code = main(["--run", "--max-recursion", "64", src])
        assert code == EXIT_USER_ERROR
        err = capsys.readouterr().err
        assert "call depth exceeded the limit of 64" in err
        assert "runaway recursion" in err

    def test_memory_ceiling(self, tmp_path, capsys):
        src = _write(tmp_path, "mem.c", MALLOC_LOOP_SRC)
        code = main(["--run", "--max-memory", str(1 << 22), src])
        assert code == EXIT_USER_ERROR
        assert "guest memory ceiling" in capsys.readouterr().err


class TestBatchDriver:
    def test_batch_continues_past_crashing_input(
        self, tmp_path, capsys
    ):
        """A bad input costs its own exit status, not the batch."""
        ok = _write(tmp_path, "ok.c", "int main() { return 0; }\n")
        bad = _write(tmp_path, "bad.c", BAD_SRC)
        ok2 = _write(tmp_path, "ok2.c", "int main() { return 0; }\n")
        assert main([ok, bad, ok2]) == EXIT_USER_ERROR
        err = capsys.readouterr().err
        assert "use of undeclared identifier" in err

    def test_worst_exit_code_wins(self, tmp_path):
        ok = _write(tmp_path, "ok.c", "int main() { return 0; }\n")
        bad = _write(tmp_path, "bad.c", BAD_SRC)
        crasher = _write(tmp_path, "omp.c", OMP_SRC)
        code = main(
            ["-finject-fault=codegen-function", ok, bad, crasher]
        )
        assert code == EXIT_ICE

    def test_missing_file_is_user_error(self, tmp_path, capsys):
        ok = _write(tmp_path, "ok.c", "int main() { return 0; }\n")
        missing = str(tmp_path / "nope.c")
        assert main([missing, ok]) == EXIT_USER_ERROR
        assert "nope.c" in capsys.readouterr().err


class TestCrashRecoveryStats:
    """Satellite 6: -print-stats exposes the crash-recovery counters
    (LLVM -stats renders `value  group  - description` rows)."""

    def test_ice_and_reproducer_counters(self, tmp_path, capsys):
        src = _write(tmp_path, "omp.c", OMP_SRC)
        main(
            [
                "-finject-fault=sema-directive",
                f"-crash-reproducer-dir={tmp_path / 'crashes'}",
                "-print-stats",
                src,
            ]
        )
        err = capsys.readouterr().err
        assert "crash-recovery" in err
        assert "Internal compiler errors contained" in err
        assert "Faults raised by -finject-fault sites" in err
        assert "Crash reproducer directories written" in err

    def test_deadlock_counter(self, tmp_path, capsys):
        src = _write(tmp_path, "dead.c", DEADLOCK_SRC)
        main(["--run", "-print-stats", src])
        err = capsys.readouterr().err
        assert (
            "All-threads-blocked conditions detected by the team "
            "scheduler" in err
        )

    def test_recovered_error_counter(self, tmp_path, capsys):
        src = _write(tmp_path, "bad.c", BAD_SRC)
        main(["-print-stats", src])
        assert (
            "Semantic errors recovered via RecoveryExpr placeholders"
            in capsys.readouterr().err
        )
