"""End-to-end tests of the pass-pipeline introspection tooling
(ISSUE 2 acceptance): ``-print-changed`` IR diffs, ``-verify-each``
pass attribution with crash reproducers, ``-opt-bisect-limit``
boundaries, ``bisect_pipeline`` convergence, and ``-debug-counter``
site suppression."""

import io
import os

import pytest

from repro.driver.cli import main
from repro.instrument import (
    DEBUG_COUNTERS,
    PassInstrumentation,
    PassVerificationError,
)
from repro.interp import Interpreter
from repro.ir.instructions import StoreInst
from repro.ir.values import ConstantInt
from repro.midend import default_pass_pipeline
from repro.midend.pass_manager import FunctionPass
from repro.pipeline import bisect_pipeline, compile_source

UNROLL_SRC = """
int main() {
  int sum = 0;
  #pragma omp unroll partial(4)
  for (int i = 0; i < 32; i++) sum += i;
  return sum % 256;
}
"""

TWO_LOOP_SRC = """
int main() {
  int a = 0;
  int b = 0;
  #pragma omp unroll partial(2)
  for (int i = 0; i < 8; i++) a += i;
  #pragma omp unroll partial(2)
  for (int j = 0; j < 8; j++) b += j;
  return a + b;
}
"""

PLAIN_SRC = """
int main() {
  int x = 1;
  int y = 2;
  return x + y;
}
"""


@pytest.fixture(autouse=True)
def _clean_debug_counters():
    yield
    DEBUG_COUNTERS.unset_all()


def write_source(tmp_path, source):
    path = tmp_path / "input.c"
    path.write_text(source)
    return str(path)


def optimize(source, instrument=None, pm=None):
    result = compile_source(source)
    if pm is None:
        pm = default_pass_pipeline(
            remarks=result.diagnostics.remarks, instrument=instrument
        )
    run = pm.run(result.module, instrument)
    return result, run


# ======================================================================
class TestPrintChangedCLI:
    def test_emits_diff_for_changing_pass_only(self, tmp_path, capsys):
        path = write_source(tmp_path, PLAIN_SRC)
        code = main(["-O1", "-print-changed", path])
        assert code == 0
        err = capsys.readouterr().err
        # mem2reg promotes x/y -> a diff with -/+ lines...
        assert "*** IR Diff After mem2reg on main ***" in err
        assert "--- main before mem2reg" in err
        assert "+++ main after mem2reg" in err
        assert any(line.startswith("-") for line in err.splitlines())
        # ...while loop-unroll (nothing annotated) stays silent.
        assert "loop-unroll" not in err

    def test_acceptance_demo_example(self, capsys):
        """ISSUE acceptance: -O1 -print-changed on the shipped example
        emits a unified diff for at least one pass."""
        code = main(["-O1", "-print-changed", "examples/observability_demo.c"])
        assert code == 0
        err = capsys.readouterr().err
        assert "*** IR Diff After" in err
        assert "@@ -" in err

    def test_print_before_and_after_all(self, tmp_path, capsys):
        path = write_source(tmp_path, PLAIN_SRC)
        assert main(["-O1", "-print-before-all", "-print-after-all", path]) == 0
        err = capsys.readouterr().err
        assert "*** IR Dump Before loop-unroll on main ***" in err
        assert "*** IR Dump After dce on main ***" in err

    def test_print_before_single_pass(self, tmp_path, capsys):
        path = write_source(tmp_path, PLAIN_SRC)
        assert main(["-O1", "-print-before=mem2reg", path]) == 0
        err = capsys.readouterr().err
        assert "*** IR Dump Before mem2reg on main ***" in err
        assert "Dump Before dce" not in err


class TestPrintPipelinePassesCLI:
    def test_lists_passes_in_order(self, capsys):
        assert main(["-print-pipeline-passes"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == [
            "loop-unroll",
            "mem2reg",
            "constant-fold",
            "simplify-cfg",
            "dce",
        ]

    def test_input_still_required_without_it(self, capsys):
        with pytest.raises(SystemExit):
            main(["-O1"])


# ======================================================================
class _TerminatorEater(FunctionPass):
    """Deliberately broken pass: eats the entry block's terminator, which
    -verify-each must catch and attribute."""

    name = "eat-terminator"

    def run_on_function(self, fn):
        fn.entry_block.instructions.pop()
        return True


class TestVerifyEach:
    def seeded_pipeline(self, remarks=None, instrument=None):
        pm = default_pass_pipeline(remarks=remarks, instrument=instrument)
        pm.passes.insert(2, _TerminatorEater())
        return pm

    def test_attributes_failure_to_offending_pass(self, tmp_path):
        instrument = PassInstrumentation(
            verify_each=True,
            reproducer_dir=str(tmp_path / "crashes"),
            stream=io.StringIO(),
        )
        with pytest.raises(PassVerificationError) as exc:
            optimize(
                PLAIN_SRC,
                instrument,
                pm=self.seeded_pipeline(instrument=instrument),
            )
        err = exc.value
        assert err.pass_name == "eat-terminator"
        assert err.function == "main"
        assert err.index == 3  # loop-unroll, mem2reg, eat-terminator
        assert "eat-terminator" in str(err)

    def test_writes_before_and_after_reproducers(self, tmp_path):
        crash_dir = tmp_path / "crashes"
        instrument = PassInstrumentation(
            verify_each=True,
            reproducer_dir=str(crash_dir),
            stream=io.StringIO(),
        )
        with pytest.raises(PassVerificationError) as exc:
            optimize(
                PLAIN_SRC,
                instrument,
                pm=self.seeded_pipeline(instrument=instrument),
            )
        assert exc.value.reproducer_dir == str(crash_dir)
        names = sorted(os.listdir(crash_dir))
        assert names == [
            "0003-eat-terminator-main.after.ll",
            "0003-eat-terminator-main.before.ll",
        ]
        before = (crash_dir / names[1]).read_text()
        after = (crash_dir / names[0]).read_text()
        assert "ret" in before  # terminator still present before
        assert before != after

    def test_clean_pipeline_passes_verification(self, tmp_path):
        instrument = PassInstrumentation(
            verify_each=True,
            reproducer_dir=str(tmp_path / "crashes"),
            stream=io.StringIO(),
        )
        optimize(UNROLL_SRC, instrument)  # must not raise
        assert not (tmp_path / "crashes").exists()

    def test_cli_verify_each_clean_exit(self, tmp_path, capsys):
        path = write_source(tmp_path, UNROLL_SRC)
        assert main(["-O1", "-verify-each", path]) == 0
        capsys.readouterr()


# ======================================================================
class TestOptBisectBoundaries:
    def total_executions(self, source):
        instrument = PassInstrumentation(
            opt_bisect_limit=-1, stream=io.StringIO()
        )
        optimize(source, instrument)
        return len(instrument.executions)

    def test_limit_zero_runs_nothing(self):
        baseline = compile_source(UNROLL_SRC).ir_text()
        instrument = PassInstrumentation(
            opt_bisect_limit=0, stream=io.StringIO()
        )
        result, run = optimize(UNROLL_SRC, instrument)
        assert result.ir_text() == baseline
        assert not any(e.ran for e in instrument.executions)
        assert not run.changed

    def test_limit_equal_to_total_matches_unlimited(self):
        result_full, _ = optimize(UNROLL_SRC)
        total = self.total_executions(UNROLL_SRC)
        instrument = PassInstrumentation(
            opt_bisect_limit=total, stream=io.StringIO()
        )
        result_limited, _ = optimize(UNROLL_SRC, instrument)
        assert all(e.ran for e in instrument.executions)
        assert result_limited.ir_text() == result_full.ir_text()

    def test_cli_bisect_limit_partial_run_still_correct(
        self, tmp_path, capsys
    ):
        path = write_source(tmp_path, UNROLL_SRC)
        code = main(["-O1", "--run", "-opt-bisect-limit=1", path])
        assert code == sum(range(32)) % 256
        err = capsys.readouterr().err
        assert "BISECT: running pass (1) loop-unroll" in err
        assert "BISECT: NOT running pass (2) mem2reg" in err


class _ConstantCorruptor(FunctionPass):
    """Deliberately broken pass: silently turns `int sum = 0` into
    `int sum = 1` — valid IR, wrong program."""

    name = "corrupt-init"

    def run_on_function(self, fn):
        for inst in fn.instructions():
            if (
                isinstance(inst, StoreInst)
                and isinstance(inst.value, ConstantInt)
                and inst.value.value == 0
            ):
                inst.value = ConstantInt(inst.value.type, 1)
                return True
        return False


class TestBisectPipeline:
    def test_converges_on_seeded_broken_pass(self):
        def factory(remarks=None, instrument=None):
            pm = default_pass_pipeline(
                remarks=remarks, instrument=instrument
            )
            # before mem2reg, while the store of the initializer exists
            pm.passes.insert(1, _ConstantCorruptor())
            return pm

        expected = sum(range(32)) % 256

        def predicate(result):
            return Interpreter(result.module).run("main", []) == expected

        outcome = bisect_pipeline(
            UNROLL_SRC, predicate, pipeline_factory=factory
        )
        assert outcome.found
        assert outcome.culprit.pass_name == "corrupt-init"
        assert outcome.culprit_index == 2
        assert outcome.culprit_index == outcome.culprit.index
        assert "corrupt-init" in outcome.describe()

    def test_healthy_pipeline_reports_no_culprit(self):
        expected = sum(range(32)) % 256
        outcome = bisect_pipeline(
            UNROLL_SRC,
            lambda r: Interpreter(r.module).run("main", []) == expected,
        )
        assert not outcome.found
        assert outcome.culprit_index is None
        assert outcome.total_executions == 5

    def test_failure_before_any_pass_is_index_zero(self):
        outcome = bisect_pipeline(UNROLL_SRC, lambda r: False)
        assert outcome.culprit_index == 0
        assert outcome.culprit is None


# ======================================================================
class TestDebugCounters:
    def unroll_messages(self, source):
        result, _ = optimize(source)
        return [r.message for r in result.remarks.by_pass("loop-unroll")]

    def test_suppresses_exactly_one_site(self):
        baseline = self.unroll_messages(TWO_LOOP_SRC)
        assert sum("unrolled loop" in m for m in baseline) == 2

        DEBUG_COUNTERS.apply_spec("unroll-transform=1")
        gated = self.unroll_messages(TWO_LOOP_SRC)
        suppressed = [m for m in gated if "suppressed by" in m]
        unrolled = [m for m in gated if "unrolled loop" in m]
        assert len(suppressed) == 1
        assert len(unrolled) == 1  # the second site still transforms

    def test_suppressed_site_keeps_pipeline_semantics(self):
        DEBUG_COUNTERS.apply_spec("unroll-transform=0,0")
        result, run = optimize(TWO_LOOP_SRC)
        assert run.info("loop-unroll").functions_changed == 0
        # the rest of the pipeline still runs and the program is intact
        assert run.info("mem2reg").changed
        assert Interpreter(result.module).run("main", []) == 2 * sum(
            range(8)
        )

    def test_mem2reg_site_gating(self):
        DEBUG_COUNTERS.apply_spec("mem2reg-promote=0,0")
        result, run = optimize(PLAIN_SRC)
        assert "alloca" in result.ir_text()
        DEBUG_COUNTERS.unset_all()
        result2, _ = optimize(PLAIN_SRC)
        assert "alloca" not in result2.ir_text()

    def test_mem2reg_partial_window(self):
        DEBUG_COUNTERS.apply_spec("mem2reg-promote=1,1")
        result, _ = optimize(PLAIN_SRC)
        # x and y promotable; exactly one survives as an alloca
        assert result.ir_text().count("= alloca") == 1

    def test_simplifycfg_site_gating(self):
        DEBUG_COUNTERS.apply_spec("simplifycfg-transform=0,0")
        _, run = optimize(UNROLL_SRC)
        assert run.info("simplify-cfg").functions_changed == 0

    def test_cli_flag_round_trip(self, tmp_path, capsys):
        path = write_source(tmp_path, TWO_LOOP_SRC)
        code = main(
            [
                "-O1",
                "--run",
                "-debug-counter=unroll-transform=1",
                "-Rpass-missed=loop-unroll",
                path,
            ]
        )
        assert code == 2 * sum(range(8))
        err = capsys.readouterr().err
        assert "suppressed by -debug-counter=unroll-transform" in err
        # counters disarm on CLI exit: a second plain run is unaffected
        assert not DEBUG_COUNTERS.get("unroll-transform").is_set

    def test_cli_rejects_bad_spec(self, tmp_path, capsys):
        path = write_source(tmp_path, PLAIN_SRC)
        assert main(["-debug-counter=bogus", path]) == 1
        assert "invalid -debug-counter spec" in capsys.readouterr().err
