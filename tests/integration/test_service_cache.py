"""Integration tests for the compile service's response cache and
single-flight dedup: real worker processes, deterministic fault
injection, no sleeps.

The contracts under test:

* a terminal ok/error response is memoized per request fingerprint and
  replayed (``cache_hit=True``) without burning a worker;
* N identical concurrent requests collapse onto one execution — one
  leader compiles, the followers receive fanned-out copies
  (``coalesced=True``), and all N are answered;
* degraded responses live under a ``#degraded``-tagged key: they can be
  replayed, but never shadow a primary-path answer;
* the circuit breaker outranks the cache in both directions — a
  tripped fingerprint is neither served from nor written to the cache.
"""

from __future__ import annotations

import pytest

from repro.cache import CompilationCache, degraded_key
from repro.service import (
    STATUS_CIRCUIT_OPEN,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    CompileRequest,
    CompileService,
    RetryPolicy,
    ServiceConfig,
)

HELLO = """\
int printf(const char *fmt, ...);
int main() {
  #pragma omp tile sizes(2)
  for (int i = 0; i < 6; i += 1)
    printf("i%d ", i);
  printf("\\n");
  return 0;
}
"""

BAD = "int main() { return undeclared; }\n"


def make_service(**overrides) -> CompileService:
    kwargs = dict(
        workers=2,
        deadline_s=15.0,
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.05
        ),
        quarantine_dir=None,
        enable_cache=True,
    )
    kwargs.update(overrides)
    return CompileService(ServiceConfig(**kwargs))


class TestResponseCache:
    def test_repeat_request_is_served_from_cache(self):
        with make_service() as svc:
            [cold] = svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
            [warm] = svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
        assert cold.status == warm.status == STATUS_OK
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.attempts == 0  # no worker ran
        assert warm.output == cold.output
        assert warm.exit_code == cold.exit_code

    def test_deterministic_user_errors_are_cached_too(self):
        with make_service() as svc:
            [cold] = svc.process_batch(
                [CompileRequest(source=BAD, action="compile")]
            )
            [warm] = svc.process_batch(
                [CompileRequest(source=BAD, action="compile")]
            )
        assert cold.status == warm.status == STATUS_ERROR
        assert warm.cache_hit
        assert warm.diagnostics == cold.diagnostics

    def test_different_flags_do_not_share_entries(self):
        with make_service() as svc:
            svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
            [other] = svc.process_batch(
                [
                    CompileRequest(
                        source=HELLO, action="run", mode="irbuilder"
                    )
                ]
            )
        assert other.status == STATUS_OK
        assert not other.cache_hit

    def test_disk_cache_survives_service_restart(self, tmp_path):
        d = str(tmp_path / "cache")
        with make_service(cache_dir=d) as svc:
            [cold] = svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
        with make_service(cache_dir=d) as svc:
            [warm] = svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
        assert not cold.cache_hit and warm.cache_hit
        assert warm.output == cold.output

    def test_cache_disabled_by_default(self):
        with CompileService(
            ServiceConfig(workers=1, quarantine_dir=None)
        ) as svc:
            svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
            [again] = svc.process_batch(
                [CompileRequest(source=HELLO, action="run")]
            )
        assert not again.cache_hit


class TestSingleFlight:
    def test_identical_concurrent_requests_collapse_to_one(self):
        n = 4
        with make_service() as svc:
            responses = svc.process_batch(
                [
                    CompileRequest(source=HELLO, action="run")
                    for _ in range(n)
                ]
            )
        assert len(responses) == n  # every request answered
        leaders = [r for r in responses if not r.coalesced]
        followers = [r for r in responses if r.coalesced]
        assert len(leaders) == 1 and len(followers) == n - 1
        assert sum(r.attempts for r in responses) == 1  # one execution
        for r in responses:
            assert r.status == STATUS_OK
            assert r.output == leaders[0].output
            assert r.request_id is not None
        assert len({r.request_id for r in responses}) == n

    def test_distinct_requests_do_not_collapse(self):
        with make_service() as svc:
            responses = svc.process_batch(
                [
                    CompileRequest(source=HELLO, action="run"),
                    CompileRequest(
                        source=HELLO + "// v2\n", action="run"
                    ),
                ]
            )
        assert all(not r.coalesced for r in responses)
        assert sum(r.attempts for r in responses) == 2

    def test_single_flight_can_be_disabled(self):
        with make_service(single_flight=False, enable_cache=False) as svc:
            responses = svc.process_batch(
                [
                    CompileRequest(source=HELLO, action="run")
                    for _ in range(3)
                ]
            )
        assert all(not r.coalesced for r in responses)
        assert sum(r.attempts for r in responses) == 3


class TestDegradedTagging:
    def _degrading_request(self) -> CompileRequest:
        # IRBuilder path deterministically broken on every attempt:
        # the service falls back to the shadow path -> degraded
        return CompileRequest(
            source=HELLO,
            action="run",
            mode="irbuilder",
            inject_faults=("service-irbuilder",),
            fault_attempts=-1,
        )

    def test_degraded_response_cached_under_tagged_key(self):
        with make_service() as svc:
            [cold] = svc.process_batch([self._degrading_request()])
            assert cold.status == STATUS_DEGRADED
            fp = self._degrading_request().fingerprint()
            assert svc.cache.get_response(fp) is None
            assert (
                svc.cache.get_response(degraded_key(fp)) is not None
            )

    def test_degraded_replay_stays_tagged(self):
        with make_service() as svc:
            [cold] = svc.process_batch([self._degrading_request()])
            [warm] = svc.process_batch([self._degrading_request()])
        assert cold.status == STATUS_DEGRADED
        assert warm.cache_hit
        assert warm.status == STATUS_DEGRADED  # still marked degraded
        assert warm.degraded

    def test_degraded_entry_not_served_when_degradation_off(self):
        with make_service() as svc:
            svc.process_batch([self._degrading_request()])
            request = self._degrading_request()
            request.allow_degraded = False
            [hard] = svc.process_batch([request])
        # same fingerprint, but the degraded-tagged entry is off
        # limits: the request must run (and fail hard) instead
        assert not hard.cache_hit
        assert hard.status != STATUS_DEGRADED


class TestBreakerVsCache:
    def _poison(self) -> CompileRequest:
        return CompileRequest(
            source=HELLO,
            action="run",
            inject_faults=("service-worker",),
            fault_attempts=-1,
        )

    def test_tripped_fingerprint_is_never_cached(self):
        with make_service() as svc:
            [tripped] = svc.process_batch([self._poison()])
            assert tripped.status == STATUS_CIRCUIT_OPEN
            fp = self._poison().fingerprint()
            assert svc.cache.get_response(fp) is None
            assert svc.cache.get_response(degraded_key(fp)) is None
            # resubmission: rejected at admission, not answered from
            # the cache, no worker burned
            rejection = svc.submit(self._poison())
            assert rejection is not None
            assert rejection.status == STATUS_CIRCUIT_OPEN
            assert not rejection.cache_hit

    def test_open_breaker_outranks_an_existing_cache_entry(self):
        """Even a healthy-era cache entry must not answer for a
        fingerprint whose breaker has since opened: quarantine wins."""
        with make_service() as svc:
            request = CompileRequest(source=HELLO, action="run")
            [cold] = svc.process_batch([request])
            assert cold.status == STATUS_OK
            fp = request.fingerprint()
            assert svc.cache.get_response(fp) is not None
            breaker = svc._breakers.get(fp)
            for _ in range(svc.config.breaker_threshold):
                breaker.record_failure()
            rejection = svc.submit(
                CompileRequest(source=HELLO, action="run")
            )
            assert rejection is not None
            assert rejection.status == STATUS_CIRCUIT_OPEN
            assert not rejection.cache_hit
