"""Integration tests for the TCP front door: NetServerThread (shard
router + asyncio server) exercised through NetClient and raw sockets."""

from __future__ import annotations

import socket
import time

import pytest

from repro.service import CompileRequest, RetryPolicy, ServiceConfig
from repro.service.net import (
    NetClient,
    NetServerConfig,
    NetServerThread,
)
from repro.service.net.client import STATUS_UNAVAILABLE
from repro.service.net.protocol import (
    FrameDecoder,
    encode_frame,
    ping_message,
    request_message,
)

SOURCE = """\
int printf(const char *fmt, ...);
int main() {
  int sum = 0;
  #pragma omp tile sizes(2)
  for (int i = 0; i < 8; i += 1)
    sum += i;
  printf("net: %d\\n", sum);
  return 0;
}
"""


def _configs(n: int = 2) -> list[ServiceConfig]:
    return [
        ServiceConfig(
            workers=1,
            queue_capacity=64,
            deadline_s=10.0,
            retry=RetryPolicy(
                max_attempts=3, base_delay_s=0.01, max_delay_s=0.1
            ),
            quarantine_dir=None,
            retain_responses=False,
        )
        for _ in range(n)
    ]


def _request(tag: str, **kwargs) -> CompileRequest:
    return CompileRequest(
        source=f"// {tag}\n" + SOURCE,
        filename=f"{tag}.c",
        action="run",
        **kwargs,
    )


@pytest.fixture(scope="module")
def host():
    server = NetServerThread(
        _configs(),
        NetServerConfig(frame_timeout_s=2.0, idle_timeout_s=30.0),
    )
    server.start()
    yield server
    server.stop()


def _recv_events(sock, timeout_s: float = 10.0) -> list:
    decoder = FrameDecoder()
    events: list = []
    sock.settimeout(timeout_s)
    deadline = time.monotonic() + timeout_s
    try:
        while time.monotonic() < deadline and not events:
            data = sock.recv(65536)
            if not data:
                break
            events.extend(decoder.feed(data))
    except (socket.timeout, OSError):
        pass
    return events


class TestRequestResponse:
    def test_ping(self, host):
        assert NetClient(host.address).ping()

    def test_compile_run_round_trip(self, host):
        client = NetClient(host.address, deadline_s=30.0)
        response = client.request(_request("rt"))
        assert response.ok
        assert response.exit_code == 0
        assert "net: 28" in (response.output or "")
        assert client.duplicate_responses == 0

    def test_worker_kill_is_retried_transparently(self, host):
        client = NetClient(host.address, deadline_s=30.0)
        response = client.request(
            _request(
                "kill",
                inject_faults=("service-worker-exit",),
                fault_attempts=1,
            )
        )
        assert response.ok
        assert response.attempts >= 2

    def test_hedged_request_single_answer(self, host):
        client = NetClient(
            host.address, deadline_s=30.0, hedge_delay_s=0.05
        )
        response = client.request(_request("hedge"))
        assert response.ok
        assert client.duplicate_responses == 0

    def test_concurrent_clients_spread_over_shards(self, host):
        import threading

        results: list = []
        lock = threading.Lock()

        def one(i: int) -> None:
            client = NetClient(host.address, deadline_s=30.0)
            response = client.request(_request(f"conc-{i}"))
            with lock:
                results.append(response)

        threads = [
            threading.Thread(target=one, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert len(results) == 6
        assert all(r.ok for r in results)


class TestDeadlinePropagation:
    def test_expired_budget_rejected_at_admission(self, host):
        # The wire deadline is the caller's *remaining* budget; an
        # effectively-zero budget must come back as a structured
        # timeout without burning a worker attempt.
        sock = socket.create_connection(host.address, timeout=5.0)
        try:
            sock.sendall(
                encode_frame(
                    request_message(
                        "expired",
                        _request("expired"),
                        deadline_s=1e-6,
                    )
                )
            )
            events = _recv_events(sock)
        finally:
            sock.close()
        assert events, "no reply to an expired-budget request"
        msg = events[0]
        assert msg["type"] == "response"
        assert msg["id"] == "expired"
        assert msg["response"]["status"] == "timeout"
        assert msg["response"]["attempts"] == 0

    def test_client_gives_up_when_budget_exhausted(self, host):
        client = NetClient(host.address, deadline_s=1e-6)
        response = client.request(_request("nobudget"))
        assert response.status == "timeout"


class TestProtocolDefense:
    def test_garbage_gets_error_frame_then_resync(self, host):
        sock = socket.create_connection(host.address, timeout=5.0)
        try:
            junk = bytes([0x00, 0x7F, 0xFE]) * 5
            sock.sendall(
                junk + encode_frame(ping_message("resync"))
            )
            decoder = FrameDecoder()
            events: list = []
            sock.settimeout(5.0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and len(events) < 2:
                data = sock.recv(65536)
                if not data:
                    break
                events.extend(decoder.feed(data))
        finally:
            sock.close()
        types = [
            (e.get("type"), e.get("code"))
            for e in events
            if isinstance(e, dict)
        ]
        assert ("error", "bad-magic") in types
        assert ("pong", None) in types

    def test_unknown_message_type_answered_not_fatal(self, host):
        sock = socket.create_connection(host.address, timeout=5.0)
        try:
            sock.sendall(
                encode_frame({"v": 1, "type": "teapot", "id": "t1"})
            )
            events = _recv_events(sock)
        finally:
            sock.close()
        assert events and events[0]["type"] == "error"
        assert events[0]["code"] == "bad-type"

    def test_invalid_request_fields_get_bad_request(self, host):
        sock = socket.create_connection(host.address, timeout=5.0)
        try:
            sock.sendall(
                encode_frame(
                    {
                        "v": 1,
                        "type": "request",
                        "id": "bad1",
                        "request": {"source": "x", "evil": True},
                    }
                )
            )
            events = _recv_events(sock)
        finally:
            sock.close()
        assert events and events[0]["type"] == "error"
        assert events[0]["code"] == "bad-request"
        assert events[0]["id"] == "bad1"


class TestDrain:
    def test_drain_announces_and_client_fails_over_cleanly(self):
        server = NetServerThread(_configs(1), NetServerConfig())
        server.start()
        try:
            client = NetClient(server.address, deadline_s=20.0)
            assert client.request(_request("pre-drain")).ok
            # an open connection gets the structured goodbye
            sock = socket.create_connection(
                server.address, timeout=5.0
            )
            try:
                # complete a ping round trip first so the connection
                # is registered server-side before the drain broadcast
                sock.sendall(encode_frame(ping_message("pre")))
                assert _recv_events(sock)[0]["type"] == "pong"
                server._loop.call_soon_threadsafe(
                    server.server.request_drain, 2.0
                )
                events = _recv_events(sock)
            finally:
                sock.close()
            assert events
            assert events[0]["type"] == "draining"
            # once drained, new work cannot reach the server: the
            # client returns a structured failure, never raises
            server.stop()
            response = client.request(_request("post-drain"))
            assert response.status in (STATUS_UNAVAILABLE, "timeout")
            assert not response.ok
        finally:
            server.stop()
