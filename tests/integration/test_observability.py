"""End-to-end tests of the miniclang observability flags:
``-ftime-trace``, ``-print-stats``, ``-Rpass*`` and
``-fprofile-report`` (ISSUE acceptance scenario)."""

import json

import pytest

from repro.driver.cli import main
from repro.instrument import active_time_trace

UNROLL_SRC = """
int main() {
  int sum = 0;
  #pragma omp unroll partial(4)
  for (int i = 0; i < 32; i++) sum += i;
  return sum % 256;
}
"""

PARALLEL_SRC = r"""
int main() {
  int acc = 0;
  #pragma omp parallel for reduction(+: acc)
  for (int i = 0; i < 64; i++) acc += i;
  printf("%d\n", acc);
  return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "input.c"
    path.write_text(UNROLL_SRC)
    return path


class TestTimeTraceFlag:
    def test_writes_loadable_chrome_trace(self, tmp_path, source_file):
        trace = tmp_path / "out.time-trace.json"
        code = main(
            [f"-ftime-trace={trace}", "-O", "--run", str(source_file)]
        )
        assert code == sum(range(32)) % 256
        data = json.loads(trace.read_text())
        names = {
            e["name"]
            for e in data["traceEvents"]
            if e["ph"] == "X"
        }
        assert {
            "Preprocess",
            "Parse",
            "CodeGen",
            "Pass.loop-unroll",
            "Execute",
        } <= names
        assert isinstance(data["beginningOfTime"], int)

    def test_default_trace_filename(
        self, tmp_path, source_file, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        main(["-ftime-trace", str(source_file)])
        assert (tmp_path / "input.time-trace.json").exists()

    def test_tracing_disabled_after_run(self, tmp_path, source_file):
        trace = tmp_path / "t.json"
        main([f"-ftime-trace={trace}", str(source_file)])
        assert active_time_trace() is None

    def test_no_trace_without_flag(
        self, tmp_path, source_file, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        main([str(source_file)])
        assert not list(tmp_path.glob("*.json"))


class TestPrintStatsFlag:
    def test_stats_dump_on_stderr(self, source_file, capsys):
        main(["-print-stats", "-O", "--run", str(source_file)])
        err = capsys.readouterr().err
        assert "... Statistics Collected ..." in err
        assert "shadow" in err
        assert "loop-unroll" in err

    def test_no_stats_without_flag(self, source_file, capsys):
        main(["-O", "--run", str(source_file)])
        assert "Statistics Collected" not in capsys.readouterr().err


class TestRpassFlags:
    def test_rpass_reports_applied_unroll_with_factor(
        self, source_file, capsys
    ):
        main(["-Rpass=.*", "-O", "--run", str(source_file)])
        err = capsys.readouterr().err
        assert "remark:" in err
        assert "factor of 4" in err
        assert "[-Rpass=unroll]" in err  # Sema, with source location
        assert "input.c:4:" in err
        assert "[-Rpass=loop-unroll]" in err  # mid-end

    def test_rpass_regex_filters_pass_names(self, source_file, capsys):
        main(["-Rpass=^loop-unroll$", "-O", "--run", str(source_file)])
        err = capsys.readouterr().err
        assert "[-Rpass=loop-unroll]" in err
        assert "[-Rpass=unroll]" not in err

    def test_rpass_missed_reports_rejection(self, tmp_path, capsys):
        path = tmp_path / "rejected.c"
        path.write_text(
            """
            int main() {
              int sum = 0;
              #pragma omp tile sizes(4, 4)
              for (int i = 0; i < 16; i++) sum += i;
              return sum;
            }
            """
        )
        code = main(["-Rpass-missed=.*", str(path)])
        assert code == 1  # imperfect nest is also a hard error
        err = capsys.readouterr().err
        assert "tile not applied" not in err  # strict: diags only

    def test_no_remarks_without_flag(self, source_file, capsys):
        main(["-O", "--run", str(source_file)])
        assert "remark:" not in capsys.readouterr().err


class TestProfileReportFlag:
    def test_profile_report_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "par.c"
        path.write_text(PARALLEL_SRC)
        code = main(
            ["-fprofile-report", "--run", "--num-threads", "4", str(path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == f"{sum(range(64))}\n"
        err = captured.err
        assert "=== execution profile ===" in err
        assert "total instructions:" in err
        assert "parallel regions:   1" in err
        assert "gtid 4:" in err  # four workers + serial main
        assert "per-function:" in err  # detailed mode is implied
        assert "per-loop:" in err

    def test_no_profile_without_flag(self, tmp_path, capsys):
        path = tmp_path / "par.c"
        path.write_text(PARALLEL_SRC)
        main(["--run", str(path)])
        assert "execution profile" not in capsys.readouterr().err


class TestAcceptanceScenario:
    def test_all_flags_together(self, tmp_path, capsys):
        """The ISSUE acceptance command: time-trace + stats + remarks +
        profile in one -O --run invocation."""
        path = tmp_path / "demo.c"
        path.write_text(UNROLL_SRC)
        trace = tmp_path / "demo.trace.json"
        code = main(
            [
                f"-ftime-trace={trace}",
                "-print-stats",
                "-Rpass=.*",
                "-fprofile-report",
                "-O",
                "--run",
                str(path),
            ]
        )
        assert code == sum(range(32)) % 256
        err = capsys.readouterr().err
        assert "factor of 4" in err
        assert "... Statistics Collected ..." in err
        assert "=== execution profile ===" in err
        assert json.loads(trace.read_text())["traceEvents"]
