"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with a ``[build-system]``
table) cannot build the editable wheel.  This shim lets pip fall back to the
classic ``setup.py develop`` editable path, which needs no wheel.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
