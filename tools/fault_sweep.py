#!/usr/bin/env python3
"""Fault-injection sweep over every registered crash site.

The acceptance gate for the crash-resilience subsystem (and a CI job):
for EVERY site listed by ``-print-fault-sites``, injecting a fault must
produce

* exit code 70 (EX_SOFTWARE — internal compiler error),
* an ``internal compiler error`` diagnostic naming the injected site,
* a pretty-stack dump (``Stack dump:`` or per-diagnostic notes),
* a self-contained crash reproducer (``repro.c`` + ``cmd`` +
  ``traceback.txt``) that compiles cleanly once the fault is removed,
* and **zero** raw Python tracebacks anywhere in the output.

Usage::

    python tools/fault_sweep.py [--keep DIR]

Exit status 0 when every site passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SWEEP_SOURCE = """\
extern int printf(const char*, ...);
int main() {
  int a[8];
  #pragma omp parallel for
  for (int i = 0; i < 8; ++i) a[i] = i;
  #pragma omp tile sizes(2)
  for (int i = 0; i < 8; ++i) a[i] += 1;
  int s = 0;
  for (int i = 0; i < 8; ++i) s += a[i];
  printf("%d\\n", s);
  return 0;
}
"""

EXIT_ICE = 70


def run_miniclang(args: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.driver.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


def list_sites() -> dict[str, list[str]]:
    """Registered fault sites grouped by scope.

    "pipeline" sites fire in a plain CLI compile and must be contained
    as ICEs; "storage" sites fire inside the disk cache tier and must
    be *absorbed* (the compile succeeds, the cache degrades);
    "service" sites exist inside compile-service workers and are
    exercised by the service chaos harness instead.
    """
    proc = run_miniclang(["-print-fault-sites"])
    if proc.returncode != 0:
        raise SystemExit(
            f"-print-fault-sites failed ({proc.returncode}):\n"
            f"{proc.stderr}"
        )
    by_scope: dict[str, list[str]] = {}
    for line in proc.stdout.splitlines():
        if not line.strip():
            continue
        fields = line.split("\t")
        scope = fields[1] if len(fields) >= 2 else "pipeline"
        by_scope.setdefault(scope, []).append(fields[0])
    return by_scope


def sweep_site(site: str, workdir: str) -> list[str]:
    """Returns a list of failure descriptions (empty = site passed)."""
    failures: list[str] = []
    src = os.path.join(workdir, "sweep.c")
    with open(src, "w", encoding="utf-8") as fh:
        fh.write(SWEEP_SOURCE)
    crash_dir = os.path.join(workdir, "crashes")

    proc = run_miniclang(
        [
            f"-finject-fault={site}",
            f"-crash-reproducer-dir={crash_dir}",
            "-O",
            "--run",
            src,
        ]
    )
    output = proc.stdout + proc.stderr

    if proc.returncode != EXIT_ICE:
        failures.append(
            f"expected exit {EXIT_ICE}, got {proc.returncode}"
        )
    if "internal compiler error" not in output:
        failures.append("no 'internal compiler error' diagnostic")
    if f"injected fault at site '{site}'" not in output:
        failures.append("diagnostic does not name the injected site")
    if "Traceback (most recent call last)" in output:
        failures.append("raw Python traceback leaked to the user")

    crashes = (
        sorted(os.listdir(crash_dir))
        if os.path.isdir(crash_dir)
        else []
    )
    if len(crashes) != 1:
        failures.append(f"expected 1 reproducer dir, found {crashes}")
        return failures
    repro_dir = os.path.join(crash_dir, crashes[0])
    for name in ("repro.c", "cmd", "traceback.txt"):
        if not os.path.isfile(os.path.join(repro_dir, name)):
            failures.append(f"reproducer is missing {name}")
    # Loadable: with the fault disarmed, the captured source must go
    # through the identical pipeline cleanly.
    reload_proc = run_miniclang(
        ["-O", "--run", os.path.join(repro_dir, "repro.c")]
    )
    if reload_proc.returncode != 0:
        failures.append(
            "reproducer source does not replay cleanly without the "
            f"fault (exit {reload_proc.returncode})"
        )
    return failures


def sweep_storage_site(site: str, workdir: str) -> list[str]:
    """Storage faults must be *absorbed*, not crash: armed or not, the
    compile exits 0 with byte-identical output (the cache silently
    degrades).  Swept twice — against a cold cache (write-path faults
    fire) and a warmed one (read-path faults fire)."""
    failures: list[str] = []
    src = os.path.join(workdir, "sweep.c")
    with open(src, "w", encoding="utf-8") as fh:
        fh.write(SWEEP_SOURCE)

    oracle = run_miniclang(["-emit-llvm", src])
    if oracle.returncode != 0:
        return [f"uncached oracle compile failed ({oracle.returncode})"]

    cache_dir = os.path.join(workdir, "cache")
    warm = run_miniclang([f"-fcache={cache_dir}", "-emit-llvm", src])
    if warm.returncode != 0:
        return [f"cache warm-up compile failed ({warm.returncode})"]

    for label, directory in (
        ("cold", os.path.join(workdir, "cache-cold")),
        ("warm", cache_dir),
    ):
        proc = run_miniclang(
            [
                f"-finject-fault={site}",
                f"-fcache={directory}",
                "-fcache-durable",
                "-emit-llvm",
                src,
            ]
        )
        output = proc.stdout + proc.stderr
        if proc.returncode != 0:
            failures.append(
                f"{label}: armed compile exited {proc.returncode}, "
                "storage faults must be absorbed"
            )
        if proc.stdout != oracle.stdout:
            failures.append(
                f"{label}: armed compile output differs from the "
                "uncached oracle"
            )
        if "Traceback (most recent call last)" in output:
            failures.append(
                f"{label}: raw Python traceback leaked to the user"
            )
        if "internal compiler error" in output:
            failures.append(
                f"{label}: storage fault escalated to an ICE"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--keep",
        metavar="DIR",
        help="keep per-site work directories under DIR "
        "(default: temp dir, removed on success)",
    )
    args = parser.parse_args()

    base = args.keep or tempfile.mkdtemp(prefix="fault-sweep-")
    os.makedirs(base, exist_ok=True)
    by_scope = list_sites()
    sites = by_scope.get("pipeline", [])
    storage_sites = by_scope.get("storage", [])
    print(f"sweeping {len(sites)} fault sites: {', '.join(sites)}")

    failed = False
    for site in sites:
        workdir = os.path.join(base, site)
        os.makedirs(workdir, exist_ok=True)
        failures = sweep_site(site, workdir)
        if failures:
            failed = True
            print(f"FAIL {site}")
            for failure in failures:
                print(f"     - {failure}")
        else:
            print(f"ok   {site}")

    print(
        f"sweeping {len(storage_sites)} storage fault sites: "
        f"{', '.join(storage_sites)}"
    )
    for site in storage_sites:
        workdir = os.path.join(base, site)
        os.makedirs(workdir, exist_ok=True)
        failures = sweep_storage_site(site, workdir)
        if failures:
            failed = True
            print(f"FAIL {site}")
            for failure in failures:
                print(f"     - {failure}")
        else:
            print(f"ok   {site}")

    if failed:
        print(f"\nsweep FAILED; work dirs kept under {base}")
        return 1
    if not args.keep:
        shutil.rmtree(base, ignore_errors=True)
    print("\nall sites contained their injected fault")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
