#!/usr/bin/env python3
"""Service load-test harness: ``PYTHONPATH=src python tools/service_bench.py``.

Replays mixed workloads through :class:`repro.service.CompileService`
and records what the *telemetry stack* reports — the latency histograms,
throughput, and shed/degraded rates come from the service's own metrics
registry, so the benchmark doubles as an end-to-end check that the
telemetry accounting is trustworthy under load.

Workload mixes (each runs on a fresh service + registry):

* **steady** — unique programs (``examples/`` + fuzzer-generated) at
  batch concurrency: the baseline latency profile;
* **cached** — the same sources replayed round after round with the
  response cache on: hot-path latency (``cached`` outcome) vs the cold
  first round;
* **faulted** — a chaos slice (worker kills, hangs, poison inputs)
  with fast retries: latency per terminal outcome under faults;
* **overload** — a burst several times the queue capacity: load
  shedding and the tail it protects.

``--smoke`` runs the first two mixes with small batches (the CI mode);
the default runs all four.  The report lands in ``BENCH_service.json``.
Sanity gates (always enforced): every mix must achieve nonzero
throughput, record a p99 for at least one latency outcome, and lose
zero requests (submissions == terminal responses, both in the python
objects and in the metrics registry).

Usage::

    PYTHONPATH=src python tools/service_bench.py \
        [--smoke] [--batch 24] [--rounds 3] [--duration 30] \
        [--concurrency 2] [--fuzz-seeds 12] [--out BENCH_service.json]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shutil
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service import (  # noqa: E402
    CompileRequest,
    CompileService,
    RetryPolicy,
    ServiceConfig,
)
from repro.service.chaos import _make_source  # noqa: E402
from repro.testing.generator import generate_program  # noqa: E402


def _corpus(fuzz_seeds: int) -> list[tuple[str, str]]:
    """(name, source) pairs: every example plus generated programs."""
    sources: list[tuple[str, str]] = []
    for path in sorted(
        glob.glob(os.path.join(REPO_ROOT, "examples", "*.c"))
    ):
        with open(path, "r", encoding="utf-8") as fh:
            sources.append((os.path.basename(path), fh.read()))
    for seed in range(1, fuzz_seeds + 1):
        sources.append(
            (f"fuzz-seed-{seed}", generate_program(seed).source)
        )
    return sources


def _steady_batch(args, round_index: int) -> list[CompileRequest]:
    sources = _corpus(args.fuzz_seeds)
    batch = []
    for i in range(args.batch):
        name, source = sources[i % len(sources)]
        batch.append(
            CompileRequest(
                # Unique per (round, slot): no coalescing, no cache.
                source=f"// steady r{round_index} i{i}\n" + source,
                filename=f"{name}#r{round_index}.{i}",
                mode="irbuilder" if i % 2 else "shadow",
            )
        )
    return batch


def _cached_batch(args, round_index: int) -> list[CompileRequest]:
    sources = _corpus(args.fuzz_seeds)
    return [
        CompileRequest(
            # Identical across rounds: round 0 populates the response
            # cache, later rounds replay from it.
            source=sources[i % len(sources)][1],
            filename=sources[i % len(sources)][0],
        )
        for i in range(args.batch)
    ]


def _faulted_batch(args, round_index: int) -> list[CompileRequest]:
    batch = []
    for i in range(args.batch):
        faults: tuple[str, ...] = ()
        fault_attempts = 1
        if i % 8 == 1:
            faults = ("service-worker-exit",)
        elif i % 8 == 3:
            faults = ("service-worker-hang",)
        elif i % 8 == 5:
            faults = ("service-worker",)
            fault_attempts = -1  # poison: fails on every attempt
        batch.append(
            CompileRequest(
                source=_make_source(i + round_index * args.batch),
                filename=f"faulted-{round_index}.{i}.c",
                action="run",
                mode="irbuilder" if i % 2 else "shadow",
                deadline_s=3.0,
                inject_faults=faults,
                fault_attempts=fault_attempts,
            )
        )
    return batch


def _overload_batch(args, round_index: int) -> list[CompileRequest]:
    sources = _corpus(args.fuzz_seeds)
    return [
        CompileRequest(
            source=f"// burst r{round_index} i{i}\n"
            + sources[i % len(sources)][1],
            filename=f"burst-{round_index}.{i}.c",
        )
        # A burst several times the overload queue capacity.
        for i in range(args.batch * 4)
    ]


def _mix_config(name: str, args, scratch: str) -> ServiceConfig:
    common = dict(
        workers=args.concurrency,
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.1
        ),
        quarantine_dir=None,
    )
    if name == "steady":
        return ServiceConfig(queue_capacity=args.batch * 8, **common)
    if name == "cached":
        return ServiceConfig(
            queue_capacity=args.batch * 8,
            enable_cache=True,
            cache_dir=os.path.join(scratch, "cache"),
            **common,
        )
    if name == "faulted":
        return ServiceConfig(
            queue_capacity=args.batch * 8,
            deadline_s=3.0,
            breaker_threshold=3,
            **common,
        )
    if name == "overload":
        # Deliberately too small for the burst: sheds are the point.
        return ServiceConfig(
            queue_capacity=max(4, args.batch), **common
        )
    raise ValueError(f"unknown mix {name!r}")


_MIX_BUILDERS = {
    "steady": _steady_batch,
    "cached": _cached_batch,
    "faulted": _faulted_batch,
    "overload": _overload_batch,
}


def _latency_table(snapshot: dict, metric: str) -> dict:
    table = {}
    for row in snapshot.get(metric, {}).get("series", []):
        outcome = row["labels"].get("outcome", "")
        table[outcome or "_"] = {
            "count": row["count"],
            "p50_s": row["p50"],
            "p95_s": row["p95"],
            "p99_s": row["p99"],
            "mean_s": round(row["sum"] / max(row["count"], 1), 6),
        }
    return table


def run_mix(name: str, args, scratch: str) -> dict:
    """Run one workload mix to its duration/round budget and report
    what the metrics registry observed."""
    build = _MIX_BUILDERS[name]
    config = _mix_config(name, args, scratch)
    submitted = 0
    answered = 0
    statuses: dict[str, int] = {}
    rounds = 0
    started = time.perf_counter()
    with CompileService(config) as service:
        while rounds < args.rounds:
            batch = build(args, rounds)
            responses = service.process_batch(batch)
            submitted += len(batch)
            answered += sum(
                1 for r in responses if r is not None and r.status
            )
            for r in responses:
                statuses[r.status] = statuses.get(r.status, 0) + 1
            rounds += 1
            if time.perf_counter() - started >= args.duration:
                break
        wall_s = time.perf_counter() - started
        snapshot = service.metrics.snapshot()
    requests_in = snapshot["service_requests_total"]["series"][0][
        "value"
    ]
    responses_out = sum(
        row["value"]
        for row in snapshot["service_responses_total"]["series"]
    )
    latency = _latency_table(
        snapshot, "service_request_duration_seconds"
    )
    total = max(submitted, 1)
    return {
        "rounds": rounds,
        "requests": submitted,
        "responses": answered,
        "lost": submitted - answered,
        "metrics_requests_in": requests_in,
        "metrics_responses_out": responses_out,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(submitted / max(wall_s, 1e-9), 2),
        "statuses": dict(sorted(statuses.items())),
        "rates": {
            "shed": round(
                statuses.get("resource-exhausted", 0) / total, 4
            ),
            "degraded": round(statuses.get("degraded", 0) / total, 4),
            "error": round(statuses.get("error", 0) / total, 4),
            "circuit_open": round(
                statuses.get("circuit-open", 0) / total, 4
            ),
        },
        "latency_by_outcome": latency,
        "queue_wait": _latency_table(
            snapshot, "service_queue_wait_seconds"
        ),
    }


def _check_mix(name: str, report: dict) -> list[str]:
    """The sanity gates every mix must pass."""
    problems = []
    if report["throughput_rps"] <= 0:
        problems.append(f"{name}: zero throughput")
    if report["lost"] != 0:
        problems.append(f"{name}: lost {report['lost']} request(s)")
    if report["metrics_requests_in"] != report["metrics_responses_out"]:
        problems.append(
            f"{name}: metrics accounting broken: "
            f"{report['metrics_requests_in']} in vs "
            f"{report['metrics_responses_out']} terminal"
        )
    if not any(
        row["count"] > 0 and row["p99_s"] > 0
        for row in report["latency_by_outcome"].values()
    ):
        problems.append(f"{name}: no p99 recorded")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="service_bench",
        description="load-test the compile service and record what "
        "its telemetry reports",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: steady + cached mixes only, small batches",
    )
    parser.add_argument("--batch", type=int, default=24)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--duration",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-mix wall-clock budget (stops after the round that "
        "crosses it)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=2,
        help="worker pool size per mix",
    )
    parser.add_argument("--fuzz-seeds", type=int, default=12)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--mixes",
        default=None,
        help="comma-separated subset of "
        + "/".join(_MIX_BUILDERS),
    )
    args = parser.parse_args(argv)

    if args.mixes:
        mix_names = [m.strip() for m in args.mixes.split(",") if m.strip()]
        unknown = set(mix_names) - set(_MIX_BUILDERS)
        if unknown:
            parser.error(f"unknown mixes: {sorted(unknown)}")
    elif args.smoke:
        mix_names = ["steady", "cached"]
        args.batch = min(args.batch, 8)
        args.rounds = min(args.rounds, 2)
        args.fuzz_seeds = min(args.fuzz_seeds, 4)
    else:
        mix_names = list(_MIX_BUILDERS)

    scratch = tempfile.mkdtemp(prefix="miniclang-service-bench-")
    mixes: dict[str, dict] = {}
    problems: list[str] = []
    try:
        for name in mix_names:
            report = run_mix(name, args, scratch)
            mixes[name] = report
            problems.extend(_check_mix(name, report))
            ok_n = report["statuses"].get("ok", 0)
            print(
                f"service-bench: {name}: {report['requests']} reqs in "
                f"{report['wall_s']}s ({report['throughput_rps']} rps) "
                f"| ok={ok_n} shed={report['rates']['shed']:.0%} "
                f"degraded={report['rates']['degraded']:.0%} | "
                + " ".join(
                    f"{o}:p99={row['p99_s']}s"
                    for o, row in sorted(
                        report["latency_by_outcome"].items()
                    )
                )
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    report = {
        "tool": "service_bench",
        "smoke": bool(args.smoke),
        "concurrency": args.concurrency,
        "batch": args.batch,
        "rounds": args.rounds,
        "mixes": mixes,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"service-bench: wrote {args.out}")
    if problems:
        for problem in problems:
            print(f"service-bench: FAIL: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
