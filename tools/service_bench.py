#!/usr/bin/env python3
"""Service load-test harness: ``PYTHONPATH=src python tools/service_bench.py``.

Replays mixed workloads through :class:`repro.service.CompileService`
and records what the *telemetry stack* reports — the latency histograms,
throughput, and shed/degraded rates come from the service's own metrics
registry, so the benchmark doubles as an end-to-end check that the
telemetry accounting is trustworthy under load.

Workload mixes (each runs on a fresh service + registry):

* **steady** — unique programs (``examples/`` + fuzzer-generated) at
  batch concurrency: the baseline latency profile;
* **cached** — the same sources replayed round after round with the
  response cache on: hot-path latency (``cached`` outcome) vs the cold
  first round;
* **faulted** — a chaos slice (worker kills, hangs, poison inputs)
  with fast retries: latency per terminal outcome under faults;
* **overload** — a burst several times the queue capacity: load
  shedding and the tail it protects.

``--smoke`` runs the first two mixes with small batches (the CI mode);
the default runs all four.  The report lands in ``BENCH_service.json``.
Sanity gates (always enforced): every mix must achieve nonzero
throughput, record a p99 for at least one latency outcome, and lose
zero requests (submissions == terminal responses, both in the python
objects and in the metrics registry).

Usage::

    PYTHONPATH=src python tools/service_bench.py \
        [--smoke] [--batch 24] [--rounds 3] [--duration 30] \
        [--concurrency 2] [--fuzz-seeds 12] [--out BENCH_service.json]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shutil
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service import (  # noqa: E402
    CompileRequest,
    CompileService,
    RetryPolicy,
    ServiceConfig,
)
from repro.service.chaos import _make_source  # noqa: E402
from repro.testing.generator import generate_program  # noqa: E402


def _corpus(fuzz_seeds: int) -> list[tuple[str, str]]:
    """(name, source) pairs: every example plus generated programs."""
    sources: list[tuple[str, str]] = []
    for path in sorted(
        glob.glob(os.path.join(REPO_ROOT, "examples", "*.c"))
    ):
        with open(path, "r", encoding="utf-8") as fh:
            sources.append((os.path.basename(path), fh.read()))
    for seed in range(1, fuzz_seeds + 1):
        sources.append(
            (f"fuzz-seed-{seed}", generate_program(seed).source)
        )
    return sources


def _steady_batch(args, round_index: int) -> list[CompileRequest]:
    sources = _corpus(args.fuzz_seeds)
    batch = []
    for i in range(args.batch):
        name, source = sources[i % len(sources)]
        batch.append(
            CompileRequest(
                # Unique per (round, slot): no coalescing, no cache.
                source=f"// steady r{round_index} i{i}\n" + source,
                filename=f"{name}#r{round_index}.{i}",
                mode="irbuilder" if i % 2 else "shadow",
            )
        )
    return batch


def _cached_batch(args, round_index: int) -> list[CompileRequest]:
    sources = _corpus(args.fuzz_seeds)
    return [
        CompileRequest(
            # Identical across rounds: round 0 populates the response
            # cache, later rounds replay from it.
            source=sources[i % len(sources)][1],
            filename=sources[i % len(sources)][0],
        )
        for i in range(args.batch)
    ]


def _faulted_batch(args, round_index: int) -> list[CompileRequest]:
    batch = []
    for i in range(args.batch):
        faults: tuple[str, ...] = ()
        fault_attempts = 1
        if i % 8 == 1:
            faults = ("service-worker-exit",)
        elif i % 8 == 3:
            faults = ("service-worker-hang",)
        elif i % 8 == 5:
            faults = ("service-worker",)
            fault_attempts = -1  # poison: fails on every attempt
        batch.append(
            CompileRequest(
                source=_make_source(i + round_index * args.batch),
                filename=f"faulted-{round_index}.{i}.c",
                action="run",
                mode="irbuilder" if i % 2 else "shadow",
                deadline_s=3.0,
                inject_faults=faults,
                fault_attempts=fault_attempts,
            )
        )
    return batch


def _overload_batch(args, round_index: int) -> list[CompileRequest]:
    sources = _corpus(args.fuzz_seeds)
    return [
        CompileRequest(
            source=f"// burst r{round_index} i{i}\n"
            + sources[i % len(sources)][1],
            filename=f"burst-{round_index}.{i}.c",
        )
        # A burst several times the overload queue capacity.
        for i in range(args.batch * 4)
    ]


def _mix_config(name: str, args, scratch: str) -> ServiceConfig:
    common = dict(
        workers=args.concurrency,
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.1
        ),
        quarantine_dir=None,
    )
    if name == "steady":
        return ServiceConfig(queue_capacity=args.batch * 8, **common)
    if name == "cached":
        return ServiceConfig(
            queue_capacity=args.batch * 8,
            enable_cache=True,
            cache_dir=os.path.join(scratch, "cache"),
            **common,
        )
    if name == "faulted":
        return ServiceConfig(
            queue_capacity=args.batch * 8,
            deadline_s=3.0,
            breaker_threshold=3,
            **common,
        )
    if name == "overload":
        # Deliberately too small for the burst: sheds are the point.
        return ServiceConfig(
            queue_capacity=max(4, args.batch), **common
        )
    raise ValueError(f"unknown mix {name!r}")


_MIX_BUILDERS = {
    "steady": _steady_batch,
    "cached": _cached_batch,
    "faulted": _faulted_batch,
    "overload": _overload_batch,
}


def _latency_table(snapshot: dict, metric: str) -> dict:
    table = {}
    for row in snapshot.get(metric, {}).get("series", []):
        outcome = row["labels"].get("outcome", "")
        table[outcome or "_"] = {
            "count": row["count"],
            "p50_s": row["p50"],
            "p95_s": row["p95"],
            "p99_s": row["p99"],
            "mean_s": round(row["sum"] / max(row["count"], 1), 6),
        }
    return table


def run_mix(name: str, args, scratch: str) -> dict:
    """Run one workload mix to its duration/round budget and report
    what the metrics registry observed."""
    build = _MIX_BUILDERS[name]
    config = _mix_config(name, args, scratch)
    submitted = 0
    answered = 0
    statuses: dict[str, int] = {}
    rounds = 0
    started = time.perf_counter()
    with CompileService(config) as service:
        while rounds < args.rounds:
            batch = build(args, rounds)
            responses = service.process_batch(batch)
            submitted += len(batch)
            answered += sum(
                1 for r in responses if r is not None and r.status
            )
            for r in responses:
                statuses[r.status] = statuses.get(r.status, 0) + 1
            rounds += 1
            if time.perf_counter() - started >= args.duration:
                break
        wall_s = time.perf_counter() - started
        snapshot = service.metrics.snapshot()
    requests_in = snapshot["service_requests_total"]["series"][0][
        "value"
    ]
    responses_out = sum(
        row["value"]
        for row in snapshot["service_responses_total"]["series"]
    )
    latency = _latency_table(
        snapshot, "service_request_duration_seconds"
    )
    total = max(submitted, 1)
    return {
        "rounds": rounds,
        "requests": submitted,
        "responses": answered,
        "lost": submitted - answered,
        "metrics_requests_in": requests_in,
        "metrics_responses_out": responses_out,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(submitted / max(wall_s, 1e-9), 2),
        "statuses": dict(sorted(statuses.items())),
        "rates": {
            "shed": round(
                statuses.get("resource-exhausted", 0) / total, 4
            ),
            "degraded": round(statuses.get("degraded", 0) / total, 4),
            "error": round(statuses.get("error", 0) / total, 4),
            "circuit_open": round(
                statuses.get("circuit-open", 0) / total, 4
            ),
        },
        "latency_by_outcome": latency,
        "queue_wait": _latency_table(
            snapshot, "service_queue_wait_seconds"
        ),
    }


# ----------------------------------------------------------------------
# Transport comparison: the same client-side workload through the
# in-process shard router vs over TCP (NetServerThread + NetClient).
# Latencies here are *exact* client-wall medians (statistics.median of
# per-request wall times), not bucketed histogram quantiles — the
# 2x-overhead gate needs more resolution than log-spaced buckets give.
# ----------------------------------------------------------------------

TRANSPORT_MIXES = ("steady", "cached")

#: the acceptance gate: steady-state p50 over TCP must stay within
#: this factor of the in-process p50
TCP_P50_FACTOR = 2.0


def _exact_latency(samples: list[float]) -> dict:
    import statistics

    data = sorted(samples)
    if not data:
        return {"count": 0, "p50_s": 0.0, "p95_s": 0.0, "mean_s": 0.0}
    return {
        "count": len(data),
        "p50_s": round(statistics.median(data), 6),
        "p95_s": round(
            data[min(len(data) - 1, int(0.95 * len(data)))], 6
        ),
        "mean_s": round(sum(data) / len(data), 6),
        "max_s": round(data[-1], 6),
    }


def _transport_configs(
    mix: str, transport: str, args, scratch: str
) -> list[ServiceConfig]:
    common = dict(
        workers=args.concurrency,
        queue_capacity=args.batch * 8,
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.1
        ),
        quarantine_dir=None,
        retain_responses=False,
    )
    if mix == "cached":
        return [
            ServiceConfig(
                enable_cache=True,
                cache_dir=os.path.join(
                    scratch, f"{transport}-{mix}-cache-{i}"
                ),
                **common,
            )
            for i in range(args.shards)
        ]
    return [ServiceConfig(**common) for _ in range(args.shards)]


def run_transport_mix(
    transport: str, mix: str, args, scratch: str
) -> dict:
    """One workload mix through one transport; exact client-side wall
    latencies plus the merged shard-ledger accounting."""
    import threading

    from repro.service.net import (
        NetClient,
        NetServerConfig,
        NetServerThread,
        ShardRouter,
    )

    configs = _transport_configs(mix, transport, args, scratch)
    sources = _corpus(args.fuzz_seeds)
    per_client = max(4, args.batch // max(1, args.clients))
    # cached needs a cold round to populate before the timed rounds
    rounds = max(2, args.rounds) if mix == "cached" else 1

    host = None
    router = None
    if transport == "tcp":
        host = NetServerThread(configs, NetServerConfig())
        host.start()
    else:
        router = ShardRouter(configs).start()

    durations: list[float] = []
    statuses: dict[str, int] = {}
    duplicates = 0
    lock = threading.Lock()

    def build_request(tag: int, rnd: int, k: int) -> CompileRequest:
        name, source = sources[k % len(sources)]
        if mix == "steady":
            # Unique per (transport, client, slot): no cache, no
            # coalescing — every request does the full pipeline.
            source = f"// {transport} t{tag} k{k}\n" + source
            name = f"{name}#{transport}.{tag}.{k}"
        return CompileRequest(
            source=source,
            filename=name,
            mode="irbuilder" if k % 2 else "shadow",
        )

    def submit_inproc(request: CompileRequest):
        done = threading.Event()
        box: list = []

        def callback(response) -> None:
            box.append(response)
            done.set()

        router.submit(request, callback)
        done.wait(timeout=120.0)
        return box[0] if box else None

    def worker(tag: int) -> None:
        nonlocal duplicates
        client = None
        if transport == "tcp":
            client = NetClient(host.address, deadline_s=60.0)
            send = client.request
        else:
            send = submit_inproc
        local: list[float] = []
        local_statuses: dict[str, int] = {}
        for rnd in range(rounds):
            for k in range(per_client):
                request = build_request(tag, rnd, k)
                t0 = time.perf_counter()
                response = send(request)
                elapsed = time.perf_counter() - t0
                status = (
                    response.status if response is not None else "lost"
                )
                # cached: time only the warm rounds
                if mix != "cached" or rnd > 0:
                    local.append(elapsed)
                local_statuses[status] = (
                    local_statuses.get(status, 0) + 1
                )
        with lock:
            durations.extend(local)
            for status, n in local_statuses.items():
                statuses[status] = statuses.get(status, 0) + n
            if client is not None:
                duplicates += client.duplicate_responses

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(tag,), daemon=True)
        for tag in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    if transport == "tcp":
        host.stop(drain_deadline_s=10.0)
        merged = host.router.merged_metrics().snapshot()
    else:
        router.shutdown()
        merged = router.merged_metrics().snapshot()

    requests_in = merged["service_requests_total"]["series"][0]["value"]
    responses_out = sum(
        row["value"]
        for row in merged["service_responses_total"]["series"]
    )
    issued = args.clients * per_client * rounds
    return {
        "transport": transport,
        "shards": args.shards,
        "clients": args.clients,
        "requests": issued,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(issued / max(wall_s, 1e-9), 2),
        "statuses": dict(sorted(statuses.items())),
        "duplicate_responses": duplicates,
        "metrics_requests_in": requests_in,
        "metrics_responses_out": responses_out,
        "client_wall_latency": _exact_latency(durations),
    }


def _check_transport_mix(
    transport: str, mix: str, report: dict
) -> list[str]:
    problems = []
    label = f"{transport}/{mix}"
    if report["statuses"].get("lost", 0):
        problems.append(
            f"{label}: {report['statuses']['lost']} lost request(s)"
        )
    if report["statuses"].get("ok", 0) != report["requests"]:
        problems.append(
            f"{label}: not every request ok: {report['statuses']}"
        )
    if report["duplicate_responses"]:
        problems.append(
            f"{label}: {report['duplicate_responses']} "
            "double-answered request(s)"
        )
    if report["metrics_requests_in"] != report["metrics_responses_out"]:
        problems.append(
            f"{label}: merged ledger broken: "
            f"{report['metrics_requests_in']} in vs "
            f"{report['metrics_responses_out']} terminal"
        )
    if report["client_wall_latency"]["count"] == 0:
        problems.append(f"{label}: no latency samples")
    return problems


def _check_mix(name: str, report: dict) -> list[str]:
    """The sanity gates every mix must pass."""
    problems = []
    if report["throughput_rps"] <= 0:
        problems.append(f"{name}: zero throughput")
    if report["lost"] != 0:
        problems.append(f"{name}: lost {report['lost']} request(s)")
    if report["metrics_requests_in"] != report["metrics_responses_out"]:
        problems.append(
            f"{name}: metrics accounting broken: "
            f"{report['metrics_requests_in']} in vs "
            f"{report['metrics_responses_out']} terminal"
        )
    if not any(
        row["count"] > 0 and row["p99_s"] > 0
        for row in report["latency_by_outcome"].values()
    ):
        problems.append(f"{name}: no p99 recorded")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="service_bench",
        description="load-test the compile service and record what "
        "its telemetry reports",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: steady + cached mixes only, small batches",
    )
    parser.add_argument("--batch", type=int, default=24)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--duration",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-mix wall-clock budget (stops after the round that "
        "crosses it)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=2,
        help="worker pool size per mix",
    )
    parser.add_argument("--fuzz-seeds", type=int, default=12)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--transport",
        choices=("both", "inproc", "tcp", "none"),
        default="both",
        help="also run the steady+cached mixes through the shard "
        "router in-process and/or over TCP, recording exact "
        "client-wall medians (default: both; 'none' skips)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for the transport comparison",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent clients for the transport comparison",
    )
    parser.add_argument(
        "--mixes",
        default=None,
        help="comma-separated subset of "
        + "/".join(_MIX_BUILDERS),
    )
    args = parser.parse_args(argv)

    if args.mixes:
        mix_names = [m.strip() for m in args.mixes.split(",") if m.strip()]
        unknown = set(mix_names) - set(_MIX_BUILDERS)
        if unknown:
            parser.error(f"unknown mixes: {sorted(unknown)}")
    elif args.smoke:
        mix_names = ["steady", "cached"]
        args.batch = min(args.batch, 8)
        args.rounds = min(args.rounds, 2)
        args.fuzz_seeds = min(args.fuzz_seeds, 4)
    else:
        mix_names = list(_MIX_BUILDERS)

    scratch = tempfile.mkdtemp(prefix="miniclang-service-bench-")
    mixes: dict[str, dict] = {}
    problems: list[str] = []
    try:
        for name in mix_names:
            report = run_mix(name, args, scratch)
            mixes[name] = report
            problems.extend(_check_mix(name, report))
            ok_n = report["statuses"].get("ok", 0)
            print(
                f"service-bench: {name}: {report['requests']} reqs in "
                f"{report['wall_s']}s ({report['throughput_rps']} rps) "
                f"| ok={ok_n} shed={report['rates']['shed']:.0%} "
                f"degraded={report['rates']['degraded']:.0%} | "
                + " ".join(
                    f"{o}:p99={row['p99_s']}s"
                    for o, row in sorted(
                        report["latency_by_outcome"].items()
                    )
                )
            )
        transports: dict[str, dict] = {}
        if args.transport != "none":
            transport_names = (
                ["inproc", "tcp"]
                if args.transport == "both"
                else [args.transport]
            )
            for transport in transport_names:
                transports[transport] = {}
                for mix in TRANSPORT_MIXES:
                    t_report = run_transport_mix(
                        transport, mix, args, scratch
                    )
                    transports[transport][mix] = t_report
                    problems.extend(
                        _check_transport_mix(transport, mix, t_report)
                    )
                    lat = t_report["client_wall_latency"]
                    print(
                        f"service-bench: transport {transport}/{mix}: "
                        f"{t_report['requests']} reqs "
                        f"({t_report['throughput_rps']} rps) | "
                        f"p50={lat['p50_s']}s p95={lat['p95_s']}s "
                        f"(exact, n={lat['count']})"
                    )
        if "inproc" in transports and "tcp" in transports:
            inproc_p50 = transports["inproc"]["steady"][
                "client_wall_latency"
            ]["p50_s"]
            tcp_p50 = transports["tcp"]["steady"][
                "client_wall_latency"
            ]["p50_s"]
            ratio = round(tcp_p50 / max(inproc_p50, 1e-9), 3)
            transports["tcp_over_inproc_steady_p50"] = ratio
            print(
                f"service-bench: tcp/inproc steady p50 ratio: {ratio} "
                f"(gate: <= {TCP_P50_FACTOR})"
            )
            if tcp_p50 > TCP_P50_FACTOR * inproc_p50:
                problems.append(
                    f"tcp steady p50 {tcp_p50}s exceeds "
                    f"{TCP_P50_FACTOR}x in-process {inproc_p50}s"
                )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    report = {
        "tool": "service_bench",
        "smoke": bool(args.smoke),
        "concurrency": args.concurrency,
        "batch": args.batch,
        "rounds": args.rounds,
        "mixes": mixes,
        "transports": transports,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"service-bench: wrote {args.out}")
    if problems:
        for problem in problems:
            print(f"service-bench: FAIL: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
