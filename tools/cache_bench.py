#!/usr/bin/env python3
"""Compilation-cache benchmark: cold vs warm latency over a corpus.

Replays the ``examples/`` sources plus a slice of the fuzzer's
generated corpus through :func:`repro.pipeline.compile_source_cached`
three ways per source and optimization level:

* **cold** — empty cache, the full pipeline runs;
* **warm** — immediate repeat, served from the in-memory tier
  (exact-alias replay);
* **disk-warm** — a fresh :class:`~repro.cache.CompilationCache`
  instance over the same directory, simulating a new process reusing a
  populated on-disk cache.

Reports p50/p95/mean latency per path and the per-source cold/warm
speedup distribution, and writes the whole table to ``BENCH_cache.json``
(the CI artifact that seeds the perf trajectory).  Exit status 1 when
``--min-speedup`` (default off) is not met by the p50 speedup.

Usage::

    PYTHONPATH=src python tools/cache_bench.py \
        [--fuzz-seeds 30] [--repeats 5] [--out BENCH_cache.json] \
        [--min-speedup 10]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cache import CompilationCache  # noqa: E402
from repro.pipeline import (  # noqa: E402
    CompilationError,
    compile_source_cached,
)
from repro.testing.generator import generate_program  # noqa: E402


def _percentiles(values: list[float]) -> dict:
    ordered = sorted(values)
    if not ordered:
        return {"p50": 0.0, "p95": 0.0, "mean": 0.0}

    def pct(p: float) -> float:
        idx = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
        return ordered[idx]

    return {
        "p50": round(pct(0.50), 4),
        "p95": round(pct(0.95), 4),
        "mean": round(statistics.fmean(ordered), 4),
    }


def _collect_corpus(fuzz_seeds: int) -> list[tuple[str, str]]:
    corpus: list[tuple[str, str]] = []
    for path in sorted(
        glob.glob(os.path.join(REPO_ROOT, "examples", "*.c"))
    ):
        with open(path, "r", encoding="utf-8") as fh:
            corpus.append((os.path.basename(path), fh.read()))
    for seed in range(1, fuzz_seeds + 1):
        corpus.append(
            (f"fuzz-seed-{seed}", generate_program(seed).source)
        )
    return corpus


def _time_ms(fn) -> float:
    start = time.perf_counter_ns()
    fn()
    return (time.perf_counter_ns() - start) / 1e6


def run_bench(
    fuzz_seeds: int, repeats: int, cache_dir: str
) -> dict:
    corpus = _collect_corpus(fuzz_seeds)
    entries = []
    cache = CompilationCache(cache_dir)
    for name, source in corpus:
        for optimize in (False, True):
            label = f"{name}@O{int(optimize)}"
            try:
                cold_ms = _time_ms(
                    lambda: compile_source_cached(
                        source, cache, optimize=optimize
                    )
                )
            except CompilationError:
                continue  # fuzz corpus noise: skip invalid programs
            warm_samples = [
                _time_ms(
                    lambda: compile_source_cached(
                        source, cache, optimize=optimize
                    )
                )
                for _ in range(repeats)
            ]
            warm_ms = statistics.median(warm_samples)
            entries.append(
                {
                    "name": label,
                    "cold_ms": round(cold_ms, 4),
                    "warm_ms": round(warm_ms, 4),
                    "speedup": round(cold_ms / max(warm_ms, 1e-6), 2),
                }
            )
    # A fresh cache object over the same directory: the first lookup
    # must come off disk (new process simulation).
    fresh = CompilationCache(cache_dir)
    disk_samples = [
        _time_ms(
            lambda: compile_source_cached(
                corpus[i % len(corpus)][1], fresh
            )
        )
        for i in range(min(len(corpus), 32))
    ]
    report = {
        "tool": "cache_bench",
        "corpus": {
            "examples": sum(
                1 for n, _ in corpus if not n.startswith("fuzz-seed-")
            ),
            "fuzz": sum(
                1 for n, _ in corpus if n.startswith("fuzz-seed-")
            ),
            "measured": len(entries),
        },
        "repeats": repeats,
        "cold_ms": _percentiles([e["cold_ms"] for e in entries]),
        "warm_ms": _percentiles([e["warm_ms"] for e in entries]),
        "disk_warm_ms": _percentiles(disk_samples),
        "speedup": _percentiles([e["speedup"] for e in entries]),
        "entries": entries,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="cache_bench",
        description="cold/warm compilation-cache latency benchmark",
    )
    parser.add_argument("--fuzz-seeds", type=int, default=30)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default="BENCH_cache.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) when the p50 cold/warm speedup is below "
        "this factor",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="benchmark cache directory (default: a fresh temp dir, "
        "removed afterwards)",
    )
    args = parser.parse_args(argv)

    cache_dir = args.cache_dir or tempfile.mkdtemp(
        prefix="miniclang-cache-bench-"
    )
    try:
        report = run_bench(args.fuzz_seeds, args.repeats, cache_dir)
    finally:
        if args.cache_dir is None:
            shutil.rmtree(cache_dir, ignore_errors=True)

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(
        "cache-bench: {measured} compiles | cold p50 {cold}ms | warm "
        "p50 {warm}ms | disk-warm p50 {disk}ms | speedup p50 "
        "{speed}x (p95 {speed95}x)".format(
            measured=report["corpus"]["measured"],
            cold=report["cold_ms"]["p50"],
            warm=report["warm_ms"]["p50"],
            disk=report["disk_warm_ms"]["p50"],
            speed=report["speedup"]["p50"],
            speed95=report["speedup"]["p95"],
        )
    )
    print(f"cache-bench: wrote {args.out}")
    if (
        args.min_speedup is not None
        and report["speedup"]["p50"] < args.min_speedup
    ):
        print(
            f"cache-bench: FAIL p50 speedup "
            f"{report['speedup']['p50']}x < {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
