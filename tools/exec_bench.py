#!/usr/bin/env python3
"""Execution-engine benchmark: interpreter vs closure engine.

Runs the loop-kernel corpus (the ``benchmarks/`` shapes: tiled,
unrolled-with-remainder, fused, stencil, reduction, plus one
worksharing kernel) under both execution engines and records wall-clock
p50/p95 per kernel plus the per-kernel and geometric-mean speedups to
``BENCH_exec.json``.

Each sample is the full execute latency — engine construction
(including lazy closure compilation) plus the run — over a module
compiled once per kernel, so the closure engine's compile overhead is
charged against it.  Every sample is sanity-checked: both engines must
produce identical stdout and retire identical instruction counts, or
the benchmark aborts (a benchmark that races two engines producing
different answers measures nothing).

Exit status 1 when ``--min-speedup`` is given and the geometric-mean
p50 speedup falls below it.

Usage::

    PYTHONPATH=src python tools/exec_bench.py \
        [--repeats 5] [--smoke] [--out BENCH_exec.json] \
        [--min-speedup 5]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.exec import create_interpreter  # noqa: E402
from repro.midend import default_pass_pipeline  # noqa: E402
from repro.pipeline import compile_source  # noqa: E402

#: (name, num_threads, source template) — %(n)d is the problem size
KERNELS = [
    (
        "tile-remainder",
        1,
        r"""
int main(void) {
  static long grid[%(n)d][%(n)d];
  long checksum = 0;
  #pragma omp tile sizes(4, 4)
  for (int i = 0; i < %(n)d; i += 1)
    for (int j = 0; j < %(n)d; j += 1)
      grid[i][j] = i * 31 + j;
  for (int i = 0; i < %(n)d; i += 1)
    for (int j = 0; j < %(n)d; j += 1)
      checksum += grid[i][j];
  printf("%%d\n", (int)(checksum %% 1000000));
  return 0;
}
""",
    ),
    (
        "unroll-remainder",
        1,
        r"""
int main(void) {
  long acc = 0;
  #pragma omp unroll partial(4)
  for (int i = 0; i < %(n)d; i += 1)
    acc += i * 3 - 1;
  printf("%%d\n", (int)(acc %% 1000000));
  return 0;
}
""",
    ),
    (
        "fuse",
        1,
        r"""
int main(void) {
  static int a[%(n)d], b[%(n)d];
  long sum = 0;
  #pragma omp fuse
  {
    for (int i = 0; i < %(n)d; i += 1) a[i] = i * 7;
    for (int j = 0; j < %(n)d; j += 1) b[j] = j - 3;
  }
  for (int i = 0; i < %(n)d; i += 1) sum += a[i] + b[i];
  printf("%%d\n", (int)(sum %% 1000000));
  return 0;
}
""",
    ),
    (
        "stencil",
        1,
        r"""
int main(void) {
  static double cur[%(n)d], nxt[%(n)d];
  for (int i = 0; i < %(n)d; i += 1) cur[i] = i * 0.25;
  for (int t = 0; t < 8; t += 1) {
    for (int i = 1; i < %(n)d - 1; i += 1)
      nxt[i] = (cur[i - 1] + cur[i] + cur[i + 1]) / 3.0;
    for (int i = 1; i < %(n)d - 1; i += 1) cur[i] = nxt[i];
  }
  double sum = 0.0;
  for (int i = 0; i < %(n)d; i += 1) sum += cur[i];
  printf("%%f\n", sum);
  return 0;
}
""",
    ),
    (
        "reduction",
        1,
        r"""
int main(void) {
  long sum = 0;
  for (int i = 0; i < %(n)d; i += 1)
    sum += (i * 13) %% 7 + (i >> 2);
  printf("%%d\n", (int)(sum %% 1000000));
  return 0;
}
""",
    ),
    (
        "worksharing",
        4,
        r"""
int main(void) {
  long sum = 0;
  #pragma omp parallel for reduction(+: sum) schedule(static) \
      num_threads(4)
  for (int i = 0; i < %(n)d; i += 1)
    sum += i * 5 - 2;
  printf("%%d\n", (int)(sum %% 1000000));
  return 0;
}
""",
    ),
]

#: problem sizes; smoke keeps CI latency low, full sizes the committed
#: BENCH_exec.json
SIZES = {
    "tile-remainder": (30, 62),
    "unroll-remainder": (4003, 40003),
    "fuse": (1500, 15000),
    "stencil": (800, 6000),
    "reduction": (3000, 30000),
    "worksharing": (2000, 20000),
}


def _percentiles(values: list[float]) -> dict:
    ordered = sorted(values)

    def pct(p: float) -> float:
        idx = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
        return ordered[idx]

    return {
        "p50": round(pct(0.50), 4),
        "p95": round(pct(0.95), 4),
        "mean": round(statistics.fmean(ordered), 4),
    }


def _compile_kernel(source: str):
    result = compile_source(source)
    default_pass_pipeline(remarks=result.diagnostics.remarks).run(
        result.module
    )
    return result.module


def _sample(module, engine: str, num_threads: int):
    """One end-to-end execute sample: engine construction (including
    closure compilation) plus the run.  Returns (ms, stdout, insts)."""
    start = time.perf_counter_ns()
    interp = create_interpreter(module, engine=engine)
    interp.omp.num_threads = num_threads
    exit_code = interp.run("main", [])
    elapsed_ms = (time.perf_counter_ns() - start) / 1e6
    assert exit_code == 0, f"kernel exited {exit_code} under {engine}"
    return elapsed_ms, interp.output(), interp.instruction_count


def run_bench(repeats: int, smoke: bool) -> dict:
    entries = []
    for name, num_threads, template in KERNELS:
        n = SIZES[name][0 if smoke else 1]
        module = _compile_kernel(template % {"n": n})
        samples = {"interp": [], "closures": []}
        reference = None
        for _ in range(repeats):
            for engine in ("interp", "closures"):
                ms, stdout, insts = _sample(module, engine, num_threads)
                if reference is None:
                    reference = (stdout, insts)
                elif (stdout, insts) != reference:
                    raise SystemExit(
                        f"exec-bench: engines diverged on '{name}': "
                        f"{engine} produced {(stdout, insts)!r}, "
                        f"expected {reference!r}"
                    )
                samples[engine].append(ms)
        interp_stats = _percentiles(samples["interp"])
        closure_stats = _percentiles(samples["closures"])
        entries.append(
            {
                "name": name,
                "size": n,
                "num_threads": num_threads,
                "instructions": reference[1],
                "interp_ms": interp_stats,
                "closures_ms": closure_stats,
                "speedup_p50": round(
                    interp_stats["p50"]
                    / max(closure_stats["p50"], 1e-6),
                    2,
                ),
                "speedup_p95": round(
                    interp_stats["p95"]
                    / max(closure_stats["p95"], 1e-6),
                    2,
                ),
            }
        )
        print(
            f"exec-bench: {name:<18} n={n:<6} "
            f"{reference[1]:>8} insts | interp p50 "
            f"{interp_stats['p50']:>9.2f}ms | closures p50 "
            f"{closure_stats['p50']:>8.2f}ms | "
            f"{entries[-1]['speedup_p50']:>5.2f}x"
        )
    speedups = [e["speedup_p50"] for e in entries]
    geomean = round(
        math.exp(statistics.fmean(math.log(s) for s in speedups)), 2
    )
    return {
        "tool": "exec_bench",
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "kernels": len(entries),
        "speedup_p50_geomean": geomean,
        "speedup_p50_min": min(speedups),
        "speedup_p50_max": max(speedups),
        "entries": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="exec_bench",
        description="interpreter vs closure-engine execution benchmark",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default="BENCH_exec.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small problem sizes and 3 repeats (CI latency budget)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) when the geometric-mean p50 speedup of "
        "the closure engine is below this factor",
    )
    args = parser.parse_args(argv)

    repeats = 3 if args.smoke and args.repeats == 5 else args.repeats
    report = run_bench(repeats, args.smoke)

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(
        f"exec-bench: geomean p50 speedup "
        f"{report['speedup_p50_geomean']}x "
        f"(min {report['speedup_p50_min']}x, "
        f"max {report['speedup_p50_max']}x) over "
        f"{report['kernels']} kernels"
    )
    print(f"exec-bench: wrote {args.out}")
    if (
        args.min_speedup is not None
        and report["speedup_p50_geomean"] < args.min_speedup
    ):
        print(
            f"exec-bench: FAIL — geomean p50 speedup "
            f"{report['speedup_p50_geomean']}x is below the "
            f"--min-speedup gate of {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
