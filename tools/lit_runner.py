#!/usr/bin/env python3
"""A lit-style test runner for the ``tests/conformance`` suite.

Each test is a source file carrying one or more ``// RUN:`` lines::

    // RUN: miniclang -ast-dump %s | FileCheck %s
    // RUN: not miniclang -fsyntax-only %s 2>&1 | FileCheck %s \
    // RUN:     --check-prefix=DIAG

A trailing backslash continues the command on the next RUN line.
Supported substitutions (the useful subset of llvm-lit's):

    %s   absolute path of the test file
    %S   directory of the test file
    %t   unique temp path for this test (parent dir exists)
    %T   the test's temp directory
    %%   a literal '%'

Commands are executed WITHOUT a shell: the runner implements pipes
(``|``), the stderr merge ``2>&1``, simple redirects (``> f``, ``2> f``)
and the llvm ``not`` tool (expect a non-zero exit).  Tool names resolve
to in-repo implementations:

    miniclang        -> python -m repro.driver.cli   (PYTHONPATH=src)
    miniclang-serve  -> python -m repro.driver.serve
    FileCheck        -> python tools/filecheck.py
    %python          -> the running interpreter

Other markers: ``// XFAIL: *`` marks the whole test as expected to
fail; ``// UNSUPPORTED: *`` skips it.

Usage::

    python tools/lit_runner.py tests/conformance [more paths...]
    python tools/lit_runner.py -v --filter unroll tests/conformance

Exit status: 0 when nothing failed unexpectedly, 1 otherwise.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import shlex
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
)
FILECHECK = os.path.join(REPO_ROOT, "tools", "filecheck.py")

_RUN_LINE = re.compile(r"(?://|#)\s*RUN:\s?(.*)$")
_XFAIL_LINE = re.compile(r"(?://|#)\s*XFAIL:")
_UNSUPPORTED_LINE = re.compile(r"(?://|#)\s*UNSUPPORTED:")

#: extensions that may carry RUN lines
_TEST_SUFFIXES = (".c", ".test", ".ll")


class RunLineError(Exception):
    pass


@dataclass
class TestCase:
    __test__ = False  # not a pytest class, despite the name

    path: str  # absolute
    name: str  # display name relative to the suite root
    run_lines: list[str] = field(default_factory=list)
    xfail: bool = False
    unsupported: bool = False


@dataclass
class TestResult:
    __test__ = False  # not a pytest class, despite the name

    case: TestCase
    code: str  # PASS, FAIL, XFAIL, XPASS, SKIP, ERROR
    detail: str = ""
    elapsed: float = 0.0

    @property
    def failed(self) -> bool:
        return self.code in ("FAIL", "XPASS", "ERROR")


# ----------------------------------------------------------------------
# Discovery and RUN-line parsing
# ----------------------------------------------------------------------
def discover(paths: list[str]) -> list[TestCase]:
    cases: list[TestCase] = []
    for raw in paths:
        root = os.path.abspath(raw)
        if os.path.isfile(root):
            cases.append(parse_test(root, os.path.basename(root)))
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for fn in sorted(filenames):
                if not fn.endswith(_TEST_SUFFIXES):
                    continue
                full = os.path.join(dirpath, fn)
                rel = os.path.relpath(full, root)
                cases.append(parse_test(full, rel))
    return cases


def parse_test(path: str, name: str) -> TestCase:
    case = TestCase(path=path, name=name)
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    pending = ""
    for line in text.splitlines():
        if _XFAIL_LINE.search(line):
            case.xfail = True
            continue
        if _UNSUPPORTED_LINE.search(line):
            case.unsupported = True
            continue
        m = _RUN_LINE.search(line)
        if not m:
            continue
        fragment = m.group(1).rstrip()
        if fragment.endswith("\\"):
            pending += fragment[:-1].rstrip() + " "
            continue
        case.run_lines.append((pending + fragment).strip())
        pending = ""
    if pending:
        raise RunLineError(
            f"{name}: RUN line ends with a continuation but no "
            "further RUN line follows"
        )
    return case


# ----------------------------------------------------------------------
# Substitutions and command execution
# ----------------------------------------------------------------------
def substitute(command: str, case: TestCase, tmpdir: str) -> str:
    stem = os.path.splitext(os.path.basename(case.path))[0]
    subs = {
        "%s": case.path,
        "%S": os.path.dirname(case.path),
        "%t": os.path.join(tmpdir, stem + ".tmp"),
        "%T": tmpdir,
        "%python": sys.executable,
    }
    out = []
    i = 0
    while i < len(command):
        if command.startswith("%%", i):
            out.append("%")
            i += 2
            continue
        for key, value in subs.items():
            if command.startswith(key, i):
                out.append(value)
                i += len(key)
                break
        else:
            out.append(command[i])
            i += 1
    return "".join(out)


def _resolve_tool(argv: list[str]) -> list[str]:
    tool = argv[0]
    if os.path.isabs(tool):  # e.g. the substituted %python
        return argv
    if tool == "miniclang":
        # not `-m repro.driver.cli`: repro.driver re-exports cli, which
        # makes runpy print a sys.modules RuntimeWarning to stderr and
        # pollute 2>&1 diagnostics tests.
        return [
            sys.executable,
            "-c",
            "import sys; from repro.driver.cli import main; "
            "sys.exit(main())",
            *argv[1:],
        ]
    if tool == "miniclang-serve":
        return [
            sys.executable,
            "-c",
            "import sys; from repro.driver.serve import main; "
            "sys.exit(main())",
            *argv[1:],
        ]
    if tool in ("FileCheck", "filecheck"):
        return [sys.executable, FILECHECK, *argv[1:]]
    if tool == "true":
        return [sys.executable, "-c", "pass"]
    if tool == "false":
        return [sys.executable, "-c", "raise SystemExit(1)"]
    raise RunLineError(
        f"unknown RUN tool '{tool}' (known: miniclang, "
        "miniclang-serve, FileCheck, not, %python, true, false)"
    )


@dataclass
class _Stage:
    argv: list[str]
    invert: bool = False  # prefixed with `not`
    merge_stderr: bool = False  # 2>&1
    stdout_to: str | None = None  # > FILE
    stderr_to: str | None = None  # 2> FILE


def _parse_stage(tokens: list[str]) -> _Stage:
    stage = _Stage(argv=[])
    invert = False
    while tokens and tokens[0] == "not":
        invert = not invert
        tokens = tokens[1:]
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok == "2>&1":
            stage.merge_stderr = True
        elif tok == ">":
            i += 1
            if i >= len(tokens):
                raise RunLineError("'>' with no target file")
            stage.stdout_to = tokens[i]
        elif tok == "2>":
            i += 1
            if i >= len(tokens):
                raise RunLineError("'2>' with no target file")
            stage.stderr_to = tokens[i]
        elif tok.startswith(">") and len(tok) > 1:
            stage.stdout_to = tok[1:]
        elif tok.startswith("2>") and len(tok) > 2:
            stage.stderr_to = tok[2:]
        else:
            stage.argv.append(tok)
        i += 1
    if not stage.argv:
        raise RunLineError("empty pipeline stage")
    stage.invert = invert
    return stage


def run_command(
    command: str, case: TestCase, tmpdir: str, timeout: float
) -> tuple[bool, str]:
    """Execute one substituted RUN command.  Returns (ok, transcript)."""
    tokens = shlex.split(command)
    stages: list[list[str]] = [[]]
    for tok in tokens:
        if tok == "|":
            stages.append([])
        else:
            stages[-1].append(tok)
    parsed = [_parse_stage(s) for s in stages]

    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )

    data = b""
    transcript: list[str] = []
    for idx, stage in enumerate(parsed):
        argv = _resolve_tool(stage.argv)
        try:
            proc = subprocess.run(
                argv,
                input=data,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT
                if stage.merge_stderr
                else subprocess.PIPE,
                env=env,
                cwd=tmpdir,
                timeout=timeout,
            )
        except subprocess.TimeoutExpired:
            return False, (
                f"stage {idx + 1} ({stage.argv[0]}) timed out "
                f"after {timeout}s"
            )
        stdout = proc.stdout or b""
        stderr = b"" if stage.merge_stderr else (proc.stderr or b"")
        if stage.stdout_to:
            with open(
                os.path.join(tmpdir, stage.stdout_to), "wb"
            ) as fh:
                fh.write(stdout)
            stdout = b""
        if stage.stderr_to:
            with open(
                os.path.join(tmpdir, stage.stderr_to), "wb"
            ) as fh:
                fh.write(stderr)
            stderr = b""
        ok = (proc.returncode != 0) if stage.invert else (
            proc.returncode == 0
        )
        if not ok:
            expected = "non-zero" if stage.invert else "0"
            transcript.append(
                f"stage {idx + 1} `{' '.join(stage.argv)}` exited "
                f"{proc.returncode} (expected {expected})"
            )
            if stdout:
                transcript.append(
                    "--- stdout ---\n"
                    + stdout.decode("utf-8", "replace")
                )
            if stderr:
                transcript.append(
                    "--- stderr ---\n"
                    + stderr.decode("utf-8", "replace")
                )
            return False, "\n".join(transcript)
        if stderr:
            # keep stderr of passing stages for -v output
            transcript.append(
                f"stage {idx + 1} stderr:\n"
                + stderr.decode("utf-8", "replace")
            )
        data = stdout
    return True, "\n".join(transcript)


# ----------------------------------------------------------------------
# Per-test execution
# ----------------------------------------------------------------------
def run_test(case: TestCase, timeout: float) -> TestResult:
    started = time.monotonic()
    if case.unsupported:
        return TestResult(case, "SKIP")
    if not case.run_lines:
        return TestResult(
            case, "ERROR", detail="test has no RUN: lines"
        )
    with tempfile.TemporaryDirectory(prefix="lit-") as tmpdir:
        for raw in case.run_lines:
            command = substitute(raw, case, tmpdir)
            try:
                ok, transcript = run_command(
                    command, case, tmpdir, timeout
                )
            except RunLineError as exc:
                return TestResult(
                    case,
                    "ERROR",
                    detail=f"RUN: {raw}\n{exc}",
                    elapsed=time.monotonic() - started,
                )
            if not ok:
                code = "XFAIL" if case.xfail else "FAIL"
                return TestResult(
                    case,
                    code,
                    detail=f"RUN: {command}\n{transcript}",
                    elapsed=time.monotonic() - started,
                )
    code = "XPASS" if case.xfail else "PASS"
    return TestResult(
        case, code, elapsed=time.monotonic() - started
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lit_runner",
        description="run // RUN: annotated conformance tests",
    )
    parser.add_argument(
        "paths", nargs="+", help="test files or directories"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print every test's status line as it finishes",
    )
    parser.add_argument(
        "--filter",
        default=None,
        metavar="REGEX",
        help="only run tests whose name matches REGEX",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=min(8, os.cpu_count() or 1),
        help="parallel worker processes (default: min(8, ncpu))",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-command timeout in seconds (default 120)",
    )
    args = parser.parse_args(argv)

    try:
        cases = discover(args.paths)
    except RunLineError as exc:
        print(f"lit_runner: error: {exc}", file=sys.stderr)
        return 2
    if args.filter:
        rx = re.compile(args.filter)
        cases = [c for c in cases if rx.search(c.name)]
    if not cases:
        print("lit_runner: error: no tests discovered", file=sys.stderr)
        return 2

    print(f"-- Testing: {len(cases)} tests, {args.jobs} workers --")
    results: list[TestResult] = []
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=args.jobs
    ) as pool:
        futures = {
            pool.submit(run_test, case, args.timeout): case
            for case in cases
        }
        for future in concurrent.futures.as_completed(futures):
            result = future.result()
            results.append(result)
            if args.verbose or result.failed:
                print(
                    f"{result.code}: {result.case.name} "
                    f"({result.elapsed:.2f}s)"
                )
                if result.failed and result.detail:
                    print(
                        "    "
                        + result.detail.replace("\n", "\n    ")
                    )

    results.sort(key=lambda r: r.case.name)
    tally: dict[str, int] = {}
    for result in results:
        tally[result.code] = tally.get(result.code, 0) + 1
    parts = [
        f"{label}: {tally[code]}"
        for code, label in (
            ("PASS", "Passed"),
            ("XFAIL", "Expectedly Failed"),
            ("SKIP", "Skipped"),
            ("FAIL", "Failed"),
            ("XPASS", "Unexpectedly Passed"),
            ("ERROR", "Errors"),
        )
        if code in tally
    ]
    print("\n" + ", ".join(parts))
    failed = [r for r in results if r.failed]
    if failed:
        print("\nFailing tests:")
        for result in failed:
            print(f"  {result.code}: {result.case.name}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
