#!/usr/bin/env python3
"""A pure-python FileCheck (the LLVM test-matching tool).

Reads *check directives* out of a check file (usually the test source
itself) and verifies that an input text (usually a tool's stdout)
matches them in order.  Supported directives, with ``CHECK`` standing
for the active prefix (``--check-prefix`` changes it)::

    CHECK:        pattern must match at/after the current position
    CHECK-NEXT:   pattern must match on the immediately following line
    CHECK-SAME:   pattern must match later on the same line
    CHECK-EMPTY:  the next line must be empty
    CHECK-NOT:    pattern must NOT occur before the next positive match
    CHECK-DAG:    consecutive -DAG directives match in any order
    CHECK-LABEL:  partitions the input; checks cannot cross label blocks

Pattern syntax mirrors FileCheck:

* plain text matches literally, with runs of horizontal whitespace
  matching any non-empty horizontal whitespace,
* ``{{regex}}`` embeds a python regular expression,
* ``[[VAR:regex]]`` matches ``regex`` and binds it to ``VAR``,
* ``[[VAR]]`` matches the previously bound value of ``VAR`` literally.

Exit status 0 when every directive matched, 1 on the first failure
(with an llvm-style ``file:line: error:`` report and the input region
being scanned), 2 on usage errors.  This file is dependency-free and
importable (``from filecheck import FileCheckError, check_text``) so the
unit/property tests can drive it without subprocesses.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from typing import Optional

_KINDS = ("LABEL", "NEXT", "SAME", "EMPTY", "NOT", "DAG")


class FileCheckError(Exception):
    """A directive failed to match (or the check file is malformed).

    ``message`` is the full llvm-style report; ``directive`` is the
    failing directive (None for file-level errors like no-checks)."""

    def __init__(self, message: str, directive: "Directive | None" = None):
        super().__init__(message)
        self.message = message
        self.directive = directive


@dataclass
class Directive:
    """One ``CHECK*:`` line of the check file."""

    kind: str  # "PLAIN", "NEXT", "SAME", "EMPTY", "NOT", "DAG", "LABEL"
    pattern: str  # raw text after the colon, stripped
    check_file: str
    line_no: int  # 1-based line in the check file
    prefix: str  # the spelled prefix, for error messages

    def spelling(self) -> str:
        suffix = "" if self.kind == "PLAIN" else f"-{self.kind}"
        return f"{self.prefix}{suffix}"


# ----------------------------------------------------------------------
# Pattern compilation
# ----------------------------------------------------------------------
_WS_RUN = re.compile(r"[ \t]+")


def _escape_literal(text: str) -> str:
    """Escape *text* for re, mapping horizontal-whitespace runs to
    ``[ \\t]+`` (FileCheck's canonical-whitespace rule)."""
    out: list[str] = []
    pos = 0
    for m in _WS_RUN.finditer(text):
        out.append(re.escape(text[pos : m.start()]))
        out.append(r"[ \t]+")
        pos = m.end()
    out.append(re.escape(text[pos:]))
    return "".join(out)


@dataclass
class Pattern:
    """A compiled directive pattern.

    Compiled lazily against the current variable bindings because
    ``[[VAR]]`` substitutions are resolved at match time."""

    directive: Directive
    parts: list[tuple[str, str]] = field(default_factory=list)
    # parts: (op, payload) with op in
    #   "lit"  literal text
    #   "re"   raw regex from {{...}}
    #   "def"  "NAME:regex" variable definition from [[NAME:...]]
    #   "use"  NAME from [[NAME]]

    def uses(self) -> set[str]:
        return {p for op, p in self.parts if op == "use"}

    def regex(self, bindings: dict[str, str]) -> re.Pattern:
        pieces: list[str] = []
        for op, payload in self.parts:
            if op == "lit":
                pieces.append(_escape_literal(payload))
            elif op == "re":
                pieces.append(f"(?:{payload})")
            elif op == "def":
                name, _, rx = payload.partition(":")
                pieces.append(f"(?P<{name}>{rx})")
            else:  # use
                if payload not in bindings:
                    raise FileCheckError(
                        _err(
                            self.directive,
                            f"[[{payload}]] used before any "
                            f"[[{payload}:...]] definition",
                        ),
                        self.directive,
                    )
                pieces.append(re.escape(bindings[payload]))
        try:
            return re.compile("".join(pieces))
        except re.error as exc:
            raise FileCheckError(
                _err(self.directive, f"invalid pattern regex: {exc}"),
                self.directive,
            )


_VAR_NAME = re.compile(r"[A-Za-z_][A-Za-z0-9_]*$")


def compile_pattern(directive: Directive) -> Pattern:
    """Split the directive text into literal / regex / variable parts."""
    text = directive.pattern
    parts: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        brace = text.find("{{", pos)
        brack = text.find("[[", pos)
        starts = [i for i in (brace, brack) if i != -1]
        if not starts:
            parts.append(("lit", text[pos:]))
            break
        start = min(starts)
        if start > pos:
            parts.append(("lit", text[pos:start]))
        if start == brace and (brack == -1 or brace <= brack):
            end = text.find("}}", start + 2)
            if end == -1:
                raise FileCheckError(
                    _err(directive, "unterminated {{ regex"), directive
                )
            parts.append(("re", text[start + 2 : end]))
            pos = end + 2
        else:
            end = text.find("]]", start + 2)
            if end == -1:
                raise FileCheckError(
                    _err(directive, "unterminated [[ variable"), directive
                )
            inner = text[start + 2 : end]
            name, colon, rx = inner.partition(":")
            if not _VAR_NAME.match(name):
                raise FileCheckError(
                    _err(directive, f"invalid variable name '{name}'"),
                    directive,
                )
            if colon:
                parts.append(("def", f"{name}:{rx}"))
            else:
                parts.append(("use", name))
            pos = end + 2
    if not parts:
        parts.append(("lit", ""))
    return Pattern(directive, parts)


# ----------------------------------------------------------------------
# Check-file parsing
# ----------------------------------------------------------------------
def parse_check_file(
    text: str, check_file: str, prefixes: list[str]
) -> list[Directive]:
    """Extract directives for any of *prefixes*, in file order."""
    alt = "|".join(re.escape(p) for p in prefixes)
    rx = re.compile(
        rf"\b({alt})(?:-({'|'.join(_KINDS)}))?:\s?([^\n]*)$"
    )
    directives: list[Directive] = []
    for idx, line in enumerate(text.splitlines(), start=1):
        m = rx.search(line)
        if not m:
            continue
        prefix, kind, rest = m.group(1), m.group(2), m.group(3)
        directives.append(
            Directive(
                kind=kind or "PLAIN",
                pattern=rest.strip(),
                check_file=check_file,
                line_no=idx,
                prefix=prefix,
            )
        )
    return directives


# ----------------------------------------------------------------------
# Matching engine
# ----------------------------------------------------------------------
def _err(directive: Directive | None, message: str) -> str:
    if directive is None:
        return f"filecheck: error: {message}"
    return (
        f"{directive.check_file}:{directive.line_no}: error: "
        f"{directive.spelling()}: {message}"
    )


def _excerpt(lines: list[str], line_idx: int, context: int = 3) -> str:
    """A few input lines around *line_idx* for the error report."""
    lo = max(0, line_idx - 1)
    hi = min(len(lines), line_idx + context)
    out = []
    for i in range(lo, hi):
        marker = ">>" if i == line_idx else "  "
        out.append(f"  {marker} {i + 1}: {lines[i]}")
    return "\n".join(out)


@dataclass
class _Cursor:
    """Scan position: just after the previous match."""

    line: int  # index into the line list
    col: int  # offset within that line


class Matcher:
    def __init__(self, input_text: str, check_file_name: str):
        self.lines = input_text.splitlines()
        self.check_file_name = check_file_name
        self.bindings: dict[str, str] = {}

    # -- low-level search helpers -------------------------------------
    def _search_from(
        self,
        pattern: Pattern,
        cur: _Cursor,
        stop_line: int,
    ) -> Optional[tuple[int, int, int]]:
        """First match at/after *cur* and before line *stop_line*;
        returns (line, start_col, end_col)."""
        rx = pattern.regex(self.bindings)
        for li in range(cur.line, min(stop_line, len(self.lines))):
            start = cur.col if li == cur.line else 0
            m = rx.search(self.lines[li], start)
            if m:
                return li, m.start(), m.end()
        return None

    def _bind(self, pattern: Pattern, line: int, s: int, e: int) -> None:
        m = pattern.regex(self.bindings).match(self.lines[line][s:e])
        # re-match on the exact span to recover named groups
        if m:
            for name, value in m.groupdict().items():
                if value is not None:
                    self.bindings[name] = value

    # -- the directive interpreter ------------------------------------
    def run(self, directives: list[Directive]) -> None:
        """Raise FileCheckError on the first failing directive."""
        patterns = [compile_pattern(d) for d in directives]
        # Pre-partition on LABEL directives: each label must match, in
        # order, and the checks between two labels are confined to the
        # input region between their matches.
        blocks = self._split_blocks(directives, patterns)
        for block_directives, lo, hi, at_label in blocks:
            self._run_block(block_directives, lo, hi, at_label)

    def _split_blocks(self, directives, patterns):
        """Returns [(list[(Directive, Pattern)], start_line, stop_line)].

        Without -LABEL directives this is one block spanning the whole
        input."""
        label_ix = [
            i for i, d in enumerate(directives) if d.kind == "LABEL"
        ]
        if not label_ix:
            return [
                (
                    list(zip(directives, patterns)),
                    0,
                    len(self.lines),
                    False,
                )
            ]
        # Locate every label match first (FileCheck does the same): each
        # search starts after the previous label's line.
        cur = _Cursor(0, 0)
        label_pos: list[int] = []
        for i in label_ix:
            found = self._search_from(
                patterns[i], cur, len(self.lines)
            )
            if found is None:
                raise FileCheckError(
                    self._not_found_report(directives[i], cur),
                    directives[i],
                )
            li, _, _ = found
            label_pos.append(li)
            cur = _Cursor(li + 1, 0)
        blocks = []
        # checks before the first label run in [0, first_label_line+1)
        pre = list(zip(directives[: label_ix[0]], patterns[: label_ix[0]]))
        if pre:
            blocks.append((pre, 0, label_pos[0], False))
        for n, i in enumerate(label_ix):
            stop = (
                label_pos[n + 1]
                if n + 1 < len(label_ix)
                else len(self.lines)
            )
            next_dir_ix = (
                label_ix[n + 1] if n + 1 < len(label_ix) else len(directives)
            )
            group = list(
                zip(
                    directives[i + 1 : next_dir_ix],
                    patterns[i + 1 : next_dir_ix],
                )
            )
            # the label line itself is consumed by the label match
            blocks.append((group, label_pos[n], stop, True))
        return blocks

    def _run_block(
        self, pairs, start_line: int, stop_line: int, at_label: bool
    ) -> None:
        cur = _Cursor(start_line, 0)
        # a LABEL block starts *after* the label's own line for -NEXT
        # purposes: position the cursor at the end of the label line.
        if at_label and start_line < len(self.lines):
            cur = _Cursor(start_line, len(self.lines[start_line]))
        pending_not: list[tuple[Directive, Pattern]] = []
        i = 0
        while i < len(pairs):
            directive, pattern = pairs[i]
            if directive.kind == "NOT":
                pending_not.append((directive, pattern))
                i += 1
                continue
            if directive.kind == "DAG":
                group = []
                while i < len(pairs) and pairs[i][0].kind == "DAG":
                    group.append(pairs[i])
                    i += 1
                cur = self._match_dag_group(
                    group, cur, stop_line, pending_not
                )
                pending_not = []
                continue
            cur = self._match_positive(
                directive, pattern, cur, stop_line, pending_not
            )
            pending_not = []
            i += 1
        if pending_not:
            self._check_nots(
                pending_not, _Cursor(cur.line, cur.col), stop_line, None
            )

    # -- positive directives ------------------------------------------
    def _match_positive(
        self, directive, pattern, cur, stop_line, pending_not
    ) -> _Cursor:
        if directive.kind == "EMPTY":
            li = cur.line + 1
            if li >= stop_line or self.lines[li].strip() != "":
                raise FileCheckError(
                    _err(
                        directive,
                        "expected the next line to be empty\n"
                        + _excerpt(self.lines, min(li, len(self.lines) - 1)),
                    ),
                    directive,
                )
            self._check_nots(pending_not, cur, stop_line, (li, 0))
            return _Cursor(li, 0)
        if directive.kind == "SAME":
            rx = pattern.regex(self.bindings)
            if cur.line >= len(self.lines):
                raise FileCheckError(
                    self._not_found_report(directive, cur), directive
                )
            m = rx.search(self.lines[cur.line], cur.col)
            if not m:
                raise FileCheckError(
                    _err(
                        directive,
                        "expected string not found on the same line\n"
                        + _excerpt(self.lines, cur.line),
                    ),
                    directive,
                )
            self._check_nots(
                pending_not, cur, stop_line, (cur.line, m.start())
            )
            self._bind(pattern, cur.line, m.start(), m.end())
            return _Cursor(cur.line, m.end())
        if directive.kind == "NEXT":
            li = cur.line + 1
            if li >= stop_line:
                raise FileCheckError(
                    self._not_found_report(directive, cur), directive
                )
            m = pattern.regex(self.bindings).search(self.lines[li])
            if not m:
                raise FileCheckError(
                    _err(
                        directive,
                        "expected string not found on the next line\n"
                        + _excerpt(self.lines, li),
                    ),
                    directive,
                )
            self._check_nots(pending_not, cur, stop_line, (li, m.start()))
            self._bind(pattern, li, m.start(), m.end())
            return _Cursor(li, m.end())
        # PLAIN (and LABEL when reached linearly, though labels are
        # pre-matched in _split_blocks)
        found = self._search_from(pattern, cur, stop_line)
        if found is None:
            raise FileCheckError(
                self._not_found_report(directive, cur), directive
            )
        li, s, e = found
        self._check_nots(pending_not, cur, stop_line, (li, s))
        self._bind(pattern, li, s, e)
        return _Cursor(li, e)

    def _match_dag_group(
        self, group, cur, stop_line, pending_not
    ) -> _Cursor:
        """Match consecutive -DAG directives in any order after *cur*.

        Matches may not overlap each other.  The scan position advances
        to the furthest match end."""
        taken: list[tuple[int, int, int]] = []
        first: Optional[tuple[int, int]] = None
        best = cur
        for directive, pattern in group:
            probe = _Cursor(cur.line, cur.col)
            placed = None
            while True:
                found = self._search_from(pattern, probe, stop_line)
                if found is None:
                    break
                li, s, e = found
                overlap = any(
                    li == tl and s < te and ts < e
                    for tl, ts, te in taken
                )
                if not overlap:
                    placed = found
                    break
                probe = _Cursor(li, s + 1)
            if placed is None:
                raise FileCheckError(
                    self._not_found_report(directive, cur), directive
                )
            li, s, e = placed
            taken.append(placed)
            self._bind(pattern, li, s, e)
            if first is None or (li, s) < first:
                first = (li, s)
            if (li, e) > (best.line, best.col):
                best = _Cursor(li, e)
        if pending_not and first is not None:
            self._check_nots(pending_not, cur, stop_line, first)
        return best

    # -- CHECK-NOT ------------------------------------------------------
    def _check_nots(
        self,
        pending_not,
        cur: _Cursor,
        stop_line: int,
        until: Optional[tuple[int, int]],
    ) -> None:
        """No pattern in *pending_not* may match between *cur* and
        *until* (line,col), or end-of-block when ``until`` is None."""
        for directive, pattern in pending_not:
            end_line = until[0] if until is not None else stop_line
            found = self._search_from(
                pattern, _Cursor(cur.line, cur.col), min(end_line + 1, stop_line)
            )
            if found is not None:
                li, s, _ = found
                if until is not None and (li, s) >= until:
                    continue
                raise FileCheckError(
                    _err(
                        directive,
                        "excluded string found in input\n"
                        + _excerpt(self.lines, li),
                    ),
                    directive,
                )

    def _not_found_report(self, directive: Directive, cur: _Cursor) -> str:
        where = (
            _excerpt(self.lines, min(cur.line, max(len(self.lines) - 1, 0)))
            if self.lines
            else "  (input is empty)"
        )
        return _err(
            directive,
            f"expected string not found in input\n"
            f"  pattern: {directive.pattern!r}\n"
            f"  scanning from input line {cur.line + 1}:\n{where}",
        )


# ----------------------------------------------------------------------
# Public API + CLI
# ----------------------------------------------------------------------
def check_text(
    input_text: str,
    check_text_: str,
    check_file_name: str = "<checks>",
    prefixes: list[str] | None = None,
    allow_empty: bool = False,
) -> None:
    """Verify *input_text* against the directives found in
    *check_text_*.  Raises :class:`FileCheckError` on mismatch."""
    prefixes = prefixes or ["CHECK"]
    directives = parse_check_file(
        check_text_, check_file_name, prefixes
    )
    if not directives:
        raise FileCheckError(
            _err(
                None,
                f"no check directives found for prefix(es) "
                f"{', '.join(prefixes)} in {check_file_name}",
            )
        )
    if input_text == "" and not allow_empty:
        raise FileCheckError(
            _err(None, "empty input file (use --allow-empty to permit)")
        )
    Matcher(input_text, check_file_name).run(directives)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="filecheck",
        description="pure-python FileCheck: match tool output "
        "against CHECK: directives embedded in a test file",
    )
    parser.add_argument("check_file", help="file holding CHECK: lines")
    parser.add_argument(
        "--input-file",
        default="-",
        help="text to verify (default: stdin)",
    )
    parser.add_argument(
        "--check-prefix",
        action="append",
        default=[],
        dest="prefixes",
        help="directive prefix to use instead of CHECK (repeatable)",
    )
    parser.add_argument(
        "--check-prefixes",
        default=None,
        help="comma-separated list of directive prefixes",
    )
    parser.add_argument(
        "--allow-empty",
        action="store_true",
        help="do not error on empty input",
    )
    parser.add_argument(
        "--dump-input",
        choices=["never", "fail"],
        default="fail",
        help="print the full input when a directive fails",
    )
    args = parser.parse_args(argv)

    prefixes = list(args.prefixes)
    if args.check_prefixes:
        prefixes.extend(
            p.strip() for p in args.check_prefixes.split(",") if p.strip()
        )
    if not prefixes:
        prefixes = ["CHECK"]

    try:
        with open(args.check_file, "r", encoding="utf-8") as fh:
            checks = fh.read()
    except OSError as exc:
        print(f"filecheck: error: {exc}", file=sys.stderr)
        return 2
    if args.input_file == "-":
        input_text = sys.stdin.read()
    else:
        try:
            with open(args.input_file, "r", encoding="utf-8") as fh:
                input_text = fh.read()
        except OSError as exc:
            print(f"filecheck: error: {exc}", file=sys.stderr)
            return 2

    try:
        check_text(
            input_text,
            checks,
            check_file_name=args.check_file,
            prefixes=prefixes,
            allow_empty=args.allow_empty,
        )
    except FileCheckError as exc:
        print(exc.message, file=sys.stderr)
        if args.dump_input == "fail":
            print("\nfull input was:", file=sys.stderr)
            for i, line in enumerate(input_text.splitlines(), 1):
                print(f"  {i:4}: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
