"""AST dumping in the style of ``clang -Xclang -ast-dump``.

Reproduces the tree-drawing format of the paper's Listings 3, 5, 6 and 7:
``|-`` / `` `-`` connectors, per-node labels such as::

    VarDecl 0x7fffc6750e68 used i 'int' cinit
    IntegerLiteral 'int' 7
    DeclRefExpr 'int' lvalue Var 'i' 'int'
    ImplicitParamDecl implicit .global_tid. 'const int *const __restrict'
    ConstantExpr 'int'
    |-value: Int 2

``<<<NULL>>>`` marks absent child slots (e.g. a for-loop without an init
statement).  Shadow AST children are **not** dumped — exactly the property
the paper names them for — unless ``dump_shadow=True`` is requested (used
by the transformed-AST listings and tests).
"""

from __future__ import annotations

from typing import Optional

from repro.astlib import clauses as cl
from repro.astlib import decls as d
from repro.astlib import exprs as e
from repro.astlib import omp
from repro.astlib import stmts as s
from repro.astlib.types import QualType


class _TreeWriter:
    """Emits the `|-`/`` `-`` box-drawing structure."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def emit(self, prefix: str, connector: str, label: str) -> None:
        self.lines.append(f"{prefix}{connector}{label}")

    def text(self) -> str:
        return "\n".join(self.lines)


class ASTDumper:
    def __init__(
        self,
        show_addresses: bool = False,
        dump_shadow: bool = False,
    ) -> None:
        self.show_addresses = show_addresses
        self.dump_shadow = dump_shadow
        self.writer = _TreeWriter()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def dump(self, node) -> str:
        self.writer = _TreeWriter()
        self._dump_node(node, "", "", is_root=True)
        return self.writer.text()

    # ------------------------------------------------------------------
    # Label construction
    # ------------------------------------------------------------------
    def _addr(self, node) -> str:
        if not self.show_addresses:
            return ""
        return f" {hex(getattr(node, 'node_id', 0))}"

    def _ty(self, qt: QualType) -> str:
        return f"'{qt.spelling()}'"

    def _label(self, node) -> str:
        if node is None:
            return "<<<NULL>>>"
        # --- Declarations ---
        if isinstance(node, d.VarDecl):
            parts = [type(node).__name__ + self._addr(node)]
            if node.is_implicit:
                parts.append("implicit")
            if node.is_referenced:
                parts.append("used")
            parts.append(node.name)
            parts.append(self._ty(node.type))
            if isinstance(node, d.VarDecl) and node.has_init:
                parts.append("cinit")
            return " ".join(parts)
        if isinstance(node, d.FunctionDecl):
            return (
                f"FunctionDecl{self._addr(node)} {node.name} "
                f"{self._ty(node.type)}"
            )
        if isinstance(node, d.CapturedDecl):
            suffix = " nothrow" if node.nothrow else ""
            return f"CapturedDecl{self._addr(node)}{suffix}"
        if isinstance(node, d.TypedefDecl):
            return (
                f"TypedefDecl{self._addr(node)} {node.name} "
                f"{self._ty(node.underlying)}"
            )
        if isinstance(node, d.RecordDecl):
            tag = "union" if node.is_union else "struct"
            return f"RecordDecl{self._addr(node)} {tag} {node.name}"
        if isinstance(node, d.FieldDecl):
            return (
                f"FieldDecl{self._addr(node)} {node.name} "
                f"{self._ty(node.type)}"
            )
        if isinstance(node, d.Decl):
            name = getattr(node, "name", "")
            return f"{type(node).__name__}{self._addr(node)} {name}".rstrip()
        # --- Clauses ---
        if isinstance(node, cl.OMPScheduleClause):
            return f"OMPScheduleClause {node.kind.value}"
        if isinstance(node, cl.OMPReductionClause):
            return f"OMPReductionClause '{node.operator.value}'"
        if isinstance(node, cl.OMPDefaultClause):
            return f"OMPDefaultClause {node.kind.value}"
        if isinstance(node, cl.OMPClause):
            return type(node).__name__
        # --- Expressions (before generic statements) ---
        if isinstance(node, e.IntegerLiteral):
            return (
                f"IntegerLiteral{self._addr(node)} {self._ty(node.type)} "
                f"{node.value}"
            )
        if isinstance(node, e.FloatingLiteral):
            return (
                f"FloatingLiteral{self._addr(node)} {self._ty(node.type)} "
                f"{node.value}"
            )
        if isinstance(node, e.CharacterLiteral):
            return (
                f"CharacterLiteral{self._addr(node)} {self._ty(node.type)} "
                f"{node.value}"
            )
        if isinstance(node, e.BoolLiteralExpr):
            return (
                f"CXXBoolLiteralExpr{self._addr(node)} "
                f"{self._ty(node.type)} {str(node.value).lower()}"
            )
        if isinstance(node, e.StringLiteral):
            return (
                f"StringLiteral{self._addr(node)} {self._ty(node.type)} "
                f"{node.value!r}"
            )
        if isinstance(node, e.DeclRefExpr):
            kind = (
                "ParmVar"
                if isinstance(node.decl, d.ParmVarDecl)
                else "Function"
                if isinstance(node.decl, d.FunctionDecl)
                else "Var"
            )
            vc = (
                " lvalue"
                if node.value_category == e.ValueCategory.LVALUE
                else ""
            )
            return (
                f"DeclRefExpr{self._addr(node)} {self._ty(node.type)}{vc} "
                f"{kind} '{node.decl.name}' {self._ty(node.decl.type)}"
            )
        if isinstance(node, e.CompoundAssignOperator):
            return (
                f"CompoundAssignOperator{self._addr(node)} "
                f"{self._ty(node.type)} '{node.opcode.value}'"
            )
        if isinstance(node, e.BinaryOperator):
            return (
                f"BinaryOperator{self._addr(node)} {self._ty(node.type)} "
                f"'{node.opcode.value}'"
            )
        if isinstance(node, e.UnaryOperator):
            fix = "prefix" if node.opcode.is_prefix() else "postfix"
            op = node.opcode.value.split(" ")[0]
            return (
                f"UnaryOperator{self._addr(node)} {self._ty(node.type)} "
                f"{fix} '{op}'"
            )
        if isinstance(node, e.ImplicitCastExpr):
            return (
                f"ImplicitCastExpr{self._addr(node)} {self._ty(node.type)} "
                f"<{node.cast_kind.value}>"
            )
        if isinstance(node, e.CStyleCastExpr):
            return (
                f"CStyleCastExpr{self._addr(node)} {self._ty(node.type)} "
                f"<{node.cast_kind.value}>"
            )
        if isinstance(node, e.ConstantExpr):
            return f"ConstantExpr{self._addr(node)} {self._ty(node.type)}"
        if isinstance(node, e.ParenExpr):
            return f"ParenExpr{self._addr(node)} {self._ty(node.type)}"
        if isinstance(node, e.CallExpr):
            return f"CallExpr{self._addr(node)} {self._ty(node.type)}"
        if isinstance(node, e.ArraySubscriptExpr):
            return (
                f"ArraySubscriptExpr{self._addr(node)} "
                f"{self._ty(node.type)} lvalue"
            )
        if isinstance(node, e.MemberExpr):
            arrow = "->" if node.is_arrow else "."
            return (
                f"MemberExpr{self._addr(node)} {self._ty(node.type)} "
                f"lvalue {arrow}{node.member.name}"
            )
        if isinstance(node, e.UnaryExprOrTypeTraitExpr):
            return (
                f"UnaryExprOrTypeTraitExpr{self._addr(node)} "
                f"{self._ty(node.type)} {node.trait}"
            )
        if isinstance(node, e.ConditionalOperator):
            return (
                f"ConditionalOperator{self._addr(node)} "
                f"{self._ty(node.type)}"
            )
        if isinstance(node, e.OpaqueValueExpr):
            return (
                f"OpaqueValueExpr{self._addr(node)} {self._ty(node.type)}"
            )
        if isinstance(node, e.Expr):
            return f"{type(node).__name__}{self._addr(node)} {self._ty(node.type)}"
        # --- Statements ---
        if isinstance(node, s.AttributedStmt):
            return f"AttributedStmt{self._addr(node)}"
        if isinstance(node, s.Stmt):
            return f"{type(node).__name__}{self._addr(node)}"
        if isinstance(node, s.Attr):
            return node.dump_name()
        return str(node)

    # ------------------------------------------------------------------
    # Child enumeration
    # ------------------------------------------------------------------
    def _children(self, node) -> list:
        """Dumpable children in clang order; ``None`` becomes <<<NULL>>>."""
        if node is None:
            return []
        if isinstance(node, d.TranslationUnitDecl):
            return list(node.declarations)
        if isinstance(node, d.FunctionDecl):
            return [*node.params, *( [node.body] if node.body else [] )]
        if isinstance(node, d.CapturedDecl):
            # Paper Listing 3 order: body, implicit params, then captured
            # variable declarations referenced from the region.
            out: list = [node.body]
            out.extend(node.params)
            return out
        if isinstance(node, d.VarDecl):
            return [node.init] if node.init is not None else []
        if isinstance(node, d.RecordDecl):
            return list(node.fields)
        if isinstance(node, d.Decl):
            return []
        if isinstance(node, cl.OMPClause):
            return [x for x in node.child_exprs() if x is not None]
        if isinstance(node, omp.OMPExecutableDirective):
            out = list(node.clauses)
            if node.associated_stmt is not None:
                out.append(node.associated_stmt)
            if self.dump_shadow:
                out.extend(node.shadow_children())
            return out
        if isinstance(node, s.CapturedStmt):
            out = [node.captured_decl]
            return out
        if isinstance(node, s.DeclStmt):
            return list(node.decls)
        if isinstance(node, s.AttributedStmt):
            return [*node.attrs, node.sub_stmt]
        if isinstance(node, s.LoopHintAttr):
            return [node.value] if node.value is not None else []
        if isinstance(node, e.ConstantExpr):
            return [("value: Int " + str(node.value)), node.sub_expr]
        if isinstance(node, s.ForStmt):
            # clang dumps all four slots, absent ones as <<<NULL>>>.
            return [node.init, node.cond, node.inc, node.body]
        if isinstance(node, s.Stmt):
            return list(node.children())
        return []

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------
    def _dump_node(
        self, node, prefix: str, connector: str, is_root: bool = False
    ) -> None:
        if isinstance(node, str):
            self.writer.emit(prefix, connector, node)
            return
        label = self._label(node)
        self.writer.emit(prefix, connector, label)
        if node is None:
            return
        children = self._children(node)
        if not children:
            return
        if is_root:
            child_prefix = ""
        else:
            child_prefix = prefix + ("| " if connector == "|-" else "  ")
        for i, child in enumerate(children):
            last = i == len(children) - 1
            self._dump_node(
                child, child_prefix, "`-" if last else "|-"
            )


def dump_ast(
    node,
    show_addresses: bool = False,
    dump_shadow: bool = False,
) -> str:
    """Dump *node* (a Stmt, Decl or OMPClause) as clang-style text."""
    return ASTDumper(
        show_addresses=show_addresses, dump_shadow=dump_shadow
    ).dump(node)
