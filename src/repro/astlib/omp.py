"""OpenMP directive AST nodes (paper Figs. 4/5, §2.1, §3.1).

Class hierarchy (paper Fig. 5)::

    Stmt
     └─ OMPExecutableDirective
         ├─ OMPParallelDirective, OMPBarrierDirective, ...
         └─ OMPLoopBasedDirective              (new)
             ├─ OMPLoopDirective               (carries ~30+6n shadow nodes)
             │   ├─ OMPForDirective
             │   ├─ OMPParallelForDirective
             │   ├─ OMPSimdDirective, ...
             ├─ OMPUnrollDirective             (new, shadow transformed AST)
             └─ OMPTileDirective               (new, shadow transformed AST)

plus the second representation's meta node :class:`OMPCanonicalLoop`
(paper §3.1), which wraps a literal loop and carries exactly the three
pieces of Sema-resolved information: the distance function, the loop
user value function, and the user variable reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.astlib.stmts import CapturedStmt, Stmt
from repro.sourcemgr.location import SourceLocation

if TYPE_CHECKING:
    from repro.astlib.clauses import OMPClause
    from repro.astlib.decls import VarDecl
    from repro.astlib.exprs import DeclRefExpr, Expr


class OMPExecutableDirective(Stmt):
    """Base class for directives placeable wherever a statement can appear.

    ``children()`` yields only the associated statement — clauses are a
    different class family and are therefore *not* enumerable through the
    inherited ``children()`` (paper §1.2 footnote); dumps print them via
    dedicated code.
    """

    #: directive name as written after ``#pragma omp``
    directive_name = "<directive>"

    def __init__(
        self,
        clauses: Sequence["OMPClause"] = (),
        associated_stmt: Stmt | None = None,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.clauses = list(clauses)
        self.associated_stmt = associated_stmt

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.associated_stmt,)

    def get_clause(self, clause_type):
        for clause in self.clauses:
            if isinstance(clause, clause_type):
                return clause
        return None

    def has_clause(self, clause_type) -> bool:
        return self.get_clause(clause_type) is not None

    def has_associated_stmt(self) -> bool:
        return self.associated_stmt is not None

    @property
    def captured_stmt(self) -> CapturedStmt | None:
        if isinstance(self.associated_stmt, CapturedStmt):
            return self.associated_stmt
        return None

    def dump_name(self) -> str:
        return type(self).__name__


# ---------------------------------------------------------------------------
# Non-loop directives
# ---------------------------------------------------------------------------
class OMPParallelDirective(OMPExecutableDirective):
    directive_name = "parallel"


class OMPBarrierDirective(OMPExecutableDirective):
    directive_name = "barrier"

    def children(self) -> Iterable[Optional[Stmt]]:
        return ()


class OMPMasterDirective(OMPExecutableDirective):
    directive_name = "master"


class OMPSingleDirective(OMPExecutableDirective):
    directive_name = "single"


class OMPCriticalDirective(OMPExecutableDirective):
    directive_name = "critical"

    def __init__(
        self,
        name: str = "",
        clauses: Sequence["OMPClause"] = (),
        associated_stmt: Stmt | None = None,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(clauses, associated_stmt, location)
        self.name = name


# ---------------------------------------------------------------------------
# Shadow-AST helper expression bundles
# ---------------------------------------------------------------------------
@dataclass
class LoopDirectiveHelpers:
    """The loop-nest-level shadow AST of :class:`OMPLoopDirective`.

    Paper §1.2: "``OMPLoopDirective`` has up to 30 shadow AST statements
    for representing a loop nest".  Each field is an expression/statement
    computed by Sema that effectively *is* code generation performed while
    building the AST — e.g. the number of iterations, whether an iteration
    is the last one, how to advance the loop counter, the per-thread
    lower/upper bound bookkeeping of a worksharing loop.
    """

    iteration_variable: Optional["Expr"] = None
    last_iteration: Optional["Expr"] = None
    calc_last_iteration: Optional["Expr"] = None
    precondition: Optional["Expr"] = None
    cond: Optional["Expr"] = None
    init: Optional["Expr"] = None
    inc: Optional["Expr"] = None
    num_iterations: Optional["Expr"] = None
    is_last_iter_variable: Optional["Expr"] = None
    lower_bound_variable: Optional["Expr"] = None
    upper_bound_variable: Optional["Expr"] = None
    stride_variable: Optional["Expr"] = None
    ensure_upper_bound: Optional["Expr"] = None
    next_lower_bound: Optional["Expr"] = None
    next_upper_bound: Optional["Expr"] = None
    prev_lower_bound_variable: Optional["Expr"] = None
    prev_upper_bound_variable: Optional["Expr"] = None
    dist_inc: Optional["Expr"] = None
    prev_ensure_upper_bound: Optional["Expr"] = None
    combined_lower_bound: Optional["Expr"] = None
    combined_upper_bound: Optional["Expr"] = None
    combined_ensure_upper_bound: Optional["Expr"] = None
    combined_init: Optional["Expr"] = None
    combined_cond: Optional["Expr"] = None
    combined_next_lower_bound: Optional["Expr"] = None
    combined_next_upper_bound: Optional["Expr"] = None
    combined_dist_cond: Optional["Expr"] = None
    combined_parallel_for_in_dist_cond: Optional["Expr"] = None
    pre_init: Optional[Stmt] = None
    iter_init: Optional[Stmt] = None

    def populated(self) -> list[Stmt]:
        return [
            getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        ]

    @classmethod
    def capacity(cls) -> int:
        """Number of shadow slots at the loop-nest level (paper: "up to
        30")."""
        return len(fields(cls))


@dataclass
class LoopHelperExprs:
    """Per-associated-loop shadow AST (paper: "plus 6 for each loop")."""

    counter: Optional["Expr"] = None
    private_counter: Optional["Expr"] = None
    counter_init: Optional["Expr"] = None
    counter_update: Optional["Expr"] = None
    counter_final: Optional["Expr"] = None
    dependent_counter: Optional["Expr"] = None

    def populated(self) -> list[Stmt]:
        return [
            getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) is not None
        ]

    @classmethod
    def capacity(cls) -> int:
        return len(fields(cls))


# ---------------------------------------------------------------------------
# Loop-based directives
# ---------------------------------------------------------------------------
class OMPLoopBasedDirective(OMPExecutableDirective):
    """Base class for directives associated with a canonical loop nest.

    Inserted between ``OMPExecutableDirective`` and ``OMPLoopDirective``
    (paper §2.1, Fig. 5) so that loop *transformations* — which only need
    the transformed AST, not the many worksharing shadow nodes — do not pay
    for ``OMPLoopDirective``'s machinery.
    """

    def __init__(
        self,
        clauses: Sequence["OMPClause"] = (),
        associated_stmt: Stmt | None = None,
        num_associated_loops: int = 1,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(clauses, associated_stmt, location)
        self.num_associated_loops = num_associated_loops


class OMPLoopDirective(OMPLoopBasedDirective):
    """Base for loop-associated *worksharing* directives.

    Owns the shadow AST bundles (:class:`LoopDirectiveHelpers` and one
    :class:`LoopHelperExprs` per associated loop).  The shadow nodes are
    **not** part of :meth:`children` and not dumped — the defining property
    of the shadow AST (paper §1.2).
    """

    def __init__(
        self,
        clauses: Sequence["OMPClause"] = (),
        associated_stmt: Stmt | None = None,
        num_associated_loops: int = 1,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(
            clauses, associated_stmt, num_associated_loops, location
        )
        self.helpers = LoopDirectiveHelpers()
        self.loop_helpers: list[LoopHelperExprs] = [
            LoopHelperExprs() for _ in range(num_associated_loops)
        ]

    def shadow_children(self) -> Iterable[Optional[Stmt]]:
        out: list[Stmt] = list(self.helpers.populated())
        for bundle in self.loop_helpers:
            out.extend(bundle.populated())
        return out

    def shadow_node_count(self) -> int:
        return len(list(self.shadow_children()))

    @classmethod
    def shadow_capacity(cls, num_loops: int = 1) -> int:
        """Maximum shadow slots: ~30 plus 6 per loop (paper §1.2)."""
        return (
            LoopDirectiveHelpers.capacity()
            + num_loops * LoopHelperExprs.capacity()
        )


class OMPForDirective(OMPLoopDirective):
    directive_name = "for"


class OMPParallelForDirective(OMPLoopDirective):
    directive_name = "parallel for"


class OMPSimdDirective(OMPLoopDirective):
    directive_name = "simd"


class OMPForSimdDirective(OMPLoopDirective):
    directive_name = "for simd"


class OMPParallelForSimdDirective(OMPLoopDirective):
    directive_name = "parallel for simd"


class OMPTaskloopDirective(OMPLoopDirective):
    directive_name = "taskloop"


# ---------------------------------------------------------------------------
# Loop transformations (OpenMP 5.1; the paper's contribution)
# ---------------------------------------------------------------------------
class OMPLoopTransformationDirective(OMPLoopBasedDirective):
    """Common base of tile/unroll: owns the *transformed AST* (shadow).

    The transformed statement is semantically equivalent code built by Sema
    (:mod:`repro.core.shadow`), stored next to the syntactic AST.  A
    consuming directive calls :meth:`get_transformed_stmt` and re-analyses
    the result as if the programmer had written it (paper §2).

    ``pre_inits`` are declarations that must execute before the generated
    loops (e.g. materialized bounds), kept separate so a consuming
    directive can emit them outside the loop nest it analyses.
    """

    def __init__(
        self,
        clauses: Sequence["OMPClause"] = (),
        associated_stmt: Stmt | None = None,
        num_associated_loops: int = 1,
        transformed_stmt: Stmt | None = None,
        pre_inits: Stmt | None = None,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(
            clauses, associated_stmt, num_associated_loops, location
        )
        self._transformed_stmt = transformed_stmt
        self.pre_inits = pre_inits

    def get_transformed_stmt(self) -> Stmt | None:
        """The semantically equivalent replacement loop (shadow AST).

        ``None`` when no replacement exists/is needed: a full unroll leaves
        no loop to associate with (OpenMP rules), and a directive that is
        not consumed by an outer directive generates code directly
        (paper §2.2).
        """
        return self._transformed_stmt

    def set_transformed_stmt(self, stmt: Stmt | None) -> None:
        self._transformed_stmt = stmt

    def shadow_children(self) -> Iterable[Optional[Stmt]]:
        out = []
        if self.pre_inits is not None:
            out.append(self.pre_inits)
        if self._transformed_stmt is not None:
            out.append(self._transformed_stmt)
        return out

    def shadow_node_count(self) -> int:
        return len(list(self.shadow_children()))


class OMPTileDirective(OMPLoopTransformationDirective):
    directive_name = "tile"


class OMPUnrollDirective(OMPLoopTransformationDirective):
    directive_name = "unroll"


class OMPReverseDirective(OMPLoopTransformationDirective):
    """OpenMP 6.0 ``reverse`` (paper §4: "OpenMP 6.0 is expected to
    introduce additional loop transformations"); implemented here on both
    representations as the extension the paper's abstractions enable."""

    directive_name = "reverse"


class OMPInterchangeDirective(OMPLoopTransformationDirective):
    """OpenMP 6.0 ``interchange`` (loop permutation); see
    :class:`OMPReverseDirective`."""

    directive_name = "interchange"


class OMPFuseDirective(OMPLoopTransformationDirective):
    """OpenMP 6.0 ``fuse``: merges a *sequence* of canonical loops into
    one generated loop — the paper's §4: "The additional loop
    transformation will likely include loop fusion and fission that
    handle sequences of loops in addition to loop nests"."""

    directive_name = "fuse"


# ---------------------------------------------------------------------------
# The canonical loop meta-node (second representation, paper §3.1)
# ---------------------------------------------------------------------------
class OMPCanonicalLoop(Stmt):
    """Wraps a literal loop that satisfies OpenMP's canonical form.

    Acts like an implicit AST node (analogous to an implicit cast): it is
    inserted as the parent of a ``ForStmt``/``CXXForRangeStmt`` whenever
    the loop needs to be "converted" into an OpenMP canonical loop as part
    of a loop-associated directive, and can be losslessly removed again if
    the wrapped loop must be re-analysed.

    Children (paper Listing "Unroll directive using OMPCanonicalLoop"):

    1. ``loop_stmt`` — the wrapped literal loop,
    2. ``distance_func`` — a :class:`CapturedStmt` lambda
       ``[&](size_t &Result) { Result = __end - __begin; }`` evaluating the
       trip count before loop entry,
    3. ``loop_var_func`` — a :class:`CapturedStmt` lambda
       ``[&,__begin](auto &Result, size_t __i) { Result = __begin + __i; }``
       converting a *logical iteration number* into the value of the loop
       user variable,
    4. ``loop_var_ref`` — a ``DeclRefExpr`` naming the user variable that
       must be updated before each iteration.

    That is the complete minimal meta-information set the paper identifies
    — reduced from the ~36 shadow nodes of ``OMPLoopDirective``.
    """

    def __init__(
        self,
        loop_stmt: Stmt,
        distance_func: CapturedStmt,
        loop_var_func: CapturedStmt,
        loop_var_ref: "DeclRefExpr",
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.loop_stmt = loop_stmt
        self.distance_func = distance_func
        self.loop_var_func = loop_var_func
        self.loop_var_ref = loop_var_ref

    def children(self) -> Iterable[Optional[Stmt]]:
        return (
            self.loop_stmt,
            self.distance_func,
            self.loop_var_func,
            self.loop_var_ref,
        )

    def unwrap(self) -> Stmt:
        """Losslessly remove the canonical-loop wrapper (paper §3.1)."""
        return self.loop_stmt

    def meta_node_count(self) -> int:
        """The Sema-resolved meta nodes: distance fn, user-value fn, user
        variable reference (always 3; contrast with
        ``OMPLoopDirective.shadow_capacity()``)."""
        return 3
