"""TreeTransform: rebuild AST subtrees with substitutions (paper §1.3).

Clang's ``TreeTransform`` creates copies of (immutable) AST subtrees with
some changes applied — its primary use is template instantiation; the
shadow-AST loop transformations work "similar to how TreeTransform works
already" (paper §2).  This implementation:

* deep-copies statements and expressions,
* re-declares local variables found along the way and remaps
  ``DeclRefExpr`` references to the new declarations,
* lets subclasses override ``transform_<Node>`` hooks to substitute
  specific subtrees (e.g. replace a loop counter reference with a derived
  expression — exactly what strip-mining needs).
"""

from __future__ import annotations

from typing import Optional

from repro.astlib import exprs as e
from repro.astlib import omp
from repro.astlib import stmts as s
from repro.astlib.decls import (
    CapturedDecl,
    Decl,
    ParmVarDecl,
    VarDecl,
)
from repro.instrument import get_statistic

_REBUILDS = get_statistic(
    "sema",
    "tree-transform-rebuilds",
    "Statements rebuilt by TreeTransform",
)


class TreeTransform:
    """Deep-copying AST rebuilder with declaration remapping."""

    def __init__(self) -> None:
        #: old VarDecl -> replacement VarDecl or replacement Expr
        self.decl_substitutions: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Substitution management
    # ------------------------------------------------------------------
    def substitute_decl(self, old: Decl, new: object) -> None:
        """Register *old* to be replaced by *new* (a Decl, or an Expr when
        every reference should be replaced by an expression)."""
        self.decl_substitutions[id(old)] = new

    def _lookup(self, decl: Decl) -> object | None:
        return self.decl_substitutions.get(id(decl))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def transform_stmt(self, stmt: Optional[s.Stmt]) -> Optional[s.Stmt]:
        if stmt is None:
            return None
        _REBUILDS.inc()
        method = getattr(
            self, f"transform_{type(stmt).__name__}", None
        )
        if method is not None:
            return method(stmt)
        # Generic per-class fallbacks.
        if isinstance(stmt, e.Expr):
            return self.transform_expr(stmt)
        if isinstance(stmt, s.CompoundStmt):
            return s.CompoundStmt(
                [self.transform_stmt(c) for c in stmt.statements],
                stmt.location,
            )
        if isinstance(stmt, s.DeclStmt):
            return s.DeclStmt(
                [self.transform_decl(d_) for d_ in stmt.decls],
                stmt.location,
            )
        if isinstance(stmt, s.IfStmt):
            return s.IfStmt(
                self.transform_expr(stmt.cond),
                self.transform_stmt(stmt.then_stmt),
                self.transform_stmt(stmt.else_stmt),
                stmt.location,
            )
        if isinstance(stmt, s.WhileStmt):
            return s.WhileStmt(
                self.transform_expr(stmt.cond),
                self.transform_stmt(stmt.body),
                stmt.location,
            )
        if isinstance(stmt, s.DoStmt):
            return s.DoStmt(
                self.transform_stmt(stmt.body),
                self.transform_expr(stmt.cond),
                stmt.location,
            )
        if isinstance(stmt, s.ForStmt):
            return s.ForStmt(
                self.transform_stmt(stmt.init),
                self.transform_expr(stmt.cond),
                self.transform_expr(stmt.inc),
                self.transform_stmt(stmt.body),
                stmt.location,
            )
        if isinstance(stmt, s.ReturnStmt):
            return s.ReturnStmt(
                self.transform_expr(stmt.value), stmt.location
            )
        if isinstance(stmt, s.AttributedStmt):
            return s.AttributedStmt(
                list(stmt.attrs),
                self.transform_stmt(stmt.sub_stmt),
                stmt.location,
            )
        if isinstance(stmt, s.CapturedStmt):
            new_decl = CapturedDecl(
                self.transform_stmt(stmt.captured_decl.body),
                list(stmt.captured_decl.params),
                stmt.captured_decl.nothrow,
            )
            new_stmt = s.CapturedStmt(
                new_decl, list(stmt.captures), stmt.location
            )
            new_stmt.by_value = set(stmt.by_value)
            return new_stmt
        if isinstance(stmt, omp.OMPExecutableDirective):
            # Rebuild with the same clauses; the associated stmt is copied.
            copy = type(stmt).__new__(type(stmt))
            copy.__dict__.update(stmt.__dict__)
            copy.associated_stmt = self.transform_stmt(stmt.associated_stmt)
            return copy
        if isinstance(
            stmt,
            (s.NullStmt, s.BreakStmt, s.ContinueStmt, s.GotoStmt),
        ):
            return type(stmt)(location=stmt.location) if not isinstance(
                stmt, s.GotoStmt
            ) else s.GotoStmt(stmt.decl, stmt.location)
        raise NotImplementedError(
            f"TreeTransform does not handle {type(stmt).__name__}"
        )

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def transform_decl(self, decl: Decl) -> Decl:
        if isinstance(decl, VarDecl) and not isinstance(
            decl, ParmVarDecl
        ):
            new = VarDecl(
                decl.name,
                decl.type,
                self.transform_expr(decl.init),
                decl.storage_class,
                decl.location,
            )
            self.substitute_decl(decl, new)
            return new
        return decl

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def transform_expr(
        self, expr: Optional[e.Expr]
    ) -> Optional[e.Expr]:
        if expr is None:
            return None
        method = getattr(
            self, f"transform_{type(expr).__name__}", None
        )
        if method is not None:
            return method(expr)
        if isinstance(expr, e.DeclRefExpr):
            replacement = self._lookup(expr.decl)
            if replacement is None:
                return e.DeclRefExpr(
                    expr.decl, expr.type, expr.value_category, expr.location
                )
            if isinstance(replacement, e.Expr):
                return replacement
            assert isinstance(replacement, VarDecl)
            return e.DeclRefExpr(
                replacement,
                expr.type,
                expr.value_category,
                expr.location,
            )
        if isinstance(
            expr,
            (
                e.IntegerLiteral,
                e.FloatingLiteral,
                e.CharacterLiteral,
                e.BoolLiteralExpr,
                e.StringLiteral,
            ),
        ):
            return type(expr)(expr.value, expr.type, expr.location)
        if isinstance(expr, e.ParenExpr):
            return e.ParenExpr(
                self.transform_expr(expr.sub_expr), expr.location
            )
        if isinstance(expr, e.CompoundAssignOperator):
            return e.CompoundAssignOperator(
                expr.opcode,
                self.transform_expr(expr.lhs),
                self.transform_expr(expr.rhs),
                expr.type,
                expr.computation_type,
                expr.location,
            )
        if isinstance(expr, e.BinaryOperator):
            return e.BinaryOperator(
                expr.opcode,
                self.transform_expr(expr.lhs),
                self.transform_expr(expr.rhs),
                expr.type,
                expr.value_category,
                expr.location,
            )
        if isinstance(expr, e.UnaryOperator):
            return e.UnaryOperator(
                expr.opcode,
                self.transform_expr(expr.sub_expr),
                expr.type,
                expr.value_category,
                expr.location,
            )
        if isinstance(expr, e.ImplicitCastExpr):
            return e.ImplicitCastExpr(
                expr.cast_kind,
                self.transform_expr(expr.sub_expr),
                expr.type,
                expr.value_category,
                expr.location,
            )
        if isinstance(expr, e.CStyleCastExpr):
            return e.CStyleCastExpr(
                expr.cast_kind,
                self.transform_expr(expr.sub_expr),
                expr.type,
                expr.value_category,
                expr.location,
            )
        if isinstance(expr, e.ConditionalOperator):
            return e.ConditionalOperator(
                self.transform_expr(expr.cond),
                self.transform_expr(expr.true_expr),
                self.transform_expr(expr.false_expr),
                expr.type,
                expr.location,
            )
        if isinstance(expr, e.ArraySubscriptExpr):
            return e.ArraySubscriptExpr(
                self.transform_expr(expr.base),
                self.transform_expr(expr.index),
                expr.type,
                expr.location,
            )
        if isinstance(expr, e.CallExpr):
            return e.CallExpr(
                self.transform_expr(expr.callee),
                [self.transform_expr(a) for a in expr.args],
                expr.type,
                expr.location,
            )
        if isinstance(expr, e.MemberExpr):
            return e.MemberExpr(
                self.transform_expr(expr.base),
                expr.member,
                expr.is_arrow,
                expr.type,
                expr.location,
            )
        if isinstance(expr, e.ConstantExpr):
            return e.ConstantExpr(
                self.transform_expr(expr.sub_expr),
                expr.value,
                expr.location,
            )
        if isinstance(expr, e.UnaryExprOrTypeTraitExpr):
            return e.UnaryExprOrTypeTraitExpr(
                expr.trait,
                expr.argument_type,
                self.transform_expr(expr.argument_expr),
                expr.type,
                expr.location,
            )
        if isinstance(expr, e.OpaqueValueExpr):
            return e.OpaqueValueExpr(
                self.transform_expr(expr.source_expr),
                expr.type,
                expr.value_category,
            )
        if isinstance(expr, e.InitListExpr):
            return e.InitListExpr(
                [self.transform_expr(i) for i in expr.inits],
                expr.type,
                expr.location,
            )
        raise NotImplementedError(
            f"TreeTransform does not handle {type(expr).__name__}"
        )
