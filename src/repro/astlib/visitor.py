"""Visitors — one per class family, as in clang (paper §1.2).

"For walking over all AST nodes, a visitor pattern separate for each of the
type hierarchies must be used (``StmtVisitorBase``, ``DeclVisitor``,
``TypeVisitor``, ``OMPClauseVisitor``)."

Each visitor dispatches on the dynamic type's MRO, so a visitor method for
a base class (e.g. ``visit_OMPLoopDirective``) also handles subclasses
unless a more specific method exists — matching clang's CRTP fallback
behaviour.  :class:`RecursiveASTVisitor` composes the families into one
whole-AST traversal.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.astlib.clauses import OMPClause
from repro.astlib.decls import (
    CapturedDecl,
    Decl,
    FunctionDecl,
    TranslationUnitDecl,
    VarDecl,
)
from repro.astlib.stmts import DeclStmt, Stmt
from repro.astlib.types import Type


class _DispatchVisitor:
    """Shared MRO-based dispatch: ``visit_<ClassName>`` with base fallback."""

    _prefix = "visit_"
    _default = "visit_default"

    def _dispatch(self, node: Any, *args):
        for klass in type(node).__mro__:
            method = getattr(self, self._prefix + klass.__name__, None)
            if method is not None:
                return method(node, *args)
        return getattr(self, self._default)(node, *args)

    def visit_default(self, node: Any, *args):
        return None


class StmtVisitorBase(_DispatchVisitor):
    """Visitor over the Stmt (and Expr) family."""

    def visit(self, stmt: Optional[Stmt], *args):
        if stmt is None:
            return None
        return self._dispatch(stmt, *args)

    def visit_children(self, stmt: Stmt, *args):
        for child in stmt.children():
            self.visit(child, *args)


class DeclVisitor(_DispatchVisitor):
    def visit(self, decl: Optional[Decl], *args):
        if decl is None:
            return None
        return self._dispatch(decl, *args)


class TypeVisitor(_DispatchVisitor):
    def visit(self, ty: Optional[Type], *args):
        if ty is None:
            return None
        return self._dispatch(ty, *args)


class OMPClauseVisitor(_DispatchVisitor):
    def visit(self, clause: Optional[OMPClause], *args):
        if clause is None:
            return None
        return self._dispatch(clause, *args)


class RecursiveASTVisitor:
    """Depth-first traversal over the whole AST, crossing family borders
    (DeclStmt -> VarDecl -> initializer Expr; directive -> clauses -> their
    expressions; CapturedStmt -> CapturedDecl body).

    Subclasses override ``visit_stmt`` / ``visit_decl`` / ``visit_clause``;
    returning ``False`` from any of them prunes the subtree.  Shadow AST
    children are *not* traversed unless ``traverse_shadow=True``, matching
    clang's behaviour of hiding them from generic consumers.
    """

    def __init__(self, traverse_shadow: bool = False) -> None:
        self.traverse_shadow = traverse_shadow

    # Overridables -------------------------------------------------------
    def visit_stmt(self, stmt: Stmt) -> bool:
        return True

    def visit_decl(self, decl: Decl) -> bool:
        return True

    def visit_clause(self, clause: OMPClause) -> bool:
        return True

    # Traversal -----------------------------------------------------------
    def traverse_stmt(self, stmt: Optional[Stmt]) -> None:
        from repro.astlib.omp import OMPExecutableDirective

        if stmt is None:
            return
        if not self.visit_stmt(stmt):
            return
        if isinstance(stmt, OMPExecutableDirective):
            for clause in stmt.clauses:
                self.traverse_clause(clause)
        if isinstance(stmt, DeclStmt):
            for decl in stmt.decls:
                self.traverse_decl(decl)
        for child in stmt.children():
            self.traverse_stmt(child)
        if self.traverse_shadow:
            for child in stmt.shadow_children():
                self.traverse_stmt(child)

    def traverse_decl(self, decl: Optional[Decl]) -> None:
        if decl is None:
            return
        if not self.visit_decl(decl):
            return
        if isinstance(decl, TranslationUnitDecl):
            for d in decl.declarations:
                self.traverse_decl(d)
        elif isinstance(decl, FunctionDecl):
            for p in decl.params:
                self.traverse_decl(p)
            self.traverse_stmt(decl.body)
        elif isinstance(decl, VarDecl):
            self.traverse_stmt(decl.init)
        elif isinstance(decl, CapturedDecl):
            for p in decl.params:
                self.traverse_decl(p)
            self.traverse_stmt(decl.body)

    def traverse_clause(self, clause: Optional[OMPClause]) -> None:
        if clause is None:
            return
        if not self.visit_clause(clause):
            return
        for expr in clause.child_exprs():
            self.traverse_stmt(expr)


def collect_stmts(root: Stmt, predicate=None, include_shadow=False):
    """All statements under *root* (optionally filtered)."""
    result: list[Stmt] = []

    class Collector(RecursiveASTVisitor):
        def visit_stmt(self, stmt: Stmt) -> bool:
            if predicate is None or predicate(stmt):
                result.append(stmt)
            return True

    Collector(traverse_shadow=include_shadow).traverse_stmt(root)
    return result


def count_nodes(root: Stmt, include_shadow: bool = False) -> int:
    """Number of statement nodes under *root* (used by the AST-size
    benchmarks comparing the two representations, paper §3/E14)."""
    return len(collect_stmts(root, include_shadow=include_shadow))
