"""The OMPClause hierarchy (paper Fig. 6).

Clauses are their own class family — they are *not* statements, which is
why ``Stmt.children()`` cannot enumerate them and AST dumps print them
through specialized per-directive code (paper §1.2, footnote 1).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.sourcemgr.location import SourceLocation

if TYPE_CHECKING:
    from repro.astlib.exprs import DeclRefExpr, Expr


class OMPClause:
    """Base class of all OpenMP clauses."""

    #: clause keyword as written in source, set by subclasses
    clause_name = "<clause>"

    def __init__(self, location: SourceLocation | None = None) -> None:
        self.location = location or SourceLocation()

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        """Expressions owned by the clause (for dumping/traversal)."""
        return ()

    def dump_name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


# ---------------------------------------------------------------------------
# Loop-transformation clauses (new in OpenMP 5.1, paper Fig. 6)
# ---------------------------------------------------------------------------
class OMPFullClause(OMPClause):
    """``full`` on ``omp unroll``: unroll completely; no generated loop
    remains, hence the construct cannot be consumed by another directive."""

    clause_name = "full"


class OMPPartialClause(OMPClause):
    """``partial(N)`` on ``omp unroll``.  ``factor`` may be None
    (``partial`` without argument lets the implementation choose)."""

    clause_name = "partial"

    def __init__(
        self,
        factor: Optional["Expr"] = None,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.factor = factor

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        return (self.factor,)


class OMPSizesClause(OMPClause):
    """``sizes(s1, s2, ...)`` on ``omp tile``."""

    clause_name = "sizes"

    def __init__(
        self,
        sizes: Sequence["Expr"],
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.sizes = list(sizes)

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        return tuple(self.sizes)


class OMPPermutationClause(OMPClause):
    """``permutation(p1, p2, ...)`` on ``omp interchange``
    (OpenMP 6.0 — the paper's §4 expected extensions)."""

    clause_name = "permutation"

    def __init__(
        self,
        indices: Sequence["Expr"],
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.indices = list(indices)

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        return tuple(self.indices)


# ---------------------------------------------------------------------------
# Worksharing / parallelism clauses
# ---------------------------------------------------------------------------
class ScheduleKind(enum.Enum):
    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"
    AUTO = "auto"
    RUNTIME = "runtime"


class OMPScheduleClause(OMPClause):
    clause_name = "schedule"

    def __init__(
        self,
        kind: ScheduleKind,
        chunk_size: Optional["Expr"] = None,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.kind = kind
        self.chunk_size = chunk_size

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        return (self.chunk_size,)


class OMPNumThreadsClause(OMPClause):
    clause_name = "num_threads"

    def __init__(
        self,
        num_threads: "Expr",
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.num_threads = num_threads

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        return (self.num_threads,)


class OMPCollapseClause(OMPClause):
    clause_name = "collapse"

    def __init__(
        self, num_loops: "Expr", location: SourceLocation | None = None
    ) -> None:
        super().__init__(location)
        self.num_loops = num_loops

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        return (self.num_loops,)


class OMPIfClause(OMPClause):
    clause_name = "if"

    def __init__(
        self, condition: "Expr", location: SourceLocation | None = None
    ) -> None:
        super().__init__(location)
        self.condition = condition

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        return (self.condition,)


class OMPNowaitClause(OMPClause):
    clause_name = "nowait"


class OMPOrderedClause(OMPClause):
    clause_name = "ordered"


class OMPSimdlenClause(OMPClause):
    clause_name = "simdlen"

    def __init__(
        self, length: "Expr", location: SourceLocation | None = None
    ) -> None:
        super().__init__(location)
        self.length = length

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        return (self.length,)


# ---------------------------------------------------------------------------
# Data-sharing clauses
# ---------------------------------------------------------------------------
class OMPVarListClause(OMPClause):
    """Base for clauses carrying a variable list."""

    def __init__(
        self,
        variables: Sequence["DeclRefExpr"],
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.variables = list(variables)

    def child_exprs(self) -> Iterable[Optional["Expr"]]:
        return tuple(self.variables)

    def decls(self):
        return [v.decl for v in self.variables]


class OMPPrivateClause(OMPVarListClause):
    clause_name = "private"


class OMPFirstprivateClause(OMPVarListClause):
    clause_name = "firstprivate"


class OMPLastprivateClause(OMPVarListClause):
    clause_name = "lastprivate"


class OMPSharedClause(OMPVarListClause):
    clause_name = "shared"


class ReductionOperator(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    AND = "&"
    OR = "|"
    XOR = "^"
    LAND = "&&"
    LOR = "||"
    MIN = "min"
    MAX = "max"


class OMPReductionClause(OMPVarListClause):
    clause_name = "reduction"

    def __init__(
        self,
        operator: ReductionOperator,
        variables: Sequence["DeclRefExpr"],
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(variables, location)
        self.operator = operator


class DefaultKind(enum.Enum):
    SHARED = "shared"
    NONE = "none"
    FIRSTPRIVATE = "firstprivate"


class OMPDefaultClause(OMPClause):
    clause_name = "default"

    def __init__(
        self, kind: DefaultKind, location: SourceLocation | None = None
    ) -> None:
        super().__init__(location)
        self.kind = kind
