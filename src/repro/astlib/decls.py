"""The Decl hierarchy.

As in clang, declarations are a separate class family from statements and
types (no common base class); ``DeclStmt`` adapts a declaration into the
statement tree and ``DeclRefExpr`` references one from the expression tree.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Iterable, Optional

from repro.astlib.types import QualType
from repro.sourcemgr.location import SourceLocation

if TYPE_CHECKING:
    from repro.astlib.exprs import Expr
    from repro.astlib.stmts import Stmt

_decl_ids = itertools.count(0x1000)


class Decl:
    """Base class of all declarations."""

    def __init__(self, location: SourceLocation | None = None) -> None:
        self.location = location or SourceLocation()
        #: Stable id used by the AST dumper (stands in for clang's pointer
        #: values such as ``0x7fffc6750e68``).
        self.node_id = next(_decl_ids)
        self.is_implicit = False
        self.is_referenced = False

    def dump_name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {getattr(self, 'name', '')!r}>"


class TranslationUnitDecl(Decl):
    """Root of the AST: the whole translation unit."""

    def __init__(self) -> None:
        super().__init__()
        self.declarations: list[Decl] = []

    def add(self, decl: Decl) -> None:
        self.declarations.append(decl)

    def functions(self) -> Iterable["FunctionDecl"]:
        return (d for d in self.declarations if isinstance(d, FunctionDecl))

    def lookup(self, name: str) -> Optional["NamedDecl"]:
        for decl in self.declarations:
            if isinstance(decl, NamedDecl) and decl.name == name:
                return decl
        return None


class NamedDecl(Decl):
    def __init__(
        self, name: str, location: SourceLocation | None = None
    ) -> None:
        super().__init__(location)
        self.name = name


class ValueDecl(NamedDecl):
    """A named entity with a type (variables, functions, enumerators)."""

    def __init__(
        self,
        name: str,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(name, location)
        self.type = type


class StorageClass(enum.Enum):
    NONE = "none"
    STATIC = "static"
    EXTERN = "extern"
    AUTO = "auto"


class VarDecl(ValueDecl):
    def __init__(
        self,
        name: str,
        type: QualType,
        init: Optional["Expr"] = None,
        storage_class: StorageClass = StorageClass.NONE,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(name, type, location)
        self.init = init
        self.storage_class = storage_class
        self.is_global = False

    @property
    def has_init(self) -> bool:
        return self.init is not None


class ParmVarDecl(VarDecl):
    """A function parameter."""


class ImplicitParamDecl(ParmVarDecl):
    """An implicit parameter of a captured/outlined region.

    The paper's Listing 3 shows three of them on every ``CapturedDecl``:
    ``.global_tid.``, ``.bound_tid.`` and ``__context``.
    """

    def __init__(self, name: str, type: QualType) -> None:
        super().__init__(name, type)
        self.is_implicit = True


class FieldDecl(ValueDecl):
    def __init__(
        self,
        name: str,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(name, type, location)
        self.offset_bits: int | None = None  # laid out by ASTContext
        self.index = -1


class RecordDecl(NamedDecl):
    def __init__(
        self,
        name: str,
        is_union: bool = False,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(name, location)
        self.is_union = is_union
        self.fields: list[FieldDecl] = []
        self.is_complete = False

    def add_field(self, f: FieldDecl) -> None:
        f.index = len(self.fields)
        self.fields.append(f)

    def field_named(self, name: str) -> FieldDecl | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None


class EnumConstantDecl(ValueDecl):
    def __init__(
        self,
        name: str,
        type: QualType,
        value: int,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(name, type, location)
        self.value = value


class EnumDecl(NamedDecl):
    def __init__(
        self, name: str, location: SourceLocation | None = None
    ) -> None:
        super().__init__(name, location)
        self.constants: list[EnumConstantDecl] = []


class TypedefDecl(NamedDecl):
    def __init__(
        self,
        name: str,
        underlying: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(name, location)
        self.underlying = underlying


class FunctionDecl(ValueDecl):
    """A function declaration/definition.  ``type`` is the FunctionType."""

    def __init__(
        self,
        name: str,
        type: QualType,
        params: list[ParmVarDecl],
        body: Optional["Stmt"] = None,
        storage_class: StorageClass = StorageClass.NONE,
        is_inline: bool = False,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(name, type, location)
        self.params = params
        self.body = body
        self.storage_class = storage_class
        self.is_inline = is_inline

    @property
    def is_definition(self) -> bool:
        return self.body is not None

    @property
    def return_type(self) -> QualType:
        from repro.astlib.types import FunctionType

        fnty = self.type.type
        assert isinstance(fnty, FunctionType)
        return fnty.return_type


class CapturedDecl(Decl):
    """The implicit 'lambda function' definition of a :class:`CapturedStmt`.

    Paper §1.2: Clang re-purposes its C++ lambda / ObjC block machinery to
    outline the code associated with an OpenMP directive.  The captured
    declaration holds the outlined body plus the implicit parameters
    (thread ids and the ``__context`` capture structure).
    """

    def __init__(
        self,
        body: Optional["Stmt"] = None,
        params: list[ImplicitParamDecl] | None = None,
        nothrow: bool = True,
    ) -> None:
        super().__init__()
        self.body = body
        self.params: list[ImplicitParamDecl] = params or []
        self.nothrow = nothrow
        self.is_implicit = True

    def add_param(self, p: ImplicitParamDecl) -> None:
        self.params.append(p)


class LabelDecl(NamedDecl):
    pass
