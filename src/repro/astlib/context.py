"""ASTContext: type uniquing, target layout, and common type accessors.

Clang's ``ASTContext`` owns all AST node allocations and guarantees a
single canonical object per type, making pointer equality meaningful; we
reproduce that with memoized constructors.  The target model is LP64.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.astlib.decls import RecordDecl, TranslationUnitDecl, TypedefDecl
from repro.astlib.types import (
    BUILTIN_WIDTH,
    ArrayType,
    BuiltinKind,
    BuiltinType,
    ConstantArrayType,
    EnumType,
    FunctionType,
    IncompleteArrayType,
    PointerType,
    QualType,
    RecordType,
    ReferenceType,
    Type,
    TypedefType,
    desugar,
)


@dataclass(frozen=True)
class TargetInfo:
    """LP64 data layout (the paper's implementation targets 64-bit hosts)."""

    pointer_width: int = 64
    size_t_kind: BuiltinKind = BuiltinKind.ULONG
    ptrdiff_t_kind: BuiltinKind = BuiltinKind.LONG
    char_is_signed: bool = True

    def builtin_width(self, kind: BuiltinKind) -> int:
        return BUILTIN_WIDTH[kind]


class ASTContext:
    """Owns type uniquing and layout computation for one translation unit."""

    def __init__(self, target: TargetInfo | None = None) -> None:
        self.target = target or TargetInfo()
        self.translation_unit = TranslationUnitDecl()
        self._builtins: dict[BuiltinKind, BuiltinType] = {}
        self._pointers: dict[tuple, PointerType] = {}
        self._references: dict[tuple, ReferenceType] = {}
        self._const_arrays: dict[tuple, ConstantArrayType] = {}
        self._incomplete_arrays: dict[tuple, IncompleteArrayType] = {}
        self._functions: dict[tuple, FunctionType] = {}
        self._records: dict[int, RecordType] = {}
        self._enums: dict[int, EnumType] = {}
        self._typedefs: dict[int, TypedefType] = {}

    # ------------------------------------------------------------------
    # Uniqued type constructors
    # ------------------------------------------------------------------
    def get_builtin(self, kind: BuiltinKind) -> QualType:
        ty = self._builtins.get(kind)
        if ty is None:
            ty = BuiltinType(kind)
            self._builtins[kind] = ty
        return QualType(ty)

    # Convenience accessors --------------------------------------------
    @property
    def void_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.VOID)

    @property
    def bool_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.BOOL)

    @property
    def char_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.CHAR)

    @property
    def int_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.INT)

    @property
    def uint_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.UINT)

    @property
    def long_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.LONG)

    @property
    def ulong_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.ULONG)

    @property
    def longlong_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.LONGLONG)

    @property
    def ulonglong_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.ULONGLONG)

    @property
    def float_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.FLOAT)

    @property
    def double_type(self) -> QualType:
        return self.get_builtin(BuiltinKind.DOUBLE)

    @property
    def size_type(self) -> QualType:
        """``size_t`` — the paper's logical iteration counter type for
        64-bit iteration spaces."""
        return self.get_builtin(self.target.size_t_kind)

    @property
    def ptrdiff_type(self) -> QualType:
        return self.get_builtin(self.target.ptrdiff_t_kind)

    def get_pointer(self, pointee: QualType) -> QualType:
        key = (
            pointee.type,
            pointee.is_const,
            pointee.is_volatile,
            pointee.is_restrict,
        )
        ty = self._pointers.get(key)
        if ty is None:
            ty = PointerType(pointee)
            self._pointers[key] = ty
        return QualType(ty)

    def get_reference(self, pointee: QualType) -> QualType:
        key = (
            pointee.type,
            pointee.is_const,
            pointee.is_volatile,
            pointee.is_restrict,
        )
        ty = self._references.get(key)
        if ty is None:
            ty = ReferenceType(pointee)
            self._references[key] = ty
        return QualType(ty)

    def get_constant_array(self, element: QualType, size: int) -> QualType:
        key = (element.type, element.is_const, size)
        ty = self._const_arrays.get(key)
        if ty is None:
            ty = ConstantArrayType(element, size)
            self._const_arrays[key] = ty
        return QualType(ty)

    def get_incomplete_array(self, element: QualType) -> QualType:
        key = (element.type, element.is_const)
        ty = self._incomplete_arrays.get(key)
        if ty is None:
            ty = IncompleteArrayType(element)
            self._incomplete_arrays[key] = ty
        return QualType(ty)

    def get_function(
        self,
        return_type: QualType,
        params: list[QualType],
        is_variadic: bool = False,
    ) -> QualType:
        key = (
            return_type.type,
            tuple(p.type for p in params),
            is_variadic,
        )
        ty = self._functions.get(key)
        if ty is None:
            ty = FunctionType(return_type, tuple(params), is_variadic)
            self._functions[key] = ty
        return QualType(ty)

    def get_record(self, decl: RecordDecl) -> QualType:
        ty = self._records.get(id(decl))
        if ty is None:
            ty = RecordType(decl)
            self._records[id(decl)] = ty
        return QualType(ty)

    def get_enum(self, decl) -> QualType:
        ty = self._enums.get(id(decl))
        if ty is None:
            ty = EnumType(decl)
            self._enums[id(decl)] = ty
        return QualType(ty)

    def get_typedef(self, decl: TypedefDecl) -> QualType:
        ty = self._typedefs.get(id(decl))
        if ty is None:
            ty = TypedefType(decl, desugar(decl.underlying))
            self._typedefs[id(decl)] = ty
        return QualType(ty)

    def int_type_of_width(self, bits: int, signed: bool) -> QualType:
        table = {
            (8, True): BuiltinKind.SCHAR,
            (8, False): BuiltinKind.UCHAR,
            (16, True): BuiltinKind.SHORT,
            (16, False): BuiltinKind.USHORT,
            (32, True): BuiltinKind.INT,
            (32, False): BuiltinKind.UINT,
            (64, True): BuiltinKind.LONG,
            (64, False): BuiltinKind.ULONG,
        }
        return self.get_builtin(table[(bits, signed)])

    # ------------------------------------------------------------------
    # Layout queries (bits)
    # ------------------------------------------------------------------
    def type_width(self, qt: QualType) -> int:
        ty = desugar(qt).type
        if isinstance(ty, BuiltinType):
            return ty.width
        if isinstance(ty, (PointerType, ReferenceType)):
            return self.target.pointer_width
        if isinstance(ty, EnumType):
            return BUILTIN_WIDTH[BuiltinKind.INT]
        if isinstance(ty, ConstantArrayType):
            return ty.size * self.type_width(ty.element)
        if isinstance(ty, RecordType):
            size, _ = self._record_layout(ty.decl)
            return size
        raise ValueError(f"type has no width: {ty.spelling()}")

    def type_align(self, qt: QualType) -> int:
        ty = desugar(qt).type
        if isinstance(ty, BuiltinType):
            return max(ty.width, 8)
        if isinstance(ty, (PointerType, ReferenceType)):
            return self.target.pointer_width
        if isinstance(ty, EnumType):
            return BUILTIN_WIDTH[BuiltinKind.INT]
        if isinstance(ty, ConstantArrayType):
            return self.type_align(ty.element)
        if isinstance(ty, RecordType):
            _, align = self._record_layout(ty.decl)
            return align
        raise ValueError(f"type has no alignment: {ty.spelling()}")

    def type_size_bytes(self, qt: QualType) -> int:
        return (self.type_width(qt) + 7) // 8

    def _record_layout(self, decl: RecordDecl) -> tuple[int, int]:
        """Compute (and memoize on the fields) a C struct/union layout.

        Returns (size_bits, align_bits).
        """
        align = 8
        if decl.is_union:
            size = 8
            for f in decl.fields:
                f.offset_bits = 0
                size = max(size, self.type_width(f.type))
                align = max(align, self.type_align(f.type))
        else:
            size = 0
            for f in decl.fields:
                falign = self.type_align(f.type)
                align = max(align, falign)
                size = (size + falign - 1) // falign * falign
                f.offset_bits = size
                size += self.type_width(f.type)
        size = max(8, (size + align - 1) // align * align)
        return size, align

    def field_offset_bytes(self, decl: RecordDecl, field_name: str) -> int:
        self._record_layout(decl)
        f = decl.field_named(field_name)
        if f is None or f.offset_bits is None:
            raise ValueError(f"no field {field_name} in {decl.name}")
        return f.offset_bits // 8

    # ------------------------------------------------------------------
    # Type predicates that need the context
    # ------------------------------------------------------------------
    def is_same_type(self, a: QualType, b: QualType) -> bool:
        return desugar(a).type is desugar(b).type

    def integer_is_wider_or_equal(self, a: QualType, b: QualType) -> bool:
        return self.type_width(a) >= self.type_width(b)
