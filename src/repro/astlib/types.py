"""The Type hierarchy (clang ``Type`` + ``QualType``).

Types are uniqued through :class:`~repro.astlib.context.ASTContext`; identity
comparison is therefore meaningful for canonical types, as in clang.
Qualifiers (const/volatile/restrict) live in :class:`QualType`, a light
value wrapper around the uniqued ``Type`` node.

The target model is LP64 (int 32-bit, long/pointers 64-bit), matching the
machines the paper's implementation targets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.astlib.decls import RecordDecl, TypedefDecl, EnumDecl
    from repro.astlib.exprs import Expr


class BuiltinKind(enum.Enum):
    VOID = "void"
    BOOL = "bool"
    CHAR = "char"
    SCHAR = "signed char"
    UCHAR = "unsigned char"
    SHORT = "short"
    USHORT = "unsigned short"
    INT = "int"
    UINT = "unsigned int"
    LONG = "long"
    ULONG = "unsigned long"
    LONGLONG = "long long"
    ULONGLONG = "unsigned long long"
    FLOAT = "float"
    DOUBLE = "double"


_SIGNED_INTS = {
    BuiltinKind.SCHAR,
    BuiltinKind.CHAR,  # char is signed in our target model
    BuiltinKind.SHORT,
    BuiltinKind.INT,
    BuiltinKind.LONG,
    BuiltinKind.LONGLONG,
}
_UNSIGNED_INTS = {
    BuiltinKind.BOOL,
    BuiltinKind.UCHAR,
    BuiltinKind.USHORT,
    BuiltinKind.UINT,
    BuiltinKind.ULONG,
    BuiltinKind.ULONGLONG,
}
_FLOATS = {BuiltinKind.FLOAT, BuiltinKind.DOUBLE}

#: LP64 widths in bits.
BUILTIN_WIDTH: dict[BuiltinKind, int] = {
    BuiltinKind.VOID: 0,
    BuiltinKind.BOOL: 8,
    BuiltinKind.CHAR: 8,
    BuiltinKind.SCHAR: 8,
    BuiltinKind.UCHAR: 8,
    BuiltinKind.SHORT: 16,
    BuiltinKind.USHORT: 16,
    BuiltinKind.INT: 32,
    BuiltinKind.UINT: 32,
    BuiltinKind.LONG: 64,
    BuiltinKind.ULONG: 64,
    BuiltinKind.LONGLONG: 64,
    BuiltinKind.ULONGLONG: 64,
    BuiltinKind.FLOAT: 32,
    BuiltinKind.DOUBLE: 64,
}

#: Integer conversion rank (C11 6.3.1.1).
_RANK: dict[BuiltinKind, int] = {
    BuiltinKind.BOOL: 0,
    BuiltinKind.CHAR: 1,
    BuiltinKind.SCHAR: 1,
    BuiltinKind.UCHAR: 1,
    BuiltinKind.SHORT: 2,
    BuiltinKind.USHORT: 2,
    BuiltinKind.INT: 3,
    BuiltinKind.UINT: 3,
    BuiltinKind.LONG: 4,
    BuiltinKind.ULONG: 4,
    BuiltinKind.LONGLONG: 5,
    BuiltinKind.ULONGLONG: 5,
}


class Type:
    """Base of the type hierarchy.  No common root with Stmt/Decl."""

    def spelling(self) -> str:
        raise NotImplementedError

    # Classification ----------------------------------------------------
    def is_void(self) -> bool:
        return isinstance(self, BuiltinType) and self.kind == BuiltinKind.VOID

    def is_bool(self) -> bool:
        return isinstance(self, BuiltinType) and self.kind == BuiltinKind.BOOL

    def is_integer(self) -> bool:
        if isinstance(self, BuiltinType):
            return self.kind in _SIGNED_INTS or self.kind in _UNSIGNED_INTS
        return isinstance(self, EnumType)

    def is_signed_integer(self) -> bool:
        if isinstance(self, BuiltinType):
            return self.kind in _SIGNED_INTS
        return isinstance(self, EnumType)

    def is_unsigned_integer(self) -> bool:
        return isinstance(self, BuiltinType) and self.kind in _UNSIGNED_INTS

    def is_floating(self) -> bool:
        return isinstance(self, BuiltinType) and self.kind in _FLOATS

    def is_arithmetic(self) -> bool:
        return self.is_integer() or self.is_floating()

    def is_scalar(self) -> bool:
        return self.is_arithmetic() or self.is_pointer()

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_record(self) -> bool:
        return isinstance(self, RecordType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def is_reference(self) -> bool:
        return isinstance(self, ReferenceType)

    def integer_rank(self) -> int:
        assert isinstance(self, BuiltinType)
        return _RANK[self.kind]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.spelling()!r}>"


@dataclass(frozen=True)
class QualType:
    """A type plus const/volatile/restrict qualifiers (clang ``QualType``)."""

    type: Type
    is_const: bool = False
    is_volatile: bool = False
    is_restrict: bool = False

    def spelling(self) -> str:
        quals = []
        if self.is_const:
            quals.append("const")
        if self.is_volatile:
            quals.append("volatile")
        if self.is_restrict:
            quals.append("__restrict")
        base = self.type.spelling()
        if not quals:
            return base
        if isinstance(self.type, (PointerType, ReferenceType)):
            # Pointer qualifiers are suffixes: `const int *const __restrict`.
            return base + " ".join(quals)
        return " ".join(quals + [base])

    def unqualified(self) -> "QualType":
        if not (self.is_const or self.is_volatile or self.is_restrict):
            return self
        return QualType(self.type)

    def with_const(self) -> "QualType":
        return QualType(self.type, True, self.is_volatile, self.is_restrict)

    # Forwarders so callers rarely need ``.type`` -----------------------
    def __getattr__(self, item: str):
        # Only forward the is_* classification predicates and rank.
        if item.startswith("is_") or item == "integer_rank":
            return getattr(self.type, item)
        raise AttributeError(item)

    def same_type(self, other: "QualType") -> bool:
        """Canonical unqualified type equality."""
        return self.type is other.type

    def __str__(self) -> str:
        return self.spelling()


class BuiltinType(Type):
    def __init__(self, kind: BuiltinKind) -> None:
        self.kind = kind

    def spelling(self) -> str:
        return self.kind.value

    @property
    def width(self) -> int:
        return BUILTIN_WIDTH[self.kind]


class PointerType(Type):
    def __init__(self, pointee: QualType) -> None:
        self.pointee = pointee

    def spelling(self) -> str:
        inner = self.pointee.spelling()
        if inner.endswith("*"):
            return f"{inner}*"
        return f"{inner} *"


class ReferenceType(Type):
    """C++ lvalue reference; only used by the range-for de-sugaring and the
    by-reference lambda captures of the distance / user-value functions."""

    def __init__(self, pointee: QualType) -> None:
        self.pointee = pointee

    def spelling(self) -> str:
        return f"{self.pointee.spelling()} &"


class ArrayType(Type):
    def __init__(self, element: QualType) -> None:
        self.element = element


class ConstantArrayType(ArrayType):
    def __init__(self, element: QualType, size: int) -> None:
        super().__init__(element)
        self.size = size

    def spelling(self) -> str:
        return f"{self.element.spelling()}[{self.size}]"


class IncompleteArrayType(ArrayType):
    def spelling(self) -> str:
        return f"{self.element.spelling()}[]"


class FunctionType(Type):
    def __init__(
        self,
        return_type: QualType,
        params: tuple[QualType, ...],
        is_variadic: bool = False,
    ) -> None:
        self.return_type = return_type
        self.params = params
        self.is_variadic = is_variadic

    def spelling(self) -> str:
        params = ", ".join(p.spelling() for p in self.params)
        if self.is_variadic:
            params = f"{params}, ..." if params else "..."
        if not params:
            params = "void"
        return f"{self.return_type.spelling()} ({params})"


class RecordType(Type):
    def __init__(self, decl: "RecordDecl") -> None:
        self.decl = decl

    def spelling(self) -> str:
        tag = "union" if self.decl.is_union else "struct"
        if self.decl.name:
            return f"{tag} {self.decl.name}"
        return f"(unnamed {tag})"


class EnumType(Type):
    def __init__(self, decl: "EnumDecl") -> None:
        self.decl = decl

    def spelling(self) -> str:
        return f"enum {self.decl.name}" if self.decl.name else "(unnamed enum)"


class TypedefType(Type):
    """A sugar node: keeps the typedef name for diagnostics/dumps while the
    canonical type is reachable via ``canonical``."""

    def __init__(self, decl: "TypedefDecl", canonical: QualType) -> None:
        self.decl = decl
        self.canonical = canonical

    def spelling(self) -> str:
        return self.decl.name


def desugar(qt: QualType) -> QualType:
    """Strip typedef sugar, preserving qualifiers."""
    ty = qt.type
    while isinstance(ty, TypedefType):
        inner = ty.canonical
        qt = QualType(
            inner.type,
            qt.is_const or inner.is_const,
            qt.is_volatile or inner.is_volatile,
            qt.is_restrict or inner.is_restrict,
        )
        ty = qt.type
    return qt
