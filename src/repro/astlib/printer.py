"""Pretty-printer: AST -> C source text.

Used by the source-to-source example (dumping the transformed shadow AST as
compilable C, the way `clang -ast-print` would) and by diagnostics that
quote expressions.  Parentheses written by the user survive as ParenExpr
nodes; everything else is re-parenthesized conservatively.
"""

from __future__ import annotations

from typing import Optional

from repro.astlib import clauses as cl
from repro.astlib import decls as d
from repro.astlib import exprs as e
from repro.astlib import omp
from repro.astlib import stmts as s


class ASTPrinter:
    def __init__(self, indent_width: int = 2) -> None:
        self.indent_width = indent_width

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def print_expr(self, expr: Optional[e.Expr]) -> str:
        if expr is None:
            return ""
        if isinstance(expr, e.IntegerLiteral):
            return str(expr.value)
        if isinstance(expr, e.FloatingLiteral):
            text = repr(expr.value)
            return text
        if isinstance(expr, e.CharacterLiteral):
            return f"'{chr(expr.value)}'"
        if isinstance(expr, e.BoolLiteralExpr):
            return "true" if expr.value else "false"
        if isinstance(expr, e.StringLiteral):
            escaped = (
                expr.value.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
            )
            return f'"{escaped}"'
        if isinstance(expr, e.DeclRefExpr):
            return expr.decl.name
        if isinstance(expr, e.ParenExpr):
            return f"({self.print_expr(expr.sub_expr)})"
        if isinstance(expr, e.ImplicitCastExpr):
            return self.print_expr(expr.sub_expr)
        if isinstance(expr, e.ConstantExpr):
            return self.print_expr(expr.sub_expr)
        if isinstance(expr, e.CStyleCastExpr):
            return (
                f"({expr.type.spelling()})"
                f"{self._maybe_paren(expr.sub_expr)}"
            )
        if isinstance(expr, e.CompoundAssignOperator):
            return (
                f"{self.print_expr(expr.lhs)} {expr.opcode.value} "
                f"{self.print_expr(expr.rhs)}"
            )
        if isinstance(expr, e.BinaryOperator):
            lhs = self._maybe_paren(expr.lhs)
            rhs = self._maybe_paren(expr.rhs)
            if expr.opcode == e.BinaryOperatorKind.COMMA:
                return f"{lhs}, {rhs}"
            return f"{lhs} {expr.opcode.value} {rhs}"
        if isinstance(expr, e.UnaryOperator):
            sub = self._maybe_paren(expr.sub_expr)
            op = expr.opcode.value.split(" ")[0]
            if expr.opcode.is_prefix():
                return f"{op}{sub}"
            return f"{sub}{op}"
        if isinstance(expr, e.ConditionalOperator):
            return (
                f"{self._maybe_paren(expr.cond)} ? "
                f"{self.print_expr(expr.true_expr)} : "
                f"{self.print_expr(expr.false_expr)}"
            )
        if isinstance(expr, e.ArraySubscriptExpr):
            return (
                f"{self._maybe_paren(expr.base)}"
                f"[{self.print_expr(expr.index)}]"
            )
        if isinstance(expr, e.CallExpr):
            args = ", ".join(self.print_expr(a) for a in expr.args)
            return f"{self._maybe_paren(expr.callee)}({args})"
        if isinstance(expr, e.MemberExpr):
            op = "->" if expr.is_arrow else "."
            return f"{self._maybe_paren(expr.base)}{op}{expr.member.name}"
        if isinstance(expr, e.UnaryExprOrTypeTraitExpr):
            if expr.argument_type is not None:
                return f"sizeof({expr.argument_type.spelling()})"
            return f"sizeof({self.print_expr(expr.argument_expr)})"
        if isinstance(expr, e.OpaqueValueExpr):
            return self.print_expr(expr.source_expr)
        if isinstance(expr, e.InitListExpr):
            inner = ", ".join(self.print_expr(i) for i in expr.inits)
            return "{" + inner + "}"
        raise NotImplementedError(
            f"cannot print {type(expr).__name__}"
        )

    def _maybe_paren(self, expr: e.Expr) -> str:
        text = self.print_expr(expr)
        atomic = (
            e.IntegerLiteral,
            e.FloatingLiteral,
            e.CharacterLiteral,
            e.BoolLiteralExpr,
            e.StringLiteral,
            e.DeclRefExpr,
            e.ParenExpr,
            e.CallExpr,
            e.ArraySubscriptExpr,
            e.MemberExpr,
            e.UnaryExprOrTypeTraitExpr,
        )
        stripped = expr
        while isinstance(stripped, (e.ImplicitCastExpr, e.ConstantExpr)):
            stripped = (
                stripped.sub_expr
                if isinstance(stripped, (e.ImplicitCastExpr, e.ConstantExpr))
                else stripped
            )
        if isinstance(stripped, atomic):
            return self.print_expr(stripped)
        return f"({text})"

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def print_var_decl(self, decl: d.VarDecl) -> str:
        ty = decl.type
        text = f"{ty.spelling()} {decl.name}"
        # Array declarators need the suffix syntax.
        from repro.astlib.types import ConstantArrayType, desugar

        canonical = desugar(ty).type
        if isinstance(canonical, ConstantArrayType):
            text = (
                f"{canonical.element.spelling()} {decl.name}"
                f"[{canonical.size}]"
            )
        if decl.init is not None:
            text += f" = {self.print_expr(decl.init)}"
        return text

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def print_stmt(self, stmt: Optional[s.Stmt], indent: int = 0) -> str:
        pad = " " * (indent * self.indent_width)
        if stmt is None:
            return f"{pad};"
        if isinstance(stmt, s.NullStmt):
            return f"{pad};"
        if isinstance(stmt, e.Expr):
            return f"{pad}{self.print_expr(stmt)};"
        if isinstance(stmt, s.CompoundStmt):
            lines = [f"{pad}{{"]
            for child in stmt.statements:
                lines.append(self.print_stmt(child, indent + 1))
            lines.append(f"{pad}}}")
            return "\n".join(lines)
        if isinstance(stmt, s.DeclStmt):
            decls = "; ".join(
                self.print_var_decl(x)
                for x in stmt.decls
                if isinstance(x, d.VarDecl)
            )
            return f"{pad}{decls};"
        if isinstance(stmt, s.IfStmt):
            text = (
                f"{pad}if ({self.print_expr(stmt.cond)})\n"
                f"{self.print_stmt(stmt.then_stmt, indent + 1)}"
            )
            if stmt.else_stmt is not None:
                text += (
                    f"\n{pad}else\n"
                    f"{self.print_stmt(stmt.else_stmt, indent + 1)}"
                )
            return text
        if isinstance(stmt, s.WhileStmt):
            return (
                f"{pad}while ({self.print_expr(stmt.cond)})\n"
                f"{self.print_stmt(stmt.body, indent + 1)}"
            )
        if isinstance(stmt, s.DoStmt):
            return (
                f"{pad}do\n{self.print_stmt(stmt.body, indent + 1)}\n"
                f"{pad}while ({self.print_expr(stmt.cond)});"
            )
        if isinstance(stmt, s.ForStmt):
            init = ""
            if isinstance(stmt.init, s.DeclStmt):
                init = self.print_stmt(stmt.init, 0).strip().rstrip(";")
            elif isinstance(stmt.init, e.Expr):
                init = self.print_expr(stmt.init)
            cond = self.print_expr(stmt.cond) if stmt.cond else ""
            inc = self.print_expr(stmt.inc) if stmt.inc else ""
            return (
                f"{pad}for ({init}; {cond}; {inc})\n"
                f"{self.print_stmt(stmt.body, indent + 1)}"
            )
        if isinstance(stmt, s.CXXForRangeStmt):
            var = stmt.loop_variable
            range_decl = stmt.range_stmt.single_decl
            assert isinstance(range_decl, d.VarDecl)
            return (
                f"{pad}for ({var.type.spelling()} {var.name} : "
                f"{self.print_expr(range_decl.init)})\n"
                f"{self.print_stmt(stmt.body, indent + 1)}"
            )
        if isinstance(stmt, s.BreakStmt):
            return f"{pad}break;"
        if isinstance(stmt, s.ContinueStmt):
            return f"{pad}continue;"
        if isinstance(stmt, s.ReturnStmt):
            if stmt.value is None:
                return f"{pad}return;"
            return f"{pad}return {self.print_expr(stmt.value)};"
        if isinstance(stmt, s.AttributedStmt):
            lines = []
            for attr in stmt.loop_hints():
                arg = (
                    f"({self.print_expr(attr.value)})"
                    if attr.value is not None
                    else ""
                )
                option = {
                    s.LoopHintAttr.UNROLL_COUNT: "unroll_count",
                    s.LoopHintAttr.UNROLL: "unroll",
                    s.LoopHintAttr.UNROLL_FULL: "unroll(full)",
                }.get(attr.option, attr.option)
                lines.append(f"{pad}#pragma clang loop {option}{arg}")
            lines.append(self.print_stmt(stmt.sub_stmt, indent))
            return "\n".join(lines)
        if isinstance(stmt, s.CapturedStmt):
            return self.print_stmt(stmt.captured_decl.body, indent)
        if isinstance(stmt, omp.OMPCanonicalLoop):
            return self.print_stmt(stmt.loop_stmt, indent)
        if isinstance(stmt, omp.OMPExecutableDirective):
            clause_text = " ".join(
                self.print_clause(c) for c in stmt.clauses
            )
            pragma = f"{pad}#pragma omp {stmt.directive_name}"
            if clause_text:
                pragma += f" {clause_text}"
            if stmt.associated_stmt is None:
                return pragma
            return (
                f"{pragma}\n"
                f"{self.print_stmt(stmt.associated_stmt, indent)}"
            )
        if isinstance(stmt, s.SwitchStmt):
            return (
                f"{pad}switch ({self.print_expr(stmt.cond)})\n"
                f"{self.print_stmt(stmt.body, indent + 1)}"
            )
        if isinstance(stmt, s.CaseStmt):
            return (
                f"{pad}case {self.print_expr(stmt.value)}:\n"
                f"{self.print_stmt(stmt.sub_stmt, indent + 1)}"
            )
        if isinstance(stmt, s.DefaultStmt):
            return (
                f"{pad}default:\n"
                f"{self.print_stmt(stmt.sub_stmt, indent + 1)}"
            )
        raise NotImplementedError(f"cannot print {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Clauses
    # ------------------------------------------------------------------
    def print_clause(self, clause: cl.OMPClause) -> str:
        if isinstance(clause, cl.OMPPartialClause):
            if clause.factor is None:
                return "partial"
            return f"partial({self.print_expr(clause.factor)})"
        if isinstance(clause, cl.OMPSizesClause):
            inner = ", ".join(self.print_expr(x) for x in clause.sizes)
            return f"sizes({inner})"
        if isinstance(clause, cl.OMPPermutationClause):
            inner = ", ".join(
                self.print_expr(x) for x in clause.indices
            )
            return f"permutation({inner})"
        if isinstance(clause, cl.OMPScheduleClause):
            if clause.chunk_size is not None:
                return (
                    f"schedule({clause.kind.value}, "
                    f"{self.print_expr(clause.chunk_size)})"
                )
            return f"schedule({clause.kind.value})"
        if isinstance(clause, cl.OMPNumThreadsClause):
            return f"num_threads({self.print_expr(clause.num_threads)})"
        if isinstance(clause, cl.OMPCollapseClause):
            return f"collapse({self.print_expr(clause.num_loops)})"
        if isinstance(clause, cl.OMPIfClause):
            return f"if({self.print_expr(clause.condition)})"
        if isinstance(clause, cl.OMPSimdlenClause):
            return f"simdlen({self.print_expr(clause.length)})"
        if isinstance(clause, cl.OMPReductionClause):
            vars_ = ", ".join(v.decl.name for v in clause.variables)
            return f"reduction({clause.operator.value}: {vars_})"
        if isinstance(clause, cl.OMPVarListClause):
            vars_ = ", ".join(v.decl.name for v in clause.variables)
            return f"{clause.clause_name}({vars_})"
        if isinstance(clause, cl.OMPDefaultClause):
            return f"default({clause.kind.value})"
        return clause.clause_name

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def print_function(self, fn: d.FunctionDecl) -> str:
        params = ", ".join(
            f"{p.type.spelling()} {p.name}" for p in fn.params
        )
        header = f"{fn.return_type.spelling()} {fn.name}({params or 'void'})"
        if fn.body is None:
            return f"{header};"
        return f"{header}\n{self.print_stmt(fn.body, 0)}"

    def print_translation_unit(self, tu: d.TranslationUnitDecl) -> str:
        parts = []
        for decl in tu.declarations:
            if isinstance(decl, d.FunctionDecl):
                parts.append(self.print_function(decl))
            elif isinstance(decl, d.VarDecl):
                parts.append(self.print_var_decl(decl) + ";")
            elif isinstance(decl, d.TypedefDecl):
                parts.append(
                    f"typedef {decl.underlying.spelling()} {decl.name};"
                )
        return "\n\n".join(parts) + "\n"


def print_ast(node, indent: int = 0) -> str:
    """Convenience wrapper for printing a statement or expression."""
    printer = ASTPrinter()
    if isinstance(node, e.Expr):
        return printer.print_expr(node)
    if isinstance(node, s.Stmt):
        return printer.print_stmt(node, indent)
    if isinstance(node, d.FunctionDecl):
        return printer.print_function(node)
    if isinstance(node, d.TranslationUnitDecl):
        return printer.print_translation_unit(node)
    raise TypeError(f"cannot print {type(node).__name__}")
