"""The Clang-style Abstract Syntax Tree.

Follows the design constraints the paper describes:

* The AST mixes syntactic-only (``ParenExpr``) and semantic-only
  (``ImplicitCastExpr``) nodes in one structure and is **immutable by
  convention** once Sema finished building it (the shadow-AST transforms
  build *new* subtrees, they never mutate).
* There is **no common base class** across the four node families ``Stmt``
  (with ``Expr`` derived from it), ``Decl``, ``Type`` and ``OMPClause``;
  each family has its own visitor (paper §1.2).
* ``Stmt.children()`` enumerates only ``Stmt`` children.  Nodes may own
  additional *shadow AST* children that are excluded from ``children()``
  and from the AST dump (``OMPLoopDirective``'s code-generation helpers);
  those are exposed via ``shadow_children()``.
"""

from repro.astlib.context import ASTContext, TargetInfo
from repro.astlib import types as ast_types
from repro.astlib import decls, exprs, stmts, omp, clauses
from repro.astlib.dump import dump_ast
from repro.astlib.visitor import (
    DeclVisitor,
    OMPClauseVisitor,
    RecursiveASTVisitor,
    StmtVisitorBase,
    TypeVisitor,
)

__all__ = [
    "ASTContext",
    "DeclVisitor",
    "OMPClauseVisitor",
    "RecursiveASTVisitor",
    "StmtVisitorBase",
    "TargetInfo",
    "TypeVisitor",
    "ast_types",
    "clauses",
    "decls",
    "dump_ast",
    "exprs",
    "omp",
    "stmts",
]
