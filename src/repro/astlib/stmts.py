"""The Stmt hierarchy (statements; ``Expr`` derives from ``Stmt``).

``children()`` mirrors clang's ``Stmt::children()``: it enumerates only the
*statement* children visible to generic traversals, dumps and matchers.
Shadow AST children (paper §1.2) are returned by ``shadow_children()``
instead and deliberately excluded from both ``children()`` and the dump.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from repro.sourcemgr.location import SourceLocation, SourceRange

if TYPE_CHECKING:
    from repro.astlib.decls import CapturedDecl, Decl, LabelDecl, VarDecl
    from repro.astlib.exprs import DeclRefExpr, Expr

_stmt_ids = itertools.count(0x8000)


class Stmt:
    """Base class of every statement (and, transitively, expression)."""

    def __init__(self, location: SourceLocation | None = None) -> None:
        self.location = location or SourceLocation()
        self.node_id = next(_stmt_ids)

    def children(self) -> Iterable[Optional["Stmt"]]:
        """Sub-statements; may contain ``None`` holes (clang does too, e.g.
        a ``for`` without a condition)."""
        return ()

    def shadow_children(self) -> Iterable[Optional["Stmt"]]:
        """Hidden sub-trees that only exist for code generation.

        Excluded from :meth:`children` and from AST dumps, following the
        paper's description of clang's *shadow AST*.
        """
        return ()

    def source_range(self) -> SourceRange:
        return SourceRange.from_location(self.location)

    def dump_name(self) -> str:
        return type(self).__name__

    def walk(self) -> Iterator["Stmt"]:
        """Pre-order walk over :meth:`children` (shadow trees excluded)."""
        yield self
        for child in self.children():
            if child is not None:
                yield from child.walk()

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class NullStmt(Stmt):
    """A lone ``;``."""


class CompoundStmt(Stmt):
    def __init__(
        self,
        statements: Sequence[Stmt],
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.statements = list(statements)

    def children(self) -> Iterable[Optional[Stmt]]:
        return self.statements


class DeclStmt(Stmt):
    """Adapts declarations into the statement tree."""

    def __init__(
        self,
        decls: Sequence["Decl"],
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.decls = list(decls)

    @property
    def single_decl(self) -> "Decl":
        assert len(self.decls) == 1
        return self.decls[0]

    def children(self) -> Iterable[Optional[Stmt]]:
        # Clang exposes variable initializers through the DeclStmt's
        # children for traversal purposes; we expose none and let
        # RecursiveASTVisitor handle decls explicitly, keeping dumps close
        # to clang's (which nests inits under the VarDecl entry).
        return ()


class IfStmt(Stmt):
    def __init__(
        self,
        cond: "Expr",
        then_stmt: Stmt,
        else_stmt: Stmt | None = None,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.cond = cond
        self.then_stmt = then_stmt
        self.else_stmt = else_stmt

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.cond, self.then_stmt, self.else_stmt)


class WhileStmt(Stmt):
    def __init__(
        self,
        cond: "Expr",
        body: Stmt,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.cond = cond
        self.body = body

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.cond, self.body)


class DoStmt(Stmt):
    def __init__(
        self,
        body: Stmt,
        cond: "Expr",
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.body = body
        self.cond = cond

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.body, self.cond)


class ForStmt(Stmt):
    """A literal C for-loop.

    Children order matches clang: init, condition-variable slot (unused
    here, kept as ``None`` hole parity is not needed), cond, inc, body.
    The AST dump in the paper (Listing 3) shows exactly init/cond/incr/body
    with ``<<<NULL>>>`` for absent parts.
    """

    def __init__(
        self,
        init: Stmt | None,
        cond: Optional["Expr"],
        inc: Optional["Expr"],
        body: Stmt,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.init = init
        self.cond = cond
        self.inc = inc
        self.body = body

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.init, self.cond, self.inc, self.body)


class CXXForRangeStmt(Stmt):
    """A C++11 range-based for-loop, with its de-sugared helper statements.

    Mirrors clang: the node keeps both the syntactic form (loop variable +
    range expression) and the semantic de-sugaring (__range/__begin/__end
    declarations, condition, increment) as children, so analyses need not
    replicate the equivalence the standard mandates (paper Fig. "three
    implementations of a loop at various stages of de-sugaring").
    """

    def __init__(
        self,
        range_stmt: "DeclStmt",
        begin_stmt: "DeclStmt",
        end_stmt: "DeclStmt",
        cond: "Expr",
        inc: "Expr",
        loop_var_stmt: "DeclStmt",
        body: Stmt,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.range_stmt = range_stmt
        self.begin_stmt = begin_stmt
        self.end_stmt = end_stmt
        self.cond = cond
        self.inc = inc
        self.loop_var_stmt = loop_var_stmt
        self.body = body

    @property
    def loop_variable(self) -> "VarDecl":
        from repro.astlib.decls import VarDecl

        decl = self.loop_var_stmt.single_decl
        assert isinstance(decl, VarDecl)
        return decl

    def children(self) -> Iterable[Optional[Stmt]]:
        return (
            self.range_stmt,
            self.begin_stmt,
            self.end_stmt,
            self.cond,
            self.inc,
            self.loop_var_stmt,
            self.body,
        )


class SwitchStmt(Stmt):
    def __init__(
        self,
        cond: "Expr",
        body: Stmt,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.cond = cond
        self.body = body
        self.cases: list["SwitchCase"] = []

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.cond, self.body)


class SwitchCase(Stmt):
    def __init__(
        self, sub_stmt: Stmt, location: SourceLocation | None = None
    ) -> None:
        super().__init__(location)
        self.sub_stmt = sub_stmt

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.sub_stmt,)


class CaseStmt(SwitchCase):
    def __init__(
        self,
        value: "Expr",
        sub_stmt: Stmt,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(sub_stmt, location)
        self.value = value

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.value, self.sub_stmt)


class DefaultStmt(SwitchCase):
    pass


class BreakStmt(Stmt):
    pass


class ContinueStmt(Stmt):
    pass


class ReturnStmt(Stmt):
    def __init__(
        self,
        value: Optional["Expr"] = None,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.value = value

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.value,)


class LabelStmt(Stmt):
    def __init__(
        self,
        decl: "LabelDecl",
        sub_stmt: Stmt,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.decl = decl
        self.sub_stmt = sub_stmt

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.sub_stmt,)


class GotoStmt(Stmt):
    def __init__(
        self, decl: "LabelDecl", location: SourceLocation | None = None
    ) -> None:
        super().__init__(location)
        self.decl = decl


# ---------------------------------------------------------------------------
# Attributes
# ---------------------------------------------------------------------------
class Attr:
    """Base class for statement attributes."""

    def dump_name(self) -> str:
        return type(self).__name__


class LoopHintAttr(Attr):
    """``#pragma clang loop``-style hint attached via AttributedStmt.

    The shadow-AST unroll implementation annotates the strip-mined inner
    loop with ``LoopHintAttr(UnrollCount, N)`` (paper Listing
    "Transformed AST of the unroll directive"): the code generator lowers
    it to ``llvm.loop.unroll.count`` metadata and the mid-end ``LoopUnroll``
    pass performs the duplication.
    """

    UNROLL_COUNT = "UnrollCount"
    UNROLL = "Unroll"
    UNROLL_FULL = "UnrollFull"

    def __init__(
        self,
        option: str,
        value: Optional["Expr"] = None,
        state: str = "Numeric",
        is_implicit: bool = True,
    ) -> None:
        self.option = option
        self.value = value
        self.state = state
        self.is_implicit = is_implicit

    def dump_name(self) -> str:
        implicit = "Implicit " if self.is_implicit else ""
        return f"LoopHintAttr {implicit}loop {self.option} {self.state}"


class AttributedStmt(Stmt):
    def __init__(
        self,
        attrs: Sequence[Attr],
        sub_stmt: Stmt,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.attrs = list(attrs)
        self.sub_stmt = sub_stmt

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.sub_stmt,)

    def loop_hints(self) -> list[LoopHintAttr]:
        return [a for a in self.attrs if isinstance(a, LoopHintAttr)]


# ---------------------------------------------------------------------------
# Captured statements (outlining support)
# ---------------------------------------------------------------------------
class CapturedStmt(Stmt):
    """A statement whose execution is outlined into an implicit function.

    Borrows from Clang's C++ lambda / ObjC block implementation (paper
    §1.2): ``captured_decl`` is the implicit function definition, this node
    is the statement that "declares" it, and the enclosing OpenMP directive
    is responsible for calling it (possibly from other threads).
    ``captures`` lists the variables referenced inside, which become members
    of the implicit ``__context`` structure.
    """

    def __init__(
        self,
        captured_decl: "CapturedDecl",
        captures: Sequence["VarDecl"] = (),
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.captured_decl = captured_decl
        self.captures = list(captures)
        #: names captured by value rather than by reference (the
        #: user-value function captures ``__begin`` by value, paper §3.1)
        self.by_value: set[str] = set()

    @property
    def body(self) -> Stmt | None:
        return self.captured_decl.body

    def children(self) -> Iterable[Optional[Stmt]]:
        # clang exposes the captured body through children().
        return (self.captured_decl.body,)
