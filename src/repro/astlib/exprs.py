"""The Expr hierarchy.

``Expr`` derives from ``Stmt`` (an expression can be used as a statement
with its result ignored — paper §1.2), carries a :class:`QualType` and a
value category.  Implicit conversions materialize as ``ImplicitCastExpr``
nodes inserted by Sema, keeping syntax and semantics in one tree.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.astlib.stmts import Stmt
from repro.astlib.types import QualType
from repro.sourcemgr.location import SourceLocation

if TYPE_CHECKING:
    from repro.astlib.decls import FieldDecl, ValueDecl


class ValueCategory(enum.Enum):
    LVALUE = "lvalue"
    RVALUE = "rvalue"  # C's rvalue == C++ prvalue; sufficient for MiniC


class Expr(Stmt):
    def __init__(
        self,
        type: QualType,
        value_category: ValueCategory = ValueCategory.RVALUE,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(location)
        self.type = type
        self.value_category = value_category

    @property
    def is_lvalue(self) -> bool:
        return self.value_category == ValueCategory.LVALUE

    def ignore_parens(self) -> "Expr":
        expr = self
        while isinstance(expr, ParenExpr):
            expr = expr.sub_expr
        return expr

    def ignore_implicit_casts(self) -> "Expr":
        expr = self
        while True:
            if isinstance(expr, ParenExpr):
                expr = expr.sub_expr
            elif isinstance(expr, ImplicitCastExpr):
                expr = expr.sub_expr
            elif isinstance(expr, ConstantExpr):
                expr = expr.sub_expr
            else:
                return expr


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------
class IntegerLiteral(Expr):
    def __init__(
        self,
        value: int,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.RVALUE, location)
        self.value = value


class FloatingLiteral(Expr):
    def __init__(
        self,
        value: float,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.RVALUE, location)
        self.value = value


class CharacterLiteral(Expr):
    def __init__(
        self,
        value: int,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.RVALUE, location)
        self.value = value


class BoolLiteralExpr(Expr):
    def __init__(
        self,
        value: bool,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.RVALUE, location)
        self.value = value


class StringLiteral(Expr):
    def __init__(
        self,
        value: str,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        # String literals are lvalues in C (they designate the array).
        super().__init__(type, ValueCategory.LVALUE, location)
        self.value = value


# ---------------------------------------------------------------------------
# References and grouping
# ---------------------------------------------------------------------------
class DeclRefExpr(Expr):
    def __init__(
        self,
        decl: "ValueDecl",
        type: QualType,
        value_category: ValueCategory = ValueCategory.LVALUE,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, value_category, location)
        self.decl = decl
        decl.is_referenced = True


class ParenExpr(Expr):
    """Syntactic-only node: keeps user-written parentheses in the tree."""

    def __init__(
        self, sub_expr: Expr, location: SourceLocation | None = None
    ) -> None:
        super().__init__(sub_expr.type, sub_expr.value_category, location)
        self.sub_expr = sub_expr

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.sub_expr,)


class OpaqueValueExpr(Expr):
    """A placeholder for an already-evaluated value (clang uses these in
    the OMPLoopDirective shadow AST to refer to values computed once)."""

    def __init__(
        self,
        source_expr: Expr | None,
        type: QualType,
        value_category: ValueCategory = ValueCategory.RVALUE,
    ) -> None:
        super().__init__(type, value_category)
        self.source_expr = source_expr

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.source_expr,)


class RecoveryExpr(Expr):
    """Error-recovery placeholder (clang's ``RecoveryExpr``).

    Stands in for an expression Sema could not analyse, preserving any
    well-formed subexpressions so the parser can keep going and later
    analysis stays quiet about operands that already carry an error —
    one bad construct yields one diagnostic, not a cascade.  Never
    reaches CodeGen: any compilation that built one has at least one
    error diagnostic and stops before IR emission.
    """

    def __init__(
        self,
        subexprs: Sequence[Expr],
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.RVALUE, location)
        self.subexprs = list(subexprs)

    def children(self) -> Iterable[Optional[Stmt]]:
        return tuple(self.subexprs)


def contains_errors(*exprs: Optional[Expr]) -> bool:
    """Does any operand (modulo parens/implicit casts) already carry an
    error?  Sema uses this to suppress cascading diagnostics."""
    return any(
        isinstance(expr.ignore_implicit_casts(), RecoveryExpr)
        for expr in exprs
        if expr is not None
    )


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------
class UnaryOperatorKind(enum.Enum):
    POST_INC = "++ (post)"
    POST_DEC = "-- (post)"
    PRE_INC = "++"
    PRE_DEC = "--"
    ADDR_OF = "&"
    DEREF = "*"
    PLUS = "+"
    MINUS = "-"
    NOT = "~"
    LNOT = "!"

    def is_increment_decrement(self) -> bool:
        return self in (
            UnaryOperatorKind.POST_INC,
            UnaryOperatorKind.POST_DEC,
            UnaryOperatorKind.PRE_INC,
            UnaryOperatorKind.PRE_DEC,
        )

    def is_increment(self) -> bool:
        return self in (UnaryOperatorKind.POST_INC, UnaryOperatorKind.PRE_INC)

    def is_prefix(self) -> bool:
        return self not in (
            UnaryOperatorKind.POST_INC,
            UnaryOperatorKind.POST_DEC,
        )


class UnaryOperator(Expr):
    def __init__(
        self,
        opcode: UnaryOperatorKind,
        sub_expr: Expr,
        type: QualType,
        value_category: ValueCategory = ValueCategory.RVALUE,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, value_category, location)
        self.opcode = opcode
        self.sub_expr = sub_expr

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.sub_expr,)


class BinaryOperatorKind(enum.Enum):
    MUL = "*"
    DIV = "/"
    REM = "%"
    ADD = "+"
    SUB = "-"
    SHL = "<<"
    SHR = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&"
    XOR = "^"
    OR = "|"
    LAND = "&&"
    LOR = "||"
    ASSIGN = "="
    MUL_ASSIGN = "*="
    DIV_ASSIGN = "/="
    REM_ASSIGN = "%="
    ADD_ASSIGN = "+="
    SUB_ASSIGN = "-="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="
    AND_ASSIGN = "&="
    XOR_ASSIGN = "^="
    OR_ASSIGN = "|="
    COMMA = ","

    def is_assignment(self) -> bool:
        return self in _ASSIGN_OPS

    def is_compound_assignment(self) -> bool:
        return self.is_assignment() and self != BinaryOperatorKind.ASSIGN

    def is_comparison(self) -> bool:
        return self in (
            BinaryOperatorKind.LT,
            BinaryOperatorKind.GT,
            BinaryOperatorKind.LE,
            BinaryOperatorKind.GE,
            BinaryOperatorKind.EQ,
            BinaryOperatorKind.NE,
        )

    def is_relational(self) -> bool:
        return self in (
            BinaryOperatorKind.LT,
            BinaryOperatorKind.GT,
            BinaryOperatorKind.LE,
            BinaryOperatorKind.GE,
        )

    def underlying_compound_op(self) -> "BinaryOperatorKind":
        """``+=`` -> ``+`` etc."""
        assert self.is_compound_assignment()
        return BinaryOperatorKind(self.value[:-1])


_ASSIGN_OPS = frozenset(
    op for op in BinaryOperatorKind if op.value.endswith("=")
    and op not in (
        BinaryOperatorKind.LE,
        BinaryOperatorKind.GE,
        BinaryOperatorKind.EQ,
        BinaryOperatorKind.NE,
    )
)


class BinaryOperator(Expr):
    def __init__(
        self,
        opcode: BinaryOperatorKind,
        lhs: Expr,
        rhs: Expr,
        type: QualType,
        value_category: ValueCategory = ValueCategory.RVALUE,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, value_category, location)
        self.opcode = opcode
        self.lhs = lhs
        self.rhs = rhs

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.lhs, self.rhs)


class CompoundAssignOperator(BinaryOperator):
    """``+=`` etc.; keeps the computation type separately (as clang does)
    because the arithmetic may happen in a promoted type."""

    def __init__(
        self,
        opcode: BinaryOperatorKind,
        lhs: Expr,
        rhs: Expr,
        type: QualType,
        computation_type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(
            opcode, lhs, rhs, type, ValueCategory.RVALUE, location
        )
        self.computation_type = computation_type


class ConditionalOperator(Expr):
    def __init__(
        self,
        cond: Expr,
        true_expr: Expr,
        false_expr: Expr,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.RVALUE, location)
        self.cond = cond
        self.true_expr = true_expr
        self.false_expr = false_expr

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.cond, self.true_expr, self.false_expr)


# ---------------------------------------------------------------------------
# Postfix expressions
# ---------------------------------------------------------------------------
class ArraySubscriptExpr(Expr):
    def __init__(
        self,
        base: Expr,
        index: Expr,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.LVALUE, location)
        self.base = base
        self.index = index

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.base, self.index)


class CallExpr(Expr):
    def __init__(
        self,
        callee: Expr,
        args: Sequence[Expr],
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.RVALUE, location)
        self.callee = callee
        self.args = list(args)

    def callee_decl(self):
        """The FunctionDecl being called, or None for indirect calls."""
        from repro.astlib.decls import FunctionDecl

        callee = self.callee.ignore_implicit_casts()
        if isinstance(callee, DeclRefExpr) and isinstance(
            callee.decl, FunctionDecl
        ):
            return callee.decl
        return None

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.callee, *self.args)


class MemberExpr(Expr):
    def __init__(
        self,
        base: Expr,
        member: "FieldDecl",
        is_arrow: bool,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.LVALUE, location)
        self.base = base
        self.member = member
        self.is_arrow = is_arrow

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.base,)


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------
class CastKind(enum.Enum):
    LVALUE_TO_RVALUE = "LValueToRValue"
    INTEGRAL_CAST = "IntegralCast"
    INTEGRAL_TO_FLOATING = "IntegralToFloating"
    FLOATING_TO_INTEGRAL = "FloatingToIntegral"
    FLOATING_CAST = "FloatingCast"
    INTEGRAL_TO_BOOLEAN = "IntegralToBoolean"
    FLOATING_TO_BOOLEAN = "FloatingToBoolean"
    POINTER_TO_BOOLEAN = "PointerToBoolean"
    ARRAY_TO_POINTER_DECAY = "ArrayToPointerDecay"
    FUNCTION_TO_POINTER_DECAY = "FunctionToPointerDecay"
    NULL_TO_POINTER = "NullToPointer"
    BITCAST = "BitCast"
    NOOP = "NoOp"
    TO_VOID = "ToVoid"


class CastExpr(Expr):
    def __init__(
        self,
        kind: CastKind,
        sub_expr: Expr,
        type: QualType,
        value_category: ValueCategory = ValueCategory.RVALUE,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, value_category, location)
        self.cast_kind = kind
        self.sub_expr = sub_expr

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.sub_expr,)


class ImplicitCastExpr(CastExpr):
    """Semantic-only node inserted by Sema."""


class CStyleCastExpr(CastExpr):
    """A user-written ``(T)expr``."""


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------
class UnaryExprOrTypeTraitExpr(Expr):
    """``sizeof`` (the only trait MiniC needs)."""

    def __init__(
        self,
        trait: str,
        argument_type: QualType | None,
        argument_expr: Expr | None,
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.RVALUE, location)
        self.trait = trait
        self.argument_type = argument_type
        self.argument_expr = argument_expr

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.argument_expr,)


class InitListExpr(Expr):
    def __init__(
        self,
        inits: Sequence[Expr],
        type: QualType,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(type, ValueCategory.RVALUE, location)
        self.inits = list(inits)

    def children(self) -> Iterable[Optional[Stmt]]:
        return tuple(self.inits)


class ConstantExpr(Expr):
    """An expression required to be a constant, with its computed value
    cached (clang's ``ConstantExpr``; see the paper's AST dump of
    ``partial(2)`` where the clause argument is a ConstantExpr with
    ``value: Int 2``)."""

    def __init__(
        self,
        sub_expr: Expr,
        value: int,
        location: SourceLocation | None = None,
    ) -> None:
        super().__init__(sub_expr.type, sub_expr.value_category, location)
        self.sub_expr = sub_expr
        self.value = value

    def children(self) -> Iterable[Optional[Stmt]]:
        return (self.sub_expr,)
