"""The ``__kmpc_*`` entry points (libomp-compatible subset) plus the
user-facing ``omp_*`` API, implemented as interpreter natives.

Substitution note (DESIGN.md): the paper's implementation targets the real
LLVM OpenMP runtime on hardware threads.  This module preserves the same
ABI and the observable semantics — per-thread static bounds, chunk
dispatch, barriers, critical sections, lastprivate flags — on top of the
deterministic stepping interpreter.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.interp.interpreter import (
    ExecutionContext,
    InterpreterError,
    RETRY,
    ThreadState,
    Trap,
)
from repro.ir.types import IntType, i32, i64
from repro.runtime.schedule import (
    DispatchState,
    ScheduleKindRT,
    static_partition,
)
from repro.runtime.team import Team

if TYPE_CHECKING:
    from repro.interp.interpreter import Interpreter


class OpenMPRuntime:
    """Per-interpreter OpenMP runtime state."""

    def __init__(self, interp: "Interpreter") -> None:
        self.interp = interp
        #: team size used by the next parallel region
        self.num_threads = 4
        self._pushed_num_threads: int | None = None
        #: stack of active teams (nested parallelism is serialized)
        self.team_stack: list[Team] = []
        #: critical-section locks: lock address -> owning gtid
        self.locks: dict[int, int] = {}
        self._next_gtid = 1
        #: statistics for tests/benchmarks
        self.fork_count = 0
        self.barrier_count = 0

    # ------------------------------------------------------------------
    @property
    def current_team(self) -> Team | None:
        return self.team_stack[-1] if self.team_stack else None

    def team_of(self, ctx: ExecutionContext) -> Team | None:
        return ctx.team

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, interp: "Interpreter") -> None:
        natives = {
            "__kmpc_global_thread_num": self._global_thread_num,
            "__kmpc_fork_call": self._fork_call,
            "__kmpc_push_num_threads": self._push_num_threads,
            "__kmpc_barrier": self._barrier,
            "__kmpc_for_static_init_4u": self._static_init(i32),
            "__kmpc_for_static_init_8u": self._static_init(i64),
            "__kmpc_for_static_fini": self._static_fini,
            "__kmpc_dispatch_init_4u": self._dispatch_init(i32),
            "__kmpc_dispatch_init_8u": self._dispatch_init(i64),
            "__kmpc_dispatch_next_4u": self._dispatch_next(i32),
            "__kmpc_dispatch_next_8u": self._dispatch_next(i64),
            "__kmpc_critical": self._critical,
            "__kmpc_end_critical": self._end_critical,
            "__kmpc_master": self._master,
            "__kmpc_end_master": self._noop,
            "__kmpc_single": self._single,
            "__kmpc_end_single": self._noop,
            # user API
            "omp_get_thread_num": self._omp_get_thread_num,
            "omp_get_num_threads": self._omp_get_num_threads,
            "omp_get_max_threads": self._omp_get_max_threads,
            "omp_set_num_threads": self._omp_set_num_threads,
            "omp_in_parallel": self._omp_in_parallel,
            "omp_get_wtime": self._omp_get_wtime,
        }
        for name, impl in natives.items():
            interp.register_native(name, impl)

    # ------------------------------------------------------------------
    # Thread identity
    # ------------------------------------------------------------------
    def _global_thread_num(self, interp, ctx: ExecutionContext, args):
        return ctx.gtid

    def _omp_get_thread_num(self, interp, ctx, args):
        team = ctx.team
        if team is None:
            return 0
        return ctx.thread_id

    def _omp_get_num_threads(self, interp, ctx, args):
        team = ctx.team
        return team.size if team is not None else 1

    def _omp_get_max_threads(self, interp, ctx, args):
        return self._pushed_num_threads or self.num_threads

    def _omp_set_num_threads(self, interp, ctx, args):
        self.num_threads = max(1, int(args[0]))
        return None

    def _omp_in_parallel(self, interp, ctx, args):
        return 1 if ctx.team is not None and ctx.team.size > 1 else 0

    def _omp_get_wtime(self, interp, ctx, args):
        return time.perf_counter()

    def _noop(self, interp, ctx, args):
        return None

    # ------------------------------------------------------------------
    # Parallel regions
    # ------------------------------------------------------------------
    def _push_num_threads(self, interp, ctx, args):
        self._pushed_num_threads = max(1, int(args[2]))
        return None

    def _fork_call(self, interp, ctx: ExecutionContext, args):
        """``__kmpc_fork_call(loc, nargs, outlined_fn, context_ptr)``.

        Spawns a team executing ``outlined_fn(&gtid, &btid, context)``
        per thread, steps it to completion (round-robin), then returns.
        Nested parallel regions are serialized to a team of one, as
        permitted by OpenMP (and done by libomp by default).
        """
        _loc, _nargs, fn_addr, context_ptr = (
            args[0],
            args[1],
            int(args[2]),
            int(args[3]),
        )
        outlined = interp.memory.function_at(fn_addr)
        if outlined is None:
            raise Trap("fork_call: invalid outlined function pointer")
        team_size = self._pushed_num_threads or self.num_threads
        self._pushed_num_threads = None
        if ctx.team is not None:
            team_size = 1  # serialize nested parallelism
        self.fork_count += 1
        interp.profile.fork_count += 1

        contexts: list[ExecutionContext] = []
        for tid in range(team_size):
            gtid = self._next_gtid
            self._next_gtid += 1
            gtid_addr = interp.memory.allocate(4)
            btid_addr = interp.memory.allocate(4)
            interp.memory.store(i32, gtid_addr, gtid)
            interp.memory.store(i32, btid_addr, tid)
            # Route through the engine hook so the closure engine's
            # contexts join the team instead of reference ones.
            thread_ctx = interp.spawn_context(
                outlined,
                [gtid_addr, btid_addr, context_ptr],
                thread_id=tid,
            )
            thread_ctx.gtid = gtid
            contexts.append(thread_ctx)
        team = Team(self, contexts)
        self.team_stack.append(team)
        try:
            team.run(interp.default_fuel)
        finally:
            self.team_stack.pop()
        return None

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def _barrier(self, interp, ctx: ExecutionContext, args):
        self.barrier_count += 1
        if ctx.team is not None and ctx.team.size > 1:
            ctx.state = ThreadState.BARRIER
            ctx.barrier_waits += 1
            ctx.waiting_at = (
                f"barrier (episode {ctx.team.barrier_generation + 1}) "
                f"in @{ctx.frame.fn.name}"
            )
        return None

    # ------------------------------------------------------------------
    # Static worksharing
    # ------------------------------------------------------------------
    def _static_init(self, ty: IntType):
        def impl(interp, ctx: ExecutionContext, args):
            (
                _loc,
                _gtid,
                schedtype,
                p_last,
                p_lower,
                p_upper,
                p_stride,
                _incr,
                chunk,
            ) = args
            mem = interp.memory
            team = ctx.team
            team_size = team.size if team is not None else 1
            tid = ctx.thread_id if team is not None else 0
            lower = mem.load(ty, int(p_lower))
            upper = mem.load(ty, int(p_upper))
            # Unsigned entry point (_4u/_8u): a zero-iteration space
            # arrives as upper = lower - 1 (mod 2^n); libomp computes the
            # trip count modularly and hands every thread an empty slice.
            trip = ty.wrap(upper - lower + 1)
            if trip == 0:
                mem.store(ty, int(p_lower), lower + 1)
                mem.store(ty, int(p_upper), lower)
                mem.store(i32, int(p_last), 0)
                return None
            kind = ScheduleKindRT(int(schedtype))
            if kind == ScheduleKindRT.STATIC:
                my_lower, my_upper, is_last = static_partition(
                    lower, upper, team_size, tid
                )
            else:
                # Static chunked used through the static path degrades to
                # the first chunk; codegen routes chunked schedules
                # through the dispatch path instead.
                chunk_size = max(1, int(chunk))
                my_lower = lower + tid * chunk_size
                my_upper = min(my_lower + chunk_size - 1, upper)
                is_last = my_upper == upper
                mem.store(ty, int(p_stride), team_size * chunk_size)
            mem.store(ty, int(p_lower), my_lower % (1 << ty.bits))
            mem.store(
                ty,
                int(p_upper),
                my_upper % (1 << ty.bits),
            )
            mem.store(i32, int(p_last), 1 if is_last else 0)
            return None

        return impl

    def _static_fini(self, interp, ctx, args):
        return None

    # ------------------------------------------------------------------
    # Dynamic dispatch
    # ------------------------------------------------------------------
    def _dispatch_init(self, ty: IntType):
        def impl(interp, ctx: ExecutionContext, args):
            _loc, _gtid, schedtype, lower, upper, stride, chunk = args
            team = ctx.team
            kind = ScheduleKindRT(int(schedtype))
            lower = ty.to_signed(int(lower))
            upper = ty.to_signed(int(upper))
            state = DispatchState(
                kind=kind,
                lower=lower,
                upper=upper,
                stride=int(stride),
                chunk=int(chunk),
                num_threads=team.size if team is not None else 1,
            )
            if team is None:
                # Serial worksharing: keep the state on the runtime.
                self._serial_dispatch = state
            else:
                if team.dispatch is None:
                    team.dispatch = state
                team.dispatch.initialized += 1
            return None

        return impl

    def _dispatch_next(self, ty: IntType):
        def impl(interp, ctx: ExecutionContext, args):
            _loc, _gtid, p_last, p_lower, p_upper, p_stride = args
            mem = interp.memory
            team = ctx.team
            state: DispatchState | None
            if team is None:
                state = getattr(self, "_serial_dispatch", None)
            else:
                state = team.dispatch
            if state is None:
                return 0
            tid = ctx.thread_id if team is not None else 0
            result = state.next_chunk(tid)
            if result is None:
                # libomp implies a barrier when the dispatch finishes;
                # our codegen emits an explicit barrier after the loop,
                # so just report exhaustion.  Reset shared state when all
                # threads have drained.
                state.initialized -= 1
                if state.initialized <= 0:
                    if team is None:
                        self._serial_dispatch = None
                    else:
                        team.dispatch = None
                return 0
            my_lower, my_upper, is_last = result
            mem.store(ty, int(p_lower), my_lower % (1 << ty.bits))
            mem.store(ty, int(p_upper), my_upper % (1 << ty.bits))
            mem.store(ty, int(p_stride), 1)
            mem.store(i32, int(p_last), 1 if is_last else 0)
            return 1

        return impl

    # ------------------------------------------------------------------
    # Mutual exclusion / single / master
    # ------------------------------------------------------------------
    def _critical(self, interp, ctx: ExecutionContext, args):
        lock_addr = int(args[2])
        owner = self.locks.get(lock_addr)
        if owner is not None and owner != ctx.gtid:
            ctx.waiting_on_lock = lock_addr
            return RETRY  # spin until released
        self.locks[lock_addr] = ctx.gtid
        ctx.waiting_on_lock = None
        return None

    def _end_critical(self, interp, ctx: ExecutionContext, args):
        lock_addr = int(args[2])
        if self.locks.get(lock_addr) == ctx.gtid:
            del self.locks[lock_addr]
        return None

    def _master(self, interp, ctx: ExecutionContext, args):
        return 1 if ctx.thread_id == 0 else 0

    def _single(self, interp, ctx: ExecutionContext, args):
        team = ctx.team
        if team is None:
            return 1
        # First thread to arrive at this call site executes the region.
        site = id(ctx.frame.block.instructions[ctx.frame.index])
        if site in team.single_done:
            return 0
        team.single_done.add(site)
        return 1
