"""Thread team execution: deterministic round-robin stepping.

A :class:`Team` owns one :class:`ExecutionContext` per simulated thread
and steps them one instruction at a time in thread order.  Barriers block
a context (``ThreadState.BARRIER``) until every team member is blocked or
finished, then release all of them — real barrier semantics without OS
threads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.interp.interpreter import (
    ExecutionContext,
    InterpreterError,
    ThreadState,
)

if TYPE_CHECKING:
    from repro.runtime.kmp import OpenMPRuntime


class TeamError(Exception):
    pass


class Team:
    def __init__(
        self,
        runtime: "OpenMPRuntime",
        contexts: list[ExecutionContext],
    ) -> None:
        self.runtime = runtime
        self.contexts = contexts
        for ctx in contexts:
            ctx.team = self
        #: shared dispatch state (dynamic/guided/static-chunked loops)
        self.dispatch = None
        #: counts completed barrier episodes (for debugging/tests)
        self.barrier_generation = 0
        #: `single` construct arrival bookkeeping, keyed by call site id
        self.single_done: set[int] = set()

    @property
    def size(self) -> int:
        return len(self.contexts)

    # ------------------------------------------------------------------
    def run(self, fuel: int) -> None:
        """Step the team to completion (deterministic interleaving)."""
        budget = fuel
        while True:
            all_done = True
            any_runnable = False
            for ctx in self.contexts:
                if ctx.state == ThreadState.RUNNABLE:
                    any_runnable = True
                    ctx.step()
                    budget -= 1
                    if budget <= 0:
                        raise InterpreterError(
                            "team execution fuel exhausted"
                        )
                if not ctx.done:
                    all_done = False
            if all_done:
                return
            if not any_runnable:
                # Everyone is blocked at a barrier (or done): release.
                waiting = [
                    ctx
                    for ctx in self.contexts
                    if ctx.state == ThreadState.BARRIER
                ]
                if not waiting:
                    raise TeamError(
                        "team deadlock: no runnable thread and no "
                        "barrier to release"
                    )
                for ctx in waiting:
                    ctx.state = ThreadState.RUNNABLE
                self.barrier_generation += 1
                self.runtime.interp.profile.barrier_episodes += 1

    # ------------------------------------------------------------------
    def context_for_gtid(self, gtid: int) -> ExecutionContext:
        for ctx in self.contexts:
            if ctx.gtid == gtid:
                return ctx
        raise TeamError(f"no team member with gtid {gtid}")
