"""Thread team execution: deterministic round-robin stepping.

A :class:`Team` owns one :class:`ExecutionContext` per simulated thread
and steps them one instruction at a time in thread order.  Barriers block
a context (``ThreadState.BARRIER``) until every team member is blocked or
finished, then release all of them — real barrier semantics without OS
threads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.instrument import get_statistic
from repro.interp.interpreter import (
    DeadlockError,
    ExecutionContext,
    ExecutionTimeout,
    ThreadState,
    scheduler_snapshot,
)

_DEADLOCKS = get_statistic(
    "crash-recovery",
    "deadlocks-detected",
    "All-threads-blocked conditions detected by the team scheduler",
)

if TYPE_CHECKING:
    from repro.runtime.kmp import OpenMPRuntime


class TeamError(Exception):
    pass


class Team:
    def __init__(
        self,
        runtime: "OpenMPRuntime",
        contexts: list[ExecutionContext],
    ) -> None:
        self.runtime = runtime
        self.contexts = contexts
        for ctx in contexts:
            ctx.team = self
        #: shared dispatch state (dynamic/guided/static-chunked loops)
        self.dispatch = None
        #: counts completed barrier episodes (for debugging/tests)
        self.barrier_generation = 0
        #: `single` construct arrival bookkeeping, keyed by call site id
        self.single_done: set[int] = set()

    @property
    def size(self) -> int:
        return len(self.contexts)

    # ------------------------------------------------------------------
    def run(self, fuel: int) -> None:
        """Step the team to completion (deterministic interleaving)."""
        interp = self.runtime.interp
        budget = fuel
        while True:
            all_done = True
            any_runnable = False
            for ctx in self.contexts:
                if ctx.state == ThreadState.RUNNABLE:
                    any_runnable = True
                    ctx.step()
                    budget -= 1
                    if budget <= 0:
                        raise ExecutionTimeout(
                            "team execution fuel exhausted",
                            scheduler_snapshot(interp),
                        )
                    if (budget & 0xFFF) == 0:
                        interp.check_deadline()
                if not ctx.done:
                    all_done = False
            if all_done:
                return
            if not any_runnable:
                self._release_barrier_or_deadlock(interp)
            else:
                self._check_lock_deadlock(interp)

    def _release_barrier_or_deadlock(self, interp) -> None:
        """No thread can step: release the barrier, or report why the
        team can never make progress again."""
        waiting = [
            ctx
            for ctx in self.contexts
            if ctx.state == ThreadState.BARRIER
        ]
        if not waiting:
            raise TeamError(
                "team deadlock: no runnable thread and no "
                "barrier to release"
            )
        finished = [ctx for ctx in self.contexts if ctx.done]
        if finished:
            # A barrier releases only when *every* member arrives; a
            # finished teammate never will.  This is the classic
            # "barrier under a thread-divergent if" bug.
            waiters = ", ".join(
                f"thread {ctx.gtid} (tid {ctx.thread_id}) at "
                f"{ctx.waiting_at or 'a barrier'}"
                for ctx in waiting
            )
            gone = ", ".join(str(ctx.gtid) for ctx in finished)
            _DEADLOCKS.inc()
            raise DeadlockError(
                f"deadlock detected: {waiters}; teammate(s) gtid {gone} "
                "already finished and can never reach the barrier",
                scheduler_snapshot(interp),
            )
        for ctx in waiting:
            ctx.state = ThreadState.RUNNABLE
            ctx.waiting_at = None
        self.barrier_generation += 1
        interp.profile.barrier_episodes += 1

    def _check_lock_deadlock(self, interp) -> None:
        """Spinning threads stay RUNNABLE; detect the round where every
        runnable thread spins on a lock nobody left can release."""
        runnable = [
            ctx
            for ctx in self.contexts
            if ctx.state == ThreadState.RUNNABLE
        ]
        if not runnable or any(
            ctx.waiting_on_lock is None for ctx in runnable
        ):
            return
        # Every runnable thread spins.  Progress is only possible if
        # some spinner already owns the lock it waits on (re-entry) or
        # an owner is a runnable non-spinning member — but there are
        # none of those here, so check ownership.
        for ctx in runnable:
            owner = self.runtime.locks.get(ctx.waiting_on_lock)
            if owner is None or owner == ctx.gtid:
                return  # lock free (or re-entry): acquires next step
        spinners = ", ".join(
            f"thread {ctx.gtid} (tid {ctx.thread_id}) on lock "
            f"{ctx.waiting_on_lock:#x} held by gtid "
            f"{self.runtime.locks.get(ctx.waiting_on_lock)}"
            for ctx in runnable
        )
        _DEADLOCKS.inc()
        raise DeadlockError(
            f"deadlock detected: every runnable thread spins on a "
            f"critical-section lock no runnable thread can release: "
            f"{spinners}",
            scheduler_snapshot(interp),
        )

    # ------------------------------------------------------------------
    def context_for_gtid(self, gtid: int) -> ExecutionContext:
        for ctx in self.contexts:
            if ctx.gtid == gtid:
                return ctx
        raise TeamError(f"no team member with gtid {gtid}")
