"""Simulated OpenMP runtime (libomp-compatible ``__kmpc_*`` subset).

Substitutes for hardware threads + libomp: thread teams are additional
interpreter :class:`~repro.interp.interpreter.ExecutionContext` objects
stepped **round-robin, one instruction at a time** — deterministic,
reproducible interleaving that still exercises real barrier semantics,
per-thread worksharing bounds, dynamic/guided chunk dispatch and critical
sections (via native spinlocks).  Wall-clock parallelism is *not*
simulated; the observable OpenMP semantics (iteration→thread mapping,
lastprivate, reductions) are.
"""

from repro.runtime.kmp import OpenMPRuntime
from repro.runtime.schedule import (
    DispatchState,
    ScheduleKindRT,
    static_partition,
)
from repro.runtime.team import Team, TeamError

__all__ = [
    "DispatchState",
    "OpenMPRuntime",
    "ScheduleKindRT",
    "Team",
    "TeamError",
    "static_partition",
]
