"""Worksharing schedule computations (libomp algorithms).

Pure functions + the shared dispatch state for dynamic/guided/static-
chunked schedules.  Iteration spaces are the *logical* 0-based spaces of
the canonical loops; bounds are inclusive [lower, upper] like libomp's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ScheduleKindRT(enum.IntEnum):
    """libomp ``kmp_sched`` constants (subset)."""

    STATIC_CHUNKED = 33
    STATIC = 34
    DYNAMIC_CHUNKED = 35
    GUIDED_CHUNKED = 36


def static_partition(
    lower: int,
    upper: int,
    num_threads: int,
    thread_id: int,
) -> tuple[int, int, bool]:
    """Unchunked static schedule: contiguous, nearly equal blocks.

    Returns (my_lower, my_upper, is_last); an empty slice has
    ``my_lower > my_upper``.  Matches libomp's ``__kmp_for_static_init``
    with ``kmp_sch_static``: the first ``trip % T`` threads get one extra
    iteration.
    """
    trip = upper - lower + 1
    if trip <= 0:
        # Degenerate space; like libomp, hand back an empty slice whose
        # lower stays non-negative (callers use unsigned comparisons).
        return lower + 1, lower, False
    base, extra = divmod(trip, num_threads)
    if thread_id < extra:
        my_lower = lower + thread_id * (base + 1)
        my_upper = my_lower + base
    else:
        my_lower = lower + extra * (base + 1) + (thread_id - extra) * base
        my_upper = my_lower + base - 1
    if my_upper < my_lower:
        # Empty slice for this thread: lower = upper+1 keeps the bounds
        # in range so the (unsigned) `iv <= ub` guard fails cleanly.
        return upper + 1, upper, False
    return my_lower, my_upper, my_upper == upper


@dataclass
class DispatchState:
    """Shared chunk dispenser for one worksharing loop instance.

    Created by the first ``__kmpc_dispatch_init`` of a team; destroyed
    when all chunks are consumed.  Because every native call is one atomic
    interpreter step, no lock is needed for its mutation.
    """

    kind: ScheduleKindRT
    lower: int
    upper: int
    stride: int
    chunk: int
    num_threads: int
    #: next unassigned iteration (dynamic/guided)
    position: int = 0
    #: per-thread chunk counters (static chunked)
    per_thread_index: dict[int, int] = field(default_factory=dict)
    #: number of threads that called dispatch_init for this instance
    initialized: int = 0

    def __post_init__(self) -> None:
        self.position = self.lower
        self.chunk = max(1, self.chunk)

    @property
    def trip(self) -> int:
        return self.upper - self.lower + 1

    # ------------------------------------------------------------------
    def next_chunk(
        self, thread_id: int
    ) -> tuple[int, int, bool] | None:
        """The next [lb, ub] slice for *thread_id*, or None when done.
        The bool is the last-iteration flag."""
        if self.kind == ScheduleKindRT.STATIC_CHUNKED:
            return self._next_static_chunk(thread_id)
        if self.kind == ScheduleKindRT.DYNAMIC_CHUNKED:
            return self._next_dynamic_chunk()
        if self.kind == ScheduleKindRT.GUIDED_CHUNKED:
            return self._next_guided_chunk()
        raise ValueError(f"dispatch on non-dispatch schedule {self.kind}")

    def _next_static_chunk(
        self, thread_id: int
    ) -> tuple[int, int, bool] | None:
        """Static chunked: chunk k goes to thread ``k % T`` (round robin),
        which is the OpenMP-specified mapping."""
        index = self.per_thread_index.get(thread_id, 0)
        start = self.lower + (thread_id + index * self.num_threads) * self.chunk
        if start > self.upper:
            return None
        self.per_thread_index[thread_id] = index + 1
        end = min(start + self.chunk - 1, self.upper)
        return start, end, end == self.upper

    def _next_dynamic_chunk(self) -> tuple[int, int, bool] | None:
        if self.position > self.upper:
            return None
        start = self.position
        end = min(start + self.chunk - 1, self.upper)
        self.position = end + 1
        return start, end, end == self.upper

    def _next_guided_chunk(self) -> tuple[int, int, bool] | None:
        if self.position > self.upper:
            return None
        remaining = self.upper - self.position + 1
        # libomp guided: size ~ remaining / (2 * nthreads), at least chunk.
        size = max(
            self.chunk,
            (remaining + 2 * self.num_threads - 1)
            // (2 * self.num_threads),
        )
        start = self.position
        end = min(start + size - 1, self.upper)
        self.position = end + 1
        return start, end, end == self.upper
