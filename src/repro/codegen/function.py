"""CodeGenFunction: statement and expression IR emission."""

from __future__ import annotations

from typing import Optional

from repro.astlib import exprs as e
from repro.astlib import omp
from repro.astlib import stmts as s
from repro.astlib import types as ast_ty
from repro.astlib.decls import (
    CapturedDecl,
    FunctionDecl,
    ImplicitParamDecl,
    ParmVarDecl,
    VarDecl,
)
from repro.codegen.module import CodeGenModule
from repro.ir import (
    BasicBlock,
    ConstantInt,
    Function,
    IRBuilder,
)
from repro.ir import types as ir_ty
from repro.ir.instructions import (
    BinOp,
    CastOp,
    FCmpPred,
    ICmpPred,
)
from repro.ir.metadata import MDNode, loop_metadata
from repro.ir.values import Value


class CodeGenError(Exception):
    pass


class CodeGenFunction:
    """Emits one function's body.

    Local variables live in entry-block allocas (an *alloca insertion
    point* is maintained so statements discovered later — e.g. shadow
    transformed ASTs — can still hoist their storage to the entry block,
    as clang does).
    """

    def __init__(self, cgm: CodeGenModule) -> None:
        self.cgm = cgm
        self.builder = IRBuilder(cgm.module)
        self.fn: Function | None = None
        #: VarDecl id -> address Value (alloca/global/capture-resolved)
        self.local_vars: dict[int, Value] = {}
        #: VarDecl id -> direct address binding (reference params, the
        #: Result parameter of inline-emitted lambdas)
        self.reference_bindings: dict[int, Value] = {}
        #: captured VarDecl id -> field index in __context
        self.capture_fields: dict[int, int] = {}
        self.context_arg: Value | None = None
        self.context_struct: ir_ty.StructType | None = None
        #: (break target, continue target) stack
        self._loop_targets: list[tuple[BasicBlock, BasicBlock]] = []
        #: metadata to attach to the next emitted loop's backedge
        self._pending_loop_metadata: MDNode | None = None
        self._entry_block: BasicBlock | None = None
        from repro.codegen.openmp import OpenMPCodeGen

        self.openmp = OpenMPCodeGen(self)

    # ==================================================================
    # Function-level entry points
    # ==================================================================
    def emit_function(self, decl: FunctionDecl) -> Function:
        fn = self.cgm.get_function(decl)
        self.fn = fn
        entry = fn.append_block("entry")
        self._entry_block = entry
        self.builder.set_insert_point(entry)
        for arg, param in zip(fn.args, decl.params):
            addr = self.create_alloca(
                arg.type, f"{param.name}.addr"
            )
            self.builder.store(arg, addr)
            self.local_vars[id(param)] = addr
        assert decl.body is not None
        self.emit_stmt(decl.body)
        self._emit_implicit_return(decl)
        from repro.ir.utils import remove_unreachable_blocks

        remove_unreachable_blocks(fn)
        return fn

    def emit_outlined(
        self,
        name: str,
        captured: s.CapturedStmt,
        with_thread_ids: bool,
    ) -> Function:
        """Emit a CapturedStmt as an outlined function
        ``void name(ptr gtid, ptr btid, ptr context)`` (early outlining,
        paper §1)."""
        params = [ir_ty.ptr, ir_ty.ptr, ir_ty.ptr]
        fn = self.cgm.module.add_function(
            name, ir_ty.FunctionType(ir_ty.void_t, params)
        )
        fn.args[0].name = "gtid.addr"
        fn.args[1].name = "btid.addr"
        fn.args[2].name = "context"
        self.fn = fn
        entry = fn.append_block("entry")
        self._entry_block = entry
        self.builder.set_insert_point(entry)
        # Bind captures: __context is a struct of pointers to the
        # captured variables (paper §1.2's implicit parameters).
        record = getattr(captured, "context_record", None)
        if record is not None and record.fields:
            self.context_struct = self.cgm.types.lower_record(record)
            self.context_arg = fn.args[2]
            for index, var in enumerate(captured.captures):
                self.capture_fields[id(var)] = index
        # Thread id params: bind the CapturedDecl's implicit params.
        for pdecl in captured.captured_decl.params:
            if pdecl.name == ".global_tid.":
                self.local_vars[id(pdecl)] = fn.args[0]
            elif pdecl.name == ".bound_tid.":
                self.local_vars[id(pdecl)] = fn.args[1]
        body = captured.captured_decl.body
        assert body is not None
        self.emit_stmt(body)
        if self.builder.insert_block.terminator is None:
            self.builder.ret()
        from repro.ir.utils import remove_unreachable_blocks

        remove_unreachable_blocks(fn)
        return fn

    def _emit_implicit_return(self, decl: FunctionDecl) -> None:
        block = self.builder.insert_block
        if block is not None and block.terminator is None:
            ret_ty = self.cgm.types.lower(decl.return_type)
            if ret_ty.is_void:
                self.builder.ret()
            elif decl.name == "main":
                self.builder.ret(ConstantInt(ir_ty.i32, 0))
            else:
                self.builder.unreachable()

    # ==================================================================
    # Helpers
    # ==================================================================
    def create_alloca(
        self, ty: ir_ty.IRType, name: str = "local"
    ) -> Value:
        """Alloca at the function entry (clang's AllocaInsertPt)."""
        assert self._entry_block is not None
        saved = self.builder.save_ip()
        self.builder.set_insert_point(
            self._entry_block, self._entry_alloca_index()
        )
        addr = self.builder.alloca(ty, name=name)
        self.builder.restore_ip(saved)
        if saved.block is self._entry_block:
            # Inserting above the saved point shifts it by one.
            self.builder.set_insert_point(
                self._entry_block, saved.index + 1
            )
        return addr

    def _entry_alloca_index(self) -> int:
        from repro.ir.instructions import AllocaInst

        assert self._entry_block is not None
        for i, inst in enumerate(self._entry_block.instructions):
            if not isinstance(inst, AllocaInst):
                return i
        return len(self._entry_block.instructions)

    def ensure_insert_point(self) -> None:
        """After a terminator (return/break), continue into a dead block
        so that trailing statements still emit without crashing; the
        block is removed afterwards.  Inserting *before* an existing
        terminator (e.g. into a canonical-loop body block that already
        branches to its latch) is fine and left alone."""
        block = self.builder.insert_block
        if block is None or block.terminator is None:
            return
        if self.builder.save_ip().index < len(block.instructions):
            return  # positioned before the terminator: legal
        assert self.fn is not None
        dead = self.fn.append_block("dead")
        self.builder.set_insert_point(dead)

    def lowered(self, qt: ast_ty.QualType) -> ir_ty.IRType:
        return self.cgm.types.lower(qt)

    # ==================================================================
    # Statements
    # ==================================================================
    def emit_stmt(self, stmt: Optional[s.Stmt]) -> None:
        if stmt is None:
            return
        self.ensure_insert_point()
        if isinstance(stmt, omp.OMPExecutableDirective):
            self.openmp.emit_directive(stmt)
            return
        if isinstance(stmt, omp.OMPCanonicalLoop):
            self.openmp.emit_standalone_canonical_loop(stmt)
            return
        if isinstance(stmt, e.Expr):
            self.emit_expr(stmt)
            return
        if isinstance(stmt, s.CompoundStmt):
            for child in stmt.statements:
                self.emit_stmt(child)
            return
        if isinstance(stmt, s.NullStmt):
            return
        if isinstance(stmt, s.DeclStmt):
            for decl in stmt.decls:
                if isinstance(decl, VarDecl):
                    self.emit_var_decl(decl)
            return
        if isinstance(stmt, s.IfStmt):
            self._emit_if(stmt)
            return
        if isinstance(stmt, s.WhileStmt):
            self._emit_while(stmt)
            return
        if isinstance(stmt, s.DoStmt):
            self._emit_do(stmt)
            return
        if isinstance(stmt, s.ForStmt):
            self._emit_for(stmt)
            return
        if isinstance(stmt, s.CXXForRangeStmt):
            self._emit_range_for(stmt)
            return
        if isinstance(stmt, s.ReturnStmt):
            self._emit_return(stmt)
            return
        if isinstance(stmt, s.BreakStmt):
            if not self._loop_targets:
                raise CodeGenError("break outside loop")
            self.builder.br(self._loop_targets[-1][0])
            return
        if isinstance(stmt, s.ContinueStmt):
            if not self._loop_targets:
                raise CodeGenError("continue outside loop")
            self.builder.br(self._loop_targets[-1][1])
            return
        if isinstance(stmt, s.AttributedStmt):
            self._emit_attributed(stmt)
            return
        if isinstance(stmt, s.CapturedStmt):
            # Outside OpenMP context: execute inline.
            self.emit_stmt(stmt.captured_decl.body)
            return
        if isinstance(stmt, s.SwitchStmt):
            self._emit_switch(stmt)
            return
        raise CodeGenError(
            f"cannot emit statement {type(stmt).__name__}"
        )

    # ------------------------------------------------------------------
    def emit_var_decl(self, decl: VarDecl) -> Value:
        canonical = ast_ty.desugar(decl.type)
        if isinstance(canonical.type, ast_ty.ReferenceType):
            # A reference is lowered to a pointer alloca holding the
            # referenced address.
            addr = self.create_alloca(ir_ty.ptr, decl.name)
            self.local_vars[id(decl)] = addr
            if decl.init is not None:
                target = self.emit_lvalue(decl.init)
                self.builder.store(target, addr)
            return addr
        ty = self.lowered(decl.type)
        addr = self.create_alloca(ty, decl.name)
        self.local_vars[id(decl)] = addr
        if decl.init is not None:
            if isinstance(decl.init, e.InitListExpr):
                self._emit_init_list(addr, ty, decl.init)
            else:
                value = self.emit_expr(decl.init)
                self.builder.store(value, addr)
        return addr

    def _emit_init_list(
        self, addr: Value, ty: ir_ty.IRType, init: e.InitListExpr
    ) -> None:
        if not isinstance(ty, ir_ty.ArrayType):
            if init.inits:
                self.builder.store(self.emit_expr(init.inits[0]), addr)
            return
        elem = ty.element
        for i in range(ty.count):
            slot = self.builder.gep(
                elem,
                addr,
                [ConstantInt(ir_ty.i64, i)],
                "init.elt",
            )
            if i < len(init.inits):
                value = self.emit_expr(init.inits[i])
                self.builder.store(value, slot)
            else:
                self.builder.store(self._zero_of(elem), slot)

    def _zero_of(self, ty: ir_ty.IRType) -> Value:
        if isinstance(ty, ir_ty.IntType):
            return ConstantInt(ty, 0)
        if isinstance(ty, ir_ty.FloatType):
            from repro.ir.values import ConstantFP

            return ConstantFP(ty, 0.0)
        from repro.ir.values import ConstantPointerNull

        return ConstantPointerNull()

    # ------------------------------------------------------------------
    def _emit_if(self, stmt: s.IfStmt) -> None:
        assert self.fn is not None
        cond = self.emit_condition(stmt.cond)
        then_bb = self.fn.append_block("if.then")
        end_bb = self.fn.append_block("if.end")
        else_bb = (
            self.fn.append_block("if.else")
            if stmt.else_stmt is not None
            else end_bb
        )
        self.builder.cond_br(cond, then_bb, else_bb)
        self.builder.set_insert_point(then_bb)
        self.emit_stmt(stmt.then_stmt)
        if self.builder.insert_block.terminator is None:
            self.builder.br(end_bb)
        if stmt.else_stmt is not None:
            self.builder.set_insert_point(else_bb)
            self.emit_stmt(stmt.else_stmt)
            if self.builder.insert_block.terminator is None:
                self.builder.br(end_bb)
        self.builder.set_insert_point(end_bb)

    def _take_loop_metadata(self) -> MDNode | None:
        md = self._pending_loop_metadata
        self._pending_loop_metadata = None
        return md

    def _emit_while(self, stmt: s.WhileStmt) -> None:
        assert self.fn is not None
        md = self._take_loop_metadata()
        cond_bb = self.fn.append_block("while.cond")
        body_bb = self.fn.append_block("while.body")
        end_bb = self.fn.append_block("while.end")
        self.builder.br(cond_bb)
        self.builder.set_insert_point(cond_bb)
        cond = self.emit_condition(stmt.cond)
        self.builder.cond_br(cond, body_bb, end_bb)
        self.builder.set_insert_point(body_bb)
        self._loop_targets.append((end_bb, cond_bb))
        self.emit_stmt(stmt.body)
        self._loop_targets.pop()
        self.ensure_insert_point()
        if self.builder.insert_block.terminator is None:
            backedge = self.builder.br(cond_bb)
            if md is not None:
                backedge.metadata["llvm.loop"] = md
        self.builder.set_insert_point(end_bb)

    def _emit_do(self, stmt: s.DoStmt) -> None:
        assert self.fn is not None
        md = self._take_loop_metadata()
        body_bb = self.fn.append_block("do.body")
        cond_bb = self.fn.append_block("do.cond")
        end_bb = self.fn.append_block("do.end")
        self.builder.br(body_bb)
        self.builder.set_insert_point(body_bb)
        self._loop_targets.append((end_bb, cond_bb))
        self.emit_stmt(stmt.body)
        self._loop_targets.pop()
        self.ensure_insert_point()
        if self.builder.insert_block.terminator is None:
            self.builder.br(cond_bb)
        self.builder.set_insert_point(cond_bb)
        cond = self.emit_condition(stmt.cond)
        backedge = self.builder.cond_br(cond, body_bb, end_bb)
        if md is not None:
            backedge.metadata["llvm.loop"] = md
        self.builder.set_insert_point(end_bb)

    def _emit_for(self, stmt: s.ForStmt) -> None:
        assert self.fn is not None
        md = self._take_loop_metadata()
        self.emit_stmt(stmt.init)
        self.ensure_insert_point()
        cond_bb = self.fn.append_block("for.cond")
        body_bb = self.fn.append_block("for.body")
        inc_bb = self.fn.append_block("for.inc")
        end_bb = self.fn.append_block("for.end")
        self.builder.br(cond_bb)
        self.builder.set_insert_point(cond_bb)
        if stmt.cond is not None:
            cond = self.emit_condition(stmt.cond)
            self.builder.cond_br(cond, body_bb, end_bb)
        else:
            self.builder.br(body_bb)
        self.builder.set_insert_point(body_bb)
        self._loop_targets.append((end_bb, inc_bb))
        self.emit_stmt(stmt.body)
        self._loop_targets.pop()
        self.ensure_insert_point()
        if self.builder.insert_block.terminator is None:
            self.builder.br(inc_bb)
        self.builder.set_insert_point(inc_bb)
        if stmt.inc is not None:
            self.emit_expr(stmt.inc)
        backedge = self.builder.br(cond_bb)
        if md is not None:
            backedge.metadata["llvm.loop"] = md
        self.builder.set_insert_point(end_bb)

    def _emit_range_for(self, stmt: s.CXXForRangeStmt) -> None:
        """Emit the de-sugared form (paper Listing 'rangesugar')."""
        assert self.fn is not None
        md = self._take_loop_metadata()
        self.emit_stmt(stmt.range_stmt)
        self.emit_stmt(stmt.begin_stmt)
        self.emit_stmt(stmt.end_stmt)
        cond_bb = self.fn.append_block("range.cond")
        body_bb = self.fn.append_block("range.body")
        inc_bb = self.fn.append_block("range.inc")
        end_bb = self.fn.append_block("range.end")
        self.builder.br(cond_bb)
        self.builder.set_insert_point(cond_bb)
        cond = self.emit_condition(stmt.cond)
        self.builder.cond_br(cond, body_bb, end_bb)
        self.builder.set_insert_point(body_bb)
        self.emit_stmt(stmt.loop_var_stmt)
        self._loop_targets.append((end_bb, inc_bb))
        self.emit_stmt(stmt.body)
        self._loop_targets.pop()
        self.ensure_insert_point()
        if self.builder.insert_block.terminator is None:
            self.builder.br(inc_bb)
        self.builder.set_insert_point(inc_bb)
        self.emit_expr(stmt.inc)
        backedge = self.builder.br(cond_bb)
        if md is not None:
            backedge.metadata["llvm.loop"] = md
        self.builder.set_insert_point(end_bb)

    def _emit_return(self, stmt: s.ReturnStmt) -> None:
        if stmt.value is None:
            self.builder.ret()
        else:
            self.builder.ret(self.emit_expr(stmt.value))

    def _emit_attributed(self, stmt: s.AttributedStmt) -> None:
        """Translate LoopHintAttr to llvm.loop metadata on the sub-loop
        (paper §2.1: "the code generator will attach
        llvm.loop.unroll.count metadata")."""
        if self.cgm.options.emit_loop_metadata:
            count = None
            enable = False
            full = False
            for attr in stmt.loop_hints():
                if attr.option == s.LoopHintAttr.UNROLL_COUNT:
                    if attr.value is not None:
                        count = self.cgm.evaluator.try_evaluate(
                            attr.value
                        )
                    enable = True
                elif attr.option == s.LoopHintAttr.UNROLL:
                    enable = True
                elif attr.option == s.LoopHintAttr.UNROLL_FULL:
                    full = True
            self._pending_loop_metadata = loop_metadata(
                unroll_count=count,
                unroll_enable=enable,
                unroll_full=full,
            )
        self.emit_stmt(stmt.sub_stmt)

    def _emit_switch(self, stmt: s.SwitchStmt) -> None:
        """Supports the common shape: a compound body whose top level is
        a sequence of case/default labels with trailing statements
        (fallthrough and per-case `break;` included)."""
        assert self.fn is not None
        cond = self.emit_expr(stmt.cond)
        body = stmt.body
        if not isinstance(body, s.CompoundStmt):
            raise CodeGenError("unsupported switch body shape")
        end_bb = self.fn.append_block("switch.end")
        # Group the flat statement list into label-led regions: a new
        # region starts at each CaseStmt/DefaultStmt; other statements
        # extend the current region (C's flat label syntax).
        regions: list[tuple[int | None, list[s.Stmt], BasicBlock]] = []
        for child in body.statements:
            if isinstance(child, s.CaseStmt):
                value = self.cgm.evaluator.evaluate(child.value)
                regions.append(
                    (
                        value,
                        [child.sub_stmt],
                        self.fn.append_block(f"case.{value}"),
                    )
                )
            elif isinstance(child, s.DefaultStmt):
                regions.append(
                    (
                        None,
                        [child.sub_stmt],
                        self.fn.append_block("case.default"),
                    )
                )
            elif regions:
                regions[-1][1].append(child)
            elif isinstance(child, s.NullStmt):
                continue
            else:
                raise CodeGenError(
                    "statement before the first case label is "
                    "unreachable (unsupported)"
                )
        default_bb = next(
            (bb for v, _, bb in regions if v is None), end_bb
        )
        switch = self.builder.switch(cond, default_bb)
        for value, _, bb in regions:
            if value is not None:
                switch.add_case(value, bb)
        # `break` targets the switch end; `continue` keeps targeting the
        # enclosing loop.
        continue_target = (
            self._loop_targets[-1][1] if self._loop_targets else end_bb
        )
        self._loop_targets.append((end_bb, continue_target))
        for i, (_, stmts, bb) in enumerate(regions):
            self.builder.set_insert_point(bb)
            for sub in stmts:
                self.emit_stmt(sub)
            self.ensure_insert_point()
            if self.builder.insert_block.terminator is None:
                target = (
                    regions[i + 1][2]
                    if i + 1 < len(regions)
                    else end_bb
                )
                self.builder.br(target)
        self._loop_targets.pop()
        self.builder.set_insert_point(end_bb)

    # ==================================================================
    # L-values
    # ==================================================================
    def emit_lvalue(self, expr: e.Expr) -> Value:
        expr_inner = expr
        while isinstance(expr_inner, e.ParenExpr):
            expr_inner = expr_inner.sub_expr
        if isinstance(expr_inner, e.DeclRefExpr):
            return self._emit_decl_address(expr_inner.decl)
        if isinstance(expr_inner, e.ArraySubscriptExpr):
            base = self.emit_expr(expr_inner.base)  # pointer value
            index = self.emit_expr(expr_inner.index)
            elem = self.lowered(expr_inner.type)
            index = self._index_to_i64(index, expr_inner.index.type)
            return self.builder.gep(elem, base, [index], "arrayidx")
        if isinstance(expr_inner, e.UnaryOperator) and (
            expr_inner.opcode == e.UnaryOperatorKind.DEREF
        ):
            return self.emit_expr(expr_inner.sub_expr)
        if isinstance(expr_inner, e.MemberExpr):
            return self._emit_member_address(expr_inner)
        if isinstance(expr_inner, e.StringLiteral):
            return self.cgm.get_string_literal(expr_inner.value)
        if isinstance(expr_inner, e.ImplicitCastExpr) and (
            expr_inner.cast_kind == e.CastKind.NOOP
        ):
            return self.emit_lvalue(expr_inner.sub_expr)
        if isinstance(expr_inner, e.ConstantExpr):
            return self.emit_lvalue(expr_inner.sub_expr)
        if isinstance(
            expr_inner, e.BinaryOperator
        ) and expr_inner.opcode == e.BinaryOperatorKind.ASSIGN:
            # (a = b) as lvalue: evaluate, return the lhs address.
            self.emit_expr(expr_inner)
            return self.emit_lvalue(expr_inner.lhs)
        raise CodeGenError(
            f"cannot take address of {type(expr_inner).__name__}"
        )

    def _emit_decl_address(self, decl) -> Value:
        direct = self.reference_bindings.get(id(decl))
        if direct is not None:
            return direct
        if id(decl) in self.capture_fields:
            index = self.capture_fields[id(decl)]
            assert self.context_arg is not None
            assert self.context_struct is not None
            field_addr = self.builder.gep(
                self.context_struct,
                self.context_arg,
                [
                    ConstantInt(ir_ty.i64, 0),
                    ConstantInt(ir_ty.i32, index),
                ],
                f"{decl.name}.field",
            )
            return self.builder.load(ir_ty.ptr, field_addr, decl.name)
        local = self.local_vars.get(id(decl))
        if local is not None:
            canonical = ast_ty.desugar(decl.type)
            if isinstance(canonical.type, ast_ty.ReferenceType):
                return self.builder.load(
                    ir_ty.ptr, local, f"{decl.name}.ref"
                )
            return local
        if isinstance(decl, FunctionDecl):
            return self.cgm.get_function(decl)
        if isinstance(decl, VarDecl) and decl.is_global:
            return self.cgm.get_global(decl)
        if isinstance(decl, VarDecl):
            # Late-discovered local (e.g. a range-for helper referenced
            # from shadow helper expressions before its DeclStmt):
            # allocate + initialize on first touch, then resolve through
            # the normal path (which dereferences reference slots).
            self.emit_var_decl(decl)
            return self._emit_decl_address(decl)
        raise CodeGenError(f"no storage for declaration '{decl.name}'")

    def _emit_member_address(self, expr: e.MemberExpr) -> Value:
        if expr.is_arrow:
            base = self.emit_expr(expr.base)
        else:
            base = self.emit_lvalue(expr.base)
        record = expr.member
        # Find the record decl through the base type.
        base_qt = ast_ty.desugar(expr.base.type)
        if expr.is_arrow:
            base_qt = ast_ty.desugar(base_qt.type.pointee)
        record_ty = base_qt.type
        assert isinstance(record_ty, ast_ty.RecordType)
        struct = self.cgm.types.lower_record(record_ty.decl)
        return self.builder.gep(
            struct,
            base,
            [
                ConstantInt(ir_ty.i64, 0),
                ConstantInt(ir_ty.i32, expr.member.index),
            ],
            expr.member.name,
        )

    def _index_to_i64(
        self, index: Value, qt: ast_ty.QualType
    ) -> Value:
        if isinstance(index.type, ir_ty.IntType) and index.type.bits != 64:
            signed = ast_ty.desugar(qt).is_signed_integer()
            return self.builder.int_cast(index, ir_ty.i64, signed, "idxprom")
        return index

    # ==================================================================
    # R-values
    # ==================================================================
    def emit_expr(self, expr: e.Expr) -> Value:
        if isinstance(expr, e.IntegerLiteral):
            ty = self.lowered(expr.type)
            assert isinstance(ty, ir_ty.IntType)
            return ConstantInt(ty, expr.value)
        if isinstance(expr, (e.CharacterLiteral, e.BoolLiteralExpr)):
            ty = self.lowered(expr.type)
            assert isinstance(ty, ir_ty.IntType)
            return ConstantInt(ty, int(expr.value))
        if isinstance(expr, e.FloatingLiteral):
            from repro.ir.values import ConstantFP

            ty = self.lowered(expr.type)
            assert isinstance(ty, ir_ty.FloatType)
            return ConstantFP(ty, expr.value)
        if isinstance(expr, e.ParenExpr):
            return self.emit_expr(expr.sub_expr)
        if isinstance(expr, e.ConstantExpr):
            ty = self.lowered(expr.type)
            if isinstance(ty, ir_ty.IntType):
                return ConstantInt(ty, expr.value)
            return self.emit_expr(expr.sub_expr)
        if isinstance(expr, e.DeclRefExpr):
            # Function references are values (decay handled by casts).
            if isinstance(expr.decl, FunctionDecl):
                return self.cgm.get_function(expr.decl)
            addr = self._emit_decl_address(expr.decl)
            return self.builder.load(
                self.lowered(expr.type), addr, expr.decl.name
            )
        if isinstance(expr, e.ImplicitCastExpr):
            return self._emit_cast(expr)
        if isinstance(expr, e.CStyleCastExpr):
            return self._emit_cast(expr)
        if isinstance(expr, e.UnaryOperator):
            return self._emit_unary(expr)
        if isinstance(expr, e.CompoundAssignOperator):
            return self._emit_compound_assign(expr)
        if isinstance(expr, e.BinaryOperator):
            return self._emit_binary(expr)
        if isinstance(expr, e.ConditionalOperator):
            return self._emit_conditional(expr)
        if isinstance(expr, e.ArraySubscriptExpr):
            addr = self.emit_lvalue(expr)
            return self.builder.load(
                self.lowered(expr.type), addr, "arrayval"
            )
        if isinstance(expr, e.MemberExpr):
            addr = self.emit_lvalue(expr)
            return self.builder.load(
                self.lowered(expr.type), addr, expr.member.name
            )
        if isinstance(expr, e.CallExpr):
            return self._emit_call(expr)
        if isinstance(expr, e.StringLiteral):
            return self.cgm.get_string_literal(expr.value)
        if isinstance(expr, e.UnaryExprOrTypeTraitExpr):
            value = self.cgm.evaluator.evaluate(expr)
            ty = self.lowered(expr.type)
            assert isinstance(ty, ir_ty.IntType)
            return ConstantInt(ty, value)
        if isinstance(expr, e.OpaqueValueExpr):
            assert expr.source_expr is not None
            return self.emit_expr(expr.source_expr)
        raise CodeGenError(
            f"cannot emit expression {type(expr).__name__}"
        )

    # ------------------------------------------------------------------
    def _emit_cast(self, expr: e.CastExpr) -> Value:
        kind = expr.cast_kind
        CK = e.CastKind
        if kind == CK.LVALUE_TO_RVALUE:
            addr = self.emit_lvalue(expr.sub_expr)
            return self.builder.load(
                self.lowered(expr.type), addr, "load"
            )
        if kind in (CK.ARRAY_TO_POINTER_DECAY,):
            return self.emit_lvalue(expr.sub_expr)
        if kind == CK.FUNCTION_TO_POINTER_DECAY:
            return self.emit_expr(expr.sub_expr)
        if kind == CK.NOOP:
            return self.emit_expr(expr.sub_expr)
        if kind == CK.TO_VOID:
            self.emit_expr(expr.sub_expr)
            return ConstantInt(ir_ty.i32, 0)
        value = self.emit_expr(expr.sub_expr)
        src_qt = ast_ty.desugar(expr.sub_expr.type)
        dst_qt = ast_ty.desugar(expr.type)
        dst_ty = self.lowered(expr.type)
        if kind == CK.INTEGRAL_CAST:
            assert isinstance(dst_ty, ir_ty.IntType)
            return self.builder.int_cast(
                value, dst_ty, src_qt.is_signed_integer(), "conv"
            )
        if kind == CK.INTEGRAL_TO_FLOATING:
            op = (
                CastOp.SITOFP
                if src_qt.is_signed_integer()
                else CastOp.UITOFP
            )
            return self.builder.cast(op, value, dst_ty, "conv")
        if kind == CK.FLOATING_TO_INTEGRAL:
            op = (
                CastOp.FPTOSI
                if dst_qt.is_signed_integer()
                else CastOp.FPTOUI
            )
            return self.builder.cast(op, value, dst_ty, "conv")
        if kind == CK.FLOATING_CAST:
            assert isinstance(dst_ty, ir_ty.FloatType)
            src_ty = value.type
            assert isinstance(src_ty, ir_ty.FloatType)
            op = (
                CastOp.FPEXT
                if dst_ty.bits > src_ty.bits
                else CastOp.FPTRUNC
            )
            if dst_ty.bits == src_ty.bits:
                return value
            return self.builder.cast(op, value, dst_ty, "conv")
        if kind in (
            CK.INTEGRAL_TO_BOOLEAN,
            CK.FLOATING_TO_BOOLEAN,
            CK.POINTER_TO_BOOLEAN,
        ):
            flag = self._truthiness(value)
            return self.builder.cast(
                CastOp.ZEXT, flag, ir_ty.i8, "frombool"
            )
        if kind == CK.NULL_TO_POINTER:
            from repro.ir.values import ConstantPointerNull

            return ConstantPointerNull()
        if kind == CK.BITCAST:
            if isinstance(dst_ty, ir_ty.IntType) and isinstance(
                value.type, ir_ty.PointerType
            ):
                return self.builder.cast(
                    CastOp.PTRTOINT, value, dst_ty, "ptoi"
                )
            if isinstance(dst_ty, ir_ty.PointerType) and isinstance(
                value.type, ir_ty.IntType
            ):
                return self.builder.cast(
                    CastOp.INTTOPTR, value, dst_ty, "itop"
                )
            return value
        raise CodeGenError(f"unhandled cast kind {kind}")

    def _truthiness(self, value: Value) -> Value:
        """value != 0 as i1."""
        ty = value.type
        if isinstance(ty, ir_ty.IntType):
            if ty.bits == 1:
                return value
            return self.builder.icmp(
                ICmpPred.NE, value, ConstantInt(ty, 0), "tobool"
            )
        if isinstance(ty, ir_ty.FloatType):
            from repro.ir.values import ConstantFP

            return self.builder.fcmp(
                FCmpPred.ONE, value, ConstantFP(ty, 0.0), "tobool"
            )
        if isinstance(ty, ir_ty.PointerType):
            from repro.ir.values import ConstantPointerNull

            return self.builder.icmp(
                ICmpPred.NE, value, ConstantPointerNull(), "tobool"
            )
        raise CodeGenError(f"no truthiness for {ty}")

    # ------------------------------------------------------------------
    def emit_condition(self, expr: e.Expr) -> Value:
        """Emit a controlling expression as i1, using comparison results
        directly where possible (avoids zext/icmp churn)."""
        stripped = expr
        while isinstance(stripped, e.ParenExpr):
            stripped = stripped.sub_expr
        if isinstance(stripped, e.BinaryOperator):
            op = stripped.opcode
            if op.is_comparison():
                return self._emit_comparison_i1(stripped)
            if op in (
                e.BinaryOperatorKind.LAND,
                e.BinaryOperatorKind.LOR,
            ):
                return self._emit_logical_i1(stripped)
        if isinstance(stripped, e.UnaryOperator) and (
            stripped.opcode == e.UnaryOperatorKind.LNOT
        ):
            inner = self.emit_condition(stripped.sub_expr)
            return self.builder.binop(
                BinOp.XOR, inner, ConstantInt(ir_ty.i1, 1), "lnot"
            )
        if isinstance(stripped, e.ImplicitCastExpr) and (
            stripped.cast_kind
            in (
                e.CastKind.INTEGRAL_TO_BOOLEAN,
                e.CastKind.FLOATING_TO_BOOLEAN,
                e.CastKind.POINTER_TO_BOOLEAN,
            )
        ):
            return self._truthiness(self.emit_expr(stripped.sub_expr))
        return self._truthiness(self.emit_expr(stripped))

    def _emit_comparison_i1(self, expr: e.BinaryOperator) -> Value:
        lhs = self.emit_expr(expr.lhs)
        rhs = self.emit_expr(expr.rhs)
        operand_qt = ast_ty.desugar(expr.lhs.type)
        if operand_qt.is_floating():
            pred = {
                e.BinaryOperatorKind.LT: FCmpPred.OLT,
                e.BinaryOperatorKind.GT: FCmpPred.OGT,
                e.BinaryOperatorKind.LE: FCmpPred.OLE,
                e.BinaryOperatorKind.GE: FCmpPred.OGE,
                e.BinaryOperatorKind.EQ: FCmpPred.OEQ,
                e.BinaryOperatorKind.NE: FCmpPred.ONE,
            }[expr.opcode]
            return self.builder.fcmp(pred, lhs, rhs, "cmp")
        signed = operand_qt.is_signed_integer()
        pred = {
            (e.BinaryOperatorKind.LT, True): ICmpPred.SLT,
            (e.BinaryOperatorKind.GT, True): ICmpPred.SGT,
            (e.BinaryOperatorKind.LE, True): ICmpPred.SLE,
            (e.BinaryOperatorKind.GE, True): ICmpPred.SGE,
            (e.BinaryOperatorKind.LT, False): ICmpPred.ULT,
            (e.BinaryOperatorKind.GT, False): ICmpPred.UGT,
            (e.BinaryOperatorKind.LE, False): ICmpPred.ULE,
            (e.BinaryOperatorKind.GE, False): ICmpPred.UGE,
            (e.BinaryOperatorKind.EQ, True): ICmpPred.EQ,
            (e.BinaryOperatorKind.EQ, False): ICmpPred.EQ,
            (e.BinaryOperatorKind.NE, True): ICmpPred.NE,
            (e.BinaryOperatorKind.NE, False): ICmpPred.NE,
        }[(expr.opcode, signed)]
        # pointers compare unsigned
        if operand_qt.is_pointer():
            pred = {
                e.BinaryOperatorKind.LT: ICmpPred.ULT,
                e.BinaryOperatorKind.GT: ICmpPred.UGT,
                e.BinaryOperatorKind.LE: ICmpPred.ULE,
                e.BinaryOperatorKind.GE: ICmpPred.UGE,
                e.BinaryOperatorKind.EQ: ICmpPred.EQ,
                e.BinaryOperatorKind.NE: ICmpPred.NE,
            }[expr.opcode]
        return self.builder.icmp(pred, lhs, rhs, "cmp")

    def _emit_logical_i1(self, expr: e.BinaryOperator) -> Value:
        assert self.fn is not None
        is_and = expr.opcode == e.BinaryOperatorKind.LAND
        rhs_bb = self.fn.append_block("land.rhs" if is_and else "lor.rhs")
        end_bb = self.fn.append_block("land.end" if is_and else "lor.end")
        lhs = self.emit_condition(expr.lhs)
        lhs_block = self.builder.insert_block
        if is_and:
            self.builder.cond_br(lhs, rhs_bb, end_bb)
        else:
            self.builder.cond_br(lhs, end_bb, rhs_bb)
        self.builder.set_insert_point(rhs_bb)
        rhs = self.emit_condition(expr.rhs)
        rhs_block = self.builder.insert_block
        self.builder.br(end_bb)
        self.builder.set_insert_point(end_bb)
        phi = self.builder.phi(ir_ty.i1, "merge")
        short_circuit = ConstantInt(ir_ty.i1, 0 if is_and else 1)
        phi.add_incoming(short_circuit, lhs_block)
        phi.add_incoming(rhs, rhs_block)
        return phi

    # ------------------------------------------------------------------
    def _emit_unary(self, expr: e.UnaryOperator) -> Value:
        U = e.UnaryOperatorKind
        op = expr.opcode
        if op.is_increment_decrement():
            addr = self.emit_lvalue(expr.sub_expr)
            qt = ast_ty.desugar(expr.sub_expr.type)
            old = self.builder.load(
                self.lowered(expr.sub_expr.type), addr, "incdec.old"
            )
            delta = 1 if op.is_increment() else -1
            if qt.is_pointer():
                elem = self.lowered(qt.type.pointee)
                new = self.builder.gep(
                    elem, old, [ConstantInt(ir_ty.i64, delta)], "incdec"
                )
            elif qt.is_floating():
                from repro.ir.values import ConstantFP

                fty = old.type
                assert isinstance(fty, ir_ty.FloatType)
                new = self.builder.binop(
                    BinOp.FADD,
                    old,
                    ConstantFP(fty, float(delta)),
                    "incdec",
                )
            else:
                ity = old.type
                assert isinstance(ity, ir_ty.IntType)
                new = self.builder.add(
                    old, ConstantInt(ity, delta), "incdec"
                )
            self.builder.store(new, addr)
            return (
                new
                if op in (U.PRE_INC, U.PRE_DEC)
                else old
            )
        if op == U.ADDR_OF:
            return self.emit_lvalue(expr.sub_expr)
        if op == U.DEREF:
            addr = self.emit_expr(expr.sub_expr)
            return self.builder.load(
                self.lowered(expr.type), addr, "deref"
            )
        if op == U.PLUS:
            return self.emit_expr(expr.sub_expr)
        if op == U.MINUS:
            value = self.emit_expr(expr.sub_expr)
            ty = value.type
            if isinstance(ty, ir_ty.FloatType):
                from repro.ir.values import ConstantFP

                return self.builder.binop(
                    BinOp.FSUB, ConstantFP(ty, 0.0), value, "neg"
                )
            assert isinstance(ty, ir_ty.IntType)
            return self.builder.sub(ConstantInt(ty, 0), value, "neg")
        if op == U.NOT:
            value = self.emit_expr(expr.sub_expr)
            ty = value.type
            assert isinstance(ty, ir_ty.IntType)
            return self.builder.binop(
                BinOp.XOR, value, ConstantInt(ty, -1), "not"
            )
        if op == U.LNOT:
            flag = self.emit_condition(expr.sub_expr)
            inverted = self.builder.binop(
                BinOp.XOR, flag, ConstantInt(ir_ty.i1, 1), "lnot"
            )
            result_ty = self.lowered(expr.type)
            assert isinstance(result_ty, ir_ty.IntType)
            return self.builder.cast(
                CastOp.ZEXT, inverted, result_ty, "lnot.ext"
            )
        raise CodeGenError(f"unhandled unary {op}")

    # ------------------------------------------------------------------
    _INT_BINOPS = {
        e.BinaryOperatorKind.ADD: BinOp.ADD,
        e.BinaryOperatorKind.SUB: BinOp.SUB,
        e.BinaryOperatorKind.MUL: BinOp.MUL,
        e.BinaryOperatorKind.AND: BinOp.AND,
        e.BinaryOperatorKind.OR: BinOp.OR,
        e.BinaryOperatorKind.XOR: BinOp.XOR,
        e.BinaryOperatorKind.SHL: BinOp.SHL,
    }
    _FLOAT_BINOPS = {
        e.BinaryOperatorKind.ADD: BinOp.FADD,
        e.BinaryOperatorKind.SUB: BinOp.FSUB,
        e.BinaryOperatorKind.MUL: BinOp.FMUL,
        e.BinaryOperatorKind.DIV: BinOp.FDIV,
        e.BinaryOperatorKind.REM: BinOp.FREM,
    }

    def _emit_binary(self, expr: e.BinaryOperator) -> Value:
        op = expr.opcode
        B = e.BinaryOperatorKind
        if op == B.ASSIGN:
            value = self.emit_expr(expr.rhs)
            addr = self.emit_lvalue(expr.lhs)
            self.builder.store(value, addr)
            return value
        if op == B.COMMA:
            self.emit_expr(expr.lhs)
            return self.emit_expr(expr.rhs)
        if op in (B.LAND, B.LOR):
            flag = self._emit_logical_i1(expr)
            result_ty = self.lowered(expr.type)
            assert isinstance(result_ty, ir_ty.IntType)
            return self.builder.cast(
                CastOp.ZEXT, flag, result_ty, "conv"
            )
        if op.is_comparison():
            flag = self._emit_comparison_i1(expr)
            result_ty = self.lowered(expr.type)
            assert isinstance(result_ty, ir_ty.IntType)
            return self.builder.cast(
                CastOp.ZEXT, flag, result_ty, "conv"
            )
        # Pointer arithmetic.
        lhs_qt = ast_ty.desugar(expr.lhs.type)
        rhs_qt = ast_ty.desugar(expr.rhs.type)
        if op == B.ADD and (lhs_qt.is_pointer() or rhs_qt.is_pointer()):
            ptr_expr, idx_expr = (
                (expr.lhs, expr.rhs)
                if lhs_qt.is_pointer()
                else (expr.rhs, expr.lhs)
            )
            base = self.emit_expr(ptr_expr)
            index = self.emit_expr(idx_expr)
            index = self._index_to_i64(index, idx_expr.type)
            elem = self.lowered(
                ast_ty.desugar(ptr_expr.type).type.pointee
            )
            return self.builder.gep(elem, base, [index], "add.ptr")
        if op == B.SUB and lhs_qt.is_pointer():
            base = self.emit_expr(expr.lhs)
            if rhs_qt.is_pointer():
                other = self.emit_expr(expr.rhs)
                lhs_int = self.builder.cast(
                    CastOp.PTRTOINT, base, ir_ty.i64, "sub.ptr.lhs"
                )
                rhs_int = self.builder.cast(
                    CastOp.PTRTOINT, other, ir_ty.i64, "sub.ptr.rhs"
                )
                diff = self.builder.sub(lhs_int, rhs_int, "sub.ptr")
                elem = self.lowered(lhs_qt.type.pointee)
                return self.builder.sdiv(
                    diff,
                    ConstantInt(ir_ty.i64, max(1, elem.size_bytes())),
                    "sub.ptr.div",
                )
            index = self.emit_expr(expr.rhs)
            index = self._index_to_i64(index, expr.rhs.type)
            neg = self.builder.sub(
                ConstantInt(ir_ty.i64, 0), index, "idx.neg"
            )
            elem = self.lowered(lhs_qt.type.pointee)
            return self.builder.gep(elem, base, [neg], "sub.ptr")
        lhs = self.emit_expr(expr.lhs)
        rhs = self.emit_expr(expr.rhs)
        return self._emit_arith(op, lhs, rhs, expr.type)

    def _emit_arith(
        self,
        op: e.BinaryOperatorKind,
        lhs: Value,
        rhs: Value,
        result_qt: ast_ty.QualType,
    ) -> Value:
        B = e.BinaryOperatorKind
        qt = ast_ty.desugar(result_qt)
        if qt.is_floating():
            return self.builder.binop(
                self._FLOAT_BINOPS[op], lhs, rhs, op.name.lower()
            )
        signed = qt.is_signed_integer()
        if op == B.DIV:
            return self.builder.binop(
                BinOp.SDIV if signed else BinOp.UDIV, lhs, rhs, "div"
            )
        if op == B.REM:
            return self.builder.binop(
                BinOp.SREM if signed else BinOp.UREM, lhs, rhs, "rem"
            )
        if op == B.SHR:
            return self.builder.binop(
                BinOp.ASHR if signed else BinOp.LSHR, lhs, rhs, "shr"
            )
        return self.builder.binop(
            self._INT_BINOPS[op], lhs, rhs, op.name.lower()
        )

    def _emit_compound_assign(
        self, expr: e.CompoundAssignOperator
    ) -> Value:
        addr = self.emit_lvalue(expr.lhs)
        lhs_qt = ast_ty.desugar(expr.lhs.type)
        underlying = expr.opcode.underlying_compound_op()
        old = self.builder.load(
            self.lowered(expr.lhs.type), addr, "compound.old"
        )
        if lhs_qt.is_pointer():
            index = self.emit_expr(expr.rhs)
            index = self._index_to_i64(index, expr.rhs.type)
            if underlying == e.BinaryOperatorKind.SUB:
                index = self.builder.sub(
                    ConstantInt(ir_ty.i64, 0), index, "idx.neg"
                )
            elem = self.lowered(lhs_qt.type.pointee)
            new = self.builder.gep(elem, old, [index], "compound.ptr")
            self.builder.store(new, addr)
            return new
        rhs = self.emit_expr(expr.rhs)
        comp_qt = ast_ty.desugar(expr.computation_type)
        comp_ty = self.lowered(expr.computation_type)
        widened = old
        if isinstance(comp_ty, ir_ty.IntType) and isinstance(
            old.type, ir_ty.IntType
        ):
            widened = self.builder.int_cast(
                old, comp_ty, lhs_qt.is_signed_integer(), "compound.conv"
            )
        elif isinstance(comp_ty, ir_ty.FloatType) and isinstance(
            old.type, ir_ty.IntType
        ):
            widened = self.builder.cast(
                CastOp.SITOFP
                if lhs_qt.is_signed_integer()
                else CastOp.UITOFP,
                old,
                comp_ty,
                "compound.conv",
            )
        result = self._emit_arith(
            underlying, widened, rhs, expr.computation_type
        )
        narrowed = result
        lhs_ty = self.lowered(expr.lhs.type)
        if isinstance(lhs_ty, ir_ty.IntType) and isinstance(
            result.type, ir_ty.IntType
        ):
            narrowed = self.builder.int_cast(
                result, lhs_ty, comp_qt.is_signed_integer(), "compound.trunc"
            )
        elif isinstance(lhs_ty, ir_ty.IntType) and isinstance(
            result.type, ir_ty.FloatType
        ):
            narrowed = self.builder.cast(
                CastOp.FPTOSI
                if lhs_qt.is_signed_integer()
                else CastOp.FPTOUI,
                result,
                lhs_ty,
                "compound.trunc",
            )
        elif isinstance(lhs_ty, ir_ty.FloatType) and isinstance(
            result.type, ir_ty.FloatType
        ) and lhs_ty.bits != result.type.bits:
            narrowed = self.builder.cast(
                CastOp.FPTRUNC
                if lhs_ty.bits < result.type.bits
                else CastOp.FPEXT,
                result,
                lhs_ty,
                "compound.trunc",
            )
        self.builder.store(narrowed, addr)
        return narrowed

    def _emit_conditional(self, expr: e.ConditionalOperator) -> Value:
        assert self.fn is not None
        cond = self.emit_condition(expr.cond)
        true_bb = self.fn.append_block("cond.true")
        false_bb = self.fn.append_block("cond.false")
        end_bb = self.fn.append_block("cond.end")
        self.builder.cond_br(cond, true_bb, false_bb)
        self.builder.set_insert_point(true_bb)
        true_val = self.emit_expr(expr.true_expr)
        true_exit = self.builder.insert_block
        self.builder.br(end_bb)
        self.builder.set_insert_point(false_bb)
        false_val = self.emit_expr(expr.false_expr)
        false_exit = self.builder.insert_block
        self.builder.br(end_bb)
        self.builder.set_insert_point(end_bb)
        if self.lowered(expr.type).is_void:
            return ConstantInt(ir_ty.i32, 0)
        phi = self.builder.phi(true_val.type, "cond")
        phi.add_incoming(true_val, true_exit)
        phi.add_incoming(false_val, false_exit)
        return phi

    def _emit_call(self, expr: e.CallExpr) -> Value:
        callee_decl = expr.callee_decl()
        args = [self.emit_expr(a) for a in expr.args]
        if callee_decl is not None:
            fn = self.cgm.get_function(callee_decl)
            return self.builder.call(fn, args, "")
        # Indirect call through a pointer value.
        target = self.emit_expr(expr.callee)
        call = self.builder.call(target, args, "")
        # Patch the return type from the AST (indirect callee type).
        call.type = self.lowered(expr.type)
        if not call.type.is_void and not call.name:
            assert self.fn is not None
            call.name = self.fn.unique_name("call")
        return call
