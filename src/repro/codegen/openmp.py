"""OpenMP directive code generation — both representations.

Legacy path (paper §2): consumes the shadow AST.  ``OMPLoopDirective``'s
helper expressions (``.omp.iv``/``.omp.lb``/...) drive the worksharing
loop emission exactly as clang's ``EmitOMPWorksharingLoop`` does; loop
transformation directives emit their Sema-built transformed statement (or
only attach ``llvm.loop.unroll.*`` metadata when the mid-end can do the
job better — §2.2).

IRBuilder path (paper §3.2): consumes ``OMPCanonicalLoop`` nodes.  CodeGen
evaluates the *distance function* to obtain the trip count, calls
``OpenMPIRBuilder.create_canonical_loop``, fills the loop user variable by
emitting the *user value function* with the logical induction variable,
and passes the resulting ``CanonicalLoopInfo`` handles to
``create_workshare_loop`` / ``tile_loops`` / ``unroll_loop_*``.

Outlining for ``parallel`` stays AST-level (CapturedStmt) in both paths,
matching the current state described by the paper ("other directives such
as OMPParallelForDirective still may [wrap in CapturedStmt]").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.astlib import clauses as cl
from repro.astlib import exprs as e
from repro.astlib import omp
from repro.astlib import stmts as s
from repro.astlib import types as ast_ty
from repro.astlib.decls import VarDecl
from repro.ir import types as ir_ty
from repro.ir.instructions import BinOp, CastOp, FCmpPred, ICmpPred
from repro.ir.metadata import loop_metadata
from repro.ir.values import ConstantFP, ConstantInt, ConstantPointerNull, Value
from repro.ompirbuilder import CanonicalLoopInfo, WorksharedSchedule

if TYPE_CHECKING:
    from repro.codegen.function import CodeGenFunction


class OpenMPCodeGenError(Exception):
    pass


#: schedule clause kind -> runtime schedule (chunked variants when a chunk
#: expression is present)
_SCHEDULE_MAP = {
    cl.ScheduleKind.STATIC: (
        WorksharedSchedule.STATIC,
        WorksharedSchedule.STATIC_CHUNKED,
    ),
    cl.ScheduleKind.DYNAMIC: (
        WorksharedSchedule.DYNAMIC_CHUNKED,
        WorksharedSchedule.DYNAMIC_CHUNKED,
    ),
    cl.ScheduleKind.GUIDED: (
        WorksharedSchedule.GUIDED_CHUNKED,
        WorksharedSchedule.GUIDED_CHUNKED,
    ),
    cl.ScheduleKind.AUTO: (
        WorksharedSchedule.STATIC,
        WorksharedSchedule.STATIC,
    ),
    cl.ScheduleKind.RUNTIME: (
        WorksharedSchedule.DYNAMIC_CHUNKED,
        WorksharedSchedule.DYNAMIC_CHUNKED,
    ),
}


class _Privatizer:
    """Data-sharing clause handling: private copies, firstprivate init,
    lastprivate copy-back, reduction accumulate+combine."""

    def __init__(self, cgf: "CodeGenFunction") -> None:
        self.cgf = cgf
        self._saved: dict[int, Value | None] = {}
        #: (decl, private addr, original addr) for lastprivate
        self.lastprivates: list[tuple[VarDecl, Value, Value]] = []
        #: (decl, private addr, original addr, operator)
        self.reductions: list[
            tuple[VarDecl, Value, Value, cl.ReductionOperator]
        ] = []

    def apply(self, directive: omp.OMPExecutableDirective) -> None:
        for clause in directive.clauses:
            if isinstance(clause, cl.OMPPrivateClause):
                for ref in clause.variables:
                    self._make_private(ref.decl, init_from_original=False)
            elif isinstance(clause, cl.OMPFirstprivateClause):
                for ref in clause.variables:
                    self._make_private(ref.decl, init_from_original=True)
            elif isinstance(clause, cl.OMPLastprivateClause):
                for ref in clause.variables:
                    decl = ref.decl
                    original = self.cgf._emit_decl_address(decl)
                    private = self._make_private(
                        decl, init_from_original=False
                    )
                    self.lastprivates.append((decl, private, original))
            elif isinstance(clause, cl.OMPReductionClause):
                for ref in clause.variables:
                    decl = ref.decl
                    original = self.cgf._emit_decl_address(decl)
                    private = self._make_private(
                        decl, init_from_original=False
                    )
                    self._store_identity(decl, private, clause.operator)
                    self.reductions.append(
                        (decl, private, original, clause.operator)
                    )

    def _make_private(
        self, decl: VarDecl, init_from_original: bool
    ) -> Value:
        cgf = self.cgf
        ty = cgf.lowered(decl.type)
        original: Value | None = None
        if init_from_original:
            original = cgf._emit_decl_address(decl)
        private = cgf.create_alloca(ty, f"{decl.name}.private")
        if original is not None:
            value = cgf.builder.load(ty, original, f"{decl.name}.orig")
            cgf.builder.store(value, private)
        if id(decl) not in self._saved:
            self._saved[id(decl)] = cgf.local_vars.get(id(decl))
        cgf.local_vars[id(decl)] = private
        # Private copies shadow capture-field resolution too.
        cgf.capture_fields.pop(id(decl), None)
        return private

    def _store_identity(
        self, decl: VarDecl, addr: Value, op: cl.ReductionOperator
    ) -> None:
        cgf = self.cgf
        ty = cgf.lowered(decl.type)
        R = cl.ReductionOperator
        if isinstance(ty, ir_ty.FloatType):
            value = {
                R.ADD: 0.0,
                R.SUB: 0.0,
                R.MUL: 1.0,
                R.MIN: float("inf"),
                R.MAX: float("-inf"),
            }.get(op)
            if value is None:
                raise OpenMPCodeGenError(
                    f"reduction {op.value} invalid for floating type"
                )
            cgf.builder.store(ConstantFP(ty, value), addr)
            return
        assert isinstance(ty, ir_ty.IntType)
        signed = ast_ty.desugar(decl.type).is_signed_integer()
        if op in (R.ADD, R.SUB, R.OR, R.XOR, R.LOR):
            value = 0
        elif op in (R.MUL, R.LAND):
            value = 1
        elif op == R.AND:
            value = -1
        elif op == R.MIN:
            value = (1 << (ty.bits - 1)) - 1 if signed else ty.mask
        elif op == R.MAX:
            value = -(1 << (ty.bits - 1)) if signed else 0
        else:  # pragma: no cover
            raise OpenMPCodeGenError(f"unknown reduction {op}")
        cgf.builder.store(ConstantInt(ty, value), addr)

    # ------------------------------------------------------------------
    def emit_lastprivate_copyback(self, is_last_flag: Value) -> None:
        """``if (is_last) original = private;`` for each lastprivate."""
        if not self.lastprivates:
            return
        cgf = self.cgf
        assert cgf.fn is not None
        then_bb = cgf.fn.append_block("lastprivate.then")
        end_bb = cgf.fn.append_block("lastprivate.end")
        flag = cgf.builder.icmp(
            ICmpPred.NE, is_last_flag, ConstantInt(ir_ty.i32, 0), "is.last"
        )
        cgf.builder.cond_br(flag, then_bb, end_bb)
        cgf.builder.set_insert_point(then_bb)
        for decl, private, original in self.lastprivates:
            ty = cgf.lowered(decl.type)
            value = cgf.builder.load(ty, private, f"{decl.name}.final")
            cgf.builder.store(value, original)
        cgf.builder.br(end_bb)
        cgf.builder.set_insert_point(end_bb)

    def emit_reduction_combine(self) -> None:
        """Combine each private accumulator into the original under a
        critical section (the interleaved team makes this a real race
        otherwise)."""
        if not self.reductions:
            return
        cgf = self.cgf
        ompb = cgf.cgm.ompbuilder

        def combine(builder) -> None:
            for decl, private, original, op in self.reductions:
                ty = cgf.lowered(decl.type)
                current = builder.load(ty, original, f"{decl.name}.cur")
                mine = builder.load(ty, private, f"{decl.name}.mine")
                combined = self._combine(decl, op, current, mine)
                builder.store(combined, original)

        ompb.create_critical(cgf.builder, combine, "reduction")

    def _combine(
        self,
        decl: VarDecl,
        op: cl.ReductionOperator,
        lhs: Value,
        rhs: Value,
    ) -> Value:
        cgf = self.cgf
        b = cgf.builder
        R = cl.ReductionOperator
        ty = lhs.type
        is_float = isinstance(ty, ir_ty.FloatType)
        if op in (R.ADD, R.SUB):
            return b.binop(
                BinOp.FADD if is_float else BinOp.ADD, lhs, rhs, "red"
            )
        if op == R.MUL:
            return b.binop(
                BinOp.FMUL if is_float else BinOp.MUL, lhs, rhs, "red"
            )
        if op in (R.AND, R.OR, R.XOR):
            table = {R.AND: BinOp.AND, R.OR: BinOp.OR, R.XOR: BinOp.XOR}
            return b.binop(table[op], lhs, rhs, "red")
        if op in (R.LAND, R.LOR):
            lflag = cgf._truthiness(lhs)
            rflag = cgf._truthiness(rhs)
            flag = b.binop(
                BinOp.AND if op == R.LAND else BinOp.OR,
                lflag,
                rflag,
                "red",
            )
            assert isinstance(ty, ir_ty.IntType)
            return b.cast(CastOp.ZEXT, flag, ty, "red.ext")
        if op in (R.MIN, R.MAX):
            if is_float:
                pred = FCmpPred.OLT if op == R.MIN else FCmpPred.OGT
                cmp = b.fcmp(pred, lhs, rhs, "red.cmp")
            else:
                signed = ast_ty.desugar(decl.type).is_signed_integer()
                pred = (
                    (ICmpPred.SLT if signed else ICmpPred.ULT)
                    if op == R.MIN
                    else (ICmpPred.SGT if signed else ICmpPred.UGT)
                )
                cmp = b.icmp(pred, lhs, rhs, "red.cmp")
            return b.select(cmp, lhs, rhs, "red")
        raise OpenMPCodeGenError(f"unknown reduction {op}")

    def restore(self) -> None:
        for key, value in self._saved.items():
            if value is None:
                self.cgf.local_vars.pop(key, None)
            else:
                self.cgf.local_vars[key] = value


class OpenMPCodeGen:
    def __init__(self, cgf: "CodeGenFunction") -> None:
        self.cgf = cgf

    @property
    def cgm(self):
        return self.cgf.cgm

    @property
    def builder(self):
        return self.cgf.builder

    @property
    def ompb(self):
        return self.cgm.ompbuilder

    @property
    def irbuilder_mode(self) -> bool:
        return self.cgm.options.enable_irbuilder

    # ==================================================================
    # Dispatch
    # ==================================================================
    def emit_directive(self, d: omp.OMPExecutableDirective) -> None:
        if isinstance(
            d,
            (
                omp.OMPParallelForDirective,
                omp.OMPParallelForSimdDirective,
            ),
        ):
            self._emit_parallel(
                d, body_emitter=lambda cgf2: cgf2.openmp
                ._emit_worksharing(d)
            )
            return
        if isinstance(d, omp.OMPParallelDirective):
            self._emit_parallel(d, body_emitter=None)
            return
        if isinstance(d, (omp.OMPForDirective, omp.OMPForSimdDirective)):
            self._emit_worksharing(d)
            return
        if isinstance(d, (omp.OMPSimdDirective, omp.OMPTaskloopDirective)):
            # simd has no observable threading semantics in our model;
            # taskloop degenerates to single-task execution.
            self._emit_serial_logical_loop(d)
            return
        if isinstance(d, omp.OMPUnrollDirective):
            self._emit_unroll(d)
            return
        if isinstance(d, omp.OMPTileDirective):
            self._emit_tile(d)
            return
        if isinstance(d, omp.OMPReverseDirective):
            self._emit_reverse(d)
            return
        if isinstance(d, omp.OMPInterchangeDirective):
            self._emit_interchange(d)
            return
        if isinstance(d, omp.OMPFuseDirective):
            self._emit_fuse(d)
            return
        if isinstance(d, omp.OMPBarrierDirective):
            self.ompb.create_barrier(self.builder)
            return
        if isinstance(d, omp.OMPMasterDirective):
            self._emit_guarded(d, "__kmpc_master", barrier_after=False)
            return
        if isinstance(d, omp.OMPSingleDirective):
            nowait = d.has_clause(cl.OMPNowaitClause)
            self._emit_guarded(
                d, "__kmpc_single", barrier_after=not nowait
            )
            return
        if isinstance(d, omp.OMPCriticalDirective):
            self._emit_critical(d)
            return
        raise OpenMPCodeGenError(
            f"no codegen for directive {type(d).__name__}"
        )

    # ==================================================================
    # Shared helpers
    # ==================================================================
    def _thread_id(self) -> Value:
        """gtid: loaded from the outlined function's ``.global_tid.``
        implicit parameter when available, else via the runtime."""
        gtid_addr = self._find_gtid_param()
        if gtid_addr is not None:
            return self.builder.load(ir_ty.i32, gtid_addr, "gtid")
        return self.ompb.get_global_thread_num(self.builder)

    def _find_gtid_param(self) -> Value | None:
        fn = self.cgf.fn
        if fn is not None and fn.args and fn.args[0].name == "gtid.addr":
            return fn.args[0]
        return None

    def _loc(self) -> Value:
        return ConstantPointerNull()

    def _int_clause_value(
        self, expr: e.Expr | None, default: int
    ) -> int:
        if expr is None:
            return default
        value = self.cgm.evaluator.try_evaluate(expr)
        return value if value is not None else default

    # ==================================================================
    # parallel
    # ==================================================================
    def _emit_parallel(
        self,
        d: omp.OMPExecutableDirective,
        body_emitter: Optional[Callable[["CodeGenFunction"], None]],
    ) -> None:
        captured = d.captured_stmt
        if captured is None:
            raise OpenMPCodeGenError(
                "parallel directive without captured statement"
            )
        cgf = self.cgf

        # num_threads / if clauses are evaluated in the enclosing context.
        num_threads_val: Value | None = None
        nt_clause = d.get_clause(cl.OMPNumThreadsClause)
        if nt_clause is not None:
            num_threads_val = cgf.emit_expr(nt_clause.num_threads)
            if (
                isinstance(num_threads_val.type, ir_ty.IntType)
                and num_threads_val.type.bits != 32
            ):
                num_threads_val = cgf.builder.int_cast(
                    num_threads_val, ir_ty.i32, True, "nt"
                )
        if_clause = d.get_clause(cl.OMPIfClause)
        if if_clause is not None:
            # if(false) => serialized region: team of one.
            flag = cgf.emit_condition(if_clause.condition)
            one = ConstantInt(ir_ty.i32, 1)
            if num_threads_val is None:
                max_fn = self.cgm.module.add_function(
                    "omp_get_max_threads",
                    ir_ty.FunctionType(ir_ty.i32, []),
                )
                num_threads_val = cgf.builder.call(
                    max_fn, [], "maxthreads"
                )
            num_threads_val = cgf.builder.select(
                flag, num_threads_val, one, "nt.if"
            )

        # Outline the region.
        from repro.codegen.function import CodeGenFunction

        name = self.cgm.next_outlined_name(
            cgf.fn.name if cgf.fn is not None else "region"
        )
        outlined_cgf = CodeGenFunction(self.cgm)
        if body_emitter is not None:
            outlined_fn = self._emit_outlined_with(
                outlined_cgf, name, captured, body_emitter
            )
        else:
            outlined_fn = outlined_cgf.emit_outlined(
                name, captured, with_thread_ids=True
            )

        # Build the context structure of pointers to captured variables.
        context_ptr: Value = ConstantPointerNull()
        record = getattr(captured, "context_record", None)
        if record is not None and record.fields:
            struct = self.cgm.types.lower_record(record)
            context_ptr = cgf.create_alloca(struct, "omp.context")
            for index, var in enumerate(captured.captures):
                addr = cgf._emit_decl_address(var)
                field = cgf.builder.gep(
                    struct,
                    context_ptr,
                    [
                        ConstantInt(ir_ty.i64, 0),
                        ConstantInt(ir_ty.i32, index),
                    ],
                    f"ctx.{var.name}",
                )
                cgf.builder.store(addr, field)

        self.ompb.create_parallel(
            cgf.builder, outlined_fn, context_ptr, num_threads_val
        )

    def _emit_outlined_with(
        self,
        outlined_cgf: "CodeGenFunction",
        name: str,
        captured: s.CapturedStmt,
        body_emitter: Callable[["CodeGenFunction"], None],
    ):
        """Like emit_outlined, but the body is produced by *body_emitter*
        (clang's callback chaining: the `parallel` part replaces the body
        code generation function — "callback-ception", paper §1.3)."""
        fn = self.cgm.module.add_function(
            name,
            ir_ty.FunctionType(
                ir_ty.void_t, [ir_ty.ptr, ir_ty.ptr, ir_ty.ptr]
            ),
        )
        fn.args[0].name = "gtid.addr"
        fn.args[1].name = "btid.addr"
        fn.args[2].name = "context"
        outlined_cgf.fn = fn
        entry = fn.append_block("entry")
        outlined_cgf._entry_block = entry
        outlined_cgf.builder.set_insert_point(entry)
        record = getattr(captured, "context_record", None)
        if record is not None and record.fields:
            outlined_cgf.context_struct = (
                self.cgm.types.lower_record(record)
            )
            outlined_cgf.context_arg = fn.args[2]
            for index, var in enumerate(captured.captures):
                outlined_cgf.capture_fields[id(var)] = index
        for pdecl in captured.captured_decl.params:
            if pdecl.name == ".global_tid.":
                outlined_cgf.local_vars[id(pdecl)] = fn.args[0]
            elif pdecl.name == ".bound_tid.":
                outlined_cgf.local_vars[id(pdecl)] = fn.args[1]
        body_emitter(outlined_cgf)
        outlined_cgf.ensure_insert_point()
        if outlined_cgf.builder.insert_block.terminator is None:
            outlined_cgf.builder.ret()
        from repro.ir.utils import remove_unreachable_blocks

        remove_unreachable_blocks(fn)
        return fn

    # ==================================================================
    # Worksharing loops
    # ==================================================================
    def _schedule_for(
        self, d: omp.OMPExecutableDirective
    ) -> tuple[WorksharedSchedule, e.Expr | None]:
        clause = d.get_clause(cl.OMPScheduleClause)
        if clause is None:
            return WorksharedSchedule.STATIC, None
        plain, chunked = _SCHEDULE_MAP[clause.kind]
        if clause.chunk_size is not None:
            return chunked, clause.chunk_size
        return plain, None

    def _emit_worksharing(self, d: omp.OMPLoopDirective) -> None:
        if self.irbuilder_mode:
            self._emit_worksharing_irbuilder(d)
        else:
            self._emit_worksharing_legacy(d)

    # ------------------------------------------------------------------
    # Legacy (shadow AST helpers) path
    # ------------------------------------------------------------------
    def _emit_worksharing_legacy(self, d: omp.OMPLoopDirective) -> None:
        cgf = self.cgf
        helpers = d.helpers
        analyses = getattr(d, "analyses", None)
        if analyses is None or helpers.pre_init is None:
            raise OpenMPCodeGenError(
                "loop directive lacks shadow helpers"
            )
        privatizer = _Privatizer(cgf)
        privatizer.apply(d)

        # Pre-inits of consumed loop transformations were folded into the
        # captured nest; here we need the bookkeeping vars.  The captured
        # statement may be a CompoundStmt([transform pre-inits..., loop]);
        # emit everything except the loop itself.
        captured = d.captured_stmt
        nest_stmt = captured.body if captured is not None else None
        if isinstance(nest_stmt, s.CompoundStmt):
            for child in nest_stmt.statements[:-1]:
                cgf.emit_stmt(child)

        cgf.emit_stmt(helpers.pre_init)
        cgf.emit_stmt(helpers.iter_init)
        iv_decl = helpers.iteration_variable.ignore_implicit_casts().decl  # type: ignore[union-attr]
        lb_decl = helpers.lower_bound_variable.ignore_implicit_casts().decl  # type: ignore[union-attr]
        ub_decl = helpers.upper_bound_variable.ignore_implicit_casts().decl  # type: ignore[union-attr]
        stride_decl = helpers.stride_variable.ignore_implicit_casts().decl  # type: ignore[union-attr]
        last_decl = helpers.is_last_iter_variable.ignore_implicit_casts().decl  # type: ignore[union-attr]
        lb_addr = cgf.local_vars[id(lb_decl)]
        ub_addr = cgf.local_vars[id(ub_decl)]
        stride_addr = cgf.local_vars[id(stride_decl)]
        last_addr = cgf.local_vars[id(last_decl)]

        logical_ty = cgf.cgm.types.int_type_for(
            analyses[0].logical_type
        )
        suffix = "4u" if logical_ty.bits <= 32 else "8u"
        schedule, chunk_expr = self._schedule_for(d)
        nowait = d.has_clause(cl.OMPNowaitClause)
        gtid = self._thread_id()

        # Precondition guard (clang does the same): with zero iterations
        # the whole worksharing machinery is skipped — the unsigned
        # bookkeeping would otherwise wrap.
        assert cgf.fn is not None
        precond_then = cgf.fn.append_block("omp.precond.then")
        precond_end = cgf.fn.append_block("omp.precond.end")
        precond = cgf.emit_condition(helpers.precondition)
        self.builder.cond_br(precond, precond_then, precond_end)
        self.builder.set_insert_point(precond_then)

        if schedule == WorksharedSchedule.STATIC:
            init_fn = self.ompb.get_runtime_function(
                f"__kmpc_for_static_init_{suffix}"
            )
            chunk_val = ConstantInt(logical_ty, 1)
            self.builder.call(
                init_fn,
                [
                    self._loc(),
                    gtid,
                    ConstantInt(ir_ty.i32, schedule.value),
                    last_addr,
                    lb_addr,
                    ub_addr,
                    stride_addr,
                    ConstantInt(logical_ty, 1),
                    chunk_val,
                ],
            )
            cgf.emit_expr(helpers.ensure_upper_bound)
            cgf.emit_expr(helpers.init)
            self._emit_iv_loop(d, analyses, helpers)
            fini_fn = self.ompb.get_runtime_function(
                "__kmpc_for_static_fini"
            )
            self.builder.call(fini_fn, [self._loc(), gtid])
        else:
            # Chunked/dynamic/guided: dispatch loop pulling chunks.
            init_fn = self.ompb.get_runtime_function(
                f"__kmpc_dispatch_init_{suffix}"
            )
            next_fn = self.ompb.get_runtime_function(
                f"__kmpc_dispatch_next_{suffix}"
            )
            trip = cgf.emit_expr(helpers.num_iterations)
            chunk_val: Value = ConstantInt(
                logical_ty,
                self._int_clause_value(chunk_expr, 1),
            )
            self.builder.call(
                init_fn,
                [
                    self._loc(),
                    gtid,
                    ConstantInt(ir_ty.i32, schedule.value),
                    ConstantInt(logical_ty, 0),
                    self.builder.sub(
                        trip, ConstantInt(logical_ty, 1), "ub"
                    ),
                    ConstantInt(logical_ty, 1),
                    chunk_val,
                ],
            )
            assert cgf.fn is not None
            dispatch_cond = cgf.fn.append_block("omp.dispatch.cond")
            dispatch_body = cgf.fn.append_block("omp.dispatch.body")
            dispatch_end = cgf.fn.append_block("omp.dispatch.end")
            self.builder.br(dispatch_cond)
            self.builder.set_insert_point(dispatch_cond)
            more = self.builder.call(
                next_fn,
                [self._loc(), gtid, last_addr, lb_addr, ub_addr,
                 stride_addr],
                "omp.more",
            )
            has_chunk = self.builder.icmp(
                ICmpPred.NE, more, ConstantInt(ir_ty.i32, 0), "haschunk"
            )
            self.builder.cond_br(has_chunk, dispatch_body, dispatch_end)
            self.builder.set_insert_point(dispatch_body)
            cgf.emit_expr(helpers.init)  # iv = lb
            self._emit_iv_loop(d, analyses, helpers)
            self.builder.br(dispatch_cond)
            self.builder.set_insert_point(dispatch_end)

        is_last_val = self.builder.load(
            ir_ty.i32, last_addr, "omp.islast"
        )
        privatizer.emit_lastprivate_copyback(is_last_val)
        privatizer.emit_reduction_combine()
        self.builder.br(precond_end)
        self.builder.set_insert_point(precond_end)
        if not nowait:
            self.ompb.create_barrier(self.builder, gtid)
        privatizer.restore()

    def _emit_iv_loop(
        self,
        d: omp.OMPLoopDirective,
        analyses,
        helpers: omp.LoopDirectiveHelpers,
    ) -> None:
        """The inner ``while (iv <= ub)`` loop over the (chunk of the)
        logical iteration space, recomputing each user counter from the
        logical iteration number via the per-loop shadow helpers."""
        cgf = self.cgf
        assert cgf.fn is not None
        cond_bb = cgf.fn.append_block("omp.inner.for.cond")
        body_bb = cgf.fn.append_block("omp.inner.for.body")
        inc_bb = cgf.fn.append_block("omp.inner.for.inc")
        end_bb = cgf.fn.append_block("omp.inner.for.end")
        self.builder.br(cond_bb)
        self.builder.set_insert_point(cond_bb)
        cond = cgf.emit_condition(helpers.cond)
        self.builder.cond_br(cond, body_bb, end_bb)
        self.builder.set_insert_point(body_bb)

        saved: dict[int, Value | None] = {}
        for level, analysis in enumerate(analyses):
            bundle = d.loop_helpers[level]
            cgf.emit_stmt(bundle.counter_update)
            pairs = getattr(bundle, "counter_substitutions", [])
            for old_decl, new_var in pairs:
                saved.setdefault(
                    id(old_decl), cgf.local_vars.get(id(old_decl))
                )
                cgf.local_vars[id(old_decl)] = cgf.local_vars[
                    id(new_var)
                ]
                cgf.capture_fields.pop(id(old_decl), None)
        cgf._loop_targets.append((end_bb, inc_bb))
        cgf.emit_stmt(analyses[-1].body)
        cgf._loop_targets.pop()
        for key, value in saved.items():
            if value is None:
                cgf.local_vars.pop(key, None)
            else:
                cgf.local_vars[key] = value
        cgf.ensure_insert_point()
        if self.builder.insert_block.terminator is None:
            self.builder.br(inc_bb)
        self.builder.set_insert_point(inc_bb)
        cgf.emit_expr(helpers.inc)
        self.builder.br(cond_bb)
        self.builder.set_insert_point(end_bb)

    def _emit_serial_logical_loop(self, d: omp.OMPLoopDirective) -> None:
        """simd / taskloop: iterate the whole logical space serially
        (with privatization honoured)."""
        cgf = self.cgf
        privatizer = _Privatizer(cgf)
        privatizer.apply(d)
        if self.irbuilder_mode and hasattr(d, "canonical_loops"):
            clis = self._emit_canonical_nest(d)
            cli = (
                self.ompb.collapse_loops(self.builder, clis)
                if len(clis) > 1
                else clis[0]
            )
            self._position_at_block_end(cli.after)
        else:
            helpers = d.helpers
            analyses = getattr(d, "analyses")
            captured = d.captured_stmt
            nest_stmt = captured.body if captured is not None else None
            if isinstance(nest_stmt, s.CompoundStmt):
                for child in nest_stmt.statements[:-1]:
                    cgf.emit_stmt(child)
            cgf.emit_stmt(helpers.pre_init)
            cgf.emit_stmt(helpers.iter_init)
            assert cgf.fn is not None
            precond_then = cgf.fn.append_block("simd.precond.then")
            precond_end = cgf.fn.append_block("simd.precond.end")
            precond = cgf.emit_condition(helpers.precondition)
            self.builder.cond_br(precond, precond_then, precond_end)
            self.builder.set_insert_point(precond_then)
            cgf.emit_expr(helpers.init)
            self._emit_iv_loop(d, analyses, helpers)
            self.builder.br(precond_end)
            self.builder.set_insert_point(precond_end)
        # No worksharing: every "thread" does all iterations; the last
        # iteration always executes here.
        privatizer.emit_lastprivate_copyback(ConstantInt(ir_ty.i32, 1))
        privatizer.emit_reduction_combine()
        privatizer.restore()

    # ------------------------------------------------------------------
    # OpenMPIRBuilder path (paper §3.2)
    # ------------------------------------------------------------------
    def _emit_worksharing_irbuilder(
        self, d: omp.OMPLoopDirective
    ) -> None:
        cgf = self.cgf
        privatizer = _Privatizer(cgf)
        privatizer.apply(d)
        consumed = getattr(d, "consumed_transform", None)
        if consumed is not None:
            # §4 extension: apply the inner transformation at the IR
            # level and workshare the outer generated loop handle.
            cli = self._emit_consumed_transform(consumed)
        else:
            clis = self._emit_canonical_nest(d)
            cli = (
                self.ompb.collapse_loops(self.builder, clis)
                if len(clis) > 1
                else clis[0]
            )
        schedule, chunk_expr = self._schedule_for(d)
        chunk_val: Value | None = None
        if chunk_expr is not None:
            logical_ty = cli.indvar_type
            chunk_val = ConstantInt(
                logical_ty, self._int_clause_value(chunk_expr, 1)
            )
        nowait = d.has_clause(cl.OMPNowaitClause)
        self.ompb.create_workshare_loop(
            self.builder, cli, schedule, chunk_val, nowait=True
        )
        # The after block now begins with static_fini; continue there
        # (before any terminator collapse_loops may have added).
        self._position_at_block_end(cli.after)
        privatizer.emit_lastprivate_copyback(
            self._load_lastiter_flag(cli)
        )
        privatizer.emit_reduction_combine()
        if not nowait:
            self.ompb.create_barrier(self.builder)
        privatizer.restore()

    def _emit_consumed_transform(
        self, inner: omp.OMPLoopTransformationDirective
    ) -> CanonicalLoopInfo:
        """Emit an inner tile/unroll at the IR level and return the
        outermost generated loop's handle for the consumer.

        Recurses through chained consumed transformations (paper §4:
        ``unroll partial`` over ``tile`` over the literal loop), each
        level handing its generated handle to the next."""
        if isinstance(inner, omp.OMPFuseDirective):
            siblings = self._emit_canonical_sequence(inner)
            return self.ompb.fuse_loops(self.builder, siblings)
        nested = getattr(inner, "consumed_transform", None)
        if nested is not None:
            clis = [self._emit_consumed_transform(nested)]
        else:
            clis = self._emit_canonical_nest(inner)
        if isinstance(inner, omp.OMPUnrollDirective):
            partial = inner.get_clause(cl.OMPPartialClause)
            factor = (
                self._int_clause_value(partial.factor, 2)
                if partial is not None
                else 2
            )
            return self.ompb.unroll_loop_partial(
                self.builder, clis[0], factor
            )
        if isinstance(inner, omp.OMPReverseDirective):
            return self.ompb.reverse_loop(self.builder, clis[0])
        if isinstance(inner, omp.OMPInterchangeDirective):
            permutation = getattr(inner, "permutation")
            return self.ompb.interchange_loops(
                self.builder, clis, permutation
            )[0]
        assert isinstance(inner, omp.OMPTileDirective)
        sizes = getattr(inner, "tile_sizes")
        new_clis = self.ompb.tile_loops(self.builder, clis, sizes)
        return new_clis[0]

    def _load_lastiter_flag(self, cli: CanonicalLoopInfo) -> Value:
        """Load the p.lastiter alloca created by create_workshare_loop."""
        from repro.ir.instructions import AllocaInst

        for inst in cli.preheader.instructions:
            if (
                isinstance(inst, AllocaInst)
                and inst.name.startswith("p.lastiter")
            ):
                return self.builder.load(ir_ty.i32, inst, "lastiter")
        # Entry-block allocas (hoisted) — search the whole function.
        for inst in cli.function.instructions():
            if (
                isinstance(inst, AllocaInst)
                and inst.name.startswith("p.lastiter")
            ):
                return self.builder.load(ir_ty.i32, inst, "lastiter")
        return ConstantInt(ir_ty.i32, 1)

    def _emit_canonical_nest(
        self, d: omp.OMPExecutableDirective
    ) -> list[CanonicalLoopInfo]:
        """Emit the ``OMPCanonicalLoop`` nest of a directive.

        Contract with OpenMPIRBuilder: all distance functions are
        evaluated before the outermost skeleton is created, intermediate
        bodies contain only the next level, and the innermost body holds
        the user-variable updates plus the loop body.
        """
        cgf = self.cgf
        canonical_loops = getattr(d, "canonical_loops", None)
        if canonical_loops is None:
            raise OpenMPCodeGenError(
                "directive lacks OMPCanonicalLoop wrappers "
                "(irbuilder mode requires Sema in irbuilder mode too)"
            )
        # Emit any pre-init statements preceding the wrapper in the
        # associated compound (consumed transformation bookkeeping).
        associated = d.associated_stmt
        if isinstance(associated, s.CapturedStmt):
            associated = associated.captured_decl.body
        if isinstance(associated, s.CompoundStmt):
            for child in associated.statements:
                if not isinstance(child, omp.OMPCanonicalLoop):
                    cgf.emit_stmt(child)

        # Evaluate every distance function before creating any skeleton
        # (rectangular-nest contract with tile_loops/collapse_loops).
        trips = [
            self._emit_distance_fn(wrapper)
            for wrapper in canonical_loops
        ]
        clis_by_level: list[CanonicalLoopInfo] = []

        def gen_level(level: int, builder) -> None:
            cli = self.ompb.create_canonical_loop(
                builder,
                trips[level],
                None,
                name=f"omp_loop.{level}",
            )
            clis_by_level.append(cli)
            if level + 1 < len(canonical_loops):
                # Intermediate body contains exactly the next skeleton
                # (its existing `br latch` migrates into the inner
                # loop's after block during the split).
                builder.set_insert_point(cli.body, 0)
                gen_level(level + 1, builder)
            else:
                self._emit_into_body(
                    cli,
                    lambda: self._emit_innermost_body(
                        canonical_loops, clis_by_level, cli.indvar
                    ),
                )

        gen_level(0, self.builder)
        self.builder.set_insert_point(clis_by_level[0].after, 0)
        return clis_by_level

    def _emit_canonical_sequence(
        self, d: omp.OMPExecutableDirective
    ) -> list[CanonicalLoopInfo]:
        """Emit the *sibling* canonical loops of a ``fuse`` directive
        consecutively — every trip count is materialized before the
        first skeleton (so fuse_loops can take the max in the shared
        preheader), matching the shadow build_fuse pre-init order."""
        wrappers = getattr(d, "fuse_canonical_loops", None)
        if wrappers is None:
            raise OpenMPCodeGenError(
                "fuse directive lacks OMPCanonicalLoop wrappers "
                "(irbuilder mode requires Sema in irbuilder mode too)"
            )
        trips = [self._emit_distance_fn(w) for w in wrappers]
        clis: list[CanonicalLoopInfo] = []
        for k, (wrapper, trip) in enumerate(zip(wrappers, trips)):
            cli = self.ompb.create_canonical_loop(
                self.builder, trip, None, name=f"omp_seq.{k}"
            )
            self._emit_into_body(
                cli,
                lambda w=wrapper, c=cli: self._emit_innermost_body(
                    [w], [c], c.indvar
                ),
            )
            self.builder.set_insert_point(cli.after, 0)
            clis.append(cli)
        return clis

    def _position_at_block_end(self, block) -> None:
        """Continue emission after a loop transformation.

        collapse_loops terminates the transformed loop's after block with
        a branch into the original continuation block; follow that chain
        of empty pass-through branches to the final unterminated block so
        subsequent statements (and the implicit return) land correctly.
        """
        from repro.ir.instructions import BranchInst

        seen = set()
        while (
            isinstance(block.terminator, BranchInst)
            and id(block) not in seen
        ):
            seen.add(id(block))
            block = block.terminator.target
        self.builder.set_insert_point(block)

    def _emit_into_body(
        self, cli: CanonicalLoopInfo, emit: Callable[[], None]
    ) -> None:
        """Emit arbitrary (possibly multi-block) code into a skeleton's
        body: drop the placeholder ``br latch``, emit, then re-terminate
        whatever block control flow ended in with a branch to the latch.
        break/continue inside the body map to exit/latch."""
        from repro.ir.instructions import BranchInst

        cgf = self.cgf
        term = cli.body.terminator
        assert isinstance(term, BranchInst) and term.target is cli.latch
        term.erase()
        self.builder.set_insert_point(cli.body)
        cgf._loop_targets.append((cli.exit, cli.latch))
        emit()
        cgf._loop_targets.pop()
        cgf.ensure_insert_point()
        if self.builder.insert_block.terminator is None:
            self.builder.br(cli.latch)

    def _emit_distance_fn(self, wrapper: omp.OMPCanonicalLoop) -> Value:
        """Call (inline-emit) the distance function: allocate ``Result``,
        run the lambda body, load the trip count."""
        cgf = self.cgf
        distance = wrapper.distance_func
        result_param = distance.captured_decl.params[0]
        result_ty = cgf.lowered(
            ast_ty.desugar(result_param.type).type.pointee  # type: ignore[attr-defined]
        )
        slot = cgf.create_alloca(result_ty, "omp.distance.result")
        cgf.reference_bindings[id(result_param)] = slot
        cgf.emit_stmt(distance.captured_decl.body)
        cgf.reference_bindings.pop(id(result_param), None)
        return self.builder.load(result_ty, slot, "omp.tripcount")

    def _emit_innermost_body(
        self,
        canonical_loops: list[omp.OMPCanonicalLoop],
        clis: list[CanonicalLoopInfo],
        innermost_iv: Value,
    ) -> None:
        """Per level: bind private storage for the loop user variable and
        emit the user value function with ``__i`` = the level's logical
        induction variable; then emit the innermost loop body."""
        cgf = self.cgf
        overlays: dict[int, Value | None] = {}
        ref_overlays: list[int] = []
        for level, wrapper in enumerate(canonical_loops):
            iv_value: Value = (
                clis[level].indvar if level < len(clis) else innermost_iv
            )
            user_decl = wrapper.loop_var_ref.decl
            is_reference = isinstance(
                ast_ty.desugar(user_decl.type).type, ast_ty.ReferenceType
            )
            user_ty = (
                ir_ty.ptr
                if is_reference
                else cgf.lowered(wrapper.loop_var_ref.type)
            )
            storage = cgf.create_alloca(
                user_ty, f"{user_decl.name}.priv"
            )
            overlays[id(user_decl)] = cgf.local_vars.get(id(user_decl))
            cgf.local_vars[id(user_decl)] = storage
            cgf.capture_fields.pop(id(user_decl), None)

            value_fn = wrapper.loop_var_func
            params = value_fn.captured_decl.params
            result_param, i_param = params[0], params[1]
            i_ty = cgf.lowered(i_param.type)
            i_slot = cgf.create_alloca(i_ty, "omp.logical.i")
            iv_cast = iv_value
            if (
                isinstance(i_ty, ir_ty.IntType)
                and isinstance(iv_value.type, ir_ty.IntType)
                and i_ty.bits != iv_value.type.bits
            ):
                iv_cast = self.builder.int_cast(
                    iv_value, i_ty, False, "iv.cast"
                )
            self.builder.store(iv_cast, i_slot)
            overlays[id(i_param)] = cgf.local_vars.get(id(i_param))
            cgf.local_vars[id(i_param)] = i_slot
            if is_reference:
                # A by-reference loop user variable (range-for
                # `T &v : ...`) must *alias* the element: store the
                # element address into the reference slot instead of
                # copying the value.
                body = value_fn.captured_decl.body
                assert isinstance(body, s.CompoundStmt)
                assign = body.statements[0]
                assert isinstance(assign, e.BinaryOperator)
                element_addr = cgf.emit_lvalue(assign.rhs)
                self.builder.store(element_addr, storage)
            else:
                cgf.reference_bindings[id(result_param)] = storage
                ref_overlays.append(id(result_param))
                cgf.emit_stmt(value_fn.captured_decl.body)

        # The body of the innermost wrapped loop.
        loop_stmt = canonical_loops[-1].loop_stmt
        if isinstance(loop_stmt, s.ForStmt):
            body = loop_stmt.body
        elif isinstance(loop_stmt, s.CXXForRangeStmt):
            body = loop_stmt.body
            # The loop user variable declared by the range-for is the
            # private storage we just filled; bind it.
            var = loop_stmt.loop_variable
            if id(var) not in overlays:
                overlays[id(var)] = cgf.local_vars.get(id(var))
            # (already bound above: loop_var_ref.decl is this var)
        else:
            raise OpenMPCodeGenError(
                "canonical loop wraps a non-loop statement"
            )
        cgf.emit_stmt(body)
        for key in ref_overlays:
            cgf.reference_bindings.pop(key, None)
        for key, value in overlays.items():
            if value is None:
                cgf.local_vars.pop(key, None)
            else:
                cgf.local_vars[key] = value

    def emit_standalone_canonical_loop(
        self, wrapper: omp.OMPCanonicalLoop
    ) -> CanonicalLoopInfo:
        """An OMPCanonicalLoop outside any transforming directive: emit
        it as a plain canonical loop."""
        trip = self._emit_distance_fn(wrapper)
        cli = self.ompb.create_canonical_loop(
            self.builder, trip, None, name="omp_loop"
        )
        self._emit_into_body(
            cli,
            lambda: self._emit_innermost_body(
                [wrapper], [cli], cli.indvar
            ),
        )
        self.builder.set_insert_point(cli.after, 0)
        return cli

    # ==================================================================
    # Loop transformations (standalone; consumed ones are resolved by
    # Sema before reaching CodeGen)
    # ==================================================================
    def _consumed_or_canonical(
        self, d: omp.OMPExecutableDirective
    ) -> list[CanonicalLoopInfo]:
        """IRBuilder handles for *d*: the chained generated-loop handle
        when *d* consumes an inner transformation, its own canonical
        nest otherwise."""
        consumed = getattr(d, "consumed_transform", None)
        if consumed is not None:
            return [self._emit_consumed_transform(consumed)]
        return self._emit_canonical_nest(d)

    def _emit_unroll(self, d: omp.OMPUnrollDirective) -> None:
        cgf = self.cgf
        if self.irbuilder_mode:
            clis = self._consumed_or_canonical(d)
            cli = clis[0]
            cont = cli.after
            full = d.get_clause(cl.OMPFullClause)
            partial = d.get_clause(cl.OMPPartialClause)
            if full is not None:
                self.ompb.unroll_loop_full(cli)
            elif partial is not None:
                factor = self._int_clause_value(partial.factor, 2)
                self.ompb.unroll_loop_partial(self.builder, cli, factor)
            else:
                self.ompb.unroll_loop_heuristic(cli)
            self._position_at_block_end(cont)
            return
        transformed = d.get_transformed_stmt()
        if transformed is not None:
            # Partial unroll: strip-mined shadow AST; the inner loop's
            # LoopHintAttr becomes llvm.loop.unroll.count metadata.
            cgf.emit_stmt(d.pre_inits)
            cgf.emit_stmt(transformed)
            return
        # Full/heuristic standalone: no transformed AST; attach metadata
        # to the literal loop and let the mid-end LoopUnroll decide
        # (paper §2.2: "it is more efficient to defer unrolling to the
        # LoopUnroll pass ... without even tiling the loop beforehand").
        cgf.emit_stmt(d.pre_inits)
        full = d.has_clause(cl.OMPFullClause)
        cgf._pending_loop_metadata = loop_metadata(
            unroll_full=full, unroll_enable=not full
        )
        analysis = getattr(d, "analysis", None)
        loop = (
            analysis.loop_stmt
            if analysis is not None
            else d.associated_stmt
        )
        cgf.emit_stmt(loop)

    def _emit_tile(self, d: omp.OMPTileDirective) -> None:
        cgf = self.cgf
        if self.irbuilder_mode:
            clis = self._consumed_or_canonical(d)
            cont = clis[0].after
            sizes = getattr(d, "tile_sizes")
            self.ompb.tile_loops(self.builder, clis, sizes)
            self._position_at_block_end(cont)
            return
        transformed = d.get_transformed_stmt()
        if transformed is None:
            raise OpenMPCodeGenError(
                "tile directive without transformed statement"
            )
        # "If encountering a non-associated tile construct, CodeGen will
        # simply emit the transformed AST in its place" (paper §2.2).
        cgf.emit_stmt(d.pre_inits)
        cgf.emit_stmt(transformed)

    def _emit_reverse(self, d) -> None:
        """OpenMP 6.0 ``reverse`` — §4 extension."""
        cgf = self.cgf
        if self.irbuilder_mode:
            clis = self._consumed_or_canonical(d)
            cont = clis[0].after
            self.ompb.reverse_loop(self.builder, clis[0])
            self._position_at_block_end(cont)
            return
        transformed = d.get_transformed_stmt()
        assert transformed is not None
        cgf.emit_stmt(d.pre_inits)
        cgf.emit_stmt(transformed)

    def _emit_fuse(self, d: omp.OMPFuseDirective) -> None:
        """OpenMP 6.0 ``fuse`` — §4 extension over loop *sequences*."""
        cgf = self.cgf
        if self.irbuilder_mode:
            clis = self._emit_canonical_sequence(d)
            fused = self.ompb.fuse_loops(self.builder, clis)
            self._position_at_block_end(fused.after)
            return
        transformed = d.get_transformed_stmt()
        assert transformed is not None
        cgf.emit_stmt(d.pre_inits)
        cgf.emit_stmt(transformed)

    def _emit_interchange(self, d) -> None:
        """OpenMP 6.0 ``interchange`` — §4 extension."""
        cgf = self.cgf
        if self.irbuilder_mode:
            clis = self._emit_canonical_nest(d)
            cont = clis[0].after
            permutation = getattr(d, "permutation")
            self.ompb.interchange_loops(
                self.builder, clis, permutation
            )
            self._position_at_block_end(cont)
            return
        transformed = d.get_transformed_stmt()
        assert transformed is not None
        cgf.emit_stmt(d.pre_inits)
        cgf.emit_stmt(transformed)

    # ==================================================================
    # master / single / critical
    # ==================================================================
    def _emit_guarded(
        self,
        d: omp.OMPExecutableDirective,
        runtime_name: str,
        barrier_after: bool,
    ) -> None:
        cgf = self.cgf
        assert cgf.fn is not None
        gtid = self._thread_id()
        guard_fn = self.ompb.get_runtime_function(runtime_name)
        flag = self.builder.call(
            guard_fn, [self._loc(), gtid], "guard"
        )
        taken = self.builder.icmp(
            ICmpPred.NE, flag, ConstantInt(ir_ty.i32, 0), "guard.bool"
        )
        then_bb = cgf.fn.append_block("omp.guard.then")
        end_bb = cgf.fn.append_block("omp.guard.end")
        self.builder.cond_br(taken, then_bb, end_bb)
        self.builder.set_insert_point(then_bb)
        cgf.emit_stmt(d.associated_stmt)
        end_fn = self.ompb.get_runtime_function(
            runtime_name.replace("__kmpc_", "__kmpc_end_")
        )
        self.builder.call(end_fn, [self._loc(), gtid])
        self.builder.br(end_bb)
        self.builder.set_insert_point(end_bb)
        if barrier_after:
            self.ompb.create_barrier(self.builder, gtid)

    def _emit_critical(self, d: omp.OMPCriticalDirective) -> None:
        name = d.name or "unnamed"
        self.ompb.create_critical(
            self.builder,
            lambda builder: self.cgf.emit_stmt(d.associated_stmt),
            name,
        )
