"""AST type -> IR type lowering."""

from __future__ import annotations

from repro.astlib.context import ASTContext
from repro.astlib import types as ast_ty
from repro.ir import types as ir_ty


class TypeLowering:
    """Converts :class:`QualType` to IR types using the LP64 layout."""

    def __init__(self, ctx: ASTContext) -> None:
        self.ctx = ctx
        self._struct_cache: dict[int, ir_ty.StructType] = {}
        self._anon_count = 0

    def lower(self, qt: ast_ty.QualType) -> ir_ty.IRType:
        ty = ast_ty.desugar(qt).type
        if isinstance(ty, ast_ty.BuiltinType):
            return self._lower_builtin(ty)
        if isinstance(ty, (ast_ty.PointerType, ast_ty.ReferenceType)):
            return ir_ty.ptr
        if isinstance(ty, ast_ty.ConstantArrayType):
            return ir_ty.ArrayType(self.lower(ty.element), ty.size)
        if isinstance(ty, ast_ty.IncompleteArrayType):
            return ir_ty.ptr
        if isinstance(ty, ast_ty.EnumType):
            return ir_ty.i32
        if isinstance(ty, ast_ty.RecordType):
            return self.lower_record(ty.decl)
        if isinstance(ty, ast_ty.FunctionType):
            return self.lower_function(ty)
        raise NotImplementedError(f"cannot lower {ty.spelling()}")

    def _lower_builtin(self, ty: ast_ty.BuiltinType) -> ir_ty.IRType:
        kind = ty.kind
        if kind == ast_ty.BuiltinKind.VOID:
            return ir_ty.void_t
        if kind == ast_ty.BuiltinKind.FLOAT:
            return ir_ty.float_t
        if kind == ast_ty.BuiltinKind.DOUBLE:
            return ir_ty.double_t
        if kind == ast_ty.BuiltinKind.BOOL:
            return ir_ty.i8  # C bool occupies one byte in memory
        return ir_ty.IntType(ty.width)

    def lower_record(self, decl) -> ir_ty.StructType:
        cached = self._struct_cache.get(id(decl))
        if cached is not None:
            return cached
        # Use the ASTContext's layout so offsets agree with sizeof().
        self.ctx._record_layout(decl)
        elements = [self.lower(f.type) for f in decl.fields]
        offsets = [
            (f.offset_bits or 0) // 8 for f in decl.fields
        ]
        size_bits, _ = self.ctx._record_layout(decl)
        # Anonymous records are numbered per module in lowering order:
        # names must be a deterministic function of the source alone
        # (decl.node_id is a process-global counter, which would make
        # IR bytes depend on compile history — the compilation cache's
        # byte-identity contract forbids that).
        if decl.name:
            name = decl.name
        else:
            name = f"anon.{self._anon_count}"
            self._anon_count += 1
        struct = ir_ty.StructType(
            elements,
            name=name,
            offsets=offsets,
            size=size_bits // 8,
        )
        self._struct_cache[id(decl)] = struct
        return struct

    def lower_function(
        self, ty: ast_ty.FunctionType
    ) -> ir_ty.FunctionType:
        params = [self.lower(p) for p in ty.params]
        return ir_ty.FunctionType(
            self.lower(ty.return_type), params, ty.is_variadic
        )

    # Convenience ---------------------------------------------------------
    def int_type_for(self, qt: ast_ty.QualType) -> ir_ty.IntType:
        lowered = self.lower(qt)
        assert isinstance(lowered, ir_ty.IntType)
        return lowered

    def is_signed(self, qt: ast_ty.QualType) -> bool:
        return ast_ty.desugar(qt).is_signed_integer()
