"""CodeGen layer (paper Fig. 1): AST -> IR.

Implements the "early outlining" approach of Clang's OpenMP support
(paper §1): OpenMP semantics are fully lowered here; the produced IR
contains no OpenMP constructs, only calls to the (simulated) OpenMP
runtime.  Two OpenMP code-generation paths exist, selected by
``enable_irbuilder`` (clang's ``-fopenmp-enable-irbuilder``):

* the **legacy path** consumes the shadow AST: ``OMPLoopDirective``'s
  helper expressions drive worksharing, and loop transformations emit
  their transformed statements (paper §2.2);
* the **OpenMPIRBuilder path** emits ``OMPCanonicalLoop`` wrappers through
  :class:`repro.ompirbuilder.OpenMPIRBuilder` (paper §3.2).
"""

from repro.codegen.module import CodeGenModule, CodeGenOptions

__all__ = ["CodeGenModule", "CodeGenOptions"]
