"""CodeGenModule: translation-unit level IR generation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.astlib import exprs as e
from repro.astlib import types as ast_ty
from repro.astlib.context import ASTContext
from repro.astlib.decls import FunctionDecl, TranslationUnitDecl, VarDecl
from repro.codegen.types import TypeLowering
from repro.core.crash_recovery import (
    format_location,
    pretty_stack_entry,
    recovery_scope,
)
from repro.diagnostics import DiagnosticsEngine
from repro.instrument.faultinject import FAULTS
from repro.ir import (
    ConstantFP,
    ConstantInt,
    Function,
    GlobalVariable,
    Module,
)
from repro.instrument import get_statistic, time_trace_scope
from repro.ir import types as ir_ty
from repro.ompirbuilder import OpenMPIRBuilder
from repro.sema.expr_eval import IntExprEvaluator

_FUNCTIONS_EMITTED = get_statistic(
    "codegen", "functions-emitted", "Function bodies lowered to IR"
)
_INSTRUCTIONS_EMITTED = get_statistic(
    "codegen",
    "instructions-emitted",
    "IR instructions present after function emission",
)


@dataclass
class CodeGenOptions:
    """Code-generation configuration (driver flags)."""

    #: clang's -fopenmp-enable-irbuilder: use the OpenMPIRBuilder /
    #: OMPCanonicalLoop path instead of the shadow-AST path (paper §3)
    enable_irbuilder: bool = False
    #: emit llvm.loop metadata for loop hints (always on in clang)
    emit_loop_metadata: bool = True
    module_name: str = "module"


class CodeGenModule:
    def __init__(
        self,
        ast_ctx: ASTContext,
        diags: DiagnosticsEngine,
        options: CodeGenOptions | None = None,
    ) -> None:
        self.ast_ctx = ast_ctx
        self.diags = diags
        self.options = options or CodeGenOptions()
        self.module = Module(self.options.module_name)
        self.types = TypeLowering(ast_ctx)
        self.ompbuilder = OpenMPIRBuilder(
            self.module, remarks=diags.remarks
        )
        self.evaluator = IntExprEvaluator(ast_ctx)
        self._functions: dict[int, Function] = {}
        self._globals: dict[int, GlobalVariable] = {}
        self._strings: dict[str, GlobalVariable] = {}
        self._outline_counter = 0

    # ------------------------------------------------------------------
    def emit_translation_unit(
        self, tu: TranslationUnitDecl
    ) -> Module:
        with time_trace_scope("CodeGen", self.options.module_name):
            for decl in tu.declarations:
                if isinstance(decl, VarDecl):
                    self.get_global(decl)
            for decl in tu.declarations:
                if isinstance(decl, FunctionDecl):
                    self.get_function(decl)
            for decl in tu.declarations:
                if isinstance(decl, FunctionDecl) and decl.is_definition:
                    from repro.codegen.function import CodeGenFunction

                    loc_text = format_location(
                        self.diags.source_manager, decl.location
                    )
                    # Per-function crash recovery: one crashing body
                    # costs one ICE diagnostic, the other functions of
                    # the TU still lower.
                    with recovery_scope(
                        "codegen-function",
                        self.diags,
                        recover=True,
                        location=decl.location,
                    ), pretty_stack_entry(
                        f"emitting IR for function '{decl.name}' "
                        f"at {loc_text}"
                    ), time_trace_scope(
                        "CodeGen.Function", decl.name
                    ):
                        if FAULTS.armed:
                            FAULTS.hit("codegen-function")
                        CodeGenFunction(self).emit_function(decl)
                    _FUNCTIONS_EMITTED.inc()
        _INSTRUCTIONS_EMITTED.inc(
            sum(
                len(block.instructions)
                for fn in self.module.functions.values()
                for block in fn.blocks
            )
        )
        return self.module

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def get_function(self, decl: FunctionDecl) -> Function:
        fn = self._functions.get(id(decl))
        if fn is None:
            fn_type = self.types.lower_function(
                ast_ty.desugar(decl.type).type  # type: ignore[arg-type]
            )
            fn = self.module.add_function(decl.name, fn_type)
            for arg, param in zip(fn.args, decl.params):
                arg.name = param.name
            self._functions[id(decl)] = fn
        return fn

    def next_outlined_name(self, base: str) -> str:
        self._outline_counter += 1
        return f"{base}.omp_outlined.{self._outline_counter}"

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------
    def get_global(self, decl: VarDecl) -> GlobalVariable:
        gv = self._globals.get(id(decl))
        if gv is not None:
            return gv
        value_type = self.types.lower(decl.type)
        gv = self.module.add_global(
            self.module.unique_global_name(decl.name),
            value_type,
            is_constant=decl.type.is_const,
        )
        self._globals[id(decl)] = gv
        if decl.init is not None:
            self._emit_global_initializer(gv, decl, value_type)
        return gv

    def _emit_global_initializer(
        self,
        gv: GlobalVariable,
        decl: VarDecl,
        value_type: ir_ty.IRType,
    ) -> None:
        init = decl.init
        assert init is not None
        if isinstance(init, e.InitListExpr) and isinstance(
            value_type, ir_ty.ArrayType
        ):
            elem = value_type.element
            payload = bytearray(value_type.size_bytes())
            import struct as _s

            for i, item in enumerate(init.inits[: value_type.count]):
                value = self._constant_scalar(item)
                offset = i * elem.size_bytes()
                payload[offset : offset + elem.size_bytes()] = (
                    self._pack_scalar(elem, value)
                )
            gv.initializer_bytes = bytes(payload)
            return
        value = self._constant_scalar(init)
        if isinstance(value_type, ir_ty.IntType):
            gv.initializer = ConstantInt(value_type, int(value))
        elif isinstance(value_type, ir_ty.FloatType):
            gv.initializer = ConstantFP(value_type, float(value))
        else:
            self.diags.warning(
                f"unsupported global initializer for '{decl.name}'; "
                "zero-initializing",
                decl.location,
            )

    def _constant_scalar(self, expr: e.Expr):
        stripped = expr.ignore_implicit_casts()
        if isinstance(stripped, e.FloatingLiteral):
            return stripped.value
        if isinstance(
            expr, e.ImplicitCastExpr
        ) and expr.cast_kind == e.CastKind.INTEGRAL_TO_FLOATING:
            inner = self.evaluator.try_evaluate(expr.sub_expr)
            if inner is not None:
                return float(inner)
        folded = self.evaluator.try_evaluate(expr)
        if folded is not None:
            return folded
        if isinstance(stripped, e.UnaryOperator) and isinstance(
            stripped.sub_expr.ignore_implicit_casts(),
            e.FloatingLiteral,
        ):
            inner_value = stripped.sub_expr.ignore_implicit_casts().value
            if stripped.opcode == e.UnaryOperatorKind.MINUS:
                return -inner_value
            return inner_value
        self.diags.error(
            "initializer element is not a compile-time constant",
            expr.location,
        )
        return 0

    @staticmethod
    def _pack_scalar(ty: ir_ty.IRType, value) -> bytes:
        import struct as _s

        if isinstance(ty, ir_ty.IntType):
            return int(value).to_bytes(
                ty.size_bytes(), "little", signed=False
            ) if value >= 0 else (
                (value + (1 << (8 * ty.size_bytes()))).to_bytes(
                    ty.size_bytes(), "little", signed=False
                )
            )
        if isinstance(ty, ir_ty.FloatType):
            return _s.pack("<f" if ty.bits == 32 else "<d", float(value))
        raise NotImplementedError(str(ty))

    # ------------------------------------------------------------------
    # String literals
    # ------------------------------------------------------------------
    def get_string_literal(self, text: str) -> GlobalVariable:
        gv = self._strings.get(text)
        if gv is None:
            payload = text.encode("utf-8") + b"\x00"
            name = self.module.unique_global_name(".str")
            gv = self.module.add_global(
                name,
                ir_ty.ArrayType(ir_ty.i8, len(payload)),
                is_constant=True,
            )
            gv.initializer_bytes = payload
            self._strings[text] = gv
        return gv

    # ------------------------------------------------------------------
    # External declarations referenced by name (builtins)
    # ------------------------------------------------------------------
    def declare_external(
        self, name: str, fn_type: ir_ty.FunctionType
    ) -> Function:
        return self.module.add_function(name, fn_type)
