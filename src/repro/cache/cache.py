"""The two-tier compilation cache.

:class:`CompilationCache` fronts an in-memory LRU tier
(:mod:`repro.cache.lru`) with an optional on-disk content-addressed
tier (:mod:`repro.cache.disk`).  Three namespaces share the tiers:

* **artifacts** — per-stage compile products (IR text + rendered
  diagnostics) under their chained stage key;
* **aliases** — exact-request key → final artifact key, the fast path
  for byte-identical repeats;
* **responses** — terminal service responses under the request
  fingerprint (``miniclang-serve``'s memoized answers); degraded
  results live under a ``#degraded``-tagged key so they can never be
  confused with a primary-path result.

A fourth, memory-only namespace memoizes **live IR modules** keyed by
the codegen-stage key: they cannot cross a process boundary (no IR
parser exists to resurrect them from text) but within a process they
let an ``-O`` flag flip resume at the mid-end instead of re-running
the front end.  Callers receive a deep copy — pass pipelines mutate in
place and must never corrupt the memoized original.

Every operation feeds the ``cache.*`` statistics registry and opens a
time-trace span, so ``-print-cache-stats`` / ``-ftime-trace`` show the
cache working.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cache.disk import DiskTier
from repro.cache.lru import LRUTier
from repro.instrument.stats import get_statistic
from repro.instrument.timetrace import time_trace_scope

HITS = get_statistic("cache", "hits", "Cache lookups served (any tier)")
MISSES = get_statistic("cache", "misses", "Cache lookups that missed")
STORES = get_statistic("cache", "stores", "Entries written to the cache")
EVICTIONS = get_statistic(
    "cache", "evictions", "Entries evicted (LRU or disk byte budget)"
)
MEMORY_HITS = get_statistic(
    "cache", "memory-hits", "Lookups served by the in-memory LRU tier"
)
DISK_HITS = get_statistic(
    "cache", "disk-hits", "Lookups served by the on-disk tier"
)
BYTES_WRITTEN = get_statistic(
    "cache", "bytes-written", "Bytes written to the on-disk tier"
)
BYTES_READ = get_statistic(
    "cache", "bytes-read", "Artifact bytes served from the cache"
)
STAGE_RESUMES = get_statistic(
    "cache",
    "stage-resumes",
    "Compilations resumed downstream of a memoized stage",
)
MODULE_REUSES = get_statistic(
    "cache",
    "module-reuses",
    "Mid-end runs fed from a memoized unoptimized module",
)
FUNCTION_HITS = get_statistic(
    "cache",
    "codegen-function-hits",
    "Per-function codegen results found unchanged across compiles",
)
RESPONSE_HITS = get_statistic(
    "cache", "response-hits", "Service responses served from the cache"
)
DEGRADED_HITS = get_statistic(
    "cache",
    "degraded-hits",
    "Service responses served from a degraded-tagged cache key",
)
SINGLE_FLIGHT_COLLAPSES = get_statistic(
    "cache",
    "single-flight-collapses",
    "Concurrent identical requests coalesced onto one execution",
)

#: suffix tagging cache keys of degraded (fallback-representation)
#: results — never interchangeable with the primary key
DEGRADED_KEY_SUFFIX = "#degraded"


def degraded_key(key: str) -> str:
    return key + DEGRADED_KEY_SUFFIX


@dataclass
class CachedCompile:
    """What :func:`repro.pipeline.compile_source_cached` returns.

    ``hit`` means the final artifact came straight from the cache;
    ``resumed_from`` names the deepest memoized stage that let the
    compile skip upstream work (``"exact"`` — byte-identical request,
    ``"tokens"`` — identical post-preprocess stream, ``"module"`` —
    memoized unoptimized module fed the mid-end, ``None`` — cold).
    """

    ir_text: str
    diagnostics_text: str
    key: str
    hit: bool
    resumed_from: Optional[str] = None
    origin: str = "compiled"  # "memory" | "disk" | "compiled"
    stage_keys: dict[str, str] = field(default_factory=dict)


class CompilationCache:
    """Two-tier cache; ``directory=None`` keeps it memory-only."""

    def __init__(
        self,
        directory: Optional[str] = None,
        max_entries: int = 1024,
        max_memory_bytes: int = 64 * 1024 * 1024,
        max_disk_bytes: int = 256 * 1024 * 1024,
        durable: bool = False,
    ) -> None:
        self.directory = directory
        self.memory = LRUTier(max_entries, max_memory_bytes)
        self.modules = LRUTier(max_entries)
        self.disk: Optional[DiskTier] = (
            DiskTier(directory, max_disk_bytes, durable=durable)
            if directory
            else None
        )

    # ------------------------------------------------------------------
    # Artifacts (namespaced dict payloads)
    # ------------------------------------------------------------------
    def _get(self, namespace: str, key: str) -> Optional[dict]:
        qualified = f"{namespace}:{key}"
        with time_trace_scope("CacheLookup", f"{namespace} {key[:12]}"):
            obj = self.memory.get(qualified)
            if obj is not None:
                HITS.inc()
                MEMORY_HITS.inc()
                BYTES_READ.inc(self._size_of(obj))
                return obj
            if self.disk is not None:
                before = self.disk.evictions
                obj = self.disk.get(qualified)
                EVICTIONS.inc(self.disk.evictions - before)
                if obj is not None:
                    HITS.inc()
                    DISK_HITS.inc()
                    BYTES_READ.inc(self._size_of(obj))
                    # promote so the next lookup is a memory hit
                    EVICTIONS.inc(
                        self.memory.put(
                            qualified, obj, self._size_of(obj)
                        )
                    )
                    return obj
        MISSES.inc()
        return None

    def _put(self, namespace: str, key: str, obj: dict) -> None:
        qualified = f"{namespace}:{key}"
        with time_trace_scope("CacheStore", f"{namespace} {key[:12]}"):
            STORES.inc()
            EVICTIONS.inc(
                self.memory.put(qualified, obj, self._size_of(obj))
            )
            if self.disk is not None:
                before = self.disk.evictions
                BYTES_WRITTEN.inc(self.disk.put(qualified, obj))
                EVICTIONS.inc(self.disk.evictions - before)

    @staticmethod
    def _size_of(obj: dict) -> int:
        return sum(
            len(value) for value in obj.values() if isinstance(value, str)
        )

    def get_artifact(self, key: str) -> Optional[dict]:
        return self._get("artifact", key)

    def put_artifact(self, key: str, artifact: dict) -> None:
        self._put("artifact", key, artifact)

    def get_response(self, key: str) -> Optional[dict]:
        obj = self._get("response", key)
        if obj is not None:
            RESPONSE_HITS.inc()
        return obj

    def put_response(self, key: str, response: dict) -> None:
        self._put("response", key, response)

    # ------------------------------------------------------------------
    # Aliases (exact request identity -> final artifact key)
    # ------------------------------------------------------------------
    def get_alias(self, key: str) -> Optional[str]:
        qualified = f"alias:{key}"
        target = self.memory.get(qualified)
        if isinstance(target, str):
            return target
        if self.disk is not None:
            target = self.disk.get_alias(key)
            if target is not None:
                self.memory.put(qualified, target, len(target))
                return target
        return None

    def put_alias(self, key: str, target: str) -> None:
        self.memory.put(f"alias:{key}", target, len(target))
        if self.disk is not None:
            self.disk.put_alias(key, target)

    # ------------------------------------------------------------------
    # Live-module memo (memory only, deep-copied on the way out)
    # ------------------------------------------------------------------
    def get_module(self, key: str) -> Optional[Any]:
        module = self.modules.get(f"module:{key}")
        if module is None:
            return None
        MODULE_REUSES.inc()
        with time_trace_scope("CacheModuleClone", key[:12]):
            return copy.deepcopy(module)

    def put_module(self, key: str, module: Any) -> None:
        self.modules.put(f"module:{key}", module)

    def has_function(self, key: str) -> bool:
        return f"fn:{key}" in self.memory

    def put_function(self, key: str, ir_text: str) -> None:
        EVICTIONS.inc(
            self.memory.put(f"fn:{key}", {"ir": ir_text}, len(ir_text))
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        bits = [
            f"memory-entries={len(self.memory)}",
            f"memory-bytes={self.memory.bytes}",
            f"module-memos={len(self.modules)}",
        ]
        if self.disk is not None:
            bits.append(f"dir={self.directory}")
            bits.append(f"disk-bytes={self.disk.bytes}")
            if self.disk.durable:
                bits.append("durable=1")
            if self.disk.write_disabled:
                bits.append("disk-writes=disabled")
        else:
            bits.append("dir=<memory-only>")
        return "cache: " + " ".join(bits)
