"""Self-verifying storage envelopes for the on-disk cache tier.

Every file the disk tier writes — artifacts, aliases, service state
snapshots — is a JSON *envelope* carrying a SHA-256 over the canonical
serialization of its payload::

    {"format": 2, "sha256": "<hex>", "payload": {...}}

Reads recompute the digest and compare; a mismatch (bit rot, a torn
write that slipped past ``os.replace``, a partial copy, an editor
mangling the file) raises :class:`IntegrityError` so the caller can
treat the entry as *corrupt* — delete it and report a miss — rather
than deserializing garbage and serving wrong bytes.  This is ccache's
file-integrity checking applied to every stored object, with the
digest stored inline instead of in the filename so alias files (whose
names are request keys, not content addresses) get the same protection.

The digest is computed over compact sorted-key JSON — the exact
canonical form :mod:`repro.cache.key` hashes — so sealing is
deterministic across processes and interpreter restarts.
"""

from __future__ import annotations

import hashlib
import json
from typing import Union

from repro.cache.key import CACHE_FORMAT_VERSION


class IntegrityError(Exception):
    """The stored envelope is unreadable, mismatched, or truncated."""


def _canonical(payload: object) -> str:
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
    )


def payload_digest(payload: object) -> str:
    """SHA-256 hex digest of the canonical payload serialization."""
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def seal(payload: object) -> str:
    """Wrap *payload* in a checksummed envelope, ready for disk."""
    return json.dumps(
        {
            "format": CACHE_FORMAT_VERSION,
            "sha256": payload_digest(payload),
            "payload": payload,
        },
        sort_keys=True,
        ensure_ascii=False,
    )


def unseal(data: Union[bytes, str]) -> object:
    """Verify and unwrap one envelope; raises :class:`IntegrityError`
    on any defect — undecodable bytes, malformed JSON, a foreign format
    version, a missing digest, or a digest mismatch."""
    if isinstance(data, bytes):
        try:
            data = data.decode("utf-8")
        except UnicodeDecodeError as err:
            raise IntegrityError(f"undecodable bytes: {err}") from None
    try:
        envelope = json.loads(data)
    except ValueError as err:
        raise IntegrityError(f"malformed envelope: {err}") from None
    if not isinstance(envelope, dict):
        raise IntegrityError("envelope is not an object")
    if envelope.get("format") != CACHE_FORMAT_VERSION:
        raise IntegrityError(
            f"format version {envelope.get('format')!r} != "
            f"{CACHE_FORMAT_VERSION}"
        )
    digest = envelope.get("sha256")
    if not isinstance(digest, str):
        raise IntegrityError("missing sha256 digest")
    if "payload" not in envelope:
        raise IntegrityError("missing payload")
    payload = envelope["payload"]
    actual = payload_digest(payload)
    if actual != digest:
        raise IntegrityError(
            f"digest mismatch: stored {digest[:12]}..., "
            f"recomputed {actual[:12]}..."
        )
    return payload
