"""Content-addressed compilation cache with per-stage memoization.

The ccache / ThinLTO-incremental-cache / clangd-preamble analogue for
the reproduction's pipeline: compile products are addressed by a
SHA-256 of canonicalized source + flags + stage + format version, kept
in an in-memory LRU tier over an optional shared on-disk store, and
memoized at every pipeline stage boundary so a changed input only
re-runs the stages downstream of the first divergence.

Public surface::

    from repro.cache import CompilationCache
    from repro.pipeline import compile_source_cached

    cache = CompilationCache(".miniclang-cache")
    cc = compile_source_cached(source, cache, optimize=True)
    cc.ir_text           # byte-identical to a cold compile
    cc.hit               # True on the warm path

The service layer adds single-flight request dedup on top
(:mod:`repro.cache.singleflight`) and memoizes terminal responses per
request fingerprint; see :mod:`repro.service.service`.
"""

from repro.cache.cache import (
    DEGRADED_KEY_SUFFIX,
    CachedCompile,
    CompilationCache,
    degraded_key,
)
from repro.cache.disk import DiskTier
from repro.cache.integrity import (
    IntegrityError,
    payload_digest,
    seal,
    unseal,
)
from repro.cache.key import (
    CACHE_FORMAT_VERSION,
    canonicalize_flag_tokens,
    canonicalize_source,
    define_items,
    request_fingerprint,
    source_id,
    stage_key,
    token_stream_text,
)
from repro.cache.lru import LRUTier
from repro.cache.singleflight import InflightTable

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CachedCompile",
    "CompilationCache",
    "DEGRADED_KEY_SUFFIX",
    "DiskTier",
    "InflightTable",
    "IntegrityError",
    "LRUTier",
    "canonicalize_flag_tokens",
    "canonicalize_source",
    "define_items",
    "degraded_key",
    "payload_digest",
    "request_fingerprint",
    "seal",
    "source_id",
    "stage_key",
    "token_stream_text",
    "unseal",
]
