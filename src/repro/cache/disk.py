"""The on-disk content-addressed tier.

Layout (ccache-style two-level fan-out under the cache directory)::

    DIR/
      CACHEDIR.TAG                  # marks the tree as disposable
      format                        # human-readable format stamp
      objects/ab/abcdef....json     # one sealed artifact per content key
      aliases/12/1234....           # exact-request key -> content key

Writes are atomic (temp file + ``os.replace``) so concurrent readers —
service workers share one directory — never observe a torn entry, and
a duplicate write from two racing processes converges on identical
bytes anyway because keys are content addresses.  Every file is a
checksummed envelope (:mod:`repro.cache.integrity`): reads verify the
SHA-256 before deserializing, so a truncated or bit-rotted entry is
*detected* (``cache.corrupt-entries``), deleted (self-healing), and
reported as a miss — never served.  A cache must degrade to "slower",
not "broken", and above all never to "wrong bytes".

Write failures are classified by errno instead of being swallowed:
ENOSPC / EROFS / EACCES disable the disk tier (memory-only operation,
``cache.disk-disabled``) with a one-time diagnostic per class and a
periodic re-probe that re-enables it once the condition clears.  With
``durable=True`` (driver flag ``-fcache-durable``) data and directory
are fsynced before/after the rename — SQLite's atomic-commit ordering
— so entries survive power loss, not just process death.

Eviction is size-triggered: when a put grows the tree past
``max_bytes``, the oldest entries by mtime go first (reads refresh
mtime, making this an approximate LRU across processes).

The deterministic ``storage-*`` fault-injection sites live here, as an
I/O shim under the normal code paths; their :class:`InjectedFault` is
converted into the simulated physical condition inside this module and
never escapes it.
"""

from __future__ import annotations

import errno
import os
import sys
import tempfile
import time
from typing import Callable, Optional

from repro.cache.integrity import IntegrityError, seal, unseal
from repro.cache.key import CACHE_FORMAT_VERSION
from repro.instrument.faultinject import FAULTS, InjectedFault
from repro.instrument.stats import get_statistic

_FORMAT_STAMP = f"miniclang-cache format {CACHE_FORMAT_VERSION}\n"
_CACHEDIR_TAG = (
    "Signature: 8a477f597d28d172789f06886806bc55\n"
    "# This directory is a miniclang compilation cache.\n"
)

_CORRUPT_ENTRIES = get_statistic(
    "cache",
    "corrupt-entries",
    "Corrupt/truncated disk entries detected, deleted, not served",
)
_DISK_WRITE_ERRORS = get_statistic(
    "cache", "disk-write-errors", "Disk-tier writes that failed"
)
_DISK_ENOSPC = get_statistic(
    "cache", "disk-enospc", "Disk-tier writes failed with ENOSPC"
)
_DISK_READONLY = get_statistic(
    "cache", "disk-readonly", "Disk-tier writes failed with EROFS"
)
_DISK_DENIED = get_statistic(
    "cache", "disk-denied", "Disk-tier writes failed with EACCES/EPERM"
)
_DISK_DISABLED = get_statistic(
    "cache",
    "disk-disabled",
    "Times the disk tier degraded to memory-only operation",
)
_DISK_REPROBES = get_statistic(
    "cache",
    "disk-reprobes",
    "Write probes attempted while the disk tier was disabled",
)
_DISK_REENABLED = get_statistic(
    "cache",
    "disk-reenabled",
    "Times a re-probe brought the disk tier back online",
)
_DISK_READ_ERRORS = get_statistic(
    "cache",
    "disk-read-errors",
    "Disk-tier reads that failed for reasons other than absence",
)

#: errno values that disable the tier until a re-probe succeeds; any
#: other write error is counted but treated as transient.
_DISABLING_ERRNOS = {
    errno.ENOSPC: ("enospc", _DISK_ENOSPC, "filesystem full"),
    errno.EDQUOT: ("enospc", _DISK_ENOSPC, "disk quota exceeded"),
    errno.EROFS: ("readonly", _DISK_READONLY, "read-only filesystem"),
    errno.EACCES: ("denied", _DISK_DENIED, "permission denied"),
    errno.EPERM: ("denied", _DISK_DENIED, "permission denied"),
}


def _default_diagnostic(message: str) -> None:
    print(f"miniclang: warning: {message}", file=sys.stderr)


class DiskTier:
    """Content-addressed store rooted at *directory*."""

    #: seconds a degraded tier waits before letting a put re-probe
    REPROBE_INTERVAL_S = 30.0

    def __init__(
        self,
        directory: str,
        max_bytes: int = 256 * 1024 * 1024,
        *,
        durable: bool = False,
        clock: Callable[[], float] = time.monotonic,
        diagnostic: Callable[[str], None] = _default_diagnostic,
    ) -> None:
        self.directory = directory
        self.max_bytes = max_bytes
        self.durable = durable
        self._clock = clock
        self._diagnostic = diagnostic
        self._objects = os.path.join(directory, "objects")
        self._aliases = os.path.join(directory, "aliases")
        #: total entries dropped by the byte-budget eviction sweep
        self.evictions = 0
        #: monotonic time at which a put may re-probe; None = healthy
        self._reprobe_at: Optional[float] = None
        #: error classes already surfaced via a diagnostic
        self._reported: set[str] = set()
        try:
            os.makedirs(self._objects, exist_ok=True)
            os.makedirs(self._aliases, exist_ok=True)
        except OSError as err:
            # A read-only (or otherwise unwritable) store is still
            # readable; degrade writes immediately instead of raising.
            self._note_write_error(err, self.directory)
        else:
            self._stamp()

    def _stamp(self) -> None:
        for name, text in (
            ("format", _FORMAT_STAMP),
            ("CACHEDIR.TAG", _CACHEDIR_TAG),
        ):
            path = os.path.join(self.directory, name)
            if not os.path.exists(path):
                try:
                    self._atomic_write(path, text)
                except OSError as err:
                    self._note_write_error(err, path)

    # -- health --------------------------------------------------------
    @property
    def write_disabled(self) -> bool:
        """True while the tier is degraded to memory-only writes."""
        return self._reprobe_at is not None

    def _note_write_error(self, err: OSError, path: str) -> None:
        _DISK_WRITE_ERRORS.inc()
        entry = _DISABLING_ERRNOS.get(getattr(err, "errno", None))
        if entry is None:
            # Transient (EIO, EINTR, ...): counted, not disabling.
            if "transient" not in self._reported:
                self._reported.add("transient")
                self._diagnostic(
                    f"disk cache {self.directory}: write failed "
                    f"({err}); entry skipped"
                )
            return
        cls, stat, human = entry
        stat.inc()
        if self._reprobe_at is None:
            _DISK_DISABLED.inc()
        self._reprobe_at = self._clock() + self.REPROBE_INTERVAL_S
        if cls not in self._reported:
            self._reported.add(cls)
            self._diagnostic(
                f"disk cache {self.directory}: {human} "
                f"(errno {err.errno}); continuing memory-only, will "
                f"re-probe every {self.REPROBE_INTERVAL_S:.0f}s"
            )

    def _writes_allowed(self) -> bool:
        """True when a write should be attempted — either the tier is
        healthy or the degraded tier is due for a re-probe (the
        caller's own write acts as the probe)."""
        if self._reprobe_at is None:
            return True
        if self._clock() >= self._reprobe_at:
            _DISK_REPROBES.inc()
            return True
        return False

    def _note_write_ok(self) -> None:
        if self._reprobe_at is not None:
            self._reprobe_at = None
            self._reported.clear()
            _DISK_REENABLED.inc()
            self._diagnostic(
                f"disk cache {self.directory}: write probe succeeded; "
                "disk tier re-enabled"
            )

    # ------------------------------------------------------------------
    def _object_path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], key + ".json")

    def _alias_path(self, key: str) -> str:
        return os.path.join(self._aliases, key[:2], key)

    def _atomic_write(self, path: str, text: str) -> int:
        """Temp file + rename; with :attr:`durable`, fsync the data
        before the rename and the directory after it (the SQLite
        atomic-commit ordering).  The ``storage-*`` fault sites shim in
        here, each converted to the physical condition it simulates."""
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data = text.encode("utf-8")
        if FAULTS.armed:
            try:
                FAULTS.hit("storage-write-enospc")
            except InjectedFault:
                raise OSError(
                    errno.ENOSPC,
                    "no space left on device (injected)",
                    path,
                ) from None
            try:
                FAULTS.hit("storage-write-torn")
            except InjectedFault:
                # The torn half still gets renamed into place: the
                # checksum on the next read is what must catch it.
                data = data[: max(1, len(data) // 2)]
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                if self.durable:
                    fh.flush()
                    if FAULTS.armed:
                        try:
                            FAULTS.hit("storage-fsync-fail")
                        except InjectedFault:
                            raise OSError(
                                errno.EIO,
                                "fsync failed (injected)",
                                path,
                            ) from None
                    os.fsync(fh.fileno())
            if FAULTS.armed:
                try:
                    FAULTS.hit("storage-rename-fail")
                except InjectedFault:
                    raise OSError(
                        errno.EIO, "rename failed (injected)", path
                    ) from None
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.durable:
            self._fsync_dir(os.path.dirname(path))
        return len(data)

    @staticmethod
    def _fsync_dir(dirpath: str) -> None:
        try:
            fd = os.open(dirpath, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _read(self, path: str) -> Optional[bytes]:
        """Raw bytes, or None when the file is absent.  Read errors
        other than absence are counted and surfaced once; corruption
        detection happens in the caller via :func:`unseal`."""
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as err:
            if getattr(err, "errno", None) not in (
                errno.ENOENT,
                errno.ENOTDIR,
            ):
                _DISK_READ_ERRORS.inc()
                if "read" not in self._reported:
                    self._reported.add("read")
                    self._diagnostic(
                        f"disk cache {self.directory}: read failed "
                        f"({err}); treating as a miss"
                    )
            return None
        if FAULTS.armed and data:
            try:
                FAULTS.hit("storage-read-corrupt")
            except InjectedFault:
                # Flip the first byte: deterministic bit rot the
                # checksum verification must catch.
                data = bytes([data[0] ^ 0xFF]) + data[1:]
        return data

    def _heal(self, path: str, defect: str) -> None:
        """A corrupt entry: count it, surface the first one, delete it
        so the next lookup recomputes (self-healing)."""
        _CORRUPT_ENTRIES.inc()
        if "corrupt" not in self._reported:
            self._reported.add("corrupt")
            self._diagnostic(
                f"disk cache {self.directory}: corrupt entry "
                f"{os.path.basename(path)} removed ({defect})"
            )
        try:
            os.unlink(path)
        except OSError:
            pass

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Fetch one artifact; an absent entry is a plain miss, a
        present-but-invalid entry is *corruption*: detected, deleted,
        and reported as a miss — never deserialized into a result."""
        path = self._object_path(key)
        data = self._read(path)
        if data is None:
            return None
        try:
            obj = unseal(data)
        except IntegrityError as err:
            self._heal(path, str(err))
            return None
        if not isinstance(obj, dict):
            self._heal(path, "payload is not an object")
            return None
        self._touch(path)
        return obj

    def put(self, key: str, obj: dict) -> int:
        """Store one artifact; returns bytes written (0 on failure —
        a full disk must not fail the compile)."""
        try:
            text = seal(obj)
        except (TypeError, ValueError):
            return 0
        written = self._store(self._object_path(key), text)
        if written:
            self._maybe_evict()
        return written

    def get_alias(self, key: str) -> Optional[str]:
        path = self._alias_path(key)
        data = self._read(path)
        if data is None:
            return None
        try:
            obj = unseal(data)
        except IntegrityError as err:
            self._heal(path, str(err))
            return None
        target = obj.get("target") if isinstance(obj, dict) else None
        if not isinstance(target, str) or not target:
            self._heal(path, "alias payload malformed")
            return None
        self._touch(path)
        return target

    def put_alias(self, key: str, target: str) -> None:
        self._store(self._alias_path(key), seal({"target": target}))

    def _store(self, path: str, text: str) -> int:
        if not self._writes_allowed():
            return 0
        try:
            written = self._atomic_write(path, text)
        except OSError as err:
            self._note_write_error(err, path)
            return 0
        self._note_write_ok()
        return written

    # -- maintenance (miniclang-cache verify / gc / doctor) ------------
    def verify(self, repair: bool = False) -> dict:
        """Scan every entry, recomputing checksums.  With *repair*,
        corrupt entries and stale temp files are deleted."""
        report = {
            "objects": 0,
            "aliases": 0,
            "ok": 0,
            "corrupt": 0,
            "removed": 0,
            "tmp": 0,
            "corrupt_paths": [],
        }
        for root, kind in (
            (self._objects, "objects"),
            (self._aliases, "aliases"),
        ):
            for dirpath, _, filenames in os.walk(root):
                for name in filenames:
                    path = os.path.join(dirpath, name)
                    if name.startswith(".tmp-"):
                        report["tmp"] += 1
                        if repair:
                            self._unlink_quiet(path)
                            report["removed"] += 1
                        continue
                    report[kind] += 1
                    defect = self._verify_one(path, kind)
                    if defect is None:
                        report["ok"] += 1
                        continue
                    report["corrupt"] += 1
                    report["corrupt_paths"].append(path)
                    if repair:
                        self._heal(path, defect)
                        report["removed"] += 1
        return report

    def _verify_one(self, path: str, kind: str) -> Optional[str]:
        """None when the sealed entry is intact, else the defect."""
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as err:
            return f"unreadable: {err}"
        try:
            obj = unseal(data)
        except IntegrityError as err:
            return str(err)
        if kind == "objects" and not isinstance(obj, dict):
            return "payload is not an object"
        if kind == "aliases":
            target = (
                obj.get("target") if isinstance(obj, dict) else None
            )
            if not isinstance(target, str) or not target:
                return "alias payload malformed"
        return None

    def gc(self) -> dict:
        """Remove stale temp files and orphan aliases (whose target
        object no longer exists), then enforce the byte budget."""
        report = {"tmp": 0, "orphan_aliases": 0, "evicted": 0}
        for dirpath, _, filenames in os.walk(self.directory):
            for name in filenames:
                if name.startswith(".tmp-"):
                    self._unlink_quiet(os.path.join(dirpath, name))
                    report["tmp"] += 1
        for dirpath, _, filenames in os.walk(self._aliases):
            for name in filenames:
                path = os.path.join(dirpath, name)
                data = self._read(path)
                if data is None:
                    continue
                try:
                    obj = unseal(data)
                except IntegrityError as err:
                    self._heal(path, str(err))
                    continue
                target = (
                    obj.get("target")
                    if isinstance(obj, dict)
                    else None
                )
                if not isinstance(target, str) or not os.path.exists(
                    self._object_path(target)
                ):
                    self._unlink_quiet(path)
                    report["orphan_aliases"] += 1
        report["evicted"] = self._maybe_evict()
        return report

    @staticmethod
    def _unlink_quiet(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _walk_entries(self) -> list[tuple[float, int, str]]:
        entries: list[tuple[float, int, str]] = []
        for root in (self._objects, self._aliases):
            for dirpath, _, filenames in os.walk(root):
                for name in filenames:
                    if name.startswith(".tmp-"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        st = os.stat(path)
                    except OSError:
                        continue
                    entries.append((st.st_mtime, st.st_size, path))
        return entries

    @property
    def bytes(self) -> int:
        return sum(size for _, size, _ in self._walk_entries())

    def __len__(self) -> int:
        return len(self._walk_entries())

    def _maybe_evict(self) -> int:
        """Drop oldest entries until the tree fits the byte budget."""
        entries = self._walk_entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return 0
        evicted = 0
        for _, size, path in sorted(entries):
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
            if total <= self.max_bytes:
                break
        self.evictions += evicted
        return evicted
