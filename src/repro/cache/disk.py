"""The on-disk content-addressed tier.

Layout (ccache-style two-level fan-out under the cache directory)::

    DIR/
      CACHEDIR.TAG                  # marks the tree as disposable
      format                        # human-readable format stamp
      objects/ab/abcdef....json     # one JSON artifact per content key
      aliases/12/1234....           # exact-request key -> content key

Writes are atomic (temp file + ``os.replace``) so concurrent readers —
service workers share one directory — never observe a torn entry, and
a duplicate write from two racing processes converges on identical
bytes anyway because keys are content addresses.  Reads tolerate
everything: a missing, truncated, or corrupt file is a miss, never an
error (a cache must degrade to "slower", not "broken").

Eviction is size-triggered: when a put grows the tree past
``max_bytes``, the oldest entries by mtime go first (reads refresh
mtime, making this an approximate LRU across processes).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from repro.cache.key import CACHE_FORMAT_VERSION

_FORMAT_STAMP = f"miniclang-cache format {CACHE_FORMAT_VERSION}\n"
_CACHEDIR_TAG = (
    "Signature: 8a477f597d28d172789f06886806bc55\n"
    "# This directory is a miniclang compilation cache.\n"
)


class DiskTier:
    """Content-addressed store rooted at *directory*."""

    def __init__(
        self,
        directory: str,
        max_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        self.directory = directory
        self.max_bytes = max_bytes
        self._objects = os.path.join(directory, "objects")
        self._aliases = os.path.join(directory, "aliases")
        #: total entries dropped by the byte-budget eviction sweep
        self.evictions = 0
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._aliases, exist_ok=True)
        self._stamp()

    def _stamp(self) -> None:
        for name, text in (
            ("format", _FORMAT_STAMP),
            ("CACHEDIR.TAG", _CACHEDIR_TAG),
        ):
            path = os.path.join(self.directory, name)
            if not os.path.exists(path):
                try:
                    self._atomic_write(path, text)
                except OSError:
                    pass  # a read-only cache is still a cache

    # ------------------------------------------------------------------
    def _object_path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], key + ".json")

    def _alias_path(self, key: str) -> str:
        return os.path.join(self._aliases, key[:2], key)

    @staticmethod
    def _atomic_write(path: str, text: str) -> int:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data = text.encode("utf-8")
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(data)

    @staticmethod
    def _read(path: str) -> Optional[str]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return fh.read()
        except (OSError, UnicodeDecodeError):
            return None

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Fetch one artifact; any malformed entry is a miss."""
        path = self._object_path(key)
        text = self._read(path)
        if text is None:
            return None
        try:
            obj = json.loads(text)
        except ValueError:
            return None
        if not isinstance(obj, dict):
            return None
        self._touch(path)
        return obj

    def put(self, key: str, obj: dict) -> int:
        """Store one artifact; returns bytes written (0 on failure —
        a full disk must not fail the compile)."""
        try:
            written = self._atomic_write(
                self._object_path(key),
                json.dumps(obj, sort_keys=True, ensure_ascii=False),
            )
        except (OSError, TypeError, ValueError):
            return 0
        self._maybe_evict()
        return written

    def get_alias(self, key: str) -> Optional[str]:
        text = self._read(self._alias_path(key))
        if text is None:
            return None
        target = text.strip()
        if target:
            self._touch(self._alias_path(key))
        return target or None

    def put_alias(self, key: str, target: str) -> None:
        try:
            self._atomic_write(self._alias_path(key), target + "\n")
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _walk_entries(self) -> list[tuple[float, int, str]]:
        entries: list[tuple[float, int, str]] = []
        for root in (self._objects, self._aliases):
            for dirpath, _, filenames in os.walk(root):
                for name in filenames:
                    if name.startswith(".tmp-"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        st = os.stat(path)
                    except OSError:
                        continue
                    entries.append((st.st_mtime, st.st_size, path))
        return entries

    @property
    def bytes(self) -> int:
        return sum(size for _, size, _ in self._walk_entries())

    def __len__(self) -> int:
        return len(self._walk_entries())

    def _maybe_evict(self) -> int:
        """Drop oldest entries until the tree fits the byte budget."""
        entries = self._walk_entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return 0
        evicted = 0
        for _, size, path in sorted(entries):
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
            if total <= self.max_bytes:
                break
        self.evictions += evicted
        return evicted
