"""Single-flight request coalescing.

When a service handling heavy traffic sees N concurrent requests with
the same fingerprint, running N identical compiles wastes N-1 workers:
the first request becomes the *leader* and executes; the rest become
*followers* that park until the leader's terminal response arrives and
is fanned out to all of them (Go's ``singleflight`` package, or groupcache's
load dedup).

:class:`InflightTable` is the bookkeeping half — leader registration,
follower parking, fan-out on resolution — used from the compile
service's single-threaded event loop.  It deliberately holds no locks
and no results: the service owns response construction, the table only
answers "who is already flying this key?".
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

T = TypeVar("T")


class InflightTable(Generic[T]):
    """Leader/follower registry keyed by request fingerprint."""

    def __init__(self) -> None:
        self._leaders: dict[str, T] = {}
        self._followers: dict[str, list[T]] = {}
        #: followers coalesced over the table's lifetime
        self.collapsed = 0

    # ------------------------------------------------------------------
    def leader(self, key: str) -> Optional[T]:
        return self._leaders.get(key)

    def lead(self, key: str, state: T) -> None:
        """Register *state* as the leader for *key* (must be vacant)."""
        assert key not in self._leaders, f"duplicate leader for {key}"
        self._leaders[key] = state

    def follow(self, key: str, state: T) -> None:
        """Park *state* behind the in-flight leader for *key*."""
        assert key in self._leaders, f"no leader to follow for {key}"
        self._followers.setdefault(key, []).append(state)
        self.collapsed += 1

    def resolve(self, key: str, state: T) -> list[T]:
        """The leader finished: unregister and hand back the followers
        (empty when *state* was not the registered leader — a stale
        resolution must not hijack a newer leader's followers)."""
        if self._leaders.get(key) is not state:
            return []
        del self._leaders[key]
        return self._followers.pop(key, [])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leaders)

    @property
    def parked(self) -> int:
        return sum(len(f) for f in self._followers.values())
