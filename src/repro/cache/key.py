"""Content-addressed cache keys.

Every cache entry is addressed by a SHA-256 over *canonicalized* input:
the source text (line endings normalized), the flag set (whitespace
around flag tokens stripped, ``-D`` defines order-insensitive,
``-I`` search paths order-*sensitive* — include order is semantics),
the pipeline stage, and :data:`CACHE_FORMAT_VERSION`.  Bumping the
version orphans every existing entry instead of misinterpreting it,
the same trick ccache's ``cache_version`` plays.

Keys chain along the pipeline, one per stage boundary::

    k_pp  = H(version, "preprocess", token stream, filename, pp flags)
    k_fe  = H("frontend", k_pp, representation, error limit)
    k_cg  = H("codegen",  k_fe)
    k_opt = H("opt",      k_cg, pass pipeline names)

so a flag that only affects a late stage (``-O``) leaves every upstream
key unchanged and the cached upstream artifacts stay addressable —
the first *divergent* input decides where recompilation must resume.

The preprocess key hashes the post-preprocess **token stream**, not the
raw bytes: comment and whitespace edits produce the identical stream,
so everything downstream of the preprocessor hits (ccache's "direct
mode" keyed the way clangd keys preamble reuse).  Hashing is plain
``hashlib.sha256`` over sorted-key JSON — deterministic across
processes and interpreter restarts (``PYTHONHASHSEED`` never enters).
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Optional, Sequence

from repro.lex.tokens import Token

#: bump whenever artifact layout or any key ingredient changes meaning
#: (2: on-disk entries gained self-verifying SHA-256 envelopes)
CACHE_FORMAT_VERSION = 2


def _digest(payload: object) -> str:
    text = json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonicalize_source(source: str) -> str:
    """Line-ending normalization: CRLF / lone CR become LF."""
    return source.replace("\r\n", "\n").replace("\r", "\n")


def canonicalize_flag_tokens(tokens: Iterable[str]) -> tuple[str, ...]:
    """Strip insignificant whitespace from a raw flag list.

    ``["-O ", "  -fopenmp"]`` and ``["-fopenmp", "-O"]`` canonicalize
    identically (order-insensitive after stripping, empties dropped):
    driver flag *spelling* whitespace and ordering are not semantics.
    Flags whose relative order matters (include paths) must be keyed
    positionally — see :func:`request_fingerprint`'s ``include_paths``.
    """
    stripped = (token.strip() for token in tokens)
    return tuple(sorted(t for t in stripped if t))


def define_items(
    defines: Optional[dict[str, str]],
) -> tuple[tuple[str, str], ...]:
    """``-D`` macro table as a sorted, order-insensitive tuple."""
    return tuple(sorted((defines or {}).items()))


def token_stream_text(tokens: Sequence[Token]) -> str:
    """Deterministic serialization of a post-preprocess token stream.

    Annotation tokens (``annot_pragma_openmp`` …) carry their payload
    token list in ``annotation_value``; it is serialized recursively so
    two streams compare equal iff the parser would see the same input.
    Locations are deliberately excluded — that is what makes comment
    and whitespace edits hit downstream stages.
    """
    parts: list[str] = []
    for token in tokens:
        if isinstance(token.annotation_value, (list, tuple)) and all(
            isinstance(t, Token) for t in token.annotation_value
        ):
            inner = token_stream_text(list(token.annotation_value))
            parts.append(f"{token.kind.value}[{inner}]")
        else:
            parts.append(f"{token.kind.value}\x1f{token.spelling}")
    return "\x1e".join(parts)


def stage_key(
    stage: str,
    parent: Optional[str],
    material: object = None,
) -> str:
    """Key for one pipeline stage, chained onto its upstream *parent*."""
    return _digest(
        {
            "version": CACHE_FORMAT_VERSION,
            "stage": stage,
            "parent": parent,
            "material": material,
        }
    )


def request_fingerprint(
    source: str,
    *,
    filename: str = "<input>",
    openmp: bool = True,
    enable_irbuilder: bool = False,
    optimize: bool = False,
    strip_omp_transforms: bool = False,
    defines: Optional[dict[str, str]] = None,
    include_paths: Sequence[str] = (),
    error_limit: int = 0,
    extra_flags: Iterable[str] = (),
    action: str = "compile",
) -> str:
    """Exact-identity key of one whole request (raw source + flags).

    This is the outermost address: the fast path for byte-identical
    repeats and the single-flight collapse key.  ``include_paths`` keeps
    its order (header search order is observable); ``defines`` and
    ``extra_flags`` are canonicalized order-insensitively.
    """
    return _digest(
        {
            "version": CACHE_FORMAT_VERSION,
            "kind": "request",
            "source": canonicalize_source(source),
            "filename": filename,
            "action": action,
            "openmp": openmp,
            "mode": "irbuilder" if enable_irbuilder else "shadow",
            "optimize": bool(optimize),
            "strip": strip_omp_transforms,
            "defines": define_items(defines),
            "include_paths": list(include_paths),
            "error_limit": error_limit,
            "extra_flags": canonicalize_flag_tokens(extra_flags),
        }
    )


def source_id(source: str) -> str:
    """Identity of the raw (canonicalized) source text alone — the
    validity condition for replaying cached *diagnostics*, whose
    rendered carets embed line/column numbers."""
    return _digest(canonicalize_source(source))
