"""The in-memory LRU tier.

A plain ``OrderedDict`` bounded by entry count *and* an approximate
byte budget, the same double limit ``-fcache-max-entries`` /
``-fcache-max-bytes`` exposes.  Values are opaque to the tier; the
caller supplies a byte size (strings: their UTF-8 length; live objects
such as memoized IR modules: a nominal cost).  Eviction pops from the
cold end and reports the count so the owning cache can feed the
``cache.evictions`` statistic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional


class LRUTier:
    """Bounded most-recently-used map: ``get`` refreshes recency."""

    def __init__(
        self,
        max_entries: int = 1024,
        max_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, tuple[Any, int]]" = OrderedDict()
        self._bytes = 0

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def put(self, key: str, value: Any, size: int = 0) -> int:
        """Insert/replace; returns how many entries were evicted."""
        size = max(0, int(size))
        if key in self._entries:
            self._bytes -= self._entries[key][1]
            del self._entries[key]
        self._entries[key] = (value, size)
        self._bytes += size
        evicted = 0
        while len(self._entries) > self.max_entries or (
            self._bytes > self.max_bytes and len(self._entries) > 1
        ):
            _, (_, dropped) = self._entries.popitem(last=False)
            self._bytes -= dropped
            evicted += 1
        return evicted

    def discard(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry[1]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def bytes(self) -> int:
        return self._bytes

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
